"""Table III — space-ground vs air-ground comparative analysis.

Paper result (ideal conditions):

    Space-Ground   P = 55.17 %   served = 57.75 %   fidelity = 0.96
    Air-Ground     P = 100 %     served = 100 %     fidelity = 0.98

Our calibrated reproduction preserves every ordering and the coverage /
served levels; the space-ground fidelity level sits at ~0.92 (see
EXPERIMENTS.md).
"""

import math

from repro.core.architecture import AirGroundArchitecture, SpaceGroundArchitecture
from repro.core.comparison import ComparisonRow, compare_architectures
from repro.reporting.tables import render_table_iii


def test_table3_comparison(benchmark, full_ephemeris):
    space = SpaceGroundArchitecture(108, ephemeris=full_ephemeris)
    air = AirGroundArchitecture()

    def run():
        return compare_architectures(
            n_requests=100, n_time_steps=100, seed=7, space=space, air=air
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table_iii(rows))
    print("  paper: Space-Ground 55.17% / 57.75% / 0.96 ; Air-Ground 100% / 100% / 0.98")

    space_row, air_row = rows
    # Air-ground achieves the paper's ideal values exactly.
    assert air_row.coverage_percentage == 100.0
    assert air_row.served_percentage == 100.0
    assert abs(air_row.mean_fidelity - 0.98) < 0.01
    # Space-ground lands in the paper's neighbourhood and loses on all
    # three metrics (the paper's comparative conclusion).
    assert 45.0 < space_row.coverage_percentage < 65.0
    assert 45.0 < space_row.served_percentage < 70.0
    assert air_row.coverage_percentage > space_row.coverage_percentage
    assert air_row.served_percentage > space_row.served_percentage
    assert air_row.mean_fidelity > space_row.mean_fidelity
