"""Ablation A10 — would inter-satellite links help QNTN?

The paper lists FSO "between satellites" as part of the architecture but
its aperture/threshold numbers never let an ISL qualify at typical
spacings. This bench quantifies three things:

1. the maximum range at which an exo-atmospheric link clears the 0.7
   threshold, versus aperture size;
2. whether the ISL graph (links within that range) connects the whole
   constellation;
3. the regional coverage ISLs would unlock if the constellation were
   fully connected — which turns out to be nearly nothing: at ~130 km
   city separations, any satellite that sees one QNTN city almost always
   sees all three, so relaying through space cannot add coverage. ISLs
   are a continental-scale tool, not a regional one.
"""

import math

import networkx as nx
import numpy as np

from repro.channels.fso import FSOChannelModel
from repro.channels.presets import paper_satellite_fso
from repro.core.analysis import SpaceGroundAnalysis
from repro.data.ground_nodes import all_ground_nodes
from repro.reporting.tables import render_table

APERTURE_RADII_M = (0.3, 0.6, 1.2, 2.4)
THRESHOLD = 0.7


def _isl_model(aperture_radius_m: float) -> FSOChannelModel:
    """Vacuum link with a collimated beam filling the aperture."""
    return FSOChannelModel(
        wavelength_m=532e-9,
        beam_waist_m=aperture_radius_m,
        rx_aperture_radius_m=aperture_radius_m,
        receiver_efficiency=0.98,
        atmosphere=None,
        turbulence=False,
    )


def _max_qualifying_range_km(model: FSOChannelModel) -> float:
    lo, hi = 1.0, 100000.0
    if float(np.asarray(model.transmissivity(lo))) < THRESHOLD:
        return 0.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if float(np.asarray(model.transmissivity(mid))) >= THRESHOLD:
            lo = mid
        else:
            hi = mid
    return lo


def _constellation_connected_fraction(positions: np.ndarray, max_range_km: float) -> float:
    """Fraction of sampled instants with a connected ISL graph."""
    connected = 0
    n_times = positions.shape[1]
    for t in range(n_times):
        p = positions[:, t, :]
        dist = np.linalg.norm(p[:, None, :] - p[None, :, :], axis=-1)
        g = nx.from_numpy_array((dist <= max_range_km) & (dist > 0))
        if nx.is_connected(g):
            connected += 1
    return connected / n_times


def test_ablation_isl_feasibility(benchmark, full_ephemeris):
    def run():
        ranges = {a: _max_qualifying_range_km(_isl_model(a)) for a in APERTURE_RADII_M}

        positions = full_ephemeris.positions_ecef_km[:, ::240, :]  # every 2 h
        connectivity = {
            a: _constellation_connected_fraction(positions, r)
            for a, r in ranges.items()
        }

        # Median nearest-neighbour spacing (crossing planes make the
        # instantaneous minimum arbitrarily small, so the median is the
        # design-relevant figure).
        nn = []
        for t in range(positions.shape[1]):
            p = positions[:, t, :]
            dist = np.linalg.norm(p[:, None, :] - p[None, :, :], axis=-1)
            np.fill_diagonal(dist, np.inf)
            nn.append(np.median(dist.min(axis=1)))
        median_nn = float(np.median(nn))

        # Coverage upper bound with a fully connected constellation:
        # every city just needs its own usable ground link.
        analysis = SpaceGroundAnalysis(
            full_ephemeris, list(all_ground_nodes()), paper_satellite_fso()
        )
        per_city = [analysis.lan_usable(lan).any(axis=0) for lan in analysis.lans]
        isl_coverage = 100.0 * float(np.logical_and.reduce(per_city).mean())
        baseline_coverage = 100.0 * float(analysis.all_pairs_connected().mean())
        return ranges, connectivity, median_nn, baseline_coverage, isl_coverage

    ranges, connectivity, median_nn, baseline, with_isl = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print()
    print(
        render_table(
            ["aperture radius", "max ISL range", "constellation connected"],
            [
                (f"{a:.1f} m", f"{ranges[a]:,.0f} km", f"{connectivity[a]:.0%} of day")
                for a in APERTURE_RADII_M
            ],
            title="ABLATION A10: ISL LINK BUDGET (vacuum, 532 nm)",
        )
    )
    print(f"  median nearest-neighbour spacing: {median_nn:,.0f} km")
    print(f"  coverage without ISLs:            {baseline:.2f} %")
    print(f"  coverage with ideal ISLs:         {with_isl:.2f} %")
    print("  => ISLs add almost nothing at regional scale: a satellite that"
          " sees one Tennessee city nearly always sees all three.")

    reach = [ranges[a] for a in APERTURE_RADII_M]
    assert reach == sorted(reach)
    # The paper's 120 cm apertures (0.6 m radius) never connect the shell...
    assert connectivity[0.6] < 0.5
    # ...while 2.4 m-class optics keep it connected essentially always.
    assert connectivity[2.4] > 0.9
    # The regional finding: even ideal ISLs add under 2 coverage points.
    assert baseline <= with_isl < baseline + 2.0