"""Fig. 5 — entanglement fidelity vs transmissivity, threshold at F >= 0.9.

Paper result: eta swept over [0, 1] in 0.01 steps; eta = 0.7 yields
fidelity > 0.9, which fixes the network-wide transmissivity threshold.
"""

import numpy as np

from repro.core.threshold import transmissivity_threshold_experiment
from repro.reporting.figures import FigureSeries


def test_fig5_threshold(benchmark, emit_series):
    result = benchmark(transmissivity_threshold_experiment, step=0.01)

    emit_series(
        FigureSeries(
            "fig5_fidelity_vs_transmissivity",
            "transmissivity",
            "fidelity",
            tuple(result.transmissivities),
            tuple(result.fidelities),
            meta={
                "paper": "eta=0.7 gives F>0.9; threshold fixed at 0.7",
                "measured_min_eta_reaching_0.9": f"{result.threshold:.2f}",
                "measured_F_at_0.7": f"{result.fidelities[70]:.4f}",
            },
        )
    )

    # Shape assertions: monotone curve from 0.5 to 1.0, paper operating
    # point reproduced.
    assert result.fidelities[0] == 0.5
    assert result.fidelities[-1] == 1.0
    assert np.all(np.diff(result.fidelities) > 0)
    assert result.fidelities[70] > 0.9
    assert result.threshold <= 0.7
