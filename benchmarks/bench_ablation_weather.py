"""Ablation A9 — weather Monte Carlo over the air-ground architecture.

The paper's 100 % air-ground availability holds only under its
ideal-conditions assumption (Section III-D). Sampling realistic regional
weather shows what fraction of days the HAP actually delivers, and at
what fidelity.
"""

from repro.core.montecarlo import weather_study
from repro.reporting.tables import render_table


def test_ablation_weather_monte_carlo(benchmark):
    result = benchmark.pedantic(
        weather_study,
        kwargs={"n_trials": 200, "n_requests": 20, "seed": 11, "n_workers": 0},
        rounds=1,
        iterations=1,
    )

    counts = result.condition_counts()
    print()
    print(
        render_table(
            ["condition", "days sampled"],
            [(c.value, n) for c, n in sorted(counts.items(), key=lambda kv: -kv[1])],
            title="ABLATION A9: SAMPLED WEATHER (200 Monte Carlo days)",
        )
    )
    print(f"  all-weather availability: {result.availability:.1%} "
          "(paper's ideal assumption: 100%)")
    print(f"  fidelity when available:  {result.mean_fidelity_when_available:.4f}")

    # Clear + haze days dominate and still serve; rain/fog days do not.
    assert 0.5 < result.availability < 1.0
    assert result.mean_fidelity_when_available > 0.9
    # Under weather, the air-ground architecture loses its categorical
    # 100 % advantage over the 55 % space-ground coverage.
    assert result.availability < 0.95
