"""Table I — the three QNTN local networks and their ground nodes.

Regenerates the topology from the Table I data, verifies node counts and
intra-LAN fiber quality, and times the network-assembly path.
"""

from repro.data.ground_nodes import all_ground_nodes, qntn_local_networks
from repro.network.topology import build_qntn_ground_network
from repro.reporting.tables import render_table


def test_table1_ground_topology(benchmark, emit_series):
    network = benchmark(build_qntn_ground_network)

    lans = qntn_local_networks()
    rows = []
    for lan in lans:
        lat, lon = lan.centroid_deg
        rows.append((lan.name, len(lan), f"{lat:.4f}", f"{lon:.4f}"))
    print()
    print(
        render_table(
            ["network", "nodes", "centroid lat", "centroid lon"],
            rows,
            title="TABLE I: QNTN GROUND NODES (summary)",
        )
    )
    for node in all_ground_nodes():
        print(f"  {node.name:8s} ({node.lat_deg:9.5f}, {node.lon_deg:9.5f})")

    # Paper Section II-A: 5 + 15 + 11 nodes, full intra-LAN fiber meshes.
    assert network.n_hosts == 31
    assert [len(lan) for lan in lans] == [5, 15, 11]
    assert network.n_channels == 10 + 105 + 55
    graph = network.link_graph(0.0)
    intra = [eta for nbrs in graph.values() for eta in nbrs.values()]
    assert min(intra) > 0.9  # every intra-LAN fiber far above threshold
