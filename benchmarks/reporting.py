"""Machine-readable benchmark records.

Each perf-gated bench writes a ``BENCH_<name>.json`` file under
``benchmarks/results/`` holding the wall times, the derived speedup, the
workload parameters, and the git SHA of the tree that produced them —
one small self-describing record per bench, so the perf trajectory can
be tracked PR-over-PR by diffing the JSON instead of re-reading bench
stdout.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Mapping

# Provenance fields live in repro.obs.manifest (single source of truth,
# shared with the CLI's --telemetry run manifest); re-exported here so
# benches keep importing them from reporting.
from repro.obs.manifest import git_sha, host_info

RESULTS_DIR = Path(__file__).parent / "results"
# Append-only perf-trajectory files live at the repo root so they are
# easy to spot in review diffs (one BENCH_<name>.json per bench).
TRAJECTORY_DIR = Path(__file__).parent.parent

__all__ = ["append_trajectory", "git_sha", "host_info", "write_bench_record"]


def write_bench_record(
    name: str,
    *,
    timings_s: Mapping[str, float],
    workload: Mapping[str, Any],
    speedup: float | None = None,
    speedup_floor: float | None = None,
    extra: Mapping[str, Any] | None = None,
    results_dir: Path | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    Args:
        name: bench identifier (file becomes ``BENCH_<name>.json``).
        timings_s: labelled wall times, e.g. ``{"cold": 4.1, "warm": 0.4}``.
        workload: the parameters that define the measured workload.
        speedup: the bench's headline ratio, when it has one.
        speedup_floor: the gate the bench asserts against.
        extra: any additional fields worth recording.
        results_dir: override the output directory (tests).
    """
    record: dict[str, Any] = {
        "bench": name,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "recorded_at_unix_s": time.time(),
        "workload": dict(workload),
        "timings_s": {k: float(v) for k, v in timings_s.items()},
    }
    if speedup is not None:
        record["speedup"] = float(speedup)
    if speedup_floor is not None:
        record["speedup_floor"] = float(speedup_floor)
    if extra:
        record["extra"] = dict(extra)
    out_dir = results_dir if results_dir is not None else RESULTS_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    # Mirror into the repo-root trajectory so the PR-over-PR history is a
    # single append-only file per bench. Tests that redirect results_dir
    # get their trajectory redirected too (a subdir, since the trajectory
    # shares the record's filename) — no stray repo-root writes.
    append_trajectory(
        record,
        trajectory_dir=None if results_dir is None else results_dir / "trajectory",
    )
    return path


def append_trajectory(
    record: Mapping[str, Any], *, trajectory_dir: Path | None = None
) -> Path:
    """Append ``record`` to the repo-root ``BENCH_<name>.json`` trajectory.

    The trajectory file holds every recorded run of the bench, keyed by
    git SHA: a re-run on the same SHA replaces the last entry (so local
    retries don't bloat the history), a new SHA appends. ``repro obs
    diff`` accepts these files directly — the latest entry is compared.
    """
    name = str(record["bench"])
    out_dir = trajectory_dir if trajectory_dir is not None else TRAJECTORY_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    history: list[dict[str, Any]] = []
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
        if isinstance(data, dict) and isinstance(data.get("trajectory"), list):
            history = list(data["trajectory"])
    entry = dict(record)
    if history and history[-1].get("git_sha") == entry.get("git_sha"):
        history[-1] = entry
    else:
        history.append(entry)
    payload = {"bench": name, "schema": 1, "trajectory": history}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
