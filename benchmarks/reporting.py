"""Machine-readable benchmark records.

Each perf-gated bench writes a ``BENCH_<name>.json`` file under
``benchmarks/results/`` holding the wall times, the derived speedup, the
workload parameters, and the git SHA of the tree that produced them —
one small self-describing record per bench, so the perf trajectory can
be tracked PR-over-PR by diffing the JSON instead of re-reading bench
stdout.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Mapping

# Provenance fields live in repro.obs.manifest (single source of truth,
# shared with the CLI's --telemetry run manifest); re-exported here so
# benches keep importing them from reporting.
from repro.obs.manifest import git_sha, host_info

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["git_sha", "host_info", "write_bench_record"]


def write_bench_record(
    name: str,
    *,
    timings_s: Mapping[str, float],
    workload: Mapping[str, Any],
    speedup: float | None = None,
    speedup_floor: float | None = None,
    extra: Mapping[str, Any] | None = None,
    results_dir: Path | None = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    Args:
        name: bench identifier (file becomes ``BENCH_<name>.json``).
        timings_s: labelled wall times, e.g. ``{"cold": 4.1, "warm": 0.4}``.
        workload: the parameters that define the measured workload.
        speedup: the bench's headline ratio, when it has one.
        speedup_floor: the gate the bench asserts against.
        extra: any additional fields worth recording.
        results_dir: override the output directory (tests).
    """
    record: dict[str, Any] = {
        "bench": name,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "recorded_at_unix_s": time.time(),
        "workload": dict(workload),
        "timings_s": {k: float(v) for k, v in timings_s.items()},
    }
    if speedup is not None:
        record["speedup"] = float(speedup)
    if speedup_floor is not None:
        record["speedup_floor"] = float(speedup_floor)
    if extra:
        record["extra"] = dict(extra)
    out_dir = results_dir if results_dir is not None else RESULTS_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
