"""Ablation A8 — entanglement purification as a fidelity countermeasure.

The space-ground architecture's delivered fidelity (~0.92 at threshold-
grade paths) trails the air-ground one (0.98). Recurrence purification
(twirl + DEJMPS) trades raw pair throughput for fidelity; this bench maps
that trade and shows two rounds recover the paper's ~0.96 level.
"""

from repro.network.protocols import purified_delivery
from repro.reporting.figures import FigureSeries
from repro.reporting.tables import render_table

ETA_SPACE = 0.71  # typical threshold-grade space-ground path
ROUNDS = (0, 1, 2, 3)


def test_ablation_purification(benchmark, emit_series):
    def sweep():
        return [purified_delivery(ETA_SPACE, rounds=r) for r in ROUNDS]

    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["rounds", "fidelity", "success prob", "raw pairs / delivered"],
            [
                (
                    o.rounds,
                    f"{o.fidelity:.4f}",
                    f"{o.success_probability:.3f}",
                    f"{o.expected_raw_pairs_per_delivered:.2f}",
                )
                for o in outcomes
            ],
            title=f"ABLATION A8: PURIFICATION AT PATH eta = {ETA_SPACE}",
        )
    )
    emit_series(
        FigureSeries(
            "ablation_purification_fidelity",
            "rounds",
            "fidelity",
            tuple(float(r) for r in ROUNDS),
            tuple(o.fidelity for o in outcomes),
            meta={"path_eta": str(ETA_SPACE)},
        )
    )

    fids = [o.fidelity for o in outcomes]
    assert fids == sorted(fids)
    # Two rounds reach the paper's space-ground fidelity level (~0.96).
    assert outcomes[2].fidelity > 0.95
    # The cost: >5 raw pairs per delivered purified pair at two rounds.
    assert outcomes[2].expected_raw_pairs_per_delivered > 5.0


def test_ablation_purification_vs_raw_throughput(benchmark):
    """Secret-key framing: does purification pay off for QKD?"""
    from repro.qkd.bbm92 import bbm92_key_rate_hz

    pair_rate = 1.0e5  # raw delivered pairs per second

    def run():
        rows = []
        for r in ROUNDS:
            out = purified_delivery(ETA_SPACE, rounds=r)
            delivered_rate = pair_rate / out.expected_raw_pairs_per_delivered
            # Key rate computed on the purified state's error rates.
            from repro.qkd.bbm92 import bbm92_secret_fraction, qber_from_state
            from repro.network.protocols import distribute_entanglement, werner_twirl
            from repro.network.protocols import dejmps_purification

            rho = distribute_entanglement([ETA_SPACE]).rho
            for _ in range(r):
                t = werner_twirl(rho)
                _, rho = dejmps_purification(t, t)
            e_z, e_x = qber_from_state(rho)
            key = delivered_rate * 0.5 * bbm92_secret_fraction(e_z, e_x)
            rows.append((r, delivered_rate, key))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["rounds", "delivered pairs/s", "secret key bit/s"],
            [(r, f"{d:,.0f}", f"{k:,.0f}") for r, d, k in rows],
            title="ABLATION A8b: PURIFICATION VS QKD THROUGHPUT",
        )
    )
    # Raw pairs at eta=0.71 distil almost no key; one purification round
    # must improve the secret-key rate despite the pair cost.
    assert rows[1][2] > rows[0][2]
