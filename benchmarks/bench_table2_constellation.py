"""Table II — the 108-satellite orbital configuration.

Regenerates the constellation from the Walker + gap-fill generator,
verifies it against the Table II data row for row, and times generation
plus one day of propagation.
"""

import math

import numpy as np

from repro.data.constellation import TABLE_II_ROWS
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.walker import qntn_constellation
from repro.reporting.tables import render_table


def test_table2_constellation(benchmark):
    elements = benchmark(qntn_constellation, 108)

    got = [
        (round(math.degrees(r), 6) % 360, round(math.degrees(n), 6) % 360)
        for r, n in zip(elements.raan, elements.nu)
    ]
    assert got == [(r % 360, n % 360) for r, n in TABLE_II_ROWS]

    rows = [
        (f"{raan:.0f}", f"{ta:.0f}")
        for raan, ta in got[:12]
    ]
    print()
    print(
        render_table(
            ["RAAN (deg)", "True Anomaly (deg)"],
            rows,
            title="TABLE II: SATELLITE ORBITAL CONFIGURATIONS (first 12 of 108 rows)",
        )
    )
    print(f"  ... {len(got)} rows total, all matching the paper's Table II")

    # Orbit constants from Section II-B.
    np.testing.assert_allclose(elements.a, 6871.0)
    np.testing.assert_allclose(np.degrees(elements.inc), 53.0)


def test_table2_day_propagation(benchmark):
    """Times the STK-substitute step: one day of 30 s movement sheets."""
    elements = qntn_constellation(108)
    eph = benchmark.pedantic(
        generate_movement_sheet,
        args=(elements,),
        kwargs={"duration_s": 86400.0, "step_s": 30.0},
        rounds=1,
        iterations=1,
    )
    assert eph.positions_ecef_km.shape == (108, 2880, 3)
    _, _, alt = eph.geodetic_tracks()
    assert 480.0 < alt.min() and alt.max() < 520.0
