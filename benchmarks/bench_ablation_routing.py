"""Ablation A1 — Bellman–Ford (the paper's choice) vs Dijkstra.

Both run on the same 1/(eta + eps) metric, so they must agree on every
optimal cost; the interesting question is run-time on QNTN-scale link
graphs. Also times the literal Algorithm 1 routing-table construction.
"""

import math

import pytest

from repro.channels.presets import paper_satellite_fso
from repro.network.topology import attach_satellites, build_qntn_ground_network
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.walker import qntn_constellation
from repro.routing.bellman_ford import bellman_ford, build_routing_tables
from repro.routing.dijkstra import dijkstra


@pytest.fixture(scope="module")
def qntn_graph():
    """A usable-link graph of the full QNTN space-ground network at an
    instant with satellites overhead."""
    eph = generate_movement_sheet(qntn_constellation(108), duration_s=43200.0, step_s=300.0)
    network = build_qntn_ground_network()
    attach_satellites(network, eph, paper_satellite_fso())
    # Find an instant where the network is globally connected.
    for t in eph.times_s:
        graph = network.link_graph(float(t))
        result = bellman_ford(graph, "ttu-0")
        if math.isfinite(result.costs.get("epb-0", math.inf)) and math.isfinite(
            result.costs.get("ornl-0", math.inf)
        ):
            return graph
    raise RuntimeError("no covered instant found in 12 h of satellite motion")


def test_ablation_bellman_ford(benchmark, qntn_graph):
    result = benchmark(bellman_ford, qntn_graph, "ttu-0")
    assert math.isfinite(result.costs["epb-0"])


def test_ablation_dijkstra(benchmark, qntn_graph):
    costs, _ = benchmark(dijkstra, qntn_graph, "ttu-0")
    reference = bellman_ford(qntn_graph, "ttu-0")
    mismatches = [
        n
        for n in qntn_graph
        if not math.isclose(costs[n], reference.costs[n], abs_tol=1e-9)
        and (math.isfinite(costs[n]) or math.isfinite(reference.costs[n]))
    ]
    assert not mismatches, f"Dijkstra and Bellman-Ford disagree on {mismatches[:5]}"
    print("\n  Dijkstra agrees with Bellman-Ford on all "
          f"{len(qntn_graph)} destinations (positive-cost metric)")


def test_ablation_algorithm1_tables(benchmark, qntn_graph):
    """The paper's literal Algorithm 1 (all-pairs tables, N-1 rounds)."""
    # Restrict to the ground nodes plus currently usable satellites so the
    # O(N^3) literal algorithm stays tractable while remaining realistic.
    active = {n for n, nbrs in qntn_graph.items() if nbrs}
    graph = {
        n: {m: eta for m, eta in nbrs.items() if m in active}
        for n, nbrs in qntn_graph.items()
        if n in active
    }
    tables = benchmark.pedantic(build_routing_tables, args=(graph,), rounds=1, iterations=1)
    reference = bellman_ford(graph, "ttu-0")
    for dest in graph:
        assert math.isclose(
            tables["ttu-0"].cost(dest), reference.costs[dest], abs_tol=1e-9
        ) or (math.isinf(tables["ttu-0"].cost(dest)) and math.isinf(reference.costs[dest]))
