"""Ablation A12 — operational metrics the paper's averages hide.

Two operations-facing views of the same architectures:

* relay handover churn: how often endpoints must re-point and re-acquire
  (satellites every few minutes; the hovering HAP never);
* request waiting times under store-and-forward: if unserved requests
  queue until the next coverage window instead of failing, what does the
  user actually wait?
"""

import numpy as np
import pytest

from repro.channels.presets import paper_satellite_fso
from repro.core.analysis import SpaceGroundAnalysis
from repro.core.handover import handover_statistics
from repro.core.waiting import waiting_time_analysis
from repro.data.ground_nodes import all_ground_nodes
from repro.reporting.tables import render_table

PAIRS = (("ttu-0", "epb-0"), ("ttu-0", "ornl-0"), ("epb-0", "ornl-0"))


def test_ablation_handover_churn(benchmark, full_ephemeris):
    sites = list(all_ground_nodes())
    # 5-minute sampling keeps the per-sample best-relay loop cheap while
    # resolving multi-minute relay dwells.
    eph = full_ephemeris.at_time_indices(np.arange(0, 2880, 10))
    analysis = SpaceGroundAnalysis(eph, sites, paper_satellite_fso())

    def run():
        return {pair: handover_statistics(analysis, *pair) for pair in PAIRS}

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["pair", "handovers/day", "relays used", "mean dwell (min)", "service %"],
            [
                (
                    f"{a} <-> {b}",
                    s.n_handovers,
                    s.n_relays_used,
                    f"{s.mean_dwell_s / 60:.1f}",
                    f"{s.service_fraction:.1%}",
                )
                for (a, b), s in stats.items()
            ],
            title="ABLATION A12a: RELAY HANDOVER CHURN (108 satellites; HAP = 0 by construction)",
        )
    )

    for s in stats.values():
        # Tens of relay changes per day, minutes-scale dwells.
        assert s.n_handovers + s.n_acquisitions > 20
        assert s.n_relays_used > 10
        assert s.mean_dwell_s < 30 * 60.0


def test_ablation_waiting_times(benchmark, full_ephemeris):
    sites = list(all_ground_nodes())
    analysis = SpaceGroundAnalysis(full_ephemeris, sites, paper_satellite_fso())

    def run():
        mask = analysis.all_pairs_connected()
        return waiting_time_analysis(analysis.times_s, mask), mask

    result, mask = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("ABLATION A12b: STORE-AND-FORWARD WAITING TIMES (108 satellites)")
    print(f"  blocked arrivals:        {result.blocked_fraction:.1%} "
          "(matches 1 - coverage)")
    print(f"  mean wait (all):         {result.mean_wait_s / 60:.2f} min")
    print(f"  mean wait (if blocked):  {result.mean_wait_given_blocked_s / 60:.2f} min")
    print(f"  worst-case wait:         {result.worst_wait_s / 60:.1f} min")
    print("  (air-ground: all zeros — the HAP never blocks under ideal skies)")

    assert result.blocked_fraction == pytest.approx(1.0 - mask.mean(), abs=1e-9)
    # Minutes-scale waits: the unserved 44 % is many short outages, not
    # one long one.
    assert 30.0 < result.mean_wait_given_blocked_s < 600.0
    assert result.worst_wait_s < 3600.0



