"""Artifact store warm-vs-cold + shared-memory dispatch on the paper day.

Two gates on the 108-satellite, 2880-sample day workload:

* **Warm-vs-cold >= 5x.** A cold run propagates the constellation,
  derives all 31 sites' link-budget matrices, and persists everything
  into a fresh content-addressed store; a warm run (new store instance,
  same cache dir) must reproduce the identical artifacts from disk at
  least five times faster. Equivalence is asserted alongside the timing:
  the paper's Figs. 7-8 request workload served from the cached matrices
  must match the rebuilt ones relay-for-relay (served/path exact,
  eta/fidelity to 1e-12), so the speedup can never come from serving
  different physics.
* **Shared-memory bit-identity.** ``parallel_service_sweep`` with the
  ephemeris published to shared memory must return outcome-for-outcome
  identical results across 1, 2 and 4 workers, and identical to the
  serial path. The per-worker dispatch payload (pickled task bytes with
  and without the shm plane) is measured and recorded in the bench
  record.

Results land in ``BENCH_artifact_store.json`` (wall times, speedup,
payload bytes, git SHA) for PR-over-PR tracking.
"""

import math
import pickle
import time

import pytest

from repro.channels.presets import paper_satellite_fso
from repro.core.analysis import SpaceGroundAnalysis
from repro.core.evaluation import evaluation_time_indices
from repro.core.requests import generate_requests
from repro.data.ground_nodes import all_ground_nodes
from repro.engine.store import ArtifactStore
from repro.orbits.walker import qntn_constellation
from repro.parallel.shm import ShmArena, publish_ephemeris
from repro.parallel.sweep import parallel_service_sweep
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity
from repro.reporting.figures import FigureSeries

from reporting import write_bench_record

N_SATELLITES = 108
DURATION_S = 86400.0
STEP_S = 30.0
N_REQUESTS = 100
N_EVAL_STEPS = 12
SPEEDUP_FLOOR = 5.0
SHM_EVAL_STEPS = 8
SHM_REQUESTS = 25


def _build_day_workload(store: ArtifactStore):
    """Cold/warm unit of work: day ephemeris + all 31 site budget tables."""
    ephemeris = store.get_or_build_ephemeris(
        qntn_constellation(N_SATELLITES), duration_s=DURATION_S, step_s=STEP_S
    )
    table = store.get_or_build_budget_table(
        ephemeris, list(all_ground_nodes()), paper_satellite_fso()
    )
    table.compute_all()
    return ephemeris, table


def _serve_workload(table):
    """(relay index, eta) per request per evaluation step, from one table."""
    analysis = SpaceGroundAnalysis(
        table.ephemeris,
        table.sites,
        table.fso_model,
        policy=table.policy,
        budgets=table,
    )
    pairs = [
        r.endpoints
        for r in generate_requests(list(all_ground_nodes()), N_REQUESTS, 7)
    ]
    indices = evaluation_time_indices(table.ephemeris.n_samples, N_EVAL_STEPS)
    return [
        [analysis.best_relay(src, dst, int(t)) for src, dst in pairs]
        for t in indices
    ]


def test_store_warm_vs_cold(tmp_path, emit_series):
    """The acceptance gate: warm >= 5x cold, identical served physics."""
    cache_dir = tmp_path / "store"

    start = time.perf_counter()
    _, cold_table = _build_day_workload(ArtifactStore(cache_dir))
    t_cold = time.perf_counter() - start

    warm_store = ArtifactStore(cache_dir)
    start = time.perf_counter()
    _, warm_table = _build_day_workload(warm_store)
    t_warm = time.perf_counter() - start

    assert warm_store.stats.misses == 0 and warm_store.stats.rebuilds == 0, (
        "warm run was not fully served from the store"
    )

    # Equivalence: the paper workload served from rebuilt vs cached
    # matrices — relay choice and admission exact, eta/fidelity to 1e-12.
    rebuilt = _serve_workload(cold_table)
    cached = _serve_workload(warm_table)
    for step_rebuilt, step_cached in zip(rebuilt, cached):
        for hit_r, hit_c in zip(step_rebuilt, step_cached):
            assert (hit_r is None) == (hit_c is None)
            if hit_r is not None:
                assert hit_r[0] == hit_c[0]  # relay satellite: exact
                assert abs(hit_r[1] - hit_c[1]) <= 1e-12
                f_r = float(entanglement_fidelity_from_transmissivity(hit_r[1]))
                f_c = float(entanglement_fidelity_from_transmissivity(hit_c[1]))
                assert abs(f_r - f_c) <= 1e-12

    speedup = t_cold / t_warm
    emit_series(
        FigureSeries(
            name="bench_artifact_store",
            x_label="mode",  # 0 = cold, 1 = warm
            y_label="seconds",
            x=(0.0, 1.0),
            y=(t_cold, t_warm),
            meta={
                "workload": f"{N_SATELLITES} satellites x 1 day @ {STEP_S:.0f}s, "
                f"{len(all_ground_nodes())} sites",
                "speedup": f"{speedup:.1f}x",
                "floor": f"{SPEEDUP_FLOOR}x",
            },
        )
    )
    write_bench_record(
        "artifact_store",
        timings_s={"cold": t_cold, "warm": t_warm},
        workload={
            "n_satellites": N_SATELLITES,
            "duration_s": DURATION_S,
            "step_s": STEP_S,
            "n_sites": len(all_ground_nodes()),
            "n_requests": N_REQUESTS,
            "n_eval_steps": N_EVAL_STEPS,
        },
        speedup=speedup,
        speedup_floor=SPEEDUP_FLOOR,
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm run {speedup:.1f}x faster than cold, below the {SPEEDUP_FLOOR}x floor"
    )


@pytest.fixture(scope="module")
def shm_workload(full_ephemeris):
    pairs = [
        r.endpoints
        for r in generate_requests(list(all_ground_nodes()), SHM_REQUESTS, 7)
    ]
    indices = evaluation_time_indices(full_ephemeris.n_samples, SHM_EVAL_STEPS)
    return full_ephemeris, pairs, [int(i) for i in indices]


def _outcome_key(outcome):
    fidelity = outcome.fidelity
    return (
        outcome.source,
        outcome.destination,
        outcome.served,
        outcome.path,
        outcome.path_transmissivity,
        None if isinstance(fidelity, float) and math.isnan(fidelity) else fidelity,
    )


def _flatten(results):
    return [_outcome_key(o) for step in results for o in step]


def test_shm_sweep_bit_identical_across_workers(shm_workload):
    """The second gate: shm dispatch changes nothing but the transport."""
    ephemeris, pairs, indices = shm_workload
    baseline = _flatten(
        parallel_service_sweep(ephemeris, pairs, time_indices=indices, n_workers=0)
    )
    for n_workers in (1, 2, 4):
        over_shm = _flatten(
            parallel_service_sweep(
                ephemeris, pairs, time_indices=indices,
                n_workers=n_workers, use_shm=True,
            )
        )
        assert over_shm == baseline, (
            f"shared-memory sweep diverged at n_workers={n_workers}"
        )


def test_shm_dispatch_overhead(shm_workload):
    """Measure per-worker dispatch payload and wall time, pickle vs shm."""
    ephemeris, pairs, indices = shm_workload

    pickled_ephemeris = len(pickle.dumps(ephemeris))
    with ShmArena() as arena:
        handle = publish_ephemeris(arena, ephemeris)
        pickled_handle = len(pickle.dumps(handle))
    assert pickled_handle < pickled_ephemeris / 100, (
        "shm handle should be orders of magnitude smaller than the array pickle"
    )

    start = time.perf_counter()
    via_pickle = parallel_service_sweep(
        ephemeris, pairs, time_indices=indices, n_workers=4, use_shm=False
    )
    t_pickle = time.perf_counter() - start

    start = time.perf_counter()
    via_shm = parallel_service_sweep(
        ephemeris, pairs, time_indices=indices, n_workers=4, use_shm=True
    )
    t_shm = time.perf_counter() - start

    assert _flatten(via_shm) == _flatten(via_pickle)
    write_bench_record(
        "shm_dispatch",
        timings_s={"pool4_pickle": t_pickle, "pool4_shm": t_shm},
        workload={
            "n_satellites": N_SATELLITES,
            "n_requests": SHM_REQUESTS,
            "n_eval_steps": SHM_EVAL_STEPS,
            "n_workers": 4,
        },
        extra={
            "dispatch_bytes_pickle": pickled_ephemeris,
            "dispatch_bytes_shm_handle": pickled_handle,
            "payload_reduction": f"{pickled_ephemeris / pickled_handle:.0f}x",
        },
    )
