"""Ablation A6 — what each architecture means for QKD service.

The paper positions QNTN against QKD-only regional networks (its related
work: trusted-node fiber [14], Micius, EuroQCI). This bench quantifies
the comparison on secret-key rate between TTU and EPB (~127 km):

* direct fiber BB84 (no relays),
* a trusted-node fiber chain (the [14]-style baseline),
* BBM92 over the space-ground architecture (entanglement-based,
  no trusted relay),
* BBM92 over the air-ground architecture.
"""

import numpy as np

from repro.core.analysis import SpaceGroundAnalysis
from repro.core.evaluation import evaluation_time_indices
from repro.core.timing import EntanglementRateModel
from repro.channels.presets import paper_hap_fso, paper_satellite_fso
from repro.core.analysis import AirGroundAnalysis
from repro.constants import QNTN_HAP_ALTITUDE_KM, QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG
from repro.data.ground_nodes import all_ground_nodes
from repro.qkd.bbm92 import bbm92_key_rate_hz
from repro.qkd.trusted_node import TrustedNodeChain, fiber_bb84_key_rate_hz
from repro.reporting.tables import render_table

TTU_EPB_KM = 127.0


def test_ablation_qkd_architectures(benchmark, full_ephemeris):
    sites = list(all_ground_nodes())
    rate_model = EntanglementRateModel(source_rate_hz=1.0e7, detector_efficiency=0.9)

    def run():
        # Fiber baselines.
        direct = fiber_bb84_key_rate_hz(TTU_EPB_KM)
        chain = TrustedNodeChain(TTU_EPB_KM, 3).key_rate_hz()

        # Space-ground: average BBM92 rate over the day (zero when not
        # covered), using the best-relay path transmissivity.
        indices = evaluation_time_indices(full_ephemeris.n_samples, 100)
        analysis = SpaceGroundAnalysis(
            full_ephemeris.at_time_indices(indices), sites, paper_satellite_fso()
        )
        space_rates = []
        for t in range(100):
            hit = analysis.best_relay("ttu-0", "epb-0", t)
            if hit is None:
                space_rates.append(0.0)
            else:
                _, eta = hit
                space_rates.append(
                    bbm92_key_rate_hz(eta, float(np.asarray(rate_model.pair_rate_hz(eta))))
                )
        space = float(np.mean(space_rates))
        space_active = float(np.mean([r for r in space_rates if r > 0.0] or [0.0]))

        # Air-ground: static path.
        hap = AirGroundAnalysis(
            sites,
            paper_hap_fso(),
            hap_lat_deg=QNTN_HAP_LAT_DEG,
            hap_lon_deg=QNTN_HAP_LON_DEG,
            hap_alt_km=QNTN_HAP_ALTITUDE_KM,
        )
        eta_air = hap.transmissivity("ttu-0") * hap.transmissivity("epb-0")
        air = bbm92_key_rate_hz(
            eta_air, float(np.asarray(rate_model.pair_rate_hz(eta_air)))
        )
        return direct, chain, space, space_active, air

    direct, chain, space, space_active, air = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    print()
    print(
        render_table(
            ["system", "secret key rate (bit/s)", "trusted relays?", "entanglement?"],
            [
                ("direct fiber BB84 (127 km)", f"{direct:,.0f}", "no", "no"),
                ("trusted-node chain (3 relays)", f"{chain:,.0f}", "YES (3)", "no"),
                ("space-ground BBM92 (day avg)", f"{space:,.0f}", "no", "yes"),
                ("space-ground BBM92 (when covered)", f"{space_active:,.0f}", "no", "yes"),
                ("air-ground BBM92", f"{air:,.0f}", "no", "yes"),
            ],
            title="ABLATION A6: QKD SERVICE, TTU <-> EPB",
        )
    )

    # Trusted nodes beat direct fiber (their raison d'etre)...
    assert chain > direct
    # ...but the entanglement-capable architectures deliver key without
    # trusting any relay, and the HAP beats the duty-limited constellation.
    assert air > space > 0.0
    # Space-ground key flows only during coverage; conditional rate is
    # meaningfully higher than the day average.
    assert space_active > space
