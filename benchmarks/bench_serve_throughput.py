"""Streaming service throughput on the 108-satellite day.

Replays a dense grid-aligned Poisson request stream through the asyncio
:class:`~repro.serve.server.ServeServer` over the ``cached`` engine and
gates sustained completion throughput at 600k simulated requests per
wall-clock minute; the NumPy path itself clears 1M on this workload
(flat-graph routing memoized per time index, one grid bisection per
request, scalar fidelity fast paths). The engine is built over a one-hour contiguous
window of the paper's 108-satellite day (the same
``at_time_indices``-shard pattern the link-state bench uses), so the
stream revisits each grid sample many times and the memoized routing
trees — not link-budget recomputation — carry the load, which is the
steady-state shape of a long-running service.

Denial attribution is off: the flight-recorder cascade re-evaluates
candidate uplinks per denial (milliseconds each), which is diagnostic
machinery, not the serving hot path. Engine/cache build time is
measured separately and excluded from the throughput window.
"""

import asyncio
import time

import pytest

from repro.data.ground_nodes import all_ground_nodes
from repro.network.workload import (
    align_to_grid,
    lans_from_sites,
    poisson_request_stream,
)
from repro.serve import ServeServer, ServerConfig, build_engine

from reporting import write_bench_record

N_WINDOW_SAMPLES = 120  # one hour of the 30 s day grid
RATE_HZ = 6.0
SEED = 7
THROUGHPUT_FLOOR_PER_MIN = 600_000.0


@pytest.fixture(scope="module")
def day_window(full_ephemeris):
    return full_ephemeris.at_time_indices(range(N_WINDOW_SAMPLES))


@pytest.fixture(scope="module")
def stream(day_window):
    duration_s = float(day_window.times_s[-1])
    requests = poisson_request_stream(
        lans_from_sites(all_ground_nodes()),
        rate_hz=RATE_HZ,
        duration_s=duration_s,
        seed=SEED,
    )
    return align_to_grid(requests, day_window.times_s)


def test_serve_throughput_gate(day_window, stream):
    t0 = time.perf_counter()
    engine = build_engine("cached", day_window, attribute_denials=False)
    engine.advance_to(0.0)  # force the lazy link-state build out of the loop
    engine.submit(stream[0])
    t_build = time.perf_counter() - t0

    server = ServeServer(engine, config=ServerConfig(queue_depth=4096))
    report = asyncio.run(server.run(stream))
    assert report.accounting_ok
    assert report.n_shed == 0 and report.n_cancelled == 0
    assert len(report.outcomes) == len(stream)
    assert report.n_served > 0

    t1 = time.perf_counter()
    batched = engine.serve_batch(stream)
    t_batch = time.perf_counter() - t1
    assert len(batched) == len(stream)

    write_bench_record(
        "serve_throughput",
        timings_s={
            "build": t_build,
            "stream": report.wall_s,
            "batch": t_batch,
        },
        workload={
            "n_satellites": 108,
            "window_samples": N_WINDOW_SAMPLES,
            "rate_hz": RATE_HZ,
            "seed": SEED,
            "n_requests": len(stream),
            "engine": "cached",
            "attribute_denials": False,
            "kernel_backend": engine.kernel_backend,
        },
        speedup=report.requests_per_min / THROUGHPUT_FLOOR_PER_MIN,
        speedup_floor=1.0,
        extra={
            "requests_per_min": report.requests_per_min,
            "throughput_floor_per_min": THROUGHPUT_FLOOR_PER_MIN,
            "served_fraction": report.served_fraction,
            "latency_p50_s": report.latency_p50_s,
            "latency_p99_s": report.latency_p99_s,
            "max_queue_depth": report.max_queue_depth,
        },
    )
    assert report.requests_per_min >= THROUGHPUT_FLOOR_PER_MIN, (
        f"streaming throughput {report.requests_per_min:,.0f} req/min "
        f"below the {THROUGHPUT_FLOOR_PER_MIN:,.0f} floor"
    )
