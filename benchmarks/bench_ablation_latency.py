"""Ablation A7 — latency and throughput of the two architectures.

Quantifies the paper's Section II-D latency discussion: satellite relays
pay ~10x the HAP's handshake latency, and buffering one half of each pair
through that handshake costs fidelity unless memories are good.
"""

import math

import numpy as np

from repro.core.timing import EntanglementRateModel, link_latency_s, path_timing
from repro.quantum.memory import QuantumMemory
from repro.reporting.tables import render_table

#: Representative path geometries (slant ranges to the two cities).
SAT_LEGS_KM = (700.0, 900.0)
HAP_LEGS_KM = (76.0, 80.0)


def test_ablation_latency_and_throughput(benchmark):
    rate_model = EntanglementRateModel(source_rate_hz=1.0e7, detector_efficiency=0.9)
    memory = QuantumMemory(t1_s=1.0, t2_s=1.0)

    def run():
        rows = []
        for name, legs, eta_path in (
            ("space-ground", SAT_LEGS_KM, 0.71),
            ("air-ground", HAP_LEGS_KM, 0.93),
        ):
            timing = path_timing(legs)
            pair_rate = float(np.asarray(rate_model.pair_rate_hz(eta_path)))
            first = rate_model.time_to_first_pair_s(eta_path, timing)
            f_fresh = memory.fidelity_after_storage(eta_path, 0.0)
            f_stored = memory.fidelity_after_storage(eta_path, timing.handshake_s)
            rows.append((name, timing.handshake_s, pair_rate, first, f_fresh, f_stored))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        render_table(
            [
                "architecture",
                "handshake (ms)",
                "pair rate (1/s)",
                "first pair (ms)",
                "F fresh",
                "F after handshake (T1=1s)",
            ],
            [
                (
                    name,
                    f"{hs * 1e3:.2f}",
                    f"{rate:,.0f}",
                    f"{first * 1e3:.3f}",
                    f"{ff:.4f}",
                    f"{fs:.4f}",
                )
                for name, hs, rate, first, ff, fs in rows
            ],
            title="ABLATION A7: LATENCY AND THROUGHPUT (Section II-D quantified)",
        )
    )

    (sat_name, sat_hs, sat_rate, _, _, sat_f_stored), (
        hap_name,
        hap_hs,
        hap_rate,
        _,
        _,
        hap_f_stored,
    ) = rows
    # Satellites pay ~10x the handshake latency of the HAP.
    assert sat_hs / hap_hs > 5.0
    # The HAP path also wins on raw pair rate (higher eta).
    assert hap_rate > sat_rate
    # With a good memory the handshake costs both < 1 % fidelity.
    assert sat_f_stored > 0.9 - 0.01
    assert hap_f_stored > 0.96


def test_latency_kernel(benchmark):
    """Micro-kernel: vectorizable latency arithmetic."""
    distances = np.random.default_rng(1).uniform(100.0, 1500.0, 10000)

    def run():
        return [link_latency_s(float(d)) for d in distances[:1000]]

    out = benchmark(run)
    assert len(out) == 1000
    assert all(t > 0 for t in out)
