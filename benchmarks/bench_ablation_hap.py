"""Ablation A3 — HAP altitude, aperture, and weather sensitivity.

The paper flags HAP altitude/aperture choices (Section IV) and weather
susceptibility (Section V) as open issues. This bench sweeps HAP altitude
and weather conditions and reports delivered fidelity.
"""

import math

import numpy as np

from repro.channels.atmosphere import WeatherCondition, WeatherModel
from repro.channels.fso import FSOChannelModel
from repro.channels.presets import paper_atmosphere, paper_hap_fso
from repro.core.architecture import AirGroundArchitecture
from repro.reporting.figures import FigureSeries
from repro.reporting.tables import render_table

ALTITUDES_KM = (15.0, 20.0, 25.0, 30.0, 35.0, 40.0)


def test_ablation_hap_altitude(benchmark, emit_series):
    def sweep():
        out = []
        for alt in ALTITUDES_KM:
            arch = AirGroundArchitecture(hap_alt_km=alt, duration_s=3600.0, step_s=600.0)
            result = arch.evaluate(n_requests=30, n_time_steps=3, seed=7)
            out.append((result.served_percentage, result.mean_fidelity))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    served = [r[0] for r in results]
    fidelity = [r[1] for r in results]

    print()
    print(
        render_table(
            ["altitude km", "served %", "mean fidelity"],
            [
                (f"{a:.0f}", f"{s:.1f}", f"{f:.4f}" if not math.isnan(f) else "-")
                for a, s, f in zip(ALTITUDES_KM, served, fidelity)
            ],
            title="ABLATION A3a: HAP ALTITUDE",
        )
    )
    emit_series(
        FigureSeries(
            "ablation_hap_altitude",
            "altitude_km",
            "mean_fidelity",
            tuple(ALTITUDES_KM),
            tuple(fidelity),
        )
    )

    # The paper's 30 km operating point serves everything at high fidelity.
    idx_30 = ALTITUDES_KM.index(30.0)
    assert served[idx_30] == 100.0
    assert fidelity[idx_30] > 0.97


def test_ablation_hap_weather(benchmark):
    """Weather conditions versus HAP link transmissivity (Section V)."""
    base = paper_hap_fso()
    weather = WeatherModel()
    slant = math.hypot(72.0, 30.0)
    elev = math.atan2(30.0, 72.0)

    def sweep():
        rows = []
        for condition in WeatherCondition:
            atm = weather.perturbed_atmosphere(paper_atmosphere(), condition)
            model = FSOChannelModel(
                wavelength_m=base.wavelength_m,
                beam_waist_m=base.beam_waist_m,
                rx_aperture_radius_m=base.rx_aperture_radius_m,
                receiver_efficiency=base.receiver_efficiency,
                atmosphere=atm,
                turbulence=True,
                uplink=False,
                cn2_scale=weather.cn2_multiplier(condition),
            )
            eta = float(np.asarray(model.transmissivity(slant, elev, 30.0)))
            rows.append((condition.value, eta))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["condition", "link eta"],
            [(c, f"{eta:.4f}") for c, eta in rows],
            title="ABLATION A3b: HAP LINK UNDER WEATHER",
        )
    )
    etas = dict(rows)
    # Clear weather sustains the paper's operating point; fog kills it.
    assert etas["clear"] > 0.9
    assert etas["fog"] < 0.1
    assert etas["clear"] > etas["haze"] > etas["heavy_rain"] > etas["fog"]
