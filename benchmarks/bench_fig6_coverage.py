"""Fig. 6 — coverage percentage vs number of satellites (6..108).

Paper result: coverage grows roughly linearly with constellation size and
reaches 55.17 % of the day at 108 satellites.
"""

import numpy as np

from repro.core.analysis import SpaceGroundAnalysis
from repro.channels.presets import paper_satellite_fso
from repro.data.ground_nodes import all_ground_nodes
from repro.reporting.figures import FigureSeries


def test_fig6_coverage_sweep(benchmark, paper_sweep, full_ephemeris, emit_series):
    # Time the sweep's core kernel: the cumulative coverage masks over the
    # full ephemeris (the rest of the sweep is bookkeeping).
    def coverage_kernel():
        analysis = SpaceGroundAnalysis(
            full_ephemeris, list(all_ground_nodes()), paper_satellite_fso()
        )
        return analysis.cumulative_all_pairs_connected()

    cumulative = benchmark.pedantic(coverage_kernel, rounds=1, iterations=1)
    assert cumulative.shape == (108, 2880)

    sizes = paper_sweep.sizes
    coverage = paper_sweep.coverage_percentages
    emit_series(
        FigureSeries(
            "fig6_coverage_vs_satellites",
            "n_satellites",
            "coverage_pct",
            tuple(float(s) for s in sizes),
            tuple(coverage),
            meta={
                "paper_value_at_108": "55.17 %",
                "measured_at_108": f"{coverage[-1]:.2f} %",
            },
        )
    )

    # Shape assertions: monotone growth, partial coverage even at 108,
    # final value in the paper's neighbourhood.
    assert coverage == sorted(coverage)
    assert coverage[0] < 10.0
    assert 45.0 < coverage[-1] < 65.0
