"""Fig. 7 — served entanglement requests vs number of satellites.

Paper result: 100 random inter-LAN requests over 100 time steps; 108
satellites serve 57.75 % of requests.
"""

from repro.core.evaluation import evaluation_time_indices
from repro.core.analysis import SpaceGroundAnalysis
from repro.core.requests import generate_requests
from repro.channels.presets import paper_satellite_fso
from repro.data.ground_nodes import all_ground_nodes
from repro.reporting.figures import FigureSeries


def test_fig7_served_requests(benchmark, paper_sweep, full_ephemeris, emit_series):
    # Time one full 108-satellite service pass (100 requests x 100 steps).
    sites = list(all_ground_nodes())
    indices = evaluation_time_indices(full_ephemeris.n_samples, 100)
    service_eph = full_ephemeris.at_time_indices(indices)
    analysis = SpaceGroundAnalysis(service_eph, sites, paper_satellite_fso())
    pairs = [r.endpoints for r in generate_requests(sites, 100, seed=7)]

    def service_kernel():
        return [analysis.serve(pairs, t) for t in range(service_eph.n_samples)]

    outcomes = benchmark.pedantic(service_kernel, rounds=1, iterations=1)
    assert len(outcomes) == 100

    sizes = paper_sweep.sizes
    served = paper_sweep.served_percentages
    emit_series(
        FigureSeries(
            "fig7_served_requests_vs_satellites",
            "n_satellites",
            "served_pct",
            tuple(float(s) for s in sizes),
            tuple(served),
            meta={
                "paper_value_at_108": "57.75 %",
                "measured_at_108": f"{served[-1]:.2f} %",
                "workload": "100 random inter-LAN requests x 100 time steps",
            },
        )
    )

    # Shape assertions: grows with constellation size, tracks coverage,
    # lands near the paper's 57.75 %.
    assert served[-1] > served[0]
    assert 45.0 < served[-1] < 70.0
    coverage = paper_sweep.coverage_percentages
    assert abs(served[-1] - coverage[-1]) < 15.0
