"""Disabled-mode telemetry overhead gate on the linkstate bench workload.

The ``repro.obs`` instruments live permanently on the request-serving hot
paths, so their disabled-mode cost (one attribute load + one flag branch
per call site) must stay negligible. An uninstrumented build does not
exist to diff against, so the gate combines two measurements that do:

* the wall time of the cached 108-satellite day-shard serve (the same
  100-requests x 12-steps workload ``bench_linkstate_cache`` times) with
  telemetry disabled, and
* a microbenchmark of the disabled no-op cost per instrument call,
  multiplied by the exact number of instrumented calls the workload
  makes (read back from an enabled run's registry snapshot).

Their ratio — estimated seconds spent in disabled instruments over the
measured workload — is gated at ``OVERHEAD_CEILING_PCT``. The record
lands in ``BENCH_obs_overhead.json`` with the enabled-mode wall time
alongside for context.
"""

import time

import pytest

from repro import obs
from repro.channels.presets import paper_satellite_fso
from repro.core.evaluation import evaluation_time_indices
from repro.core.requests import generate_requests
from repro.data.ground_nodes import all_ground_nodes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import attach_satellites, build_qntn_ground_network

from reporting import write_bench_record

N_REQUESTS = 100
N_EVAL_STEPS = 12
N_MICRO_CALLS = 1_000_000
OVERHEAD_CEILING_PCT = 3.0


@pytest.fixture(scope="module")
def day_shard_network(full_ephemeris):
    """The QNTN network on the evaluation-step shard of the 108-sat day."""
    indices = evaluation_time_indices(full_ephemeris.n_samples, N_EVAL_STEPS)
    shard = full_ephemeris.at_time_indices(indices)
    network = build_qntn_ground_network()
    attach_satellites(network, shard, paper_satellite_fso())
    return network, shard


@pytest.fixture(scope="module")
def workload():
    return [r.endpoints for r in generate_requests(list(all_ground_nodes()), N_REQUESTS, 7)]


def serve_day(network, shard, workload):
    simulator = NetworkSimulator(network, use_cache=True)
    return [simulator.serve_requests(workload, float(t)) for t in shard.times_s]


def _disabled_noop_costs() -> tuple[float, float]:
    """Seconds per disabled ``Counter.inc`` and ``Histogram.observe``."""
    assert not obs.enabled()
    c = obs.counter("bench.obs.noop.counter")
    h = obs.histogram("bench.obs.noop.histogram")
    start = time.perf_counter()
    for _ in range(N_MICRO_CALLS):
        c.inc()
    per_inc = (time.perf_counter() - start) / N_MICRO_CALLS
    start = time.perf_counter()
    for _ in range(N_MICRO_CALLS):
        h.observe(0.9)
    per_observe = (time.perf_counter() - start) / N_MICRO_CALLS
    return per_inc, per_observe


def test_disabled_overhead_within_ceiling(day_shard_network, workload):
    network, shard = day_shard_network
    obs.disable()
    obs.reset()

    # Disabled-mode workload time (best of two rounds; the first also
    # warms whatever lazy state the simulator builds).
    t_off = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        serve_day(network, shard, workload)
        t_off = min(t_off, time.perf_counter() - start)

    # Enabled run: wall time for context, and the registry snapshot for
    # the exact instrumented-call volume of this workload.
    obs.reset()
    obs.enable()
    start = time.perf_counter()
    serve_day(network, shard, workload)
    t_on = time.perf_counter() - start
    snapshot = obs.registry().snapshot()
    obs.disable()
    obs.reset()

    n_inc = sum(
        m["value"] for m in snapshot.values() if m["type"] == "counter"
    )
    n_observe = sum(
        m["count"] for m in snapshot.values() if m["type"] == "histogram"
    )
    assert n_inc + n_observe > 0, "workload exercised no instruments"

    per_inc, per_observe = _disabled_noop_costs()
    est_overhead_s = n_inc * per_inc + n_observe * per_observe
    overhead_pct = 100.0 * est_overhead_s / t_off

    write_bench_record(
        "obs_overhead",
        timings_s={
            "workload_disabled": t_off,
            "workload_enabled": t_on,
            "estimated_disabled_overhead": est_overhead_s,
        },
        workload={
            "n_requests": N_REQUESTS,
            "n_eval_steps": N_EVAL_STEPS,
            "n_satellites": 108,
            "n_micro_calls": N_MICRO_CALLS,
        },
        extra={
            "overhead_pct": overhead_pct,
            "ceiling_pct": OVERHEAD_CEILING_PCT,
            "instrumented_inc_calls": n_inc,
            "instrumented_observe_calls": n_observe,
            "per_inc_ns": per_inc * 1e9,
            "per_observe_ns": per_observe * 1e9,
        },
    )
    print(
        f"\ndisabled-mode overhead: {overhead_pct:.3f} % of {t_off:.3f} s "
        f"({n_inc:.0f} inc + {n_observe:.0f} observe calls, "
        f"{per_inc * 1e9:.0f}/{per_observe * 1e9:.0f} ns each)"
    )
    assert overhead_pct <= OVERHEAD_CEILING_PCT, (
        f"estimated disabled-mode overhead {overhead_pct:.2f} % exceeds "
        f"{OVERHEAD_CEILING_PCT} % ceiling"
    )
