"""Disabled-mode telemetry overhead gate on the linkstate bench workload.

The ``repro.obs`` instruments live permanently on the request-serving hot
paths, so their disabled-mode cost (one attribute load + one flag branch
per call site) must stay negligible. An uninstrumented build does not
exist to diff against, so the gate combines two measurements that do:

* the wall time of the cached 108-satellite day-shard serve (the same
  100-requests x 12-steps workload ``bench_linkstate_cache`` times) with
  telemetry disabled, and
* a microbenchmark of the disabled no-op cost per instrument call,
  multiplied by the exact number of instrumented calls the workload
  makes (read back from an enabled run's registry snapshot).

Their ratio — estimated seconds spent in disabled instruments over the
measured workload — is gated at ``OVERHEAD_CEILING_PCT``. The record
lands in ``BENCH_obs_overhead.json`` with the enabled-mode wall time
alongside for context.
"""

import time

import pytest

from repro import obs
from repro.channels.presets import paper_satellite_fso
from repro.core.evaluation import evaluation_time_indices
from repro.core.requests import generate_requests
from repro.data.ground_nodes import all_ground_nodes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import attach_satellites, build_qntn_ground_network

from reporting import RESULTS_DIR, write_bench_record

N_REQUESTS = 100
N_EVAL_STEPS = 12
N_MICRO_CALLS = 1_000_000
OVERHEAD_CEILING_PCT = 3.0


@pytest.fixture(scope="module")
def day_shard_network(full_ephemeris):
    """The QNTN network on the evaluation-step shard of the 108-sat day."""
    indices = evaluation_time_indices(full_ephemeris.n_samples, N_EVAL_STEPS)
    shard = full_ephemeris.at_time_indices(indices)
    network = build_qntn_ground_network()
    attach_satellites(network, shard, paper_satellite_fso())
    return network, shard


@pytest.fixture(scope="module")
def workload():
    return [r.endpoints for r in generate_requests(list(all_ground_nodes()), N_REQUESTS, 7)]


def serve_day(network, shard, workload):
    simulator = NetworkSimulator(network, use_cache=True)
    return [simulator.serve_requests(workload, float(t)) for t in shard.times_s]


def _disabled_noop_costs() -> tuple[float, float]:
    """Seconds per disabled ``Counter.inc`` and ``Histogram.observe``."""
    assert not obs.enabled()
    c = obs.counter("bench.obs.noop.counter")
    h = obs.histogram("bench.obs.noop.histogram")
    start = time.perf_counter()
    for _ in range(N_MICRO_CALLS):
        c.inc()
    per_inc = (time.perf_counter() - start) / N_MICRO_CALLS
    start = time.perf_counter()
    for _ in range(N_MICRO_CALLS):
        h.observe(0.9)
    per_observe = (time.perf_counter() - start) / N_MICRO_CALLS
    return per_inc, per_observe


def test_disabled_overhead_within_ceiling(day_shard_network, workload):
    network, shard = day_shard_network
    obs.disable()
    obs.reset()

    # Disabled-mode workload time (best of two rounds; the first also
    # warms whatever lazy state the simulator builds).
    t_off = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        serve_day(network, shard, workload)
        t_off = min(t_off, time.perf_counter() - start)

    # Enabled run: wall time for context, and the registry snapshot for
    # the exact instrumented-call volume of this workload.
    obs.reset()
    obs.enable()
    start = time.perf_counter()
    serve_day(network, shard, workload)
    t_on = time.perf_counter() - start
    snapshot = obs.registry().snapshot()
    obs.disable()
    obs.reset()

    n_inc = sum(
        m["value"] for m in snapshot.values() if m["type"] == "counter"
    )
    n_observe = sum(
        m["count"] for m in snapshot.values() if m["type"] == "histogram"
    )
    assert n_inc + n_observe > 0, "workload exercised no instruments"

    per_inc, per_observe = _disabled_noop_costs()
    est_overhead_s = n_inc * per_inc + n_observe * per_observe
    overhead_pct = 100.0 * est_overhead_s / t_off

    write_bench_record(
        "obs_overhead",
        timings_s={
            "workload_disabled": t_off,
            "workload_enabled": t_on,
            "estimated_disabled_overhead": est_overhead_s,
        },
        workload={
            "n_requests": N_REQUESTS,
            "n_eval_steps": N_EVAL_STEPS,
            "n_satellites": 108,
            "n_micro_calls": N_MICRO_CALLS,
        },
        extra={
            "overhead_pct": overhead_pct,
            "ceiling_pct": OVERHEAD_CEILING_PCT,
            "instrumented_inc_calls": n_inc,
            "instrumented_observe_calls": n_observe,
            "per_inc_ns": per_inc * 1e9,
            "per_observe_ns": per_observe * 1e9,
        },
    )
    print(
        f"\ndisabled-mode overhead: {overhead_pct:.3f} % of {t_off:.3f} s "
        f"({n_inc:.0f} inc + {n_observe:.0f} observe calls, "
        f"{per_inc * 1e9:.0f}/{per_observe * 1e9:.0f} ns each)"
    )
    assert overhead_pct <= OVERHEAD_CEILING_PCT, (
        f"estimated disabled-mode overhead {overhead_pct:.2f} % exceeds "
        f"{OVERHEAD_CEILING_PCT} % ceiling"
    )


# ---------------------------------------------------------------------------
# Live-mode streaming overhead: the windowed serve.live.* instruments sit on
# the submit/outcome hot path of the streaming service. Live mode here is
# exactly what `repro serve --http-port` runs without --telemetry: the
# windowed plane force-enabled (registry — spans, cumulative engine metrics —
# still off) with the HTTP observability endpoints attached and scraped
# mid-run.
#
# The gate uses the same methodology as the disabled-mode test above:
# microbenchmark the per-op cost of a forced windowed write, multiply by the
# exact number of writes the workload performs (read back from the
# instruments' cumulative fields after a live run), giving the live plane's
# per-request cost. That cost is gated at 5 % of the per-request budget the
# serve-throughput bench guarantees (60 s / 600k requests per minute — PR 7's
# gated baseline), which keeps the gate deterministic: both sides of the
# ratio are per-op numbers, not wall clocks. The measured off-vs-live wall
# times are recorded alongside for context but not gated — on shared
# machines the run-to-run wall variance of a sub-second asyncio workload
# exceeds the few-percent signal being measured.

import asyncio
import json

from repro.network.workload import (
    align_to_grid,
    lans_from_sites,
    poisson_request_stream,
)
from repro.obs import live
from repro.serve import ObservabilityServer, ServeServer, ServerConfig, build_engine

from bench_serve_throughput import THROUGHPUT_FLOOR_PER_MIN

LIVE_OVERHEAD_CEILING_PCT = 5.0
#: The serving budget the throughput gate guarantees per request [s].
REQUEST_BUDGET_S = 60.0 / THROUGHPUT_FLOOR_PER_MIN
LIVE_N_ROUNDS = 3
LIVE_WINDOW_SAMPLES = 120  # one hour of the 30 s day grid
LIVE_RATE_HZ = 2.0
LIVE_SEED = 11


@pytest.fixture(scope="module")
def serve_window(full_ephemeris):
    return full_ephemeris.at_time_indices(range(LIVE_WINDOW_SAMPLES))


@pytest.fixture(scope="module")
def serve_stream(serve_window):
    requests = poisson_request_stream(
        lans_from_sites(all_ground_nodes()),
        rate_hz=LIVE_RATE_HZ,
        duration_s=float(serve_window.times_s[-1]),
        seed=LIVE_SEED,
    )
    return align_to_grid(requests, serve_window.times_s)


def _run_stream(engine, stream):
    server = ServeServer(engine, config=ServerConfig(queue_depth=4096))
    report = asyncio.run(server.run(stream))
    assert report.accounting_ok
    assert len(report.outcomes) == len(stream)
    return report


async def _scrape(port: int, path: str) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n".encode())
    await writer.drain()
    payload = await reader.read()
    writer.close()
    await writer.wait_closed()
    return payload


def _run_stream_observed(engine, stream):
    """One serve run with the endpoints attached and scraped mid-run."""

    async def _go():
        server = ServeServer(engine, config=ServerConfig(queue_depth=4096))
        http = await ObservabilityServer(server).start()
        try:
            run_task = asyncio.create_task(server.run(stream))
            await asyncio.sleep(0.05)
            scraped = await _scrape(http.port, "/metrics")
            report = await run_task
        finally:
            await http.close()
        return report, scraped

    report, scraped = asyncio.run(_go())
    assert report.accounting_ok
    assert b"repro_serve_live_submitted" in scraped
    return report


def _forced_write_costs() -> tuple[float, float, float]:
    """Seconds per forced windowed inc / gauge set / histogram observe."""
    assert live.forced() and not obs.enabled()
    c = live.windowed_counter("bench.live.noop.counter", 60.0)
    g = live.windowed_gauge("bench.live.noop.gauge", 60.0)
    h = live.windowed_histogram("bench.live.noop.histogram", 60.0)
    n = 200_000
    start = time.perf_counter()
    for _ in range(n):
        c.inc()
    per_inc = (time.perf_counter() - start) / n
    start = time.perf_counter()
    for _ in range(n):
        g.set(0.5)
    per_set = (time.perf_counter() - start) / n
    start = time.perf_counter()
    for _ in range(n):
        h.observe(0.001)
    per_observe = (time.perf_counter() - start) / n
    return per_inc, per_set, per_observe


def test_live_mode_streaming_overhead(serve_window, serve_stream):
    engine = build_engine("cached", serve_window, attribute_denials=False)
    engine.advance_to(0.0)
    _run_stream(engine, serve_stream)  # warm the memoized routing state

    t_off = t_live = float("inf")
    snapshot = {}
    obs.disable()
    for _ in range(LIVE_N_ROUNDS):
        obs.reset()  # also clears the force flag
        t_off = min(t_off, _run_stream(engine, serve_stream).wall_s)

        obs.reset()
        live.force(True)
        t_live = min(t_live, _run_stream_observed(engine, serve_stream).wall_s)
        snapshot = obs.registry().snapshot()

    per_inc, per_set, per_observe = _forced_write_costs()
    obs.reset()

    # Exact live-write volume of one run, from the cumulative fields the
    # sliding windows never expire (the last round left them populated).
    live_series = {k: v for k, v in snapshot.items() if k.startswith("serve.live.")}
    assert live_series["serve.live.submitted"]["cumulative"] == len(serve_stream)
    n_inc = sum(
        m["cumulative"]
        for m in live_series.values()
        if m["type"] == "windowed_counter"
    )
    n_set = sum(
        m["cumulative_n"]
        for m in live_series.values()
        if m["type"] == "windowed_gauge"
    )
    n_observe = sum(
        m["cumulative_count"]
        for m in live_series.values()
        if m["type"] == "windowed_histogram"
    )
    assert n_observe > 0

    est_overhead_s = n_inc * per_inc + n_set * per_set + n_observe * per_observe
    per_request_s = est_overhead_s / len(serve_stream)
    overhead_pct = 100.0 * per_request_s / REQUEST_BUDGET_S
    # Fold the live-mode section into the obs_overhead record rather than
    # opening a second trajectory file: the disabled-mode test writes the
    # base record earlier in the run (or a prior run left one on disk),
    # and re-writing under the same name same-SHA-replaces the trajectory
    # entry, so BENCH_obs_overhead.json carries both gates per SHA.
    base_path = RESULTS_DIR / "BENCH_obs_overhead.json"
    try:
        base = json.loads(base_path.read_text())
    except (OSError, json.JSONDecodeError):
        base = {}
    timings = dict(base.get("timings_s", {}))
    timings.update(
        {
            "live_stream_disabled": t_off,
            "live_stream_live": t_live,
            "estimated_live_overhead": est_overhead_s,
        }
    )
    workload = dict(base.get("workload", {}))
    workload["live"] = {
        "n_satellites": 108,
        "window_samples": LIVE_WINDOW_SAMPLES,
        "rate_hz": LIVE_RATE_HZ,
        "seed": LIVE_SEED,
        "n_requests": len(serve_stream),
        "n_rounds": LIVE_N_ROUNDS,
        "engine": "cached",
    }
    extra = dict(base.get("extra", {}))
    extra["live"] = {
        "overhead_pct": overhead_pct,
        "ceiling_pct": LIVE_OVERHEAD_CEILING_PCT,
        "request_budget_us": REQUEST_BUDGET_S * 1e6,
        "live_cost_per_request_us": per_request_s * 1e6,
        "n_live_series": len(live_series),
        "live_inc_calls": n_inc,
        "live_set_calls": n_set,
        "live_observe_calls": n_observe,
        "per_inc_ns": per_inc * 1e9,
        "per_set_ns": per_set * 1e9,
        "per_observe_ns": per_observe * 1e9,
        "measured_wall_delta_pct": 100.0 * (t_live - t_off) / t_off,
    }
    write_bench_record(
        "obs_overhead", timings_s=timings, workload=workload, extra=extra
    )
    print(
        f"\nlive-mode overhead: {per_request_s * 1e6:.2f} us/request = "
        f"{overhead_pct:.2f} % of the {REQUEST_BUDGET_S * 1e6:.0f} us budget "
        f"({n_inc:.0f} inc + {n_set:.0f} set + {n_observe:.0f} observe calls, "
        f"{per_inc * 1e9:.0f}/{per_set * 1e9:.0f}/{per_observe * 1e9:.0f} ns each; "
        f"wall off {t_off:.3f} s vs live {t_live:.3f} s)"
    )
    assert overhead_pct <= LIVE_OVERHEAD_CEILING_PCT, (
        f"live-mode overhead {per_request_s * 1e6:.2f} us/request is "
        f"{overhead_pct:.2f} % of the {REQUEST_BUDGET_S * 1e6:.0f} us "
        f"per-request serving budget — exceeds {LIVE_OVERHEAD_CEILING_PCT} %"
    )
    # And end to end: live-mode throughput must hold 95 % of the floor
    # the plain serve-throughput bench guarantees.
    live_per_min = 60.0 * len(serve_stream) / t_live
    assert live_per_min >= 0.95 * THROUGHPUT_FLOOR_PER_MIN, (
        f"live-mode throughput {live_per_min:,.0f} req/min fell below 95 % "
        f"of the {THROUGHPUT_FLOOR_PER_MIN:,.0f} req/min floor"
    )


# ---------------------------------------------------------------------------
# Timeline-events overhead: the repro.obs.events recorder hooks every
# obs.span() call site. Two modes are gated with the same per-op model as
# the sections above:
#
# * timeline off (the default for every run): the hook adds one module
#   attribute load + one None check per span. Gated against the span
#   volume of a served request (root + queue + serve) at the disabled
#   ceiling — the hot path must stay unchanged within noise.
# * timeline recording at full sample rate (`--timeline`, a diagnostic
#   mode): each request writes its root, queue, and serve events as JSONL.
#   Gated as a fraction of the per-request budget the 600k req/min
#   throughput floor guarantees. Full-rate recording is opt-in, so the
#   ceiling is the budget's half, not the few-percent live ceiling; the
#   sampled path (suppressed traces) is measured alongside and must stay
#   near the disabled cost.

from repro.obs import events as events_mod

#: Trace-anchored events per served request: root + queue + serve.
EVENTS_PER_REQUEST = 3
EVENTS_DISABLED_CEILING_PCT = 3.0
EVENTS_RECORDING_CEILING_PCT = 50.0


def _disabled_span_cost() -> float:
    """Seconds per ``obs.span`` enter/exit with every plane off."""
    assert not obs.enabled() and events_mod.active() is None
    n = 200_000
    start = time.perf_counter()
    for _ in range(n):
        with obs.span("bench-noop"):
            pass
    return (time.perf_counter() - start) / n


def _recorded_trace_cost(rec) -> float:
    """Seconds per request-shaped trace (root + queue child + serve span)."""
    n = 20_000
    t_us = events_mod.now_us()
    start = time.perf_counter()
    for i in range(n):
        handle = rec.trace_begin(f"req-{i}", "request")
        handle.child_complete("queue", begin_us=t_us)
        with handle.scope():
            with obs.span("serve"):
                pass
        handle.end()
    return (time.perf_counter() - start) / n


def test_timeline_events_overhead(tmp_path):
    obs.disable()
    obs.reset()
    assert events_mod.active() is None

    per_span_off = _disabled_span_cost()
    disabled_request_s = EVENTS_PER_REQUEST * per_span_off
    disabled_pct = 100.0 * disabled_request_s / REQUEST_BUDGET_S

    # Full-rate recording to a real file — the cost that matters is the
    # JSONL serialization + write per event.
    rec = events_mod.start(tmp_path / "bench-events.jsonl")
    per_trace_on = _recorded_trace_cost(rec)
    events_mod.stop()

    # Sampled-out traces: the recorder is active but every trace is
    # suppressed; cost must collapse to near the disabled path.
    rec = events_mod.start(tmp_path / "bench-events-sampled.jsonl", sample_rate=0.0)
    per_trace_sampled = _recorded_trace_cost(rec)
    events_mod.stop()
    obs.reset()

    recording_pct = 100.0 * per_trace_on / REQUEST_BUDGET_S
    sampled_pct = 100.0 * per_trace_sampled / REQUEST_BUDGET_S

    base_path = RESULTS_DIR / "BENCH_obs_overhead.json"
    try:
        base = json.loads(base_path.read_text())
    except (OSError, json.JSONDecodeError):
        base = {}
    timings = dict(base.get("timings_s", {}))
    timings.update(
        {
            "events_disabled_per_request": disabled_request_s,
            "events_recording_per_request": per_trace_on,
            "events_sampled_out_per_request": per_trace_sampled,
        }
    )
    extra = dict(base.get("extra", {}))
    extra["events"] = {
        "disabled_pct": disabled_pct,
        "disabled_ceiling_pct": EVENTS_DISABLED_CEILING_PCT,
        "recording_pct": recording_pct,
        "recording_ceiling_pct": EVENTS_RECORDING_CEILING_PCT,
        "sampled_out_pct": sampled_pct,
        "request_budget_us": REQUEST_BUDGET_S * 1e6,
        "events_per_request": EVENTS_PER_REQUEST,
        "per_span_disabled_ns": per_span_off * 1e9,
        "per_trace_recording_us": per_trace_on * 1e6,
        "per_trace_sampled_out_us": per_trace_sampled * 1e6,
    }
    write_bench_record(
        "obs_overhead",
        timings_s=timings,
        workload=dict(base.get("workload", {})),
        extra=extra,
    )
    print(
        f"\ntimeline overhead: disabled {per_span_off * 1e9:.0f} ns/span = "
        f"{disabled_pct:.3f} % of budget; recording {per_trace_on * 1e6:.2f} "
        f"us/request = {recording_pct:.2f} %; sampled-out "
        f"{per_trace_sampled * 1e6:.2f} us/request = {sampled_pct:.2f} %"
    )
    assert disabled_pct <= EVENTS_DISABLED_CEILING_PCT, (
        f"disabled timeline hook costs {disabled_pct:.2f} % of the "
        f"{REQUEST_BUDGET_S * 1e6:.0f} us request budget — exceeds "
        f"{EVENTS_DISABLED_CEILING_PCT} %"
    )
    assert recording_pct <= EVENTS_RECORDING_CEILING_PCT, (
        f"full-rate timeline recording costs {per_trace_on * 1e6:.2f} us/request "
        f"({recording_pct:.2f} % of budget) — exceeds "
        f"{EVENTS_RECORDING_CEILING_PCT} %"
    )
    # Suppressed traces must not pay the serialization cost.
    assert per_trace_sampled <= per_trace_on / 2
