"""Ablation A11 — is the paper's 53 deg / 500 km shell the right design?

Sweeps inclination x altitude for the same 108-satellite pattern and the
same calibrated optics. Headline: a shell inclined near the target
region's ~35.5 deg latitude covers Tennessee dramatically better than the
paper's Starlink-like 53 deg choice — and the paper's hand-picked HAP
hover point is already within a few km of optimal.
"""

from repro.constants import QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG
from repro.core.design import design_sweep
from repro.core.placement import min_site_transmissivity, optimize_hap_position
from repro.reporting.tables import render_table

INCLINATIONS_DEG = [37.0, 40.0, 45.0, 53.0, 60.0, 70.0]
ALTITUDES_KM = [400.0, 500.0, 600.0, 800.0]


def test_ablation_orbit_design(benchmark):
    result = benchmark.pedantic(
        design_sweep,
        args=(INCLINATIONS_DEG, ALTITUDES_KM),
        kwargs={"step_s": 240.0},
        rounds=1,
        iterations=1,
    )
    matrix = result.coverage_matrix(INCLINATIONS_DEG, ALTITUDES_KM)

    print()
    print(
        render_table(
            ["inclination \\ altitude"] + [f"{a:.0f} km" for a in ALTITUDES_KM],
            [
                [f"{inc:.0f} deg"] + [f"{matrix[i, j]:.1f}%" for j in range(len(ALTITUDES_KM))]
                for i, inc in enumerate(INCLINATIONS_DEG)
            ],
            title="ABLATION A11a: COVERAGE OVER THE DESIGN SPACE (108 satellites)",
        )
    )
    best = result.best
    print(f"  best design: {best.inclination_deg:.0f} deg / {best.altitude_km:.0f} km "
          f"-> {best.coverage_percentage:.1f}%")
    print("  paper design: 53 deg / 500 km -> "
          f"{result.coverage_matrix(INCLINATIONS_DEG, ALTITUDES_KM)[3, 1]:.1f}%")

    # The paper's design is far from regional-optimal in inclination...
    paper_cov = matrix[INCLINATIONS_DEG.index(53.0), ALTITUDES_KM.index(500.0)]
    assert best.coverage_percentage > paper_cov + 20.0
    assert best.inclination_deg < 53.0
    # ...but roughly right in altitude for the calibrated optics.
    assert best.altitude_km in (400.0, 500.0)


def test_ablation_hap_placement(benchmark):
    def run():
        paper_eta = min_site_transmissivity(QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG)
        best = optimize_hap_position(resolution_deg=0.1)
        return paper_eta, best

    paper_eta, (lat, lon, eta) = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("ABLATION A11b: HAP PLACEMENT")
    print(f"  paper hover point ({QNTN_HAP_LAT_DEG}, {QNTN_HAP_LON_DEG}): "
          f"worst site eta = {paper_eta:.4f}")
    print(f"  grid optimum    ({lat:.3f}, {lon:.3f}): worst site eta = {eta:.4f}")
    print("  => the paper's hand-picked point is effectively optimal.")

    # The paper's exact point can edge out the best 0.1-deg grid cell by a
    # sliver; optimal to < 1e-3 either way.
    assert abs(eta - paper_eta) < 1e-3
    assert abs(lat - QNTN_HAP_LAT_DEG) < 0.5
    assert abs(lon - QNTN_HAP_LON_DEG) < 0.5
