"""Multipath-rescue service gain on the 108-satellite day (DESIGN.md §16).

Runs the paper's Fig. 7 service protocol (100 inter-LAN requests at 100
evaluation steps of the full-day ephemeris) twice — once with the strict
single-path router, once with the ``k-shortest`` strategy rescuing
denied requests over relaxed-threshold relay pairs — and gates the
served-fraction ratio. The headline "speedup" is service gain, not wall
time: multipath must serve strictly more than the 57.75 % baseline
(observed ~74 % at k = 2 with 4 memory slots).

The monotonicity half of the strategy contract is asserted inline: no
strictly-served request may be lost, so the rescue count is exactly the
service delta.
"""

import time

import pytest

from repro.channels.presets import paper_satellite_fso
from repro.core.analysis import SpaceGroundAnalysis
from repro.core.evaluation import evaluation_time_indices
from repro.core.requests import generate_requests
from repro.data.ground_nodes import all_ground_nodes
from repro.network.links import LinkPolicy
from repro.routing.strategies import StrategyConfig, build_strategy

from reporting import write_bench_record

N_REQUESTS = 100
N_TIME_STEPS = 100
K = 2
MEMORY_SLOTS = 4
#: Multipath served-fraction over baseline served-fraction; the strategy
#: contract guarantees >= 1.0, the gate demands a real gain.
SERVICE_GAIN_FLOOR = 1.05


def test_multipath_service_gain_gate(full_ephemeris):
    sites = list(all_ground_nodes())
    model = paper_satellite_fso()
    policy = LinkPolicy()
    strategy = build_strategy(
        StrategyConfig(router="k-shortest", k=K, memory_slots=MEMORY_SLOTS),
        policy=policy,
    )
    requests = [r.endpoints for r in generate_requests(sites, N_REQUESTS, seed=7)]
    steps = evaluation_time_indices(full_ephemeris.times_s.size, N_TIME_STEPS)

    t0 = time.perf_counter()
    strict = SpaceGroundAnalysis(full_ephemeris, sites, model, policy=policy)
    baseline_etas = {int(k): strict.serve(requests, int(k)) for k in steps}
    n_baseline = sum(
        eta is not None for etas in baseline_etas.values() for eta in etas
    )
    t_baseline = time.perf_counter() - t0

    t0 = time.perf_counter()
    relaxed = SpaceGroundAnalysis(
        full_ephemeris, sites, model, policy=strategy.relaxed_policy
    )
    n_rescued = 0
    for k, etas in baseline_etas.items():
        for (src, dst), eta in zip(requests, etas):
            if eta is not None:
                continue  # monotone: strict service is never revisited
            plan = strategy.plan(
                strategy.matrix_candidates(relaxed, src, dst, k),
                float(full_ephemeris.times_s[k]),
            )
            n_rescued += plan.served
    t_rescue = time.perf_counter() - t0

    total = N_REQUESTS * len(steps)
    baseline_frac = n_baseline / total
    multipath_frac = (n_baseline + n_rescued) / total
    gain = multipath_frac / baseline_frac
    write_bench_record(
        "multipath",
        timings_s={"baseline": t_baseline, "rescue": t_rescue},
        workload={
            "n_satellites": full_ephemeris.n_platforms,
            "n_requests": N_REQUESTS,
            "n_time_steps": N_TIME_STEPS,
            "router": "k-shortest",
            "k": K,
            "memory_slots": MEMORY_SLOTS,
        },
        speedup=gain,
        speedup_floor=SERVICE_GAIN_FLOOR,
        extra={
            "baseline_served_pct": 100.0 * baseline_frac,
            "multipath_served_pct": 100.0 * multipath_frac,
            "n_rescued": n_rescued,
        },
    )
    assert baseline_frac == pytest.approx(0.5775, abs=0.02)
    assert gain >= SERVICE_GAIN_FLOOR
