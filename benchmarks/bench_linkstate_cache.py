"""Link-state cache vs direct simulator on the 108-satellite day sweep.

Times the paper's Figs. 7-8 workload — 100 random inter-LAN requests at
evaluation steps spread over the 108-satellite day — through the
object-level :class:`NetworkSimulator` twice: once on the direct scalar
path (per-channel ``evaluate`` + per-request Bellman–Ford) and once on
the :class:`~repro.engine.linkstate.LinkStateCache` path (one vectorized
link-budget pass, memoized routing tables). The acceptance floor is a 3x
speedup; outcome equivalence is asserted alongside the timing so the
speedup can never come from serving different requests.

The evaluation grid mirrors how ``parallel_service_sweep`` workers run:
the simulators see the ``at_time_indices`` shard of the day so the cache
is built exactly over the steps it will serve — the full 2880-sample day
through the direct path would take minutes per round.
"""

import time

import pytest

from repro.channels.presets import paper_satellite_fso
from repro.core.evaluation import evaluation_time_indices
from repro.core.requests import generate_requests
from repro.data.ground_nodes import all_ground_nodes
from repro.network.simulator import NetworkSimulator
from repro.network.topology import attach_satellites, build_qntn_ground_network
from repro.reporting.figures import FigureSeries

from reporting import write_bench_record

N_REQUESTS = 100
N_EVAL_STEPS = 12
SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def day_shard_network(full_ephemeris):
    """The QNTN network on the evaluation-step shard of the 108-sat day."""
    indices = evaluation_time_indices(full_ephemeris.n_samples, N_EVAL_STEPS)
    shard = full_ephemeris.at_time_indices(indices)
    network = build_qntn_ground_network()
    attach_satellites(network, shard, paper_satellite_fso())
    return network, shard


@pytest.fixture(scope="module")
def workload():
    return [r.endpoints for r in generate_requests(list(all_ground_nodes()), N_REQUESTS, 7)]


def serve_day(simulator, shard, workload):
    return [simulator.serve_requests(workload, float(t)) for t in shard.times_s]


def test_cached_day_sweep(benchmark, day_shard_network, workload):
    network, shard = day_shard_network
    outcomes = benchmark.pedantic(
        lambda: serve_day(NetworkSimulator(network, use_cache=True), shard, workload),
        rounds=1,
        iterations=1,
    )
    assert len(outcomes) == shard.n_samples


def test_direct_day_sweep(benchmark, day_shard_network, workload):
    network, shard = day_shard_network
    outcomes = benchmark.pedantic(
        lambda: serve_day(NetworkSimulator(network), shard, workload),
        rounds=1,
        iterations=1,
    )
    assert len(outcomes) == shard.n_samples


def test_cache_speedup_and_equivalence(day_shard_network, workload, emit_series):
    """The acceptance gate: >= 3x on identical outcomes."""
    network, shard = day_shard_network

    start = time.perf_counter()
    cached = serve_day(NetworkSimulator(network, use_cache=True), shard, workload)
    t_cached = time.perf_counter() - start

    start = time.perf_counter()
    direct = serve_day(NetworkSimulator(network), shard, workload)
    t_direct = time.perf_counter() - start

    for step_direct, step_cached in zip(direct, cached):
        for d, c in zip(step_direct, step_cached):
            assert d.served == c.served
            assert d.path == c.path
            if d.served:
                assert abs(d.path_transmissivity - c.path_transmissivity) <= 1e-12
                assert abs(d.fidelity - c.fidelity) <= 1e-12

    speedup = t_direct / t_cached
    emit_series(
        FigureSeries(
            name="bench_linkstate_cache",
            x_label="mode",  # 0 = direct, 1 = cached
            y_label="seconds",
            x=(0.0, 1.0),
            y=(t_direct, t_cached),
            meta={
                "workload": f"{N_REQUESTS} requests x {N_EVAL_STEPS} steps, 108 satellites",
                "speedup": f"{speedup:.1f}x",
                "floor": f"{SPEEDUP_FLOOR}x",
            },
        )
    )
    write_bench_record(
        "linkstate_cache",
        timings_s={"direct": t_direct, "cached": t_cached},
        workload={
            "n_requests": N_REQUESTS,
            "n_eval_steps": N_EVAL_STEPS,
            "n_satellites": 108,
        },
        speedup=speedup,
        speedup_floor=SPEEDUP_FLOOR,
    )
    assert speedup >= SPEEDUP_FLOOR, f"cache speedup {speedup:.1f}x below {SPEEDUP_FLOOR}x"
