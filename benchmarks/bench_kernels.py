"""Ablation A5 — vectorized vs scalar kernels (the HPC discipline check).

Times the two propagation/visibility implementations on identical inputs;
the vectorized forms are the ones every experiment runs on, the scalar
forms are the validated references. A correctness cross-check guards the
speed comparison.
"""

import math

import numpy as np
import pytest

from repro.orbits.elements import ElementSet, OrbitalElements
from repro.orbits.propagator import TwoBodyPropagator
from repro.orbits.visibility import elevation_and_range, elevation_and_range_scalar
from repro.orbits.walker import qntn_constellation

SITE = (math.radians(36.1757), math.radians(-85.5066), 0.3)


@pytest.fixture(scope="module")
def kernel_inputs():
    elements = qntn_constellation(36)
    times = np.arange(0.0, 7200.0, 60.0)
    propagator = TwoBodyPropagator(elements)
    positions = propagator.positions_eci(times)
    return propagator, times, positions


def test_kernel_propagation_vectorized(benchmark, kernel_inputs):
    propagator, times, _ = kernel_inputs
    out = benchmark(propagator.positions_eci, times)
    assert out.shape == (36, times.size, 3)


def test_kernel_propagation_scalar(benchmark, kernel_inputs):
    propagator, times, _ = kernel_inputs
    out = benchmark.pedantic(
        propagator.positions_eci_scalar, args=(times,), rounds=1, iterations=1
    )
    np.testing.assert_allclose(out, propagator.positions_eci(times), atol=1e-6)


def test_kernel_visibility_vectorized(benchmark, kernel_inputs):
    _, _, positions = kernel_inputs
    az, el, rng = benchmark(elevation_and_range, *SITE, positions)
    assert el.shape == positions.shape[:-1]


def test_kernel_visibility_scalar(benchmark, kernel_inputs):
    _, _, positions = kernel_inputs
    az_s, el_s, rng_s = benchmark.pedantic(
        elevation_and_range_scalar, args=(*SITE, positions), rounds=1, iterations=1
    )
    _, el_v, _ = elevation_and_range(*SITE, positions)
    np.testing.assert_allclose(el_s, el_v, atol=1e-10)


def test_kernel_fso_vectorized(benchmark):
    """The FSO link budget over a full (sats x times) block."""
    from repro.channels.presets import paper_satellite_fso

    model = paper_satellite_fso()
    rng = np.random.default_rng(1)
    slants = rng.uniform(500.0, 1400.0, size=(108, 2880))
    els = rng.uniform(math.radians(10.0), math.pi / 2, size=(108, 2880))
    etas = benchmark(model.transmissivity, slants, els, 500.0)
    assert np.asarray(etas).shape == (108, 2880)
