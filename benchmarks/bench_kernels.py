"""Ablation A5 — vectorized vs scalar kernels (the HPC discipline check).

Times the two propagation/visibility implementations on identical inputs;
the vectorized forms are the ones every experiment runs on, the scalar
forms are the validated references. A correctness cross-check guards the
speed comparison.

``test_kernel_dispatch_speedup`` additionally times every
:mod:`repro.kernels` hot path against its in-line NumPy fallback
(``force_numpy``) and routes the result through ``reporting`` into the
repo-root ``BENCH_kernels.json`` trajectory. With the numba backend
active each compiled kernel must beat NumPy by >= 3x; on the pure-NumPy
backend both sides are the identical code path, so the record documents
the fallback's absolute timings and the gate is skipped.
"""

import math
import time

import numpy as np
import pytest

from repro.orbits.elements import ElementSet, OrbitalElements
from repro.orbits.propagator import TwoBodyPropagator
from repro.orbits.visibility import elevation_and_range, elevation_and_range_scalar
from repro.orbits.walker import qntn_constellation

from reporting import write_bench_record

SITE = (math.radians(36.1757), math.radians(-85.5066), 0.3)
KERNEL_SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def kernel_inputs():
    elements = qntn_constellation(36)
    times = np.arange(0.0, 7200.0, 60.0)
    propagator = TwoBodyPropagator(elements)
    positions = propagator.positions_eci(times)
    return propagator, times, positions


def test_kernel_propagation_vectorized(benchmark, kernel_inputs):
    propagator, times, _ = kernel_inputs
    out = benchmark(propagator.positions_eci, times)
    assert out.shape == (36, times.size, 3)


def test_kernel_propagation_scalar(benchmark, kernel_inputs):
    propagator, times, _ = kernel_inputs
    out = benchmark.pedantic(
        propagator.positions_eci_scalar, args=(times,), rounds=1, iterations=1
    )
    np.testing.assert_allclose(out, propagator.positions_eci(times), atol=1e-6)


def test_kernel_visibility_vectorized(benchmark, kernel_inputs):
    _, _, positions = kernel_inputs
    az, el, rng = benchmark(elevation_and_range, *SITE, positions)
    assert el.shape == positions.shape[:-1]


def test_kernel_visibility_scalar(benchmark, kernel_inputs):
    _, _, positions = kernel_inputs
    az_s, el_s, rng_s = benchmark.pedantic(
        elevation_and_range_scalar, args=(*SITE, positions), rounds=1, iterations=1
    )
    _, el_v, _ = elevation_and_range(*SITE, positions)
    np.testing.assert_allclose(el_s, el_v, atol=1e-10)


def test_kernel_fso_vectorized(benchmark):
    """The FSO link budget over a full (sats x times) block."""
    from repro.channels.presets import paper_satellite_fso

    model = paper_satellite_fso()
    rng = np.random.default_rng(1)
    slants = rng.uniform(500.0, 1400.0, size=(108, 2880))
    els = rng.uniform(math.radians(10.0), math.pi / 2, size=(108, 2880))
    etas = benchmark(model.transmissivity, slants, els, 500.0)
    assert np.asarray(etas).shape == (108, 2880)


def _best_of(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_kernel_dispatch_speedup():
    """Compiled kernels vs their NumPy fallbacks, recorded per hot path."""
    from repro import kernels
    from repro.channels.presets import paper_satellite_fso
    from repro.engine.budgets import fill_budget_block
    from repro.network.links import LinkPolicy
    from repro.routing.bellman_ford import FlatGraph

    kernels.warmup()
    model = paper_satellite_fso()
    policy = LinkPolicy()
    rng = np.random.default_rng(1)
    slants = rng.uniform(500.0, 1400.0, size=(108, 2880))
    els = rng.uniform(math.radians(1.0), math.pi / 2, size=(108, 2880))

    graph: dict = {f"n{i}": {} for i in range(120)}
    for _ in range(700):
        a, b = rng.integers(0, 120, size=2)
        if a == b:
            continue
        eta = float(rng.uniform(0.01, 0.9))
        graph[f"n{a}"][f"n{b}"] = eta
        graph[f"n{b}"][f"n{a}"] = eta
    flat = FlatGraph(graph)

    propagator = TwoBodyPropagator(qntn_constellation(108), include_j2=True)

    cases = {
        "fso.transmissivity": (
            lambda: model.transmissivity(slants, els, 500.0),
            5,
        ),
        "budgets.fill": (
            lambda: fill_budget_block(els, slants, model, policy, 500.0),
            5,
        ),
        "routing.relax": (lambda: flat.tree("n0"), 30),
        "propagate.step": (lambda: propagator.propagate_step(4321.0), 20),
    }

    timings: dict[str, float] = {}
    speedups: dict[str, float] = {}
    for name, (fn, repeats) in cases.items():
        with kernels.force_numpy():
            t_numpy = _best_of(fn, repeats)
        t_active = _best_of(fn, repeats)
        timings[f"{name}.numpy"] = t_numpy
        timings[f"{name}.{kernels.active_backend()}"] = t_active
        speedups[name] = t_numpy / t_active if t_active > 0 else math.inf

    gated = kernels.active_backend() == "numba"
    write_bench_record(
        "kernels",
        timings_s=timings,
        workload={
            "block_shape": [108, 2880],
            "routing_nodes": 120,
            "routing_edges": len(flat._edges),
            "n_satellites": 108,
            "kernel_backend": kernels.active_backend(),
            "numba_version": kernels.numba_version(),
        },
        speedup=min(speedups.values()),
        speedup_floor=KERNEL_SPEEDUP_FLOOR if gated else None,
        extra={"speedups": speedups, "gated": gated},
    )
    if gated:
        for name, ratio in speedups.items():
            assert ratio >= KERNEL_SPEEDUP_FLOOR, (
                f"kernel {name} speedup {ratio:.2f}x below the "
                f"{KERNEL_SPEEDUP_FLOOR:.0f}x floor"
            )
