"""Fig. 8 — mean entanglement fidelity of resolved requests vs satellites.

Paper result: the space-ground architecture delivers resolved requests at
an average fidelity of ~0.96 regardless of constellation size (flat
series). Our physically calibrated link budget lands the same flat shape
at ~0.92; the ordering against the air-ground architecture (0.98) is
preserved. See EXPERIMENTS.md for the gap analysis.
"""

import numpy as np

from repro.network.protocols import distribute_entanglement
from repro.reporting.figures import FigureSeries


def test_fig8_mean_fidelity(benchmark, paper_sweep, emit_series):
    # Time the quantum-layer kernel: full Kraus delivery of 200 pairs.
    etas = np.linspace(0.5, 0.95, 200)

    def kraus_kernel():
        return [distribute_entanglement([float(e)]).fidelity("sqrt") for e in etas]

    fidelities = benchmark.pedantic(kraus_kernel, rounds=1, iterations=1)
    assert len(fidelities) == 200

    sizes = paper_sweep.sizes
    mean_f = paper_sweep.mean_fidelities
    emit_series(
        FigureSeries(
            "fig8_fidelity_vs_satellites",
            "n_satellites",
            "mean_fidelity",
            tuple(float(s) for s in sizes),
            tuple(mean_f),
            meta={
                "paper_value_at_108": "0.96",
                "measured_at_108": f"{mean_f[-1]:.4f}",
                "note": "flat-series shape reproduced; level offset documented in EXPERIMENTS.md",
            },
        )
    )

    # Shape assertions: series is flat (fidelity set by link physics, not
    # constellation size) and sits well above the 0.85 threshold floor.
    finite = [f for f in mean_f if not np.isnan(f)]
    assert max(finite) - min(finite) < 0.05
    assert all(0.88 < f < 1.0 for f in finite)
