"""Shared benchmark fixtures.

Expensive artefacts (the full 108-satellite day ephemeris and the whole
constellation sweep) are built once per session and reused by every bench
that needs them; each bench then times its own kernel and emits the
series/rows it regenerates, both to stdout and to CSV under
``benchmarks/results/``.

When the artifact store is configured (``REPRO_CACHE_DIR`` set, as the
CI smoke job does), the session fixtures load the ephemeris and budget
matrices from the content-addressed cache instead of recomputing them —
a warm benchmark session skips all of the shared propagation work.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Benches import sibling helpers (``from reporting import ...``); make the
# directory importable regardless of how pytest resolved the rootdir.
sys.path.insert(0, str(Path(__file__).parent))

from repro.core.sweeps import run_constellation_sweep
from repro.engine.store import default_store
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.walker import qntn_constellation
from repro.reporting.figures import FigureSeries, write_series_csv

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def artifact_store():
    """The configured cross-run artifact store, or None (caching off)."""
    return default_store()


@pytest.fixture(scope="session")
def full_ephemeris(artifact_store):
    """The paper's 108-satellite, 1-day, 30-second movement sheet."""
    elements = qntn_constellation(108)
    if artifact_store is not None:
        return artifact_store.get_or_build_ephemeris(
            elements, duration_s=86400.0, step_s=30.0
        )
    return generate_movement_sheet(elements, duration_s=86400.0, step_s=30.0)


@pytest.fixture(scope="session")
def paper_sweep(full_ephemeris):
    """The complete Figs. 6-8 sweep (6..108 satellites, paper workload).

    Budget matrices go through the artifact store when one is configured
    (``run_constellation_sweep`` picks up the process default).
    """
    return run_constellation_sweep(ephemeris=full_ephemeris)


@pytest.fixture(scope="session")
def emit_series():
    """Emit a reproduced figure series: print it and persist it to CSV."""

    def _emit(series: FigureSeries) -> None:
        path = write_series_csv(series, RESULTS_DIR / f"{series.name}.csv")
        print(f"\n=== {series.name} ({series.x_label} -> {series.y_label}) ===")
        for key, value in series.meta.items():
            print(f"  # {key}: {value}")
        for x, y in zip(series.x, series.y):
            print(f"  {x:10.4f}  {y:10.4f}")
        print(f"  [written to {path}]")

    return _emit
