"""Ablation A2 — how the transmissivity threshold trades coverage against
fidelity.

The paper fixes the threshold at 0.7 (Fig. 5) and notes it "may be
adjusted to meet the specific fidelity requirements of specific
applications". This bench quantifies that: lower thresholds admit weaker
links (more coverage, lower delivered fidelity), higher thresholds the
reverse.
"""

import numpy as np

from repro.core.analysis import SpaceGroundAnalysis
from repro.channels.presets import paper_satellite_fso
from repro.core.evaluation import evaluation_time_indices
from repro.core.requests import generate_requests
from repro.data.ground_nodes import all_ground_nodes
from repro.network.links import LinkPolicy
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity
from repro.reporting.figures import FigureSeries
from repro.reporting.tables import render_table

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)


def test_ablation_threshold_tradeoff(benchmark, full_ephemeris, emit_series):
    sites = list(all_ground_nodes())
    indices = evaluation_time_indices(full_ephemeris.n_samples, 50)
    service_eph = full_ephemeris.at_time_indices(indices)
    pairs = [r.endpoints for r in generate_requests(sites, 50, seed=7)]

    def run_one(threshold: float) -> tuple[float, float]:
        analysis = SpaceGroundAnalysis(
            service_eph,
            sites,
            paper_satellite_fso(),
            policy=LinkPolicy(transmissivity_threshold=threshold),
        )
        served, fidelities = 0, []
        total = 0
        for t in range(service_eph.n_samples):
            etas = analysis.serve(pairs, t)
            total += len(etas)
            for e in etas:
                if e is not None:
                    served += 1
                    fidelities.append(
                        float(entanglement_fidelity_from_transmissivity(e))
                    )
        mean_f = float(np.mean(fidelities)) if fidelities else float("nan")
        return 100.0 * served / total, mean_f

    def sweep():
        return [run_one(th) for th in THRESHOLDS]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    served = [r[0] for r in results]
    fidelity = [r[1] for r in results]

    print()
    print(
        render_table(
            ["threshold", "served %", "mean fidelity"],
            [
                (f"{th:.1f}", f"{s:.2f}", f"{f:.4f}")
                for th, s, f in zip(THRESHOLDS, served, fidelity)
            ],
            title="ABLATION A2: TRANSMISSIVITY THRESHOLD TRADE-OFF",
        )
    )
    emit_series(
        FigureSeries(
            "ablation_threshold_served",
            "threshold",
            "served_pct",
            tuple(float(t) for t in THRESHOLDS),
            tuple(served),
        )
    )

    # Lower thresholds serve more requests; delivered fidelity rises with
    # the threshold (weak links are excluded).
    assert served == sorted(served, reverse=True)
    finite = [f for f in fidelity if not np.isnan(f)]
    assert all(a <= b + 1e-9 for a, b in zip(finite, finite[1:]))
