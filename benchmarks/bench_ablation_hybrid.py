"""Ablation A4 — the hybrid architecture (the paper's future-work proposal).

A duty-cycled HAP (limited flight time, Section V) backed by the
constellation: the hybrid's coverage and served fraction must dominate
each component alone.
"""

from repro.core.architecture import (
    AirGroundArchitecture,
    HybridArchitecture,
    SpaceGroundArchitecture,
)
from repro.reporting.tables import render_table
from repro.utils.intervals import Interval

#: HAP flies 6-hour shifts with 6-hour maintenance gaps (50 % duty).
DUTY_WINDOWS = [Interval(0.0, 21600.0), Interval(43200.0, 64800.0)]


def test_ablation_hybrid(benchmark, full_ephemeris):
    space = SpaceGroundArchitecture(108, ephemeris=full_ephemeris, step_s=30.0)
    air = AirGroundArchitecture(operational_windows=DUTY_WINDOWS, step_s=30.0)
    hybrid = HybridArchitecture(space, air)

    def run():
        kwargs = dict(n_requests=50, n_time_steps=50, seed=7)
        return (
            space.evaluate(**kwargs),
            air.evaluate(**kwargs),
            hybrid.evaluate(**kwargs),
        )

    space_r, air_r, hybrid_r = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ["architecture", "coverage %", "served %", "fidelity"],
            [
                (
                    r.name,
                    f"{r.coverage_percentage:.2f}",
                    f"{r.served_percentage:.2f}",
                    f"{r.mean_fidelity:.4f}",
                )
                for r in (space_r, air_r, hybrid_r)
            ],
            title="ABLATION A4: HYBRID (50% duty HAP + 108 satellites)",
        )
    )

    # Duty cycle caps the HAP alone at ~50 %.
    assert 40.0 < air_r.coverage_percentage < 60.0
    # The hybrid dominates both components on coverage and service.
    assert hybrid_r.coverage_percentage >= air_r.coverage_percentage
    assert hybrid_r.coverage_percentage >= space_r.coverage_percentage
    assert hybrid_r.served_percentage >= air_r.served_percentage
    assert hybrid_r.served_percentage >= space_r.served_percentage
    # And it recovers most of the day.
    assert hybrid_r.coverage_percentage > 70.0
