"""Result records and renderers for the paper's tables and figures."""

from repro.reporting.figures import FigureSeries, write_series_csv
from repro.reporting.tables import render_table, render_table_iii

__all__ = ["render_table", "render_table_iii", "FigureSeries", "write_series_csv"]
