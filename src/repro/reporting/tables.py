"""Plain-text table rendering for benchmark and example output."""

from __future__ import annotations

from typing import Sequence

from repro.core.comparison import ComparisonRow
from repro.errors import ValidationError

__all__ = ["render_table", "render_table_iii"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an ASCII table with column-width autofit.

    Args:
        headers: column titles.
        rows: cell values; each row must match ``headers`` in length.
        title: optional caption printed above the table.
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValidationError("every row must have one cell per header")
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"

    def fmt(row: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"

    lines = []
    if title:
        lines.append(title)
    lines.extend([sep, fmt(cells[0]), sep])
    lines.extend(fmt(row) for row in cells[1:])
    lines.append(sep)
    return "\n".join(lines)


def render_table_iii(rows: Sequence[ComparisonRow]) -> str:
    """Render the architecture comparison in the paper's Table III layout."""
    return render_table(
        ["Architecture", "P", "Serving requests", "Entanglement fidelity"],
        [
            (
                row.architecture,
                f"{row.coverage_percentage:.2f}%",
                f"{row.served_percentage:.2f}%",
                f"{row.mean_fidelity:.2f}",
            )
            for row in rows
        ],
        title="TABLE III: COMPARISON OF ARCHITECTURES",
    )
