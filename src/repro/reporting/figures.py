"""CSV series writers: the data behind each reproduced figure.

Benchmarks write each figure's series to CSV so the curves can be plotted
or diffed without rerunning the simulation.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ValidationError

__all__ = ["FigureSeries", "write_series_csv"]


@dataclass(frozen=True)
class FigureSeries:
    """One x/y series of a reproduced figure.

    Attributes:
        name: series label (e.g. ``"fig6_coverage"``).
        x_label / y_label: axis names written to the CSV header.
        x / y: the data, equal lengths.
        meta: free-form annotations (parameters, paper reference values).
    """

    name: str
    x_label: str
    y_label: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    meta: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValidationError(
                f"series {self.name!r}: {len(self.x)} x values vs {len(self.y)} y values"
            )


def write_series_csv(series: FigureSeries, path: str | Path) -> Path:
    """Write a series to CSV (meta rows prefixed with ``#``).

    Returns the written path.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", newline="") as fh:
        writer = csv.writer(fh)
        for key, value in series.meta.items():
            writer.writerow([f"# {key}", value])
        writer.writerow([series.x_label, series.y_label])
        for xv, yv in zip(series.x, series.y):
            writer.writerow([repr(float(xv)), repr(float(yv))])
    return out
