"""Typed experiment records with JSON persistence.

Every experiment entry point returns rich dataclasses; this module
flattens them into a uniform, versioned record that can be written to
JSON, reloaded, and diffed across runs — the artefact a reproduction
pipeline archives next to the paper's numbers.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.core.architecture import ArchitectureResult
from repro.core.comparison import ComparisonRow
from repro.core.sweeps import ConstellationSweep
from repro.core.threshold import ThresholdResult
from repro.errors import ValidationError

__all__ = ["ExperimentRecord", "record_comparison", "record_sweep", "record_threshold"]

#: Schema version written into every record.
RECORD_VERSION = 1


@dataclass(frozen=True)
class ExperimentRecord:
    """A uniform, serialisable experiment result.

    Attributes:
        experiment: experiment identifier (e.g. ``"table3"``, ``"fig6"``).
        parameters: the inputs that produced the result.
        metrics: scalar outputs keyed by name.
        series: named (x, y) series for figures.
        version: record schema version.
    """

    experiment: str
    parameters: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    version: int = RECORD_VERSION

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialise to JSON; optionally also write to ``path``."""
        text = json.dumps(asdict(self), indent=2, sort_keys=True)
        if path is not None:
            out = Path(path)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(text)
        return text

    @classmethod
    def from_json(cls, text_or_path: str | Path) -> "ExperimentRecord":
        """Load a record from a JSON string or file path."""
        if isinstance(text_or_path, Path) or (
            isinstance(text_or_path, str)
            and not text_or_path.lstrip().startswith("{")
        ):
            text = Path(text_or_path).read_text()
        else:
            text = str(text_or_path)
        data = json.loads(text)
        if data.get("version") != RECORD_VERSION:
            raise ValidationError(
                f"unsupported record version {data.get('version')!r}"
            )
        return cls(
            experiment=data["experiment"],
            parameters=data.get("parameters", {}),
            metrics=data.get("metrics", {}),
            series=data.get("series", {}),
            version=data["version"],
        )


def record_threshold(result: ThresholdResult, **parameters: Any) -> ExperimentRecord:
    """Record the Fig. 5 experiment."""
    return ExperimentRecord(
        experiment="fig5_threshold",
        parameters={"target_fidelity": result.target_fidelity, **parameters},
        metrics={"threshold": float(result.threshold)},
        series={
            "fidelity_vs_transmissivity": {
                "x": [float(v) for v in result.transmissivities],
                "y": [float(v) for v in result.fidelities],
            }
        },
    )


def record_sweep(sweep: ConstellationSweep, **parameters: Any) -> ExperimentRecord:
    """Record the Figs. 6-8 constellation sweep."""
    sizes = [float(s) for s in sweep.sizes]
    return ExperimentRecord(
        experiment="constellation_sweep",
        parameters=parameters,
        metrics={
            "coverage_at_max": sweep.coverage_percentages[-1],
            "served_at_max": sweep.served_percentages[-1],
            "fidelity_at_max": sweep.mean_fidelities[-1],
        },
        series={
            "fig6_coverage": {"x": sizes, "y": list(sweep.coverage_percentages)},
            "fig7_served": {"x": sizes, "y": list(sweep.served_percentages)},
            "fig8_fidelity": {"x": sizes, "y": list(sweep.mean_fidelities)},
        },
    )


def record_comparison(
    rows: list[ComparisonRow] | list[ArchitectureResult], **parameters: Any
) -> ExperimentRecord:
    """Record the Table III comparison."""
    metrics: dict[str, float] = {}
    for row in rows:
        if isinstance(row, ArchitectureResult):
            row = ComparisonRow.from_result(row)
        key = row.architecture.lower().replace("-", "_")
        metrics[f"{key}_coverage_pct"] = row.coverage_percentage
        metrics[f"{key}_served_pct"] = row.served_percentage
        metrics[f"{key}_fidelity"] = row.mean_fidelity
    return ExperimentRecord(
        experiment="table3_comparison", parameters=parameters, metrics=metrics
    )
