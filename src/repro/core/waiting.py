"""Waiting-time analysis for requests arriving during coverage gaps.

The paper scores a request as simply served/unserved at its instant. A
deployed network would instead queue it until the next coverage window;
the user-visible metric is then the *waiting time*. For arrivals uniform
in time (or Poisson — PASTA), renewal-reward gives the closed form

    E[W] = sum_g g^2 / (2 T)

over the gap lengths g in a horizon T (arrivals inside coverage wait 0).
This module computes that analytically from a coverage mask and
cross-checks it by direct sampling (the test suite pins the two against
each other).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.intervals import intervals_from_mask
from repro.utils.seeding import as_generator

__all__ = ["WaitingTimeResult", "waiting_time_analysis", "sample_waiting_times"]


@dataclass(frozen=True)
class WaitingTimeResult:
    """Waiting-time profile of a coverage pattern.

    Attributes:
        mean_wait_s: expected wait of a uniformly random arrival [s].
        mean_wait_given_blocked_s: expected wait conditioned on arriving
            inside a gap [s].
        worst_wait_s: wait of the unluckiest arrival (longest gap) [s].
        blocked_fraction: probability an arrival lands in a gap.
    """

    mean_wait_s: float
    mean_wait_given_blocked_s: float
    worst_wait_s: float
    blocked_fraction: float


def _gaps_from_mask(times_s: np.ndarray, mask: np.ndarray, horizon_s: float) -> list[float]:
    """Gap lengths (uncovered spans) over ``[0, horizon_s)``."""
    covered = intervals_from_mask(times_s, mask)
    gaps: list[float] = []
    cursor = 0.0
    for iv in covered:
        if iv.start > cursor:
            gaps.append(iv.start - cursor)
        cursor = max(cursor, iv.end)
    if cursor < horizon_s:
        gaps.append(horizon_s - cursor)
    return gaps


def waiting_time_analysis(
    times_s: np.ndarray, mask: np.ndarray, *, horizon_s: float | None = None
) -> WaitingTimeResult:
    """Closed-form waiting-time statistics from a coverage mask.

    Args:
        times_s: sample times [s].
        mask: per-sample all-LANs-connected flag.
        horizon_s: analysis horizon (defaults to the sampled span plus one
            step).

    Arrivals after the final gap's start wait until... the horizon wraps:
    we treat the schedule as periodic with period ``horizon_s`` (a daily
    repeating constellation pattern), so a trailing gap merges with a
    leading one.
    """
    t = np.asarray(times_s, dtype=float)
    m = np.asarray(mask, dtype=bool)
    if t.shape != m.shape or t.ndim != 1:
        raise ValidationError("times_s and mask must be matching 1-D arrays")
    if t.size < 2:
        raise ValidationError("waiting-time analysis needs at least two samples")
    if horizon_s is None:
        horizon_s = float(t[-1] - t[0]) + float(t[1] - t[0])
    gaps = _gaps_from_mask(t, m, horizon_s)

    # Periodic wrap: a trailing gap continues into the leading one.
    if len(gaps) >= 2 and not m[0] and not m[-1]:
        gaps[0] = gaps[0] + gaps.pop()

    if not gaps:
        return WaitingTimeResult(0.0, 0.0, 0.0, 0.0)
    total_gap = float(sum(gaps))
    if total_gap >= horizon_s:
        raise ValidationError("coverage mask is never true: waits are unbounded")
    mean_wait = float(sum(g * g for g in gaps)) / (2.0 * horizon_s)
    blocked = total_gap / horizon_s
    return WaitingTimeResult(
        mean_wait_s=mean_wait,
        mean_wait_given_blocked_s=mean_wait / blocked,
        worst_wait_s=float(max(gaps)),
        blocked_fraction=blocked,
    )


def sample_waiting_times(
    times_s: np.ndarray,
    mask: np.ndarray,
    n_arrivals: int,
    *,
    seed: int | np.random.Generator | None = None,
    horizon_s: float | None = None,
) -> np.ndarray:
    """Monte Carlo waits of uniformly random arrivals (periodic schedule).

    Provided as the empirical cross-check of
    :func:`waiting_time_analysis`; returns one wait per arrival [s].
    """
    t = np.asarray(times_s, dtype=float)
    m = np.asarray(mask, dtype=bool)
    if not np.any(m):
        raise ValidationError("coverage mask is never true: waits are unbounded")
    if n_arrivals <= 0:
        raise ValidationError(f"n_arrivals must be positive, got {n_arrivals}")
    if horizon_s is None:
        horizon_s = float(t[-1] - t[0]) + float(t[1] - t[0])
    rng = as_generator(seed)
    covered = intervals_from_mask(t, m)
    starts = np.array([iv.start for iv in covered])
    ends = np.array([iv.end for iv in covered])

    arrivals = rng.uniform(0.0, horizon_s, size=n_arrivals)
    waits = np.empty(n_arrivals)
    for i, a in enumerate(arrivals):
        inside = (starts <= a) & (a < ends)
        if inside.any():
            waits[i] = 0.0
            continue
        upcoming = starts[starts > a]
        if upcoming.size:
            waits[i] = float(upcoming.min() - a)
        else:
            # Wrap to the first window of the next period.
            waits[i] = float(horizon_s - a + starts.min())
    return waits
