"""One-call reproduction report: every paper experiment, one artefact.

``full_reproduction_report`` runs Fig. 5, the Figs. 6-8 sweep, and
Table III with a single configuration, renders a markdown report with the
paper's reference values alongside the measurements, and (optionally)
writes the versioned JSON records next to it. The CLI exposes it as
``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.architecture import AirGroundArchitecture, SpaceGroundArchitecture
from repro.core.comparison import ComparisonRow, compare_architectures
from repro.core.sweeps import ConstellationSweep, run_constellation_sweep
from repro.core.threshold import ThresholdResult, transmissivity_threshold_experiment
from repro.errors import ValidationError
from repro.reporting.results import record_comparison, record_sweep, record_threshold

__all__ = ["ReproductionReport", "full_reproduction_report"]

#: The paper's reference values, quoted in every report.
PAPER_REFERENCE = {
    "fig5": "eta = 0.7 yields F > 0.9; threshold fixed at 0.7",
    "fig6_at_108": 55.17,
    "fig7_at_108": 57.75,
    "fig8_at_108": 0.96,
    "table3_air": (100.0, 100.0, 0.98),
}


@dataclass(frozen=True)
class ReproductionReport:
    """All paper experiments from one configuration.

    Attributes:
        threshold: Fig. 5 result.
        sweep: Figs. 6-8 sweep.
        table3: Table III rows (space-ground, air-ground).
        markdown: the rendered report document.
    """

    threshold: ThresholdResult
    sweep: ConstellationSweep
    table3: list[ComparisonRow]
    markdown: str


def _render_markdown(
    threshold: ThresholdResult,
    sweep: ConstellationSweep,
    table3: list[ComparisonRow],
    *,
    parameters: dict[str, object],
) -> str:
    space, air = table3
    lines = [
        "# QNTN reproduction report",
        "",
        "Parameters: " + ", ".join(f"{k}={v}" for k, v in sorted(parameters.items())),
        "",
        "## Fig. 5 — fidelity vs transmissivity",
        "",
        f"* F(eta=0.7) = {threshold.fidelities[int(round(0.7 / 0.01))]:.4f} "
        f"(paper: {PAPER_REFERENCE['fig5']})",
        f"* smallest eta reaching F >= {threshold.target_fidelity}: "
        f"{threshold.threshold:.2f}",
        "",
        "## Figs. 6-8 — constellation sweep",
        "",
        "| satellites | coverage % | served % | fidelity |",
        "|---|---|---|---|",
    ]
    for point in sweep.points:
        lines.append(
            f"| {point.n_satellites} | {point.coverage.percentage:.2f} "
            f"| {point.service.served_percentage:.2f} "
            f"| {point.service.mean_fidelity:.4f} |"
        )
    lines += [
        "",
        f"Paper at 108 satellites: {PAPER_REFERENCE['fig6_at_108']} % / "
        f"{PAPER_REFERENCE['fig7_at_108']} % / {PAPER_REFERENCE['fig8_at_108']}",
        "",
        "## Table III — comparison",
        "",
        "| architecture | coverage % | served % | fidelity |",
        "|---|---|---|---|",
        f"| {space.architecture} | {space.coverage_percentage:.2f} "
        f"| {space.served_percentage:.2f} | {space.mean_fidelity:.4f} |",
        f"| {air.architecture} | {air.coverage_percentage:.2f} "
        f"| {air.served_percentage:.2f} | {air.mean_fidelity:.4f} |",
        "",
        "Paper: Space-Ground 55.17 / 57.75 / 0.96; Air-Ground 100 / 100 / 0.98.",
        "",
        "Deviations and their analysis: see EXPERIMENTS.md (fidelity level "
        "of the space-ground row is the one known offset).",
    ]
    return "\n".join(lines)


def full_reproduction_report(
    *,
    sizes: list[int] | None = None,
    step_s: float = 30.0,
    n_requests: int = 100,
    n_time_steps: int = 100,
    seed: int = 7,
    output_dir: str | Path | None = None,
) -> ReproductionReport:
    """Run every paper experiment and render the combined report.

    Args:
        sizes: constellation sweep sizes (default 6..108 step 6).
        step_s: movement-sheet cadence (paper: 30 s).
        n_requests / n_time_steps / seed: the request workload.
        output_dir: when given, writes ``report.md`` plus the three JSON
            experiment records there.

    With the default (paper-scale) parameters the run takes ~1 minute.
    """
    if n_requests <= 0 or n_time_steps <= 0:
        raise ValidationError("n_requests and n_time_steps must be positive")
    threshold = transmissivity_threshold_experiment()
    sweep = run_constellation_sweep(
        sizes=sizes,
        step_s=step_s,
        n_requests=n_requests,
        n_time_steps=n_time_steps,
        seed=seed,
    )
    max_size = sweep.sizes[-1]
    space = SpaceGroundArchitecture(max_size, step_s=step_s)
    air = AirGroundArchitecture(step_s=step_s)
    table3 = compare_architectures(
        n_requests=n_requests,
        n_time_steps=n_time_steps,
        seed=seed,
        space=space,
        air=air,
    )
    parameters = {
        "sizes": f"{sweep.sizes[0]}..{max_size}",
        "step_s": step_s,
        "n_requests": n_requests,
        "n_time_steps": n_time_steps,
        "seed": seed,
    }
    markdown = _render_markdown(threshold, sweep, table3, parameters=parameters)

    if output_dir is not None:
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "report.md").write_text(markdown)
        record_threshold(threshold).to_json(out / "fig5_threshold.json")
        record_sweep(sweep, **parameters).to_json(out / "constellation_sweep.json")
        record_comparison(table3, **parameters).to_json(out / "table3_comparison.json")
    return ReproductionReport(threshold, sweep, table3, markdown)
