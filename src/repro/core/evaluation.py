"""Served-request and fidelity evaluation (paper Figs. 7-8, Section IV-C).

The paper's protocol: generate 100 random inter-LAN requests, serve them
at each of 100 satellite-movement time steps, and report the average
served percentage and the average fidelity over resolved requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.analysis import AirGroundAnalysis, SpaceGroundAnalysis
from repro.core.requests import Request
from repro.errors import ValidationError
from repro.network.satellite import Satellite
from repro.network.simulator import NetworkSimulator
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity

__all__ = ["ServiceResult", "evaluate_requests", "evaluation_time_indices"]


@dataclass(frozen=True)
class ServiceResult:
    """Aggregate outcome of a request-service experiment.

    Attributes:
        n_requests: requests per time step.
        n_time_steps: number of evaluated sample times.
        served_fraction: mean fraction of requests served per step.
        mean_fidelity: mean fidelity over all resolved requests (NaN if
            nothing was served).
        fidelities: fidelity of every resolved request, flattened.
        served_per_step: served fraction at each time step.
        queue_drops: requests rejected by the finite-queue extension
            (always 0 under the paper's infinite-queue assumption).
    """

    n_requests: int
    n_time_steps: int
    served_fraction: float
    mean_fidelity: float
    fidelities: tuple[float, ...]
    served_per_step: tuple[float, ...]
    queue_drops: int = 0

    @property
    def served_percentage(self) -> float:
        """Served requests [%], the quantity in Fig. 7."""
        return 100.0 * self.served_fraction


def evaluation_time_indices(n_samples: int, n_time_steps: int) -> np.ndarray:
    """Evenly spaced sample indices used as evaluation steps.

    The paper repeats its experiment "over 100 time steps of satellite
    movement"; we spread those steps uniformly over the analysis horizon
    so the averages are not biased toward any orbital phase.

    The returned indices are always strictly increasing — duplicates are
    impossible by construction. When ``n_time_steps >= n_samples`` the
    result is ``arange(n_samples)``. Otherwise the linspace stride is
    ``(n_samples - 1) / (n_time_steps - 1) > 1``, so consecutive values
    differ by more than one and their integer floors must each advance
    by at least one. Downstream consumers (budget-table shards, the
    shared-memory sweep partitions) may therefore treat each evaluation
    step as a distinct sample without deduplicating.
    """
    if n_time_steps <= 0:
        raise ValidationError(f"n_time_steps must be positive, got {n_time_steps}")
    if n_samples <= 0:
        raise ValidationError(f"n_samples must be positive, got {n_samples}")
    if n_time_steps >= n_samples:
        return np.arange(n_samples)
    return np.linspace(0, n_samples - 1, n_time_steps).astype(int)


def _simulator_times(simulator: NetworkSimulator) -> np.ndarray:
    """The sample-time grid a simulator's network moves on."""
    for host in simulator.network.hosts():
        if isinstance(host, Satellite):
            return host.ephemeris.times_s
    return np.array([0.0])


def evaluate_requests(
    analysis: SpaceGroundAnalysis | AirGroundAnalysis | NetworkSimulator,
    requests: Sequence[Request],
    *,
    n_time_steps: int = 100,
    fidelity_convention: str = "sqrt",
    queue_capacity: int | None = None,
    use_cache: bool | None = None,
) -> ServiceResult:
    """Serve a request batch across time steps and aggregate (Figs. 7-8).

    Args:
        analysis: vectorized architecture analysis (space- or air-ground),
            or an object-level :class:`NetworkSimulator` — the latter
            serves via full Bellman–Ford routing and is what the
            cache-equivalence suite drives in both cached and direct
            modes.
        requests: the inter-LAN workload.
        n_time_steps: number of evaluation steps spread over the horizon.
        fidelity_convention: "sqrt" (paper numbers) or "squared" (Eq. 5).
        queue_capacity: optional per-step cap on served requests,
            relaxing the paper's infinite-queue assumption; excess
            requests at a step count as dropped, not served.
        use_cache: only meaningful with a :class:`NetworkSimulator` —
            ``True``/``False`` overrides the simulator's link-state-cache
            flag (via a twin simulator on the same network); ``None``
            keeps the simulator as configured. The array analyses are
            already vectorized, so the flag is ignored for them.
    """
    if not requests:
        raise ValidationError("evaluate_requests needs at least one request")
    endpoint_pairs = [r.endpoints for r in requests]
    if isinstance(analysis, NetworkSimulator):
        return _evaluate_requests_simulator(
            analysis,
            endpoint_pairs,
            n_requests=len(requests),
            n_time_steps=n_time_steps,
            fidelity_convention=fidelity_convention,
            queue_capacity=queue_capacity,
            use_cache=use_cache,
        )
    n_samples = (
        analysis.n_times if isinstance(analysis, SpaceGroundAnalysis) else analysis.times_s.size
    )
    indices = evaluation_time_indices(n_samples, n_time_steps)

    fidelities: list[float] = []
    served_per_step: list[float] = []
    drops = 0
    for idx in indices:
        etas = analysis.serve(endpoint_pairs, int(idx))
        served = [e for e in etas if e is not None]
        if queue_capacity is not None and len(served) > queue_capacity:
            drops += len(served) - queue_capacity
            served = served[:queue_capacity]
        served_per_step.append(len(served) / len(requests))
        if served:
            fidelities.extend(
                float(entanglement_fidelity_from_transmissivity(e, convention=fidelity_convention))
                for e in served
            )
    mean_fid = float(np.mean(fidelities)) if fidelities else float("nan")
    return ServiceResult(
        n_requests=len(requests),
        n_time_steps=len(indices),
        served_fraction=float(np.mean(served_per_step)),
        mean_fidelity=mean_fid,
        fidelities=tuple(fidelities),
        served_per_step=tuple(served_per_step),
        queue_drops=drops,
    )


def _evaluate_requests_simulator(
    simulator: NetworkSimulator,
    endpoint_pairs: list[tuple[str, str]],
    *,
    n_requests: int,
    n_time_steps: int,
    fidelity_convention: str,
    queue_capacity: int | None,
    use_cache: bool | None,
) -> ServiceResult:
    """Figs. 7-8 protocol over the object-level simulator.

    Evaluation steps are spread over the network's ephemeris grid; each
    step serves the full batch through Bellman–Ford routing (cached or
    direct, per ``use_cache``).
    """
    wants_cache = simulator.use_cache if use_cache is None else use_cache
    if (
        wants_cache != simulator.use_cache
        or fidelity_convention != simulator.fidelity_convention
    ):
        simulator = NetworkSimulator(
            simulator.network,
            policy=simulator.policy,
            fidelity_convention=fidelity_convention,
            epsilon=simulator.epsilon,
            use_cache=wants_cache,
        )
    times = _simulator_times(simulator)
    indices = evaluation_time_indices(times.size, n_time_steps)

    fidelities: list[float] = []
    served_per_step: list[float] = []
    drops = 0
    for idx in indices:
        outcomes = simulator.serve_requests(endpoint_pairs, float(times[idx]))
        served = [o for o in outcomes if o.served]
        if queue_capacity is not None and len(served) > queue_capacity:
            drops += len(served) - queue_capacity
            served = served[:queue_capacity]
        served_per_step.append(len(served) / n_requests)
        fidelities.extend(o.fidelity for o in served)
    return ServiceResult(
        n_requests=n_requests,
        n_time_steps=len(indices),
        served_fraction=float(np.mean(served_per_step)),
        mean_fidelity=float(np.mean(fidelities)) if fidelities else float("nan"),
        fidelities=tuple(fidelities),
        served_per_step=tuple(served_per_step),
        queue_drops=drops,
    )
