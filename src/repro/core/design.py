"""Constellation design-space exploration: is 53 deg / 500 km right?

The paper fixes a Starlink-like shell (53 deg inclination, 500 km
altitude) without justifying it for a 35-36 deg-latitude target region.
This module sweeps inclination x altitude for the same 108-satellite
pattern and measures regional coverage, answering the obvious referee
question. One representative node per LAN keeps each design point cheap
(intra-LAN geometry differences are negligible at city scale).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channels.fso import FSOChannelModel
from repro.channels.presets import paper_satellite_fso
from repro.core.analysis import SpaceGroundAnalysis
from repro.data.ground_nodes import GroundNode, qntn_local_networks
from repro.errors import ValidationError
from repro.network.links import LinkPolicy
from repro.orbits.ephemeris import generate_movement_sheet
from repro.orbits.walker import qntn_constellation

__all__ = ["DesignPoint", "DesignSweepResult", "design_coverage", "design_sweep"]


def _gateway_sites() -> list[GroundNode]:
    """One representative node per LAN."""
    return [lan.nodes[0] for lan in qntn_local_networks()]


@dataclass(frozen=True)
class DesignPoint:
    """One (inclination, altitude) design evaluation.

    Attributes:
        inclination_deg: shell inclination.
        altitude_km: shell altitude.
        coverage_percentage: regional coverage P [%].
    """

    inclination_deg: float
    altitude_km: float
    coverage_percentage: float


@dataclass(frozen=True)
class DesignSweepResult:
    """All evaluated design points.

    Attributes:
        points: evaluations in sweep order (inclination-major).
    """

    points: tuple[DesignPoint, ...]

    @property
    def best(self) -> DesignPoint:
        """The highest-coverage design."""
        return max(self.points, key=lambda p: p.coverage_percentage)

    def coverage_matrix(
        self, inclinations_deg: list[float], altitudes_km: list[float]
    ) -> np.ndarray:
        """Coverage grid shaped ``(n_inclinations, n_altitudes)``."""
        lookup = {
            (p.inclination_deg, p.altitude_km): p.coverage_percentage
            for p in self.points
        }
        return np.array(
            [[lookup[(i, a)] for a in altitudes_km] for i in inclinations_deg]
        )


def design_coverage(
    inclination_deg: float,
    altitude_km: float,
    *,
    n_satellites: int = 108,
    step_s: float = 120.0,
    duration_s: float = 86400.0,
    fso_model: FSOChannelModel | None = None,
    policy: LinkPolicy | None = None,
    sites: list[GroundNode] | None = None,
) -> float:
    """Regional coverage percentage of one design point.

    The same optical hardware (the calibrated paper preset) is assumed at
    every altitude; only the geometry changes.
    """
    if not 0.0 < inclination_deg <= 180.0:
        raise ValidationError(f"inclination_deg must be in (0, 180], got {inclination_deg}")
    if altitude_km <= 100.0:
        raise ValidationError(f"altitude_km must exceed 100 km, got {altitude_km}")
    elements = qntn_constellation(
        n_satellites,
        inclination_rad=np.radians(inclination_deg),
        semi_major_axis_km=6371.0 + altitude_km,
    )
    ephemeris = generate_movement_sheet(elements, duration_s=duration_s, step_s=step_s)
    analysis = SpaceGroundAnalysis(
        ephemeris,
        sites if sites is not None else _gateway_sites(),
        fso_model or paper_satellite_fso(),
        policy=policy,
        platform_altitude_km=altitude_km,
    )
    return 100.0 * float(analysis.all_pairs_connected().mean())


def design_sweep(
    inclinations_deg: list[float],
    altitudes_km: list[float],
    *,
    n_satellites: int = 108,
    step_s: float = 120.0,
    duration_s: float = 86400.0,
) -> DesignSweepResult:
    """Sweep the (inclination, altitude) grid; inclination-major order."""
    if not inclinations_deg or not altitudes_km:
        raise ValidationError("design_sweep needs non-empty grids")
    points = [
        DesignPoint(
            float(inc),
            float(alt),
            design_coverage(
                float(inc),
                float(alt),
                n_satellites=n_satellites,
                step_s=step_s,
                duration_s=duration_s,
            ),
        )
        for inc in inclinations_deg
        for alt in altitudes_km
    ]
    return DesignSweepResult(tuple(points))
