"""Fast constellation-size sweeps for Figs. 6-8.

The paper's sweeps evaluate 18 prefix constellations (6, 12, ..., 108
satellites). Because each size is a prefix of the Table II deployment
order, a single link-budget pass over the full 108-satellite ephemeris
suffices for all of them: coverage comes from cumulative ORs over the
satellite axis (:meth:`SpaceGroundAnalysis.cumulative_all_pairs_connected`)
and request service from per-size views of the same budget matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.channels.fso import FSOChannelModel
from repro.channels.presets import paper_satellite_fso
from repro.core.analysis import SpaceGroundAnalysis
from repro.core.coverage import CoverageResult, coverage_from_mask
from repro.core.evaluation import ServiceResult, evaluation_time_indices
from repro.core.requests import Request, generate_requests
from repro.data.ground_nodes import GroundNode, all_ground_nodes
from repro.engine.budgets import LinkBudgetTable
from repro.errors import ValidationError
from repro.network.links import LinkPolicy
from repro.obs import events, trace
from repro.orbits.ephemeris import Ephemeris, generate_movement_sheet
from repro.orbits.walker import qntn_constellation
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.store import ArtifactStore
    from repro.faults.schedule import FaultSchedule

__all__ = ["ConstellationSweep", "SweepPoint", "run_constellation_sweep"]

# The sweep's vectorized serve path bypasses NetworkSimulator, so it
# feeds the same instruments the simulator uses (get-or-create resolves
# them to one object). Fidelities are recorded for the full-size
# constellation only, so the histogram mean equals the largest-size row
# of the printed table (the paper's Table III space-ground number).
_SERVED = obs.counter("network.requests.served")
_DENIED = obs.counter("network.requests.denied")
_FIDELITY = obs.histogram("network.fidelity")


def _trace_service_block(
    rec: "trace.TraceRecorder",
    analysis: SpaceGroundAnalysis,
    pairs: list[tuple[str, str]],
    t_indices,
    n_satellites: int,
    convention: str,
) -> None:
    """Record flight-recorder entries for one block of service steps.

    Sampling keys on the (process-global) service-grid index, so shard
    workers and the serial path sample exactly the same requests; the
    served/relay decision comes from
    :meth:`SpaceGroundAnalysis.request_detail`, which reads the same
    budget matrices :meth:`~SpaceGroundAnalysis.serve` does.
    """
    times = analysis.ephemeris.times_s
    for t_idx in t_indices:
        t_idx = int(t_idx)
        t_s = float(times[t_idx])
        for src, dst in pairs:
            if not rec.sampled(src, dst, t_idx):
                continue
            detail = analysis.request_detail(
                src,
                dst,
                t_idx,
                n_satellites=n_satellites,
                max_candidates=rec.config.max_candidates,
            )
            fidelity = None
            if detail["served"]:
                fidelity = float(
                    entanglement_fidelity_from_transmissivity(
                        detail["path_eta"], convention=convention
                    )
                )
            rec.record_request(
                t_s=t_s,
                t_index=t_idx,
                source=src,
                destination=dst,
                source_lan=detail["source_lan"],
                destination_lan=detail["destination_lan"],
                served=detail["served"],
                path=[src, detail["relay"], dst] if detail["served"] else (),
                hop_etas=detail["hop_etas"],
                path_eta=detail["path_eta"],
                fidelity=fidelity,
                relay=detail["relay"],
                cause=detail["cause"],
                candidates=detail["candidates"],
                candidate_counts=detail["candidate_counts"],
            )


def _service_matrix_shard(
    args: tuple,
) -> tuple[list[list[list[float | None]]], dict]:
    """Worker task: serve the request batch at one block of timesteps.

    Attaches the parent's shared-memory budget table (pre-sliced to the
    service evaluation steps) and evaluates every constellation size at
    every timestep of the block — no geometry is recomputed. Returns
    ``([t][size_index] -> etas, shard report)`` for the block, in block
    order; the report mirrors the one produced by
    :func:`repro.parallel.sweep._service_shard` (pid, index range, phase
    timings, metrics delta) plus, when the parent traces, the shard's
    flight-recorder payload under ``"trace"``. Trace recording here is
    explicit (a local recorder, not the process-global hook), so the
    in-process single-block fallback never collides with the parent's
    recorder.
    """
    import os
    import time

    (
        table_handle,
        t_block,
        pairs,
        sizes,
        obs_enabled,
        trace_cfg,
        convention,
        events_cfg,
    ) = args
    from repro.obs.metrics import metrics_delta
    from repro.parallel.shm import ShmAttachment, attach_budget_table

    if obs_enabled:
        obs.enable()
    if events_cfg is not None:
        # Timeline events ride the process-global span hook, so (unlike
        # the explicit trace recorder below) the shard config is only
        # ever sent to pooled tasks — the in-process single-block
        # fallback keeps recording into the parent's recorder directly.
        events.reset_for_worker()
        events.start_shard(events_cfg)
    baseline = obs.registry().snapshot()
    t0 = time.perf_counter()
    shard_rec = trace.shard_recorder(trace_cfg) if trace_cfg is not None else None
    with ShmAttachment() as attachment:
        table = attach_budget_table(table_handle, attachment)
        analysis = SpaceGroundAnalysis(
            table.ephemeris,
            table.sites,
            table.fso_model,
            policy=table.policy,
            platform_altitude_km=table.platform_altitude_km,
            budgets=table,
        )
        t_attach = time.perf_counter()
        results = [
            [analysis.serve(list(pairs), t, n_satellites=n) for n in sizes]
            for t in t_block
        ]
        if shard_rec is not None:
            _trace_service_block(
                shard_rec, analysis, list(pairs), t_block, sizes[-1], convention
            )
    t_serve = time.perf_counter()
    report = {
        "pid": os.getpid(),
        "first_index": int(t_block[0]),
        "last_index": int(t_block[-1]),
        "n_steps": len(t_block),
        "timings_s": {
            "attach": t_attach - t0,
            "serve": t_serve - t_attach,
            "total": t_serve - t0,
        },
        "metrics": metrics_delta(obs.registry().snapshot(), baseline),
    }
    if shard_rec is not None:
        report["trace"] = trace.shard_payload(shard_rec)
    if events_cfg is not None:
        report["events"] = events.finish_shard()
    return results, report


@dataclass(frozen=True)
class SweepPoint:
    """All paper metrics for one constellation size.

    Attributes:
        n_satellites: constellation-prefix size.
        coverage: Fig. 6 point (Eqs. 6-7).
        service: Figs. 7-8 point (served % and fidelities).
    """

    n_satellites: int
    coverage: CoverageResult
    service: ServiceResult


@dataclass(frozen=True)
class ConstellationSweep:
    """Results of the full 6..108 sweep.

    Attributes:
        points: one :class:`SweepPoint` per requested size, in order.
    """

    points: tuple[SweepPoint, ...]

    @property
    def sizes(self) -> list[int]:
        """Swept constellation sizes."""
        return [p.n_satellites for p in self.points]

    @property
    def coverage_percentages(self) -> list[float]:
        """Fig. 6 series."""
        return [p.coverage.percentage for p in self.points]

    @property
    def served_percentages(self) -> list[float]:
        """Fig. 7 series."""
        return [p.service.served_percentage for p in self.points]

    @property
    def mean_fidelities(self) -> list[float]:
        """Fig. 8 series."""
        return [p.service.mean_fidelity for p in self.points]


def run_constellation_sweep(
    sizes: list[int] | None = None,
    *,
    sites: list[GroundNode] | None = None,
    fso_model: FSOChannelModel | None = None,
    policy: LinkPolicy | None = None,
    duration_s: float = 86400.0,
    step_s: float = 30.0,
    n_requests: int = 100,
    n_time_steps: int = 100,
    seed: int | None = 7,
    fidelity_convention: str = "sqrt",
    ephemeris: Ephemeris | None = None,
    use_cache: bool = True,
    store: "ArtifactStore | None" = None,
    n_workers: int = 0,
    faults: "FaultSchedule | dict | str | None" = None,
    fault_seed: int | None = None,
) -> ConstellationSweep:
    """Run the paper's full constellation sweep (Figs. 6, 7 and 8 at once).

    Args:
        sizes: constellation-prefix sizes; defaults to 6, 12, ..., 108.
        sites: ground nodes (Table I by default).
        fso_model / policy: link model and admission policy.
        duration_s / step_s: coverage horizon and cadence (paper: 1 day
            at 30 s).
        n_requests / n_time_steps / seed: the Figs. 7-8 workload.
        fidelity_convention: "sqrt" (paper numbers) or "squared".
        ephemeris: optional pre-generated full-size movement sheet.
        use_cache: share one vectorized link-budget pass
            (:class:`~repro.engine.budgets.LinkBudgetTable`) between the
            coverage and service analyses — the service pass slices the
            coverage pass' matrices at its ~100 evaluation steps instead
            of re-deriving geometry. ``False`` recomputes per analysis
            (the direct path, bitwise-identical results).
        store: content-addressed :class:`~repro.engine.store.ArtifactStore`
            to load/persist the ephemeris and budget matrices across
            runs; defaults to the process-wide
            :func:`~repro.engine.store.default_store` (caching off unless
            configured). On a warm run both the propagation and the
            budget geometry pass are skipped entirely.
        n_workers: fan the Figs. 7-8 service evaluation out over this
            many worker processes (0 = serial). The sliced budget
            matrices travel to workers through shared memory, and
            results are reassembled in time order — output is identical
            for any worker count. Requires ``use_cache``; ignored
            otherwise.
        faults: optional :class:`~repro.faults.FaultSchedule` (or a JSON
            file path / dict form of one) perturbing the sweep without
            touching the physics: satellite outages, station downtime,
            weather fades, link flaps. Stochastic processes in the
            schedule are realized with ``fault_seed`` over
            ``duration_s``. An empty schedule is a bit-identical no-op.
        fault_seed: seed for realizing the schedule's stochastic
            :class:`~repro.faults.FailureProcess` generators.

    Returns:
        :class:`ConstellationSweep` with every size's metrics.
    """
    sweep_sizes = sizes if sizes is not None else list(range(6, 109, 6))
    if not sweep_sizes:
        raise ValidationError("sweep needs at least one constellation size")
    if sorted(sweep_sizes) != sweep_sizes:
        raise ValidationError("sweep sizes must be ascending (prefix property)")
    max_size = sweep_sizes[-1]
    site_list = sites if sites is not None else list(all_ground_nodes())
    model = fso_model or paper_satellite_fso()

    plane = None
    if faults is not None:
        from repro.faults.schedule import coerce_schedule

        schedule = coerce_schedule(faults)
        schedule = schedule.realize(seed=fault_seed, horizon_s=duration_s)
        compiled = schedule.compile()
        if not compiled.is_noop:
            plane = compiled

    if store is None:
        from repro.engine.store import default_store

        store = default_store()

    if ephemeris is None:
        with obs.span("propagate"):
            elements = qntn_constellation(max_size)
            if store is not None:
                ephemeris = store.get_or_build_ephemeris(
                    elements, duration_s=duration_s, step_s=step_s
                )
            else:
                ephemeris = generate_movement_sheet(
                    elements, duration_s=duration_s, step_s=step_s
                )
    elif ephemeris.n_platforms < max_size:
        raise ValidationError(
            f"ephemeris holds {ephemeris.n_platforms} platforms, need {max_size}"
        )

    # One full-horizon analysis for coverage (cumulative over sizes).
    # The store caches healthy budgets only; the fault plane perturbs
    # them after the load/compute step inside the table.
    table = (
        LinkBudgetTable(
            ephemeris, site_list, model, policy=policy, store=store, faults=plane
        )
        if use_cache
        else None
    )
    coverage_analysis = SpaceGroundAnalysis(
        ephemeris, site_list, model, policy=policy, budgets=table, faults=plane
    )
    if table is not None:
        # Budgets are lazy; forcing them here (they are all needed below
        # anyway) keeps the geometry pass out of the routing span.
        with obs.span("budget"):
            table.compute_all()
    with obs.span("route"):
        cumulative = coverage_analysis.cumulative_all_pairs_connected()

    # Flight recorder: one coverage record per ephemeris sample (from the
    # full-size mask — the row the headline coverage number is computed
    # from), so the trace-derived outage timeline and coverage fraction
    # reproduce core.coverage's values exactly.
    recorder = trace.active()
    if recorder is not None:
        recorder.horizon_s = float(duration_s)
        full_mask = cumulative[max_size - 1]
        for i, t in enumerate(ephemeris.times_s):
            recorder.record_coverage(t_s=float(t), connected=bool(full_mask[i]), t_index=i)

    # One reduced-time analysis for request service. With the cache on,
    # its budgets are slices of the coverage pass' matrices — no second
    # geometry pass.
    indices = evaluation_time_indices(ephemeris.n_samples, n_time_steps)
    service_ephemeris = ephemeris.at_time_indices(indices)
    service_table = table.at_time_indices(indices) if table is not None else None
    service_analysis = SpaceGroundAnalysis(
        service_ephemeris,
        site_list,
        model,
        policy=policy,
        budgets=service_table,
        faults=plane,
    )
    requests: list[Request] = generate_requests(site_list, n_requests, seed)
    endpoint_pairs = [r.endpoints for r in requests]

    # etas_per_t[t][size_index] -> per-request path transmissivities.
    # Filled serially, or by shared-memory workers over timestep blocks —
    # both read the same budget matrices, so contents are identical.
    n_steps = service_ephemeris.n_samples
    if n_workers > 0 and service_table is not None and n_steps > 1:
        from repro.parallel.partition import block_partition
        from repro.parallel.shm import ShmArena, publish_budget_table
        from repro.parallel.sweep import parallel_map

        blocks = [
            b
            for b in block_partition(list(range(n_steps)), min(n_workers, n_steps))
            if b
        ]
        service_table.compute_all()
        pooled = len(blocks) > 1
        with obs.span("serve"):
            with ShmArena() as arena:
                handle = publish_budget_table(arena, service_table)
                tasks = [
                    (
                        handle,
                        block,
                        tuple(endpoint_pairs),
                        tuple(sweep_sizes),
                        obs.enabled(),
                        trace.shard_config(int(block[0])),
                        fidelity_convention,
                        events.shard_config(int(block[0])) if pooled else None,
                    )
                    for block in blocks
                ]
                per_block = parallel_map(
                    _service_matrix_shard, tasks, n_workers=n_workers
                )
        etas_per_t = []
        for block_result, report in per_block:
            etas_per_t.extend(block_result)
            metrics = report.pop("metrics", None)
            if pooled and metrics:
                # Serial (single-block) fallback runs in-process and has
                # already hit this registry; merging would double-count.
                obs.registry().merge(metrics)
            # Shard trace payloads fold in block (= time) order; the
            # matrix shard records explicitly into its own recorder, so
            # absorbing is correct for pooled and in-process runs alike.
            trace.absorb_shard(report.pop("trace", None))
            events.absorb_shard(report.pop("events", None))
            obs.record_worker_report(report)
    else:
        with obs.span("serve"):
            etas_per_t = [
                [
                    service_analysis.serve(endpoint_pairs, t_idx, n_satellites=n)
                    for n in sweep_sizes
                ]
                for t_idx in range(n_steps)
            ]
            if recorder is not None:
                _trace_service_block(
                    recorder,
                    service_analysis,
                    endpoint_pairs,
                    range(n_steps),
                    max_size,
                    fidelity_convention,
                )

    points: list[SweepPoint] = []
    for size_idx, n in enumerate(sweep_sizes):
        coverage = coverage_from_mask(
            ephemeris.times_s,
            cumulative[n - 1],
            n_satellites=n,
            horizon_s=duration_s,
        )
        fidelities: list[float] = []
        served_per_step: list[float] = []
        for t_idx in range(n_steps):
            etas = etas_per_t[t_idx][size_idx]
            served = [e for e in etas if e is not None]
            served_per_step.append(len(served) / len(requests))
            fidelities.extend(
                float(
                    entanglement_fidelity_from_transmissivity(
                        e, convention=fidelity_convention
                    )
                )
                for e in served
            )
            if n == max_size:
                _SERVED.inc(len(served))
                _DENIED.inc(len(etas) - len(served))
        if n == max_size:
            for f in fidelities:
                _FIDELITY.observe(f)
        service = ServiceResult(
            n_requests=len(requests),
            n_time_steps=n_steps,
            served_fraction=float(np.mean(served_per_step)),
            mean_fidelity=float(np.mean(fidelities)) if fidelities else float("nan"),
            fidelities=tuple(fidelities),
            served_per_step=tuple(served_per_step),
        )
        points.append(SweepPoint(n, coverage, service))
    return ConstellationSweep(tuple(points))
