"""Transmissivity-threshold identification (paper Section IV-A, Fig. 5).

Sweeps link transmissivity from 0 to 1, distributes a Bell pair through an
amplitude-damping channel at each value via the full Kraus pipeline, and
measures the resulting entanglement fidelity. The threshold is the
smallest transmissivity whose fidelity reaches the application target
(0.9 in the paper, giving the famous 0.7 threshold).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.network.protocols import distribute_entanglement
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity

__all__ = ["ThresholdResult", "transmissivity_threshold_experiment"]


@dataclass(frozen=True)
class ThresholdResult:
    """Fig. 5 data plus the identified threshold.

    Attributes:
        transmissivities: swept eta values.
        fidelities: measured fidelity at each eta.
        target_fidelity: the application requirement.
        threshold: smallest swept eta with fidelity >= target (NaN if the
            target is never reached).
    """

    transmissivities: np.ndarray
    fidelities: np.ndarray
    target_fidelity: float
    threshold: float


def transmissivity_threshold_experiment(
    *,
    step: float = 0.01,
    target_fidelity: float = 0.9,
    convention: str = "sqrt",
    use_kraus_pipeline: bool = True,
) -> ThresholdResult:
    """Reproduce Fig. 5: fidelity vs transmissivity, threshold at F >= 0.9.

    Args:
        step: sweep increment (paper: 0.01 over [0, 1]).
        target_fidelity: fidelity requirement defining the threshold.
        convention: fidelity convention ("sqrt" matches the paper's
            reported 0.7 -> F > 0.9 operating point).
        use_kraus_pipeline: evaluate each point by explicitly applying the
            amplitude-damping Kraus operators to a Bell pair (the paper's
            procedure); ``False`` uses the closed form (identical values,
            used as a cross-check and for speed).
    """
    if not 0.0 < step <= 0.5:
        raise ValidationError(f"step must be in (0, 0.5], got {step}")
    if not 0.0 < target_fidelity <= 1.0:
        raise ValidationError(f"target_fidelity must be in (0, 1], got {target_fidelity}")
    n = int(round(1.0 / step)) + 1
    etas = np.linspace(0.0, 1.0, n)
    if use_kraus_pipeline:
        fidelities = np.array(
            [distribute_entanglement([float(e)]).fidelity(convention) for e in etas]
        )
    else:
        fidelities = np.asarray(
            entanglement_fidelity_from_transmissivity(etas, convention=convention)
        )
    reaching = np.nonzero(fidelities >= target_fidelity)[0]
    threshold = float(etas[reaching[0]]) if reaching.size else float("nan")
    return ThresholdResult(etas, fidelities, target_fidelity, threshold)
