"""Relay-handover analysis for the space-ground architecture.

Satellites drift through the sky, so the Bellman–Ford-optimal relay for a
given city pair changes every few minutes. Each change is an operational
handover: both endpoints must re-point telescopes and re-acquire. This
module quantifies that churn — dwell times per relay, handover counts,
and outage-to-acquisition transitions — which the paper's averaged
metrics hide but an operator must engineer for. (HAP links, by contrast,
never hand over: the platform hovers.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import SpaceGroundAnalysis
from repro.errors import ValidationError
from repro.routing.metrics import DEFAULT_EPSILON

__all__ = ["HandoverStatistics", "handover_statistics", "relay_assignment"]


@dataclass(frozen=True)
class HandoverStatistics:
    """Relay churn for one source/destination pair over the horizon.

    Attributes:
        n_handovers: satellite-to-satellite relay changes.
        n_acquisitions: outage-to-service transitions.
        n_outages: service-to-outage transitions.
        n_relays_used: distinct satellites that ever served the pair.
        mean_dwell_s: mean continuous time on a single relay [s].
        max_dwell_s: longest single-relay assignment [s].
        service_fraction: fraction of samples with a relay assigned.
    """

    n_handovers: int
    n_acquisitions: int
    n_outages: int
    n_relays_used: int
    mean_dwell_s: float
    max_dwell_s: float
    service_fraction: float


def relay_assignment(
    analysis: SpaceGroundAnalysis,
    src_name: str,
    dst_name: str,
    epsilon: float = DEFAULT_EPSILON,
) -> np.ndarray:
    """Best relay satellite index per sample time (-1 when uncovered)."""
    out = np.full(analysis.n_times, -1, dtype=int)
    for t in range(analysis.n_times):
        hit = analysis.best_relay(src_name, dst_name, t, epsilon)
        if hit is not None:
            out[t] = hit[0]
    return out


def handover_statistics(
    analysis: SpaceGroundAnalysis,
    src_name: str,
    dst_name: str,
    *,
    epsilon: float = DEFAULT_EPSILON,
) -> HandoverStatistics:
    """Compute :class:`HandoverStatistics` for one city pair."""
    assignment = relay_assignment(analysis, src_name, dst_name, epsilon)
    times = analysis.times_s
    if times.size < 2:
        raise ValidationError("handover analysis needs at least two samples")
    step = float(times[1] - times[0])

    handovers = 0
    acquisitions = 0
    outages = 0
    dwells: list[float] = []
    current = int(assignment[0])
    dwell = step if current >= 0 else 0.0
    for value in assignment[1:]:
        value = int(value)
        if value == current:
            if value >= 0:
                dwell += step
            continue
        if current >= 0:
            dwells.append(dwell)
            if value >= 0:
                handovers += 1
            else:
                outages += 1
        elif value >= 0:
            acquisitions += 1
        current = value
        dwell = step if value >= 0 else 0.0
    if current >= 0 and dwell > 0:
        dwells.append(dwell)

    used = {int(v) for v in assignment if v >= 0}
    return HandoverStatistics(
        n_handovers=handovers,
        n_acquisitions=acquisitions,
        n_outages=outages,
        n_relays_used=len(used),
        mean_dwell_s=float(np.mean(dwells)) if dwells else 0.0,
        max_dwell_s=float(max(dwells)) if dwells else 0.0,
        service_fraction=float((assignment >= 0).mean()),
    )
