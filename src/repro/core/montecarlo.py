"""Monte Carlo weather studies (relaxing the paper's ideal-conditions setup).

The paper assumes stable clear weather (Section III-D) and flags weather
as the HAP's key risk (Section V). This module samples regional weather
conditions — one condition per trial; at ~130 km the three cities share a
synoptic system — rebuilds the FSO models with the sampled extinction and
turbulence multipliers, and re-evaluates the air-ground architecture.
Trials are independent, so they parallelise through
:func:`repro.parallel.sweep.parallel_sweep` with per-trial seed streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channels.atmosphere import WeatherCondition, WeatherModel
from repro.channels.fso import FSOChannelModel
from repro.channels.presets import paper_atmosphere, paper_hap_fso
from repro.constants import QNTN_HAP_ALTITUDE_KM, QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG
from repro.core.analysis import AirGroundAnalysis
from repro.data.ground_nodes import all_ground_nodes
from repro.errors import ValidationError
from repro.utils.seeding import as_generator

__all__ = [
    "WeatherTrialResult",
    "WeatherStudyResult",
    "hap_site_geometry",
    "run_weather_trial",
    "weather_study",
]


@dataclass(frozen=True)
class WeatherTrialResult:
    """One sampled-weather day of the air-ground architecture.

    Attributes:
        condition: the sampled regional weather.
        served_fraction: fraction of requests served (0 or 1 per request;
            weather is constant within the trial).
        mean_fidelity: mean delivered fidelity (NaN when nothing served).
    """

    condition: WeatherCondition
    served_fraction: float
    mean_fidelity: float


@dataclass(frozen=True)
class WeatherStudyResult:
    """Aggregate of a weather Monte Carlo study.

    Attributes:
        trials: per-trial outcomes.
        availability: mean served fraction across trials — the all-weather
            availability of the air-ground architecture.
        mean_fidelity_when_available: fidelity conditioned on service.
    """

    trials: tuple[WeatherTrialResult, ...]

    @property
    def availability(self) -> float:
        """Mean served fraction over all trials."""
        return float(np.mean([t.served_fraction for t in self.trials]))

    @property
    def mean_fidelity_when_available(self) -> float:
        """Mean fidelity over trials that served at least one request."""
        fids = [t.mean_fidelity for t in self.trials if t.served_fraction > 0.0]
        return float(np.mean(fids)) if fids else float("nan")

    def condition_counts(self) -> dict[WeatherCondition, int]:
        """How often each condition was drawn."""
        counts: dict[WeatherCondition, int] = {}
        for t in self.trials:
            counts[t.condition] = counts.get(t.condition, 0) + 1
        return counts


def _weathered_hap_model(condition: WeatherCondition) -> FSOChannelModel:
    """The paper HAP preset with a weather condition applied."""
    base = paper_hap_fso()
    weather = WeatherModel()
    return FSOChannelModel(
        wavelength_m=base.wavelength_m,
        beam_waist_m=base.beam_waist_m,
        rx_aperture_radius_m=base.rx_aperture_radius_m,
        receiver_efficiency=base.receiver_efficiency,
        atmosphere=weather.perturbed_atmosphere(paper_atmosphere(), condition),
        turbulence=True,
        uplink=False,
        cn2_scale=weather.cn2_multiplier(condition),
    )


def hap_site_geometry(
    sites: list | None = None,
) -> dict[str, tuple[float, float]]:
    """``site name -> (elevation_rad, range_km)`` of every HAP link.

    The HAP hovers at a fixed position, so this geometry is constant
    across weather trials; the study computes it once and ships it to
    workers instead of letting every trial redo the ECEF transforms.
    """
    sites = list(all_ground_nodes()) if sites is None else list(sites)
    analysis = AirGroundAnalysis(
        sites,
        paper_hap_fso(),
        hap_lat_deg=QNTN_HAP_LAT_DEG,
        hap_lon_deg=QNTN_HAP_LON_DEG,
        hap_alt_km=QNTN_HAP_ALTITUDE_KM,
    )
    return {s.name: analysis.site_geometry(s.name) for s in sites}


def run_weather_trial(
    n_requests: int = 50,
    *,
    seed: int | np.random.Generator | None = None,
    site_geometry: dict[str, tuple[float, float]] | None = None,
) -> WeatherTrialResult:
    """One Monte Carlo trial: sample weather, evaluate the HAP network.

    Module-level and picklable so it can fan out across a process pool.

    Args:
        site_geometry: optional precomputed HAP-link geometry (see
            :func:`hap_site_geometry`); transmissivities still depend on
            the sampled weather and are evaluated per trial.
    """
    if n_requests <= 0:
        raise ValidationError(f"n_requests must be positive, got {n_requests}")
    rng = as_generator(seed)
    condition = WeatherModel().sample(rng)
    sites = list(all_ground_nodes())
    analysis = AirGroundAnalysis(
        sites,
        _weathered_hap_model(condition),
        hap_lat_deg=QNTN_HAP_LAT_DEG,
        hap_lon_deg=QNTN_HAP_LON_DEG,
        hap_alt_km=QNTN_HAP_ALTITUDE_KM,
        site_geometry=site_geometry,
    )
    from repro.core.requests import generate_requests
    from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity

    requests = generate_requests(sites, n_requests, rng)
    etas = analysis.serve([r.endpoints for r in requests], 0)
    served = [e for e in etas if e is not None]
    fidelity = (
        float(
            np.mean(
                [float(entanglement_fidelity_from_transmissivity(e)) for e in served]
            )
        )
        if served
        else float("nan")
    )
    return WeatherTrialResult(condition, len(served) / n_requests, fidelity)


def weather_study(
    n_trials: int = 100,
    *,
    n_requests: int = 50,
    seed: int | None = 11,
    n_workers: int = 0,
) -> WeatherStudyResult:
    """Run a weather Monte Carlo study of the air-ground architecture.

    Args:
        n_trials: independent sampled-weather days.
        n_requests: requests per trial.
        seed: root seed; per-trial streams are spawned from it.
        n_workers: process count for the trial fan-out (0 = serial).
    """
    if n_trials <= 0:
        raise ValidationError(f"n_trials must be positive, got {n_trials}")
    from repro.parallel.sweep import parallel_sweep

    # The hover geometry is trial-invariant: compute it once here and
    # ship it to workers as shared arrays (zero-copy under a pool)
    # instead of re-deriving it inside all n_trials tasks.
    sites = list(all_ground_nodes())
    geometry = hap_site_geometry(sites)
    el = np.array([geometry[s.name][0] for s in sites])
    rng_km = np.array([geometry[s.name][1] for s in sites])
    sweep = parallel_sweep(
        _trial_task,
        [n_requests] * n_trials,
        seed=seed,
        n_workers=n_workers,
        shared={"hap_elevation_rad": el, "hap_range_km": rng_km},
    )
    return WeatherStudyResult(tuple(sweep.results))


def _trial_task(
    n_requests: int, seed: int | None = None, shared: dict | None = None
) -> WeatherTrialResult:
    geometry = None
    if shared is not None:
        sites = list(all_ground_nodes())
        geometry = {
            s.name: (float(e), float(r))
            for s, e, r in zip(
                sites, shared["hap_elevation_rad"], shared["hap_range_km"]
            )
        }
    return run_weather_trial(n_requests, seed=seed, site_geometry=geometry)
