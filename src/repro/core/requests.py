"""Random entanglement-distribution requests between LANs.

The paper's workload: 100 random requests whose source and destination lie
in *different* local networks (Sections IV-B, IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.ground_nodes import GroundNode
from repro.errors import ValidationError
from repro.utils.seeding import as_generator

__all__ = ["Request", "generate_requests"]


@dataclass(frozen=True)
class Request:
    """An entanglement-distribution request.

    Attributes:
        source: source node name.
        destination: destination node name.
        source_lan / destination_lan: owning LAN names (always distinct).
    """

    source: str
    destination: str
    source_lan: str
    destination_lan: str

    def __post_init__(self) -> None:
        if self.source_lan == self.destination_lan:
            raise ValidationError(
                f"request endpoints must be in different LANs, both in {self.source_lan!r}"
            )
        if self.source == self.destination:
            raise ValidationError(f"request endpoints must differ, got {self.source!r} twice")

    @property
    def endpoints(self) -> tuple[str, str]:
        """(source, destination) node names."""
        return self.source, self.destination


def generate_requests(
    sites: list[GroundNode],
    n_requests: int,
    seed: int | np.random.Generator | None = None,
) -> list[Request]:
    """Draw inter-LAN requests uniformly (paper workload).

    Source node is uniform over all sites; destination is uniform over the
    sites of the other LANs.

    Args:
        sites: candidate endpoints; must span at least two LANs.
        n_requests: how many requests to draw.
        seed: RNG seed or generator.
    """
    if n_requests < 0:
        raise ValidationError(f"n_requests must be >= 0, got {n_requests}")
    lans = {s.network for s in sites}
    if len(lans) < 2:
        raise ValidationError("request generation needs sites from at least two LANs")
    rng = as_generator(seed)
    requests: list[Request] = []
    for _ in range(n_requests):
        src = sites[int(rng.integers(len(sites)))]
        others = [s for s in sites if s.network != src.network]
        dst = others[int(rng.integers(len(others)))]
        requests.append(Request(src.name, dst.name, src.network, dst.network))
    return requests
