"""The two QNTN interconnection architectures, plus the hybrid extension.

Each architecture knows how to build both evaluation views:

* ``analysis()`` — the vectorized array engine used by the paper-scale
  sweeps (Figs. 6-8, Table III);
* ``build_simulator()`` — the object-level
  :class:`~repro.network.simulator.NetworkSimulator` with real ``Host``
  and ``QuantumChannel`` objects, used by examples, tests, and anything
  that needs full protocol state.

``evaluate()`` runs the paper's full experiment for the architecture and
returns an :class:`ArchitectureResult` (one row of Table III).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channels.fso import FSOChannelModel
from repro.channels.presets import paper_hap_fso, paper_satellite_fso
from repro.constants import (
    QNTN_HAP_ALTITUDE_KM,
    QNTN_HAP_LAT_DEG,
    QNTN_HAP_LON_DEG,
    QNTN_SATELLITE_ALTITUDE_KM,
)
from repro.core.analysis import AirGroundAnalysis, SpaceGroundAnalysis
from repro.core.coverage import CoverageResult, coverage_from_mask
from repro.core.evaluation import ServiceResult, evaluate_requests
from repro.core.requests import generate_requests
from repro.data.ground_nodes import GroundNode, all_ground_nodes
from repro.errors import ValidationError
from repro.network.hap import HAP
from repro.network.links import LinkPolicy
from repro.network.simulator import NetworkSimulator
from repro.network.topology import attach_hap, attach_satellites, build_qntn_ground_network
from repro.orbits.ephemeris import Ephemeris, generate_movement_sheet
from repro.orbits.walker import qntn_constellation
from repro.utils.intervals import Interval

__all__ = [
    "ArchitectureResult",
    "SpaceGroundArchitecture",
    "AirGroundArchitecture",
    "HybridArchitecture",
]


@dataclass(frozen=True)
class ArchitectureResult:
    """One architecture's evaluation summary (a row of Table III).

    Attributes:
        name: architecture label.
        coverage: coverage period result (Eqs. 6-7).
        service: served-request and fidelity aggregates (Figs. 7-8).
    """

    name: str
    coverage: CoverageResult
    service: ServiceResult

    @property
    def coverage_percentage(self) -> float:
        """P [%]."""
        return self.coverage.percentage

    @property
    def served_percentage(self) -> float:
        """Served requests [%]."""
        return self.service.served_percentage

    @property
    def mean_fidelity(self) -> float:
        """Average entanglement fidelity over resolved requests."""
        return self.service.mean_fidelity


class SpaceGroundArchitecture:
    """LEO-constellation interconnection (paper Section II-B).

    Args:
        n_satellites: constellation size (paper sweeps 6..108).
        sites: ground nodes; defaults to Table I.
        fso_model: satellite-ground channel; defaults to the paper preset.
        policy: link admission policy.
        duration_s / step_s: movement-sheet horizon and cadence.
        ephemeris: pre-generated movement sheet (overrides n_satellites'
            default generation; must contain at least ``n_satellites``
            platforms — the prefix is used).
    """

    name = "Space-Ground"

    def __init__(
        self,
        n_satellites: int = 108,
        *,
        sites: list[GroundNode] | None = None,
        fso_model: FSOChannelModel | None = None,
        policy: LinkPolicy | None = None,
        duration_s: float = 86400.0,
        step_s: float = 30.0,
        ephemeris: Ephemeris | None = None,
    ) -> None:
        if n_satellites < 1:
            raise ValidationError(f"n_satellites must be >= 1, got {n_satellites}")
        self.n_satellites = n_satellites
        self.sites = sites if sites is not None else list(all_ground_nodes())
        self.fso_model = fso_model or paper_satellite_fso()
        self.policy = policy or LinkPolicy()
        self.duration_s = duration_s
        self.step_s = step_s
        if ephemeris is not None:
            if ephemeris.n_platforms < n_satellites:
                raise ValidationError(
                    f"ephemeris holds {ephemeris.n_platforms} platforms, "
                    f"need {n_satellites}"
                )
            ephemeris = ephemeris.subset(range(n_satellites))
        self._ephemeris = ephemeris

    @property
    def ephemeris(self) -> Ephemeris:
        """The constellation movement sheet (generated on first use).

        Loaded from the process-wide artifact store when one is
        configured, so repeat runs skip propagation.
        """
        if self._ephemeris is None:
            from repro.engine.store import default_store

            store = default_store()
            elements = qntn_constellation(self.n_satellites)
            if store is not None:
                self._ephemeris = store.get_or_build_ephemeris(
                    elements, duration_s=self.duration_s, step_s=self.step_s
                )
            else:
                self._ephemeris = generate_movement_sheet(
                    elements, duration_s=self.duration_s, step_s=self.step_s
                )
        return self._ephemeris

    def analysis(self) -> SpaceGroundAnalysis:
        """Vectorized analysis engine for this configuration.

        Budget matrices go through the artifact store when one is
        configured (see :func:`repro.engine.store.default_store`).
        """
        from repro.engine.budgets import LinkBudgetTable
        from repro.engine.store import default_store

        store = default_store()
        budgets = (
            LinkBudgetTable(
                self.ephemeris,
                self.sites,
                self.fso_model,
                policy=self.policy,
                platform_altitude_km=QNTN_SATELLITE_ALTITUDE_KM,
                store=store,
            )
            if store is not None
            else None
        )
        return SpaceGroundAnalysis(
            self.ephemeris,
            self.sites,
            self.fso_model,
            policy=self.policy,
            platform_altitude_km=QNTN_SATELLITE_ALTITUDE_KM,
            budgets=budgets,
        )

    def build_simulator(self, **simulator_kwargs: object) -> NetworkSimulator:
        """Object-level simulator with full Host/Channel state."""
        network = build_qntn_ground_network()
        attach_satellites(
            network,
            self.ephemeris,
            self.fso_model,
            nominal_altitude_km=QNTN_SATELLITE_ALTITUDE_KM,
        )
        return NetworkSimulator(network, policy=self.policy, **simulator_kwargs)

    def evaluate(
        self,
        *,
        n_requests: int = 100,
        n_time_steps: int = 100,
        seed: int | None = 7,
        fidelity_convention: str = "sqrt",
    ) -> ArchitectureResult:
        """Run the paper's full experiment for this constellation size."""
        analysis = self.analysis()
        mask = analysis.all_pairs_connected()
        coverage = coverage_from_mask(
            analysis.times_s, mask, n_satellites=self.n_satellites, horizon_s=self.duration_s
        )
        requests = generate_requests(self.sites, n_requests, seed)
        service = evaluate_requests(
            analysis,
            requests,
            n_time_steps=n_time_steps,
            fidelity_convention=fidelity_convention,
        )
        return ArchitectureResult(self.name, coverage, service)


class AirGroundArchitecture:
    """Single-HAP interconnection (paper Section II-C).

    Args:
        sites: ground nodes; defaults to Table I.
        fso_model: HAP-ground channel; defaults to the paper preset.
        policy: link admission policy.
        hap_lat_deg / hap_lon_deg / hap_alt_km: hover point (paper values).
        operational_windows: optional duty-cycle intervals; ``None``
            reproduces the paper's always-on assumption.
        duration_s / step_s: evaluation horizon and cadence.
    """

    name = "Air-Ground"

    def __init__(
        self,
        *,
        sites: list[GroundNode] | None = None,
        fso_model: FSOChannelModel | None = None,
        policy: LinkPolicy | None = None,
        hap_lat_deg: float = QNTN_HAP_LAT_DEG,
        hap_lon_deg: float = QNTN_HAP_LON_DEG,
        hap_alt_km: float = QNTN_HAP_ALTITUDE_KM,
        operational_windows: list[Interval] | None = None,
        duration_s: float = 86400.0,
        step_s: float = 30.0,
    ) -> None:
        self.sites = sites if sites is not None else list(all_ground_nodes())
        self.fso_model = fso_model or paper_hap_fso()
        self.policy = policy or LinkPolicy()
        self.hap_lat_deg = hap_lat_deg
        self.hap_lon_deg = hap_lon_deg
        self.hap_alt_km = hap_alt_km
        self.operational_windows = operational_windows
        self.duration_s = duration_s
        self.step_s = step_s

    def _times(self) -> np.ndarray:
        n = int(self.duration_s / self.step_s)
        return np.arange(n, dtype=float) * self.step_s

    def _operational_mask(self, times: np.ndarray) -> np.ndarray:
        if self.operational_windows is None:
            return np.ones(times.size, dtype=bool)
        hap = HAP(operational_windows=self.operational_windows)
        return np.array([hap.is_operational(float(t)) for t in times])

    def analysis(self) -> AirGroundAnalysis:
        """Vectorized analysis engine for the HAP configuration."""
        times = self._times()
        return AirGroundAnalysis(
            self.sites,
            self.fso_model,
            hap_lat_deg=self.hap_lat_deg,
            hap_lon_deg=self.hap_lon_deg,
            hap_alt_km=self.hap_alt_km,
            policy=self.policy,
            operational_mask=self._operational_mask(times),
            times_s=times,
        )

    def build_simulator(self, **simulator_kwargs: object) -> NetworkSimulator:
        """Object-level simulator with full Host/Channel state."""
        network = build_qntn_ground_network()
        hap = HAP(
            "hap-0",
            self.hap_lat_deg,
            self.hap_lon_deg,
            self.hap_alt_km,
            operational_windows=self.operational_windows,
        )
        attach_hap(network, hap, self.fso_model)
        return NetworkSimulator(network, policy=self.policy, **simulator_kwargs)

    def evaluate(
        self,
        *,
        n_requests: int = 100,
        n_time_steps: int = 100,
        seed: int | None = 7,
        fidelity_convention: str = "sqrt",
    ) -> ArchitectureResult:
        """Run the paper's full experiment for the HAP architecture."""
        analysis = self.analysis()
        mask = analysis.all_pairs_connected()
        coverage = coverage_from_mask(
            analysis.times_s, mask, n_satellites=0, horizon_s=self.duration_s
        )
        requests = generate_requests(self.sites, n_requests, seed)
        service = evaluate_requests(
            analysis,
            requests,
            n_time_steps=n_time_steps,
            fidelity_convention=fidelity_convention,
        )
        return ArchitectureResult(self.name, coverage, service)


class HybridArchitecture:
    """Hybrid space/air interconnection (the paper's future-work proposal).

    A duty-cycled HAP carries traffic while operational; outside its
    windows, requests fall back to the constellation. Coverage is the
    union of the two masks; a request's fidelity uses whichever relay the
    routing metric prefers at that instant.

    Args:
        space: the constellation component.
        air: the HAP component (typically with operational_windows set).
    """

    name = "Hybrid"

    def __init__(self, space: SpaceGroundArchitecture, air: AirGroundArchitecture) -> None:
        if space.duration_s != air.duration_s or space.step_s != air.step_s:
            raise ValidationError("hybrid components must share horizon and cadence")
        self.space = space
        self.air = air

    def evaluate(
        self,
        *,
        n_requests: int = 100,
        n_time_steps: int = 100,
        seed: int | None = 7,
        fidelity_convention: str = "sqrt",
    ) -> ArchitectureResult:
        """Joint evaluation: per request, the better of the two relays."""
        space_analysis = self.space.analysis()
        air_analysis = self.air.analysis()

        mask = space_analysis.all_pairs_connected() | air_analysis.all_pairs_connected()
        coverage = coverage_from_mask(
            space_analysis.times_s,
            mask,
            n_satellites=self.space.n_satellites,
            horizon_s=self.space.duration_s,
        )

        requests = generate_requests(self.space.sites, n_requests, seed)
        endpoint_pairs = [r.endpoints for r in requests]
        from repro.core.evaluation import evaluation_time_indices
        from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity

        indices = evaluation_time_indices(space_analysis.n_times, n_time_steps)
        fidelities: list[float] = []
        served_per_step: list[float] = []
        for idx in indices:
            etas_space = space_analysis.serve(endpoint_pairs, int(idx))
            etas_air = air_analysis.serve(endpoint_pairs, int(idx))
            served = 0
            for es, ea in zip(etas_space, etas_air):
                best = max((e for e in (es, ea) if e is not None), default=None)
                if best is not None:
                    served += 1
                    fidelities.append(
                        float(
                            entanglement_fidelity_from_transmissivity(
                                best, convention=fidelity_convention
                            )
                        )
                    )
            served_per_step.append(served / len(requests))

        service = ServiceResult(
            n_requests=len(requests),
            n_time_steps=len(indices),
            served_fraction=float(np.mean(served_per_step)),
            mean_fidelity=float(np.mean(fidelities)) if fidelities else float("nan"),
            fidelities=tuple(fidelities),
            served_per_step=tuple(served_per_step),
        )
        return ArchitectureResult(self.name, coverage, service)
