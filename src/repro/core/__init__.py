"""The paper's contribution: QNTN architecture construction and evaluation.

High-level entry points:

* :class:`~repro.core.architecture.SpaceGroundArchitecture` /
  :class:`~repro.core.architecture.AirGroundArchitecture` /
  :class:`~repro.core.architecture.HybridArchitecture` — build and
  evaluate the paper's two interconnection approaches (plus the hybrid
  future-work extension).
* :func:`~repro.core.threshold.transmissivity_threshold_experiment` —
  Fig. 5.
* :func:`~repro.core.comparison.compare_architectures` — Table III.
"""

from repro.core.analysis import AirGroundAnalysis, SpaceGroundAnalysis
from repro.core.design import DesignPoint, DesignSweepResult, design_coverage, design_sweep
from repro.core.handover import HandoverStatistics, handover_statistics, relay_assignment
from repro.core.montecarlo import WeatherStudyResult, run_weather_trial, weather_study
from repro.core.placement import HapFleet, min_site_transmissivity, optimize_hap_position
from repro.core.report import ReproductionReport, full_reproduction_report
from repro.core.waiting import WaitingTimeResult, sample_waiting_times, waiting_time_analysis
from repro.core.passes import PassStatistics, coverage_gaps, pass_statistics, site_pass_statistics
from repro.core.timing import EntanglementRateModel, PathTiming, link_latency_s, path_timing
from repro.core.architecture import (
    AirGroundArchitecture,
    ArchitectureResult,
    HybridArchitecture,
    SpaceGroundArchitecture,
)
from repro.core.comparison import ComparisonRow, compare_architectures
from repro.core.coverage import CoverageResult, constellation_coverage_sweep
from repro.core.evaluation import ServiceResult, evaluate_requests
from repro.core.requests import Request, generate_requests
from repro.core.sweeps import ConstellationSweep, SweepPoint, run_constellation_sweep
from repro.core.threshold import ThresholdResult, transmissivity_threshold_experiment

__all__ = [
    "SpaceGroundAnalysis",
    "AirGroundAnalysis",
    "SpaceGroundArchitecture",
    "AirGroundArchitecture",
    "HybridArchitecture",
    "ArchitectureResult",
    "CoverageResult",
    "constellation_coverage_sweep",
    "Request",
    "generate_requests",
    "ServiceResult",
    "evaluate_requests",
    "ThresholdResult",
    "transmissivity_threshold_experiment",
    "ComparisonRow",
    "compare_architectures",
    "ConstellationSweep",
    "SweepPoint",
    "run_constellation_sweep",
    "EntanglementRateModel",
    "PathTiming",
    "link_latency_s",
    "path_timing",
    "PassStatistics",
    "pass_statistics",
    "site_pass_statistics",
    "coverage_gaps",
    "weather_study",
    "run_weather_trial",
    "WeatherStudyResult",
    "design_coverage",
    "design_sweep",
    "DesignPoint",
    "DesignSweepResult",
    "handover_statistics",
    "relay_assignment",
    "HandoverStatistics",
    "optimize_hap_position",
    "min_site_transmissivity",
    "HapFleet",
    "waiting_time_analysis",
    "sample_waiting_times",
    "WaitingTimeResult",
    "full_reproduction_report",
    "ReproductionReport",
]
