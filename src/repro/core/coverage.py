"""Coverage-period analysis (paper Eqs. 6-7, Fig. 6).

Coverage is the total time during which every LAN pair is bridged by at
least one usable satellite link on both sides. The per-sample mask comes
from :class:`~repro.core.analysis.SpaceGroundAnalysis`; this module turns
it into intervals, T_c minutes, and the percentage P of the day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro import obs
from repro.channels.fso import FSOChannelModel
from repro.channels.presets import paper_satellite_fso
from repro.core.analysis import SpaceGroundAnalysis
from repro.data.ground_nodes import GroundNode, all_ground_nodes
from repro.network.links import LinkPolicy
from repro.orbits.ephemeris import Ephemeris, generate_movement_sheet
from repro.orbits.walker import qntn_constellation
from repro.utils.intervals import Interval, intervals_from_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.store import ArtifactStore

__all__ = [
    "CoverageResult",
    "coverage_from_mask",
    "outage_intervals",
    "constellation_coverage_sweep",
]


@dataclass(frozen=True)
class CoverageResult:
    """Coverage of one constellation configuration.

    Attributes:
        n_satellites: constellation size.
        intervals: connected intervals over the horizon.
        total_minutes: T_c, Eq. 6 [min].
        percentage: P, Eq. 7 [%].
    """

    n_satellites: int
    intervals: tuple[Interval, ...]
    total_minutes: float
    percentage: float


def coverage_from_mask(
    times_s: Sequence[float],
    mask: np.ndarray,
    *,
    n_satellites: int,
    horizon_s: float,
) -> CoverageResult:
    """Convert a per-sample connectivity mask into a :class:`CoverageResult`."""
    intervals = tuple(intervals_from_mask(np.asarray(times_s, dtype=float), mask))
    total_s = sum(iv.duration for iv in intervals)
    return CoverageResult(
        n_satellites=n_satellites,
        intervals=intervals,
        total_minutes=total_s / 60.0,
        percentage=100.0 * total_s / horizon_s,
    )


def outage_intervals(
    times_s: Sequence[float], mask: np.ndarray
) -> tuple[Interval, ...]:
    """Contiguous *disconnected* windows — the complement timeline.

    The same half-open interval semantics as the coverage intervals
    (:func:`repro.utils.intervals.intervals_from_mask` on the inverted
    mask), so outage and coverage durations partition the horizon.
    """
    inverted = ~np.asarray(mask, dtype=bool)
    return tuple(intervals_from_mask(np.asarray(times_s, dtype=float), inverted))


def constellation_coverage_sweep(
    n_satellites_list: Sequence[int],
    *,
    sites: list[GroundNode] | None = None,
    fso_model: FSOChannelModel | None = None,
    policy: LinkPolicy | None = None,
    duration_s: float = 86400.0,
    step_s: float = 30.0,
    ephemeris_factory: Callable[[int], Ephemeris] | None = None,
    use_cache: bool = True,
    store: "ArtifactStore | None" = None,
) -> list[CoverageResult]:
    """Coverage percentage versus constellation size (Fig. 6).

    The full 108-satellite ephemeris is generated once; each sweep point
    analyses the prefix subset, matching the paper's incremental
    deployment order (Table II).

    Args:
        n_satellites_list: constellation sizes, e.g. ``range(6, 109, 6)``.
        sites: ground nodes; defaults to Table I.
        fso_model: defaults to the calibrated paper preset.
        policy: defaults to the paper thresholds.
        duration_s / step_s: analysis horizon and cadence.
        ephemeris_factory: override for testing (maps size -> ephemeris).
        use_cache: evaluate every size from one full-constellation
            link-budget pass (cumulative ORs over the satellite axis, the
            paper's prefix property) instead of one geometry pass per
            size. Ignored when ``ephemeris_factory`` is given — a custom
            factory need not produce prefix subsets. The direct per-size
            path (``False``) produces identical masks and is kept as the
            test oracle.
        store: :class:`~repro.engine.store.ArtifactStore` for cross-run
            caching of the ephemeris and (on the cached path) the budget
            matrices; defaults to the process-wide
            :func:`~repro.engine.store.default_store`.
    """
    sizes = list(n_satellites_list)
    if not sizes:
        return []
    site_list = sites if sites is not None else list(all_ground_nodes())
    model = fso_model or paper_satellite_fso()

    if store is None:
        from repro.engine.store import default_store

        store = default_store()

    if ephemeris_factory is None:
        with obs.span("propagate"):
            elements = qntn_constellation(max(sizes))
            if store is not None:
                full = store.get_or_build_ephemeris(
                    elements, duration_s=duration_s, step_s=step_s
                )
            else:
                full = generate_movement_sheet(
                    elements, duration_s=duration_s, step_s=step_s
                )
        if use_cache:
            from repro.engine.budgets import LinkBudgetTable

            table = LinkBudgetTable(full, site_list, model, policy=policy, store=store)
            analysis = SpaceGroundAnalysis(
                full, site_list, model, policy=policy, budgets=table
            )
            with obs.span("budget"):
                table.compute_all()
            with obs.span("route"):
                cumulative = analysis.cumulative_all_pairs_connected()
            return [
                coverage_from_mask(
                    full.times_s,
                    cumulative[n - 1],
                    n_satellites=n,
                    horizon_s=duration_s,
                )
                for n in sizes
            ]

        def ephemeris_factory(n: int) -> Ephemeris:
            return full.subset(range(n))

    results: list[CoverageResult] = []
    for n in sizes:
        eph = ephemeris_factory(n)
        analysis = SpaceGroundAnalysis(eph, site_list, model, policy=policy)
        with obs.span("route"):
            mask = analysis.all_pairs_connected()
        results.append(
            coverage_from_mask(
                eph.times_s, mask, n_satellites=n, horizon_s=duration_s
            )
        )
    return results
