"""Latency and entanglement-throughput models.

The paper's Section II-D argues space-ground links pay a latency penalty
over air-ground ones but does not quantify it. This module does: photon
flight times over fiber/free space, the classical heralding handshake
that every entanglement-distribution attempt needs, and the resulting
heralded pair rates.

Model: a source at the relay (satellite/HAP) emits pair attempts at
``source_rate_hz``; an attempt succeeds end-to-end with probability
``eta_path`` (losses multiply, Section III-A), and both endpoints learn of
success only after the classical acknowledgement returns. Attempts are
pipelined, so the steady-state pair rate is ``source_rate * eta_path``
while the time-to-first-pair pays one handshake plus the geometric wait.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FIBER_REFRACTIVE_INDEX, SPEED_OF_LIGHT_KM_S
from repro.errors import ValidationError
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "link_latency_s",
    "PathTiming",
    "path_timing",
    "EntanglementRateModel",
]


def link_latency_s(distance_km: float, medium: str = "free_space") -> float:
    """One-way signal latency over a link [s].

    Args:
        distance_km: path length.
        medium: ``"free_space"`` (FSO / radio) or ``"fiber"`` (group index
            1.468).
    """
    if distance_km < 0:
        raise ValidationError(f"distance_km must be >= 0, got {distance_km}")
    if medium == "free_space":
        return distance_km / SPEED_OF_LIGHT_KM_S
    if medium == "fiber":
        return distance_km * FIBER_REFRACTIVE_INDEX / SPEED_OF_LIGHT_KM_S
    raise ValidationError(f"unknown medium {medium!r}")


@dataclass(frozen=True)
class PathTiming:
    """Timing breakdown of one entanglement-distribution attempt.

    Attributes:
        photon_time_s: flight time of the slower photon to its endpoint.
        classical_confirm_s: time for the success heralds to reach both
            endpoints (one-way, piggybacked on the same geometry).
        handshake_s: photon flight + classical confirmation — the minimum
            time before the pair is usable.
    """

    photon_time_s: float
    classical_confirm_s: float

    @property
    def handshake_s(self) -> float:
        """Total attempt handshake latency [s]."""
        return self.photon_time_s + self.classical_confirm_s


def path_timing(
    leg_distances_km: tuple[float, float] | list[float],
    *,
    media: tuple[str, str] | list[str] = ("free_space", "free_space"),
) -> PathTiming:
    """Timing of a relay path: the relay beams one photon down each leg.

    Args:
        leg_distances_km: (relay -> source, relay -> destination) lengths.
        media: medium per leg.

    Both photons fly simultaneously; the handshake completes when the
    slower endpoint has both its photon and the other side's herald
    (which crosses relay-to-endpoint geometry again).
    """
    if len(leg_distances_km) != 2 or len(media) != 2:
        raise ValidationError("path_timing expects exactly two legs")
    t_legs = [link_latency_s(d, m) for d, m in zip(leg_distances_km, media)]
    photon = max(t_legs)
    # Herald: endpoint A's detection outcome travels A -> relay -> B (and
    # vice versa); the slower of the two cross-confirmations dominates.
    confirm = t_legs[0] + t_legs[1]
    return PathTiming(photon, confirm)


@dataclass(frozen=True)
class EntanglementRateModel:
    """Heralded entanglement throughput of a lossy path.

    Attributes:
        source_rate_hz: pair-attempt rate of the entangled-photon source.
        detector_efficiency: per-endpoint detector efficiency (applied to
            both detections).
    """

    source_rate_hz: float = 1.0e7
    detector_efficiency: float = 0.9

    def __post_init__(self) -> None:
        check_positive("source_rate_hz", self.source_rate_hz)
        check_probability("detector_efficiency", self.detector_efficiency)

    def success_probability(self, eta_path: np.ndarray | float) -> np.ndarray | float:
        """Per-attempt success probability (losses x two detections)."""
        eta = np.asarray(eta_path, dtype=float)
        if np.any((eta < 0) | (eta > 1)):
            raise ValidationError("eta_path must lie in [0, 1]")
        out = eta * self.detector_efficiency**2
        return out if out.ndim else float(out)

    def pair_rate_hz(self, eta_path: np.ndarray | float) -> np.ndarray | float:
        """Steady-state heralded pair rate [pairs/s] (pipelined attempts)."""
        out = np.asarray(self.success_probability(eta_path)) * self.source_rate_hz
        return out if out.ndim else float(out)

    def time_to_first_pair_s(
        self, eta_path: float, timing: PathTiming | None = None
    ) -> float:
        """Expected latency until the first usable pair [s].

        Geometric waiting time for a success plus one handshake.
        """
        p = float(np.asarray(self.success_probability(eta_path)))
        if p <= 0.0:
            return float("inf")
        wait = 1.0 / (p * self.source_rate_hz)
        return wait + (timing.handshake_s if timing is not None else 0.0)

    def pairs_per_window(self, eta_path: float, window_s: float) -> float:
        """Expected pairs delivered inside a coverage window [pairs]."""
        if window_s < 0:
            raise ValidationError(f"window_s must be >= 0, got {window_s}")
        return float(np.asarray(self.pair_rate_hz(eta_path))) * window_s
