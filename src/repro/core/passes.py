"""Satellite-pass and revisit statistics.

Constellation-design deliverables beyond the paper's coverage percentage:
how often a city sees a usable satellite (passes per day), how long each
contact lasts, and — the paper's operational pain point — how long the
outages between coverage intervals run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import SpaceGroundAnalysis
from repro.errors import ValidationError
from repro.utils.intervals import Interval, intervals_from_mask

__all__ = ["PassStatistics", "pass_statistics", "site_pass_statistics", "coverage_gaps"]


@dataclass(frozen=True)
class PassStatistics:
    """Aggregate contact statistics over an analysis horizon.

    Attributes:
        n_passes: number of distinct contact intervals.
        total_contact_s: summed contact time [s].
        mean_duration_s: mean contact length [s] (0 when no passes).
        max_duration_s: longest contact [s].
        mean_gap_s: mean outage between consecutive contacts [s].
        max_gap_s: longest outage, including the leading/trailing ends of
            the horizon [s].
    """

    n_passes: int
    total_contact_s: float
    mean_duration_s: float
    max_duration_s: float
    mean_gap_s: float
    max_gap_s: float


def _statistics_from_intervals(
    intervals: list[Interval], horizon_s: float
) -> PassStatistics:
    if not intervals:
        return PassStatistics(0, 0.0, 0.0, 0.0, horizon_s, horizon_s)
    durations = [iv.duration for iv in intervals]
    gaps: list[float] = [intervals[0].start]
    for prev, nxt in zip(intervals, intervals[1:]):
        gaps.append(nxt.start - prev.end)
    gaps.append(max(horizon_s - intervals[-1].end, 0.0))
    gaps = [g for g in gaps if g > 0.0]
    return PassStatistics(
        n_passes=len(intervals),
        total_contact_s=float(sum(durations)),
        mean_duration_s=float(np.mean(durations)),
        max_duration_s=float(max(durations)),
        mean_gap_s=float(np.mean(gaps)) if gaps else 0.0,
        max_gap_s=float(max(gaps)) if gaps else 0.0,
    )


def pass_statistics(
    times_s: np.ndarray, usable_mask: np.ndarray, *, horizon_s: float | None = None
) -> PassStatistics:
    """Pass statistics from a boolean usability history.

    Args:
        times_s: sample times, shape ``(T,)``.
        usable_mask: per-sample usability, shape ``(T,)``.
        horizon_s: analysis horizon (defaults to the sampled span).
    """
    t = np.asarray(times_s, dtype=float)
    m = np.asarray(usable_mask, dtype=bool)
    if t.shape != m.shape:
        raise ValidationError(f"shape mismatch: times {t.shape} vs mask {m.shape}")
    if horizon_s is None:
        horizon_s = float(t[-1] - t[0]) + (float(t[1] - t[0]) if t.size > 1 else 0.0)
    intervals = intervals_from_mask(t, m)
    return _statistics_from_intervals(intervals, horizon_s)


def site_pass_statistics(
    analysis: SpaceGroundAnalysis, site_name: str, *, horizon_s: float | None = None
) -> PassStatistics:
    """Contact statistics of one ground site against the whole constellation.

    A 'contact' is any sample where at least one satellite is usable
    (meets the transmissivity threshold and elevation floor).
    """
    budget = analysis.budget(site_name)
    any_usable = budget.usable.any(axis=0)
    return pass_statistics(analysis.times_s, any_usable, horizon_s=horizon_s)


def coverage_gaps(
    analysis: SpaceGroundAnalysis, *, horizon_s: float | None = None
) -> PassStatistics:
    """Statistics of the all-LANs-connected condition (the paper's P).

    ``max_gap_s`` is the longest regional outage — the number a network
    operator actually plans around.
    """
    mask = analysis.all_pairs_connected()
    return pass_statistics(analysis.times_s, mask, horizon_s=horizon_s)
