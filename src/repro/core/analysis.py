"""Vectorized architecture analysis engines.

The object-level :class:`~repro.network.simulator.NetworkSimulator`
evaluates one channel at a time, which is exact but Python-loop bound.
The paper's sweeps (18 constellation sizes x 2880 samples x 31 ground
nodes) need the array form implemented here: per-site transmissivity
matrices of shape ``(n_sats, n_times)`` computed in single NumPy passes.

The two views agree because, in the QNTN topology, the Bellman–Ford
optimum between nodes of different LANs is always a two-hop relay path
``src -> platform -> dst`` (intra-LAN fiber detours only ever add cost —
every ground node carries its own FSO terminal, and a same-LAN neighbour
sees the same platform geometry to within metres). The test suite checks
this equivalence against the object-level simulator sample by sample.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.channels.fso import FSOChannelModel
from repro.data.ground_nodes import GroundNode
from repro.engine.budgets import LinkBudgetTable, SiteLinkBudget
from repro.errors import ValidationError
from repro.network.links import LinkPolicy
from repro.orbits.ephemeris import Ephemeris
from repro.orbits.visibility import elevation_and_range
from repro.routing.metrics import DEFAULT_EPSILON

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plane import FaultPlane

__all__ = ["SiteLinkBudget", "SpaceGroundAnalysis", "AirGroundAnalysis"]


class SpaceGroundAnalysis:
    """Array-form analysis of a constellation serving the QNTN LANs.

    Args:
        ephemeris: constellation movement sheet.
        sites: ground nodes (must carry LAN names in ``network``).
        fso_model: ground-satellite channel model.
        policy: link admission policy.
        platform_altitude_km: nominal constellation altitude for slant
            extinction integrals.
        budgets: optional precomputed
            :class:`~repro.engine.budgets.LinkBudgetTable` to read link
            budgets from instead of computing them here — lets multiple
            analyses (e.g. the coverage and service passes of one sweep)
            share a single vectorized geometry pass. Must cover the same
            ephemeris, sites, model and policy.
        faults: optional compiled :class:`~repro.faults.plane.FaultPlane`
            forwarded to a self-built budget table; ignored when
            ``budgets`` is supplied (the shared table already carries —
            or deliberately omits — the fault plane).
        window: optional chunk size (samples) forwarded to a self-built
            budget table for incremental fills (see
            :class:`~repro.engine.budgets.LinkBudgetTable`). Mutually
            exclusive with ``budgets`` — a shared table decides its own
            fill strategy.
    """

    def __init__(
        self,
        ephemeris: Ephemeris,
        sites: list[GroundNode],
        fso_model: FSOChannelModel,
        *,
        policy: LinkPolicy | None = None,
        platform_altitude_km: float = 500.0,
        budgets: LinkBudgetTable | None = None,
        faults: "FaultPlane | None" = None,
        window: int | None = None,
    ) -> None:
        if not sites:
            raise ValidationError("analysis needs at least one ground site")
        if any(not s.network for s in sites):
            raise ValidationError("every site must belong to a named LAN")
        self.ephemeris = ephemeris
        self.sites = list(sites)
        self.fso_model = fso_model
        self.policy = policy or LinkPolicy()
        self.platform_altitude_km = platform_altitude_km
        if budgets is not None and window is not None:
            raise ValidationError(
                "window and budgets are mutually exclusive: a shared budget "
                "table decides its own fill strategy"
            )
        if budgets is not None and budgets.ephemeris.n_samples != ephemeris.n_samples:
            raise ValidationError(
                f"budget table covers {budgets.ephemeris.n_samples} samples, "
                f"analysis needs {ephemeris.n_samples}"
            )
        self._table = budgets or LinkBudgetTable(
            ephemeris,
            self.sites,
            fso_model,
            policy=self.policy,
            platform_altitude_km=platform_altitude_km,
            faults=faults,
            window=window,
        )

    @property
    def table(self) -> LinkBudgetTable:
        """The backing :class:`~repro.engine.budgets.LinkBudgetTable`."""
        return self._table

    def ensure_time_index(self, k: int) -> None:
        """Windowed tables: fill every materialised budget through ``k``.

        A no-op for eager tables; lets a streaming engine advance link
        physics one window at a time (see
        :meth:`LinkBudgetTable.ensure_index`).
        """
        self._table.ensure_index(k)

    @property
    def times_s(self) -> np.ndarray:
        """Sample times of the movement sheet."""
        return self.ephemeris.times_s

    @property
    def n_times(self) -> int:
        """Number of time samples."""
        return self.ephemeris.n_samples

    @property
    def lans(self) -> list[str]:
        """LAN names present among the sites, in first-seen order."""
        seen: list[str] = []
        for site in self.sites:
            if site.network not in seen:
                seen.append(site.network)
        return seen

    def lan_sites(self, lan: str) -> list[GroundNode]:
        """Sites belonging to ``lan``."""
        members = [s for s in self.sites if s.network == lan]
        if not members:
            raise ValidationError(f"unknown LAN {lan!r}")
        return members

    def site(self, name: str) -> GroundNode:
        """Site lookup by node name."""
        for s in self.sites:
            if s.name == name:
                return s
        raise ValidationError(f"unknown site {name!r}")

    # --- budgets -----------------------------------------------------------------

    def budget(self, site_name: str) -> SiteLinkBudget:
        """Link-budget matrices for one site (computed once, memoized).

        The vectorized pass itself lives in
        :func:`repro.engine.budgets.compute_site_budget`; the analysis
        object delegates to its (possibly shared) budget table. Unknown
        site names are rejected with the analysis' own lookup so the
        error message stays consistent.
        """
        self.site(site_name)
        return self._table.budget(site_name)

    def lan_usable(self, lan: str) -> np.ndarray:
        """Mask ``(n_sats, n_times)``: satellite usable to *some* node of ``lan``."""
        members = self.lan_sites(lan)
        out = self.budget(members[0].name).usable.copy()
        for site in members[1:]:
            out |= self.budget(site.name).usable
        return out

    # --- connectivity & coverage ------------------------------------------------------

    def pair_connected(self, lan_a: str, lan_b: str) -> np.ndarray:
        """Mask ``(n_times,)``: some satellite bridges the two LANs."""
        return (self.lan_usable(lan_a) & self.lan_usable(lan_b)).any(axis=0)

    def all_pairs_connected(self) -> np.ndarray:
        """Mask ``(n_times,)``: every LAN pair is bridged (paper coverage)."""
        lans = self.lans
        out = np.ones(self.n_times, dtype=bool)
        for i, a in enumerate(lans):
            for b in lans[i + 1 :]:
                out &= self.pair_connected(a, b)
        return out

    def cumulative_all_pairs_connected(self) -> np.ndarray:
        """Coverage masks for every constellation-prefix size at once.

        Row ``k`` of the returned ``(n_sats, n_times)`` boolean array is
        the all-LAN-pairs-connected mask when only the first ``k+1``
        satellites of the ephemeris are deployed. Because the paper adds
        satellites incrementally (Table II prefixes), the entire Fig. 6
        sweep reduces to cumulative ORs over the satellite axis — one
        link-budget pass instead of one per constellation size.
        """
        lans = self.lans
        lan_masks = {lan: self.lan_usable(lan) for lan in lans}
        out: np.ndarray | None = None
        for i, a in enumerate(lans):
            for b in lans[i + 1 :]:
                pair_cum = np.logical_or.accumulate(lan_masks[a] & lan_masks[b], axis=0)
                out = pair_cum if out is None else (out & pair_cum)
        if out is None:
            raise ValidationError("cumulative coverage needs at least two LANs")
        return out

    # --- routing-equivalent request service -----------------------------------------------

    def best_relay(
        self,
        src_name: str,
        dst_name: str,
        time_index: int,
        epsilon: float = DEFAULT_EPSILON,
        *,
        n_satellites: int | None = None,
    ) -> tuple[int, float] | None:
        """Best relay satellite for a request at one sample time.

        Minimises the Bellman–Ford two-hop cost
        ``1/(eta_src + eps) + 1/(eta_dst + eps)`` over satellites usable
        to both endpoints.

        Args:
            n_satellites: restrict to the first n satellites of the
                ephemeris (constellation-prefix sweeps); None = all.

        Returns:
            ``(satellite_index, path_transmissivity)`` or ``None`` when no
            satellite qualifies.
        """
        bs = self.budget(src_name)
        bd = self.budget(dst_name)
        n = bs.usable.shape[0] if n_satellites is None else n_satellites
        ok = bs.usable[:n, time_index] & bd.usable[:n, time_index]
        if not np.any(ok):
            return None
        eta_s = bs.transmissivity[:n, time_index]
        eta_d = bd.transmissivity[:n, time_index]
        cost = np.where(ok, 1.0 / (eta_s + epsilon) + 1.0 / (eta_d + epsilon), np.inf)
        best = int(np.argmin(cost))
        return best, float(eta_s[best] * eta_d[best])

    def serve(
        self,
        requests: list[tuple[str, str]],
        time_index: int,
        epsilon: float = DEFAULT_EPSILON,
        *,
        n_satellites: int | None = None,
    ) -> list[float | None]:
        """Path transmissivity per request at a sample time (None = unserved)."""
        out: list[float | None] = []
        for src, dst in requests:
            hit = self.best_relay(
                src, dst, time_index, epsilon, n_satellites=n_satellites
            )
            out.append(None if hit is None else hit[1])
        return out

    def request_detail(
        self,
        src_name: str,
        dst_name: str,
        time_index: int,
        epsilon: float = DEFAULT_EPSILON,
        *,
        n_satellites: int | None = None,
        max_candidates: int = 12,
    ) -> dict:
        """Flight-recorder view of one request: gate cascade + chosen relay.

        Evaluates the same budget matrices :meth:`best_relay` reads and
        reports every candidate platform's per-gate outcome (visibility,
        elevation >= policy minimum, eta >= policy threshold, at both
        endpoints), the relay actually chosen, and — when the request
        goes unserved — the canonical denial cause from
        :func:`repro.obs.trace.classify_denial`. The served/relay
        decision is identical to :meth:`serve` by construction (same
        ``usable`` mask, same cost argmin).
        """
        from repro.obs.trace import classify_denial

        bs = self.budget(src_name)
        bd = self.budget(dst_name)
        n = bs.usable.shape[0] if n_satellites is None else n_satellites
        el_s = bs.elevation_rad[:n, time_index]
        el_d = bd.elevation_rad[:n, time_index]
        eta_s = bs.transmissivity[:n, time_index]
        eta_d = bd.transmissivity[:n, time_index]
        # The gate cascade nests: visibility uses the budget pass' own
        # above-horizon cut (el > 1e-3, engine.budgets), elevation adds
        # the policy minimum, and usable-at-both-ends is exactly the mask
        # best_relay optimises over.
        visible = (el_s > 1e-3) & (el_d > 1e-3)
        elev_ok = (
            visible
            & (el_s >= self.policy.min_elevation_rad)
            & (el_d >= self.policy.min_elevation_rad)
        )
        usable = bs.usable[:n, time_index] & bd.usable[:n, time_index]
        # Budgets derived through a fault plane carry the pre-fault mask;
        # transmissivity denials are judged on healthy physics and a
        # healthy-but-suppressed candidate set attributes to faults.
        faulted_run = bs.usable_healthy is not None or bd.usable_healthy is not None
        healthy = (
            bs.healthy_usable[:n, time_index] & bd.healthy_usable[:n, time_index]
            if faulted_run
            else usable
        )

        served = bool(np.any(usable))
        relay_index: int | None = None
        relay: str | None = None
        path_eta = 0.0
        hop_etas: list[float] = []
        if served:
            cost = np.where(
                usable, 1.0 / (eta_s + epsilon) + 1.0 / (eta_d + epsilon), np.inf
            )
            relay_index = int(np.argmin(cost))
            relay = self.ephemeris.names[relay_index]
            hop_etas = [float(eta_s[relay_index]), float(eta_d[relay_index])]
            path_eta = float(eta_s[relay_index] * eta_d[relay_index])
            cause = None
        else:
            cause = classify_denial(
                bool(np.any(visible)),
                bool(np.any(elev_ok)),
                bool(np.any(healthy)),
                fault_blocked=bool(np.any(healthy)),
            )

        candidates = []
        for i in np.flatnonzero(visible)[:max_candidates]:
            entry = {
                "platform": self.ephemeris.names[int(i)],
                "eta_src": float(eta_s[i]),
                "eta_dst": float(eta_d[i]),
                "elevation_src_rad": float(el_s[i]),
                "elevation_dst_rad": float(el_d[i]),
                "visible": True,
                "elevation_ok": bool(elev_ok[i]),
                "usable": bool(usable[i]),
            }
            if faulted_run:
                entry["faulted"] = bool(healthy[i] and not usable[i])
            candidates.append(entry)
        return {
            "served": served,
            "relay": relay,
            "relay_index": relay_index,
            "path_eta": path_eta,
            "hop_etas": hop_etas,
            "cause": cause,
            "source_lan": self.site(src_name).network,
            "destination_lan": self.site(dst_name).network,
            "candidates": candidates,
            "candidate_counts": {
                "platforms": int(n),
                "visible": int(np.count_nonzero(visible)),
                "elevation_ok": int(np.count_nonzero(elev_ok)),
                "usable": int(np.count_nonzero(usable)),
                **(
                    {"healthy_usable": int(np.count_nonzero(healthy))}
                    if faulted_run
                    else {}
                ),
            },
        }


class AirGroundAnalysis:
    """Array-form analysis of the single-HAP architecture.

    The HAP hovers, so per-site transmissivities are time-independent
    scalars; only the optional duty cycle makes service time-dependent.

    Args:
        sites: ground nodes with LAN names.
        fso_model: HAP-ground channel model.
        hap_lat_deg / hap_lon_deg / hap_alt_km: hover position.
        policy: link admission policy.
        operational_mask: optional boolean availability per sample time
            (the paper's ideal case is all-True).
        times_s: sample times matching ``operational_mask``.
        site_geometry: optional precomputed ``site name -> (elevation_rad,
            range_km)`` mapping. The HAP hovers, so this geometry is
            identical across e.g. every Monte-Carlo weather trial; passing
            it skips the per-site ECEF transforms (the weather study
            computes it once and ships it to workers via shared memory).
    """

    def __init__(
        self,
        sites: list[GroundNode],
        fso_model: FSOChannelModel,
        *,
        hap_lat_deg: float,
        hap_lon_deg: float,
        hap_alt_km: float,
        policy: LinkPolicy | None = None,
        operational_mask: np.ndarray | None = None,
        times_s: np.ndarray | None = None,
        site_geometry: dict[str, tuple[float, float]] | None = None,
    ) -> None:
        if not sites:
            raise ValidationError("analysis needs at least one ground site")
        self.sites = list(sites)
        self.fso_model = fso_model
        self.policy = policy or LinkPolicy()
        self.hap_lat_deg = hap_lat_deg
        self.hap_lon_deg = hap_lon_deg
        self.hap_alt_km = hap_alt_km
        if times_s is None:
            times_s = np.array([0.0])
        self.times_s = np.asarray(times_s, dtype=float)
        if operational_mask is None:
            operational_mask = np.ones(self.times_s.size, dtype=bool)
        self.operational_mask = np.asarray(operational_mask, dtype=bool)
        if self.operational_mask.shape != self.times_s.shape:
            raise ValidationError("operational_mask must match times_s in shape")
        self._eta: dict[str, float] = {}
        self._usable: dict[str, bool] = {}
        self._geometry = dict(site_geometry) if site_geometry else {}

    def site_geometry(self, site_name: str) -> tuple[float, float]:
        """``(elevation_rad, range_km)`` of one site's HAP link.

        Computed from the hover position on first use, or served from the
        precomputed ``site_geometry`` mapping when one was supplied.
        """
        if site_name not in self._geometry:
            from repro.orbits.frames import geodetic_to_ecef

            site = next((s for s in self.sites if s.name == site_name), None)
            if site is None:
                raise ValidationError(f"unknown site {site_name!r}")
            hap_pos = geodetic_to_ecef(
                math.radians(self.hap_lat_deg),
                math.radians(self.hap_lon_deg),
                self.hap_alt_km,
            )
            _, el, rng = elevation_and_range(
                site.lat_rad, site.lon_rad, site.alt_km, hap_pos[None, :]
            )
            self._geometry[site_name] = (float(el[0]), float(rng[0]))
        return self._geometry[site_name]

    def transmissivity(self, site_name: str) -> float:
        """HAP-link transmissivity for one site (time-independent)."""
        if site_name not in self._eta:
            el_f, rng_f = self.site_geometry(site_name)
            if el_f <= 0:
                eta = 0.0
            else:
                eta = float(
                    np.asarray(self.fso_model.transmissivity(rng_f, el_f, self.hap_alt_km))
                )
            self._eta[site_name] = eta
            self._usable[site_name] = self.policy.admits(eta, el_f, True)
        return self._eta[site_name]

    def usable(self, site_name: str) -> bool:
        """Whether the site's HAP link passes the admission policy."""
        self.transmissivity(site_name)
        return self._usable[site_name]

    def all_pairs_connected(self) -> np.ndarray:
        """Coverage mask over ``times_s`` (limited only by the duty cycle)."""
        static = all(self.usable(s.name) for s in self.sites)
        return self.operational_mask & static

    def serve(
        self, requests: list[tuple[str, str]], time_index: int = 0
    ) -> list[float | None]:
        """Path transmissivity per request (None = unserved)."""
        out: list[float | None] = []
        operational = bool(self.operational_mask[time_index])
        for src, dst in requests:
            if not operational or not (self.usable(src) and self.usable(dst)):
                out.append(None)
            else:
                out.append(self.transmissivity(src) * self.transmissivity(dst))
        return out
