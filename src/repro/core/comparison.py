"""Comparative analysis of the two architectures (paper Table III, §IV-D)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.architecture import (
    AirGroundArchitecture,
    ArchitectureResult,
    SpaceGroundArchitecture,
)

__all__ = ["ComparisonRow", "compare_architectures"]


@dataclass(frozen=True)
class ComparisonRow:
    """One row of Table III.

    Attributes:
        architecture: architecture label.
        coverage_percentage: P [%].
        served_percentage: served entanglement requests [%].
        mean_fidelity: average entanglement fidelity of resolved requests.
    """

    architecture: str
    coverage_percentage: float
    served_percentage: float
    mean_fidelity: float

    @classmethod
    def from_result(cls, result: ArchitectureResult) -> "ComparisonRow":
        """Condense a full evaluation into a table row."""
        return cls(
            result.name,
            result.coverage_percentage,
            result.served_percentage,
            result.mean_fidelity,
        )


def compare_architectures(
    *,
    n_satellites: int = 108,
    n_requests: int = 100,
    n_time_steps: int = 100,
    seed: int | None = 7,
    space: SpaceGroundArchitecture | None = None,
    air: AirGroundArchitecture | None = None,
) -> list[ComparisonRow]:
    """Evaluate both architectures and return Table III.

    Args:
        n_satellites: constellation size for the space-ground row.
        n_requests / n_time_steps / seed: the paper's workload parameters.
        space / air: pre-configured architectures (override defaults).
    """
    space = space or SpaceGroundArchitecture(n_satellites)
    air = air or AirGroundArchitecture()
    rows = []
    for arch in (space, air):
        result = arch.evaluate(n_requests=n_requests, n_time_steps=n_time_steps, seed=seed)
        rows.append(ComparisonRow.from_result(result))
    return rows
