"""Multi-HAP fleets and placement optimisation.

The paper deploys a single HAP at a hand-picked point. Two natural design
questions follow: where is the *best* hover point, and what does a fleet
of HAPs buy (redundancy against the single point of failure; coverage of
nodes a single platform cannot see)? This module answers both with the
same link budgets the single-HAP analysis uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channels.fso import FSOChannelModel
from repro.channels.presets import paper_hap_fso
from repro.constants import QNTN_HAP_ALTITUDE_KM
from repro.data.ground_nodes import GroundNode, all_ground_nodes
from repro.errors import ValidationError
from repro.network.links import LinkPolicy
from repro.orbits.frames import geodetic_to_ecef
from repro.orbits.visibility import elevation_and_range

__all__ = [
    "hap_site_transmissivities",
    "min_site_transmissivity",
    "optimize_hap_position",
    "HapFleet",
]


def hap_site_transmissivities(
    hap_lat_deg: float,
    hap_lon_deg: float,
    hap_alt_km: float,
    sites: list[GroundNode],
    fso_model: FSOChannelModel,
) -> np.ndarray:
    """Link transmissivity from one hover point to every site; shape (n,)."""
    hap_pos = geodetic_to_ecef(
        math.radians(hap_lat_deg), math.radians(hap_lon_deg), hap_alt_km
    )
    etas = np.empty(len(sites))
    for i, site in enumerate(sites):
        _, el, rng = elevation_and_range(
            site.lat_rad, site.lon_rad, site.alt_km, hap_pos[None, :]
        )
        el_f, rng_f = float(el[0]), float(rng[0])
        if el_f <= 0:
            etas[i] = 0.0
        else:
            etas[i] = float(np.asarray(fso_model.transmissivity(rng_f, el_f, hap_alt_km)))
    return etas


def min_site_transmissivity(
    hap_lat_deg: float,
    hap_lon_deg: float,
    *,
    hap_alt_km: float = QNTN_HAP_ALTITUDE_KM,
    sites: list[GroundNode] | None = None,
    fso_model: FSOChannelModel | None = None,
) -> float:
    """The worst site link from a hover point — the placement objective.

    Maximising the minimum link transmissivity maximises the margin above
    the 0.7 threshold for the most disadvantaged node.
    """
    site_list = sites if sites is not None else list(all_ground_nodes())
    model = fso_model or paper_hap_fso()
    return float(
        hap_site_transmissivities(hap_lat_deg, hap_lon_deg, hap_alt_km, site_list, model).min()
    )


def optimize_hap_position(
    *,
    hap_alt_km: float = QNTN_HAP_ALTITUDE_KM,
    sites: list[GroundNode] | None = None,
    fso_model: FSOChannelModel | None = None,
    resolution_deg: float = 0.05,
    margin_deg: float = 0.3,
) -> tuple[float, float, float]:
    """Grid-search the hover point maximising the worst site link.

    The search box spans the sites' bounding box plus ``margin_deg``.

    Returns:
        ``(lat_deg, lon_deg, min_eta)`` of the best grid point.
    """
    site_list = sites if sites is not None else list(all_ground_nodes())
    model = fso_model or paper_hap_fso()
    if resolution_deg <= 0:
        raise ValidationError(f"resolution_deg must be positive, got {resolution_deg}")
    lats = [s.lat_deg for s in site_list]
    lons = [s.lon_deg for s in site_list]
    lat_grid = np.arange(min(lats) - margin_deg, max(lats) + margin_deg, resolution_deg)
    lon_grid = np.arange(min(lons) - margin_deg, max(lons) + margin_deg, resolution_deg)
    best = (float(lat_grid[0]), float(lon_grid[0]), -1.0)
    for lat in lat_grid:
        for lon in lon_grid:
            worst = float(
                hap_site_transmissivities(
                    float(lat), float(lon), hap_alt_km, site_list, model
                ).min()
            )
            if worst > best[2]:
                best = (float(lat), float(lon), worst)
    return best


@dataclass(frozen=True)
class HapFleet:
    """A set of hovering platforms serving the ground sites together.

    Attributes:
        positions: ``(lat_deg, lon_deg)`` hover points.
        alt_km: common hover altitude.
    """

    positions: tuple[tuple[float, float], ...]
    alt_km: float = QNTN_HAP_ALTITUDE_KM

    def __post_init__(self) -> None:
        if not self.positions:
            raise ValidationError("a fleet needs at least one platform")

    def site_best_transmissivities(
        self,
        sites: list[GroundNode] | None = None,
        fso_model: FSOChannelModel | None = None,
    ) -> np.ndarray:
        """Best available platform link per site; shape ``(n_sites,)``."""
        site_list = sites if sites is not None else list(all_ground_nodes())
        model = fso_model or paper_hap_fso()
        best = np.zeros(len(site_list))
        for lat, lon in self.positions:
            etas = hap_site_transmissivities(lat, lon, self.alt_km, site_list, model)
            best = np.maximum(best, etas)
        return best

    def all_sites_served(
        self,
        sites: list[GroundNode] | None = None,
        fso_model: FSOChannelModel | None = None,
        policy: LinkPolicy | None = None,
    ) -> bool:
        """Whether every site clears the admission threshold via some platform."""
        policy = policy or LinkPolicy()
        best = self.site_best_transmissivities(sites, fso_model)
        return bool((best >= policy.transmissivity_threshold).all())

    def survives_single_failure(
        self,
        sites: list[GroundNode] | None = None,
        fso_model: FSOChannelModel | None = None,
        policy: LinkPolicy | None = None,
    ) -> bool:
        """Whether service survives the loss of any one platform.

        The paper's single HAP trivially fails this — its availability
        risk (Section V) motivates fleets.
        """
        if len(self.positions) == 1:
            return False
        for drop in range(len(self.positions)):
            rest = HapFleet(
                tuple(p for i, p in enumerate(self.positions) if i != drop), self.alt_km
            )
            if not rest.all_sites_served(sites, fso_model, policy):
                return False
        return True
