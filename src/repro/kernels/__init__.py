"""Profile-driven compiled kernels for the measured hot paths.

``repro.kernels`` packages numba-compiled alternatives to the three hot
paths profiling singled out — the FSO transmissivity stack, the budget
matrix fill, and the Bellman–Ford inner relaxation — plus the
single-frame ``propagate.step`` primitive behind windowed link-state
advance. Backend selection happens once at import (see
:mod:`repro.kernels.dispatch`); call sites keep their vectorized NumPy
implementations inline and only consult :func:`kernel` for a compiled
replacement, so the pure-NumPy backend is bit-identical to the
pre-kernel code.

The kernel modules import ``numba`` at top level and are therefore only
loaded when the resolved backend is ``"numba"``.
"""

from __future__ import annotations

from repro.kernels.dispatch import (
    BACKENDS,
    active_backend,
    force_numpy,
    kernel,
    kernel_names,
    numba_version,
    register,
    requested_backend,
    warmup,
)

__all__ = [
    "BACKENDS",
    "active_backend",
    "force_numpy",
    "kernel",
    "kernel_names",
    "numba_version",
    "register",
    "requested_backend",
    "warmup",
]

if active_backend() == "numba":  # pragma: no cover - requires numba
    from repro.kernels import budgets as _budgets  # noqa: F401
    from repro.kernels import fso as _fso  # noqa: F401
    from repro.kernels import propagate as _propagate  # noqa: F401
    from repro.kernels import routing as _routing  # noqa: F401
