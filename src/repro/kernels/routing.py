"""Compiled Bellman–Ford relaxation kernel (numba backend only).

The inner relaxation of :func:`repro.routing.bellman_ford.bellman_ford`
over flat edge arrays. The edge *order* is part of the contract: the
caller lists directed edges exactly as the dict-based implementation
iterates them, and the kernel relaxes them sequentially with the same
``candidate < cost - 1e-15`` improvement rule, so costs and predecessor
trees are bit-identical to the pure-Python loop (identical float adds
in identical order) — routing decisions cannot drift between backends.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.kernels import dispatch

__all__: list[str] = []


@njit(cache=True)
def _relax(
    u_idx: np.ndarray,
    v_idx: np.ndarray,
    cost: np.ndarray,
    n_nodes: int,
    source: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sequential Bellman–Ford sweeps with early stop.

    Returns ``(costs, predecessors)`` where a predecessor of ``-1``
    means "none" (the source, and unreachable nodes).
    """
    costs = np.full(n_nodes, np.inf, dtype=np.float64)
    pred = np.full(n_nodes, -1, dtype=np.int64)
    costs[source] = 0.0
    n_edges = u_idx.size
    rounds = n_nodes - 1
    if rounds < 1:
        rounds = 1
    for _ in range(rounds):
        changed = False
        for i in range(n_edges):
            candidate = costs[u_idx[i]] + cost[i]
            if candidate < costs[v_idx[i]] - 1e-15:
                costs[v_idx[i]] = candidate
                pred[v_idx[i]] = u_idx[i]
                changed = True
        if not changed:
            break
    return costs, pred


def _warm_relax() -> None:
    u = np.array([0, 1, 1, 2], dtype=np.int64)
    v = np.array([1, 0, 2, 1], dtype=np.int64)
    w = np.array([1.0, 1.0, 2.0, 2.0])
    _relax(u, v, w, 3, 0)


dispatch.register("routing.relax", _relax, warm=_warm_relax)
