"""Compiled single-frame ephemeris advance (numba backend only).

``propagate.step`` evaluates every satellite of an element set at ONE
epoch-relative time: Danby-started Newton–Halley Kepler solve, perifocal
coordinates, explicit rotation — the same math as
:meth:`repro.orbits.propagator.TwoBodyPropagator.positions_eci`
restricted to a single column. This is the frame-by-frame primitive the
windowed link-state mode is built around: a streaming engine advancing
its cursor extends the ephemeris one sample at a time instead of paying
a whole-day propagation before the first request.
"""

from __future__ import annotations

import math

import numpy as np
from numba import njit

from repro.kernels import dispatch

__all__: list[str] = []

_TWO_PI = 2.0 * math.pi


@njit(cache=True)
def _solve_kepler_scalar(M: float, e: float, tol: float, max_iter: int) -> float:
    """Newton–Halley Kepler solve for one element (wrapped to [0, 2*pi))."""
    M = M % _TWO_PI
    if M < 0.0:
        M += _TWO_PI
    E = M + e * math.sin(M)
    for _ in range(max_iter):
        sinE = math.sin(E)
        cosE = math.cos(E)
        f = E - e * sinE - M
        if abs(f) < tol:
            break
        fp = 1.0 - e * cosE
        fpp = e * sinE
        dE = f / fp
        dE = f / (fp - 0.5 * dE * fpp)
        E = E - dE
    E = E % _TWO_PI
    if E < 0.0:
        E += _TWO_PI
    return E


@njit(cache=True)
def _step(
    t_s: float,
    a: np.ndarray,
    e: np.ndarray,
    inc: np.ndarray,
    raan0: np.ndarray,
    argp0: np.ndarray,
    m0: np.ndarray,
    n_motion: np.ndarray,
    use_j2: bool,
    raan_dot: np.ndarray,
    argp_dot: np.ndarray,
    m_dot: np.ndarray,
) -> np.ndarray:
    """ECI positions of every satellite at one time, shape ``(n_sats, 3)``.

    The anomaly/angle updates use the same association as
    ``positions_eci`` (base value first, then the J2 increment added
    separately, and only when J2 is on) so both paths round identically.
    """
    n_sats = a.size
    out = np.empty((n_sats, 3), dtype=np.float64)
    for i in range(n_sats):
        M = m0[i] + n_motion[i] * t_s
        raan = raan0[i]
        argp = argp0[i]
        if use_j2:
            M = M + m_dot[i] * t_s
            raan = raan + raan_dot[i] * t_s
            argp = argp + argp_dot[i] * t_s
        E = _solve_kepler_scalar(M, e[i], 1e-12, 50)
        cosE = math.cos(E)
        sinE = math.sin(E)
        x_pf = a[i] * (cosE - e[i])
        y_pf = a[i] * math.sqrt(1.0 - e[i] * e[i]) * sinE
        cO = math.cos(raan)
        sO = math.sin(raan)
        ci = math.cos(inc[i])
        si = math.sin(inc[i])
        cw = math.cos(argp)
        sw = math.sin(argp)
        out[i, 0] = x_pf * (cO * cw - sO * sw * ci) + y_pf * (-cO * sw - sO * cw * ci)
        out[i, 1] = x_pf * (sO * cw + cO * sw * ci) + y_pf * (-sO * sw + cO * cw * ci)
        out[i, 2] = x_pf * (sw * si) + y_pf * (cw * si)
    return out


def _warm_step() -> None:
    ones = np.ones(2)
    zeros = np.zeros(2)
    _step(60.0, 6878.0 * ones, 0.001 * ones, 0.9 * ones,
          zeros, zeros, 0.5 * ones, 0.0011 * ones, False, zeros, zeros, zeros)


dispatch.register("propagate.step", _step, warm=_warm_step)
