"""Backend resolution and kernel registry for ``repro.kernels``.

The backend is chosen once, at import time, from the ``REPRO_KERNELS``
environment variable:

* ``auto`` (default) — use numba-compiled kernels when numba imports,
  pure NumPy otherwise;
* ``numpy`` — force the pure-NumPy paths (every call site keeps its
  original vectorized implementation inline, so this backend is
  bit-identical to the pre-kernel behaviour);
* ``numba`` — require compiled kernels; if numba is absent the resolver
  logs a warning and falls back to ``numpy`` instead of failing, so a
  misconfigured environment degrades gracefully.

Call sites ask :func:`kernel` for a compiled callable by name and run
their inline NumPy code when it returns ``None`` — the dispatch layer
never wraps the NumPy path, it only offers the compiled alternative.
Compiled kernels are lazy-jitted with ``cache=True`` (numba's on-disk
AOT-style cache), and :func:`warmup` triggers every registered kernel
once on tiny inputs so the one-time JIT cost is paid at engine build
time rather than on the first streamed request.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "BACKENDS",
    "active_backend",
    "force_numpy",
    "kernel",
    "kernel_names",
    "numba_version",
    "register",
    "requested_backend",
    "warmup",
]

_LOG = logging.getLogger("repro.kernels")

#: Recognised ``REPRO_KERNELS`` values.
BACKENDS = ("auto", "numpy", "numba")

_KERNELS: dict[str, Callable[..., Any]] = {}
_WARMUPS: dict[str, Callable[[], None]] = {}
_WARMED = False
_FORCE_NUMPY = 0


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except Exception:  # pragma: no cover - import failure shape varies
        return False
    return True


def _resolve_backend(requested: str, numba_available: bool) -> str:
    """Pure resolution rule: requested value x numba availability -> backend."""
    if requested not in BACKENDS:
        _LOG.warning(
            "REPRO_KERNELS=%r is not one of %s; treating as 'auto'",
            requested,
            BACKENDS,
        )
        requested = "auto"
    if requested == "numpy":
        return "numpy"
    if numba_available:
        return "numba"
    if requested == "numba":
        _LOG.warning(
            "REPRO_KERNELS=numba requested but numba is not importable; "
            "falling back to the pure-NumPy backend"
        )
    return "numpy"


_REQUESTED = os.environ.get("REPRO_KERNELS", "auto").strip().lower() or "auto"
_ACTIVE = _resolve_backend(_REQUESTED, _numba_available())


def requested_backend() -> str:
    """The ``REPRO_KERNELS`` value the process started with (normalized)."""
    return _REQUESTED


def active_backend() -> str:
    """The backend actually in use: ``"numba"`` or ``"numpy"``."""
    return _ACTIVE


def numba_version() -> str | None:
    """Installed numba version, or ``None`` when the backend is pure NumPy."""
    if _ACTIVE != "numba":
        return None
    import numba

    return numba.__version__


def register(
    name: str, fn: Callable[..., Any], *, warm: Callable[[], None] | None = None
) -> None:
    """Register one compiled kernel under ``name`` (numba backend only).

    ``warm`` is a zero-argument thunk that invokes the kernel on tiny
    representative inputs; :func:`warmup` runs every registered thunk.
    """
    _KERNELS[name] = fn
    if warm is not None:
        _WARMUPS[name] = warm


def kernel(name: str) -> Callable[..., Any] | None:
    """The compiled kernel registered under ``name``, or ``None``.

    ``None`` means "run your inline NumPy path" — returned for every
    name on the numpy backend, for unknown names, and inside a
    :func:`force_numpy` block.
    """
    if _FORCE_NUMPY:
        return None
    return _KERNELS.get(name)


def kernel_names() -> tuple[str, ...]:
    """Names of every registered compiled kernel (empty on numpy backend)."""
    return tuple(sorted(_KERNELS))


@contextmanager
def force_numpy() -> Iterator[None]:
    """Temporarily make :func:`kernel` return ``None`` for every name.

    Benchmark / test helper: lets one process time the NumPy path
    against the compiled path without re-importing with a different
    ``REPRO_KERNELS``. Not thread-safe — only use from benches and
    tests.
    """
    global _FORCE_NUMPY
    _FORCE_NUMPY += 1
    try:
        yield
    finally:
        _FORCE_NUMPY -= 1


def warmup() -> int:
    """Compile every registered kernel on tiny inputs (idempotent).

    Returns the number of kernels warmed. A no-op (0) on the numpy
    backend. Called from ``repro.serve.build_engine`` so a streaming
    service pays JIT latency at build time, never on the first request;
    ``cache=True`` on the jitted functions additionally persists the
    compiled machine code across processes.
    """
    global _WARMED
    if _WARMED or not _WARMUPS:
        return 0
    for name, warm in sorted(_WARMUPS.items()):
        try:
            warm()
        except Exception:  # pragma: no cover - defensive: a warmup failure
            # must not take the engine down; the kernel still compiles
            # lazily on first real use.
            _LOG.warning("kernel warmup failed for %r", name, exc_info=True)
    _WARMED = True
    return len(_WARMUPS)
