"""Compiled budget-matrix fill kernel (numba backend only).

Fuses the three vectorized passes of
:func:`repro.engine.budgets.compute_site_budget` — above-horizon gate,
FSO transmissivity, policy admission — into one flat loop, so a site's
``(n_platforms, n_times)`` block is filled without the intermediate
masked gathers/scatters of the NumPy path. The same kernel serves the
:class:`~repro.engine.linkstate.LinkStateCache` ground-satellite group
pass (which uses a ``0.0`` horizon instead of ``1e-3``) and the
windowed incremental fills.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.kernels import dispatch
from repro.kernels.fso import eta_scalar

__all__: list[str] = []


@njit(cache=True)
def _fill(
    el_rad: np.ndarray,
    rng_km: np.ndarray,
    horizon_rad: float,
    min_elevation_rad: float,
    threshold: float,
    w0_m: float,
    rayleigh_m: float,
    aperture2_m2: float,
    efficiency: float,
    jitter_rad: float,
    k_wave: float,
    use_turbulence: bool,
    grid_el: np.ndarray,
    grid_rho0: np.ndarray,
    use_atmosphere: bool,
    tau_zenith: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Flat (eta, usable) fill: eta 0 at/below the horizon, gated admission."""
    n = el_rad.size
    eta = np.zeros(n, dtype=np.float64)
    usable = np.zeros(n, dtype=np.bool_)
    for i in range(n):
        el = el_rad[i]
        if el > horizon_rad:
            value = eta_scalar(
                rng_km[i],
                el,
                w0_m,
                rayleigh_m,
                aperture2_m2,
                efficiency,
                jitter_rad,
                k_wave,
                use_turbulence,
                grid_el,
                grid_rho0,
                use_atmosphere,
                tau_zenith,
            )
            eta[i] = value
            usable[i] = (el >= min_elevation_rad) and (value >= threshold)
    return eta, usable


def _warm_fill() -> None:
    el = np.array([0.4, -0.1, 1.0])
    rng = np.array([900.0, 2500.0, 550.0])
    grid = np.array([0.1, 1.5])
    rho0 = np.array([0.05, 0.2])
    _fill(
        el, rng, 1e-3, 0.35, 0.7,
        0.4, 300000.0, 0.36, 0.9, 1e-6, 7e6, True, grid, rho0, True, 0.006,
    )


dispatch.register("budgets.fill", _fill, warm=_warm_fill)
