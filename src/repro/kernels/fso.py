"""Compiled FSO transmissivity kernels (numba backend only).

Flat scalar-loop renderings of the paper's Eq. 2 chain implemented in
:mod:`repro.channels.fso` — diffraction spot, interpolated turbulence
spread, aperture capture with pointing loss, slant extinction, receiver
efficiency, clip — over 1-D input arrays. The caller
(:meth:`FSOChannelModel.transmissivity` and friends) packs the model
into plain scalars/arrays via ``repro.channels.fso._kernel_params`` and
reshapes the flat result; this module never imports the channel model,
so the compiled code stays a pure function of numeric inputs.

Only imported when :func:`repro.kernels.dispatch.active_backend` is
``"numba"``; module import must therefore never be attempted without
numba present.
"""

from __future__ import annotations

import math

import numpy as np
from numba import njit

from repro.kernels import dispatch

__all__ = ["eta_scalar"]


@njit(cache=True)
def _interp_clamped(x: float, xs: np.ndarray, ys: np.ndarray) -> float:
    """``np.interp`` for one point: linear inside, clamped outside."""
    n = xs.size
    if x <= xs[0]:
        return ys[0]
    if x >= xs[n - 1]:
        return ys[n - 1]
    lo = 0
    hi = n - 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if xs[mid] <= x:
            lo = mid
        else:
            hi = mid
    slope = (ys[hi] - ys[lo]) / (xs[hi] - xs[lo])
    return slope * (x - xs[lo]) + ys[lo]


@njit(cache=True)
def eta_scalar(
    rng_km: float,
    el_rad: float,
    w0_m: float,
    rayleigh_m: float,
    aperture2_m2: float,
    efficiency: float,
    jitter_rad: float,
    k_wave: float,
    use_turbulence: bool,
    grid_el: np.ndarray,
    grid_rho0: np.ndarray,
    use_atmosphere: bool,
    tau_zenith: float,
) -> float:
    """One link-budget evaluation: ``clip(eta_th * eta_atm * eta_eff)``."""
    z = rng_km * 1000.0
    ratio = z / rayleigh_m
    w_d = w0_m * math.sqrt(1.0 + ratio * ratio)
    if use_turbulence:
        rho0 = _interp_clamped(el_rad, grid_el, grid_rho0)
        if math.isinf(rho0):
            w = w_d
        else:
            if rho0 <= 0.0:
                rho0 = 1.0
            w_t = 2.0 * z / (k_wave * rho0)
            w = math.sqrt(w_d * w_d + w_t * w_t)
    else:
        w = w_d
    w2 = w * w
    eta = 1.0 - math.exp(-2.0 * aperture2_m2 / w2)
    if jitter_rad > 0.0:
        # Same association as the NumPy path: (jitter * rng) * 1000, then
        # d**2 squared before the -2.0 multiply.
        d = jitter_rad * rng_km * 1000.0
        d2 = d * d
        eta = eta * math.exp(-2.0 * d2 / w2)
    if use_atmosphere:
        eta = eta * math.exp(-tau_zenith / math.sin(el_rad))
    eta = eta * efficiency
    if eta < 0.0:
        return 0.0
    if eta > 1.0:
        return 1.0
    return eta


@njit(cache=True)
def _transmissivity(
    rng_km: np.ndarray,
    el_rad: np.ndarray,
    w0_m: float,
    rayleigh_m: float,
    aperture2_m2: float,
    efficiency: float,
    jitter_rad: float,
    k_wave: float,
    use_turbulence: bool,
    grid_el: np.ndarray,
    grid_rho0: np.ndarray,
    use_atmosphere: bool,
    tau_zenith: float,
) -> np.ndarray:
    out = np.empty(rng_km.size, dtype=np.float64)
    for i in range(rng_km.size):
        out[i] = eta_scalar(
            rng_km[i],
            el_rad[i],
            w0_m,
            rayleigh_m,
            aperture2_m2,
            efficiency,
            jitter_rad,
            k_wave,
            use_turbulence,
            grid_el,
            grid_rho0,
            use_atmosphere,
            tau_zenith,
        )
    return out


@njit(cache=True)
def _eta_capture(
    rng_km: np.ndarray,
    el_rad: np.ndarray,
    w0_m: float,
    rayleigh_m: float,
    aperture2_m2: float,
    jitter_rad: float,
    k_wave: float,
    use_turbulence: bool,
    grid_el: np.ndarray,
    grid_rho0: np.ndarray,
) -> np.ndarray:
    """The ``eta_th`` factor alone (capture + pointing, no atmosphere)."""
    out = np.empty(rng_km.size, dtype=np.float64)
    for i in range(rng_km.size):
        z = rng_km[i] * 1000.0
        ratio = z / rayleigh_m
        w_d = w0_m * math.sqrt(1.0 + ratio * ratio)
        if use_turbulence:
            rho0 = _interp_clamped(el_rad[i], grid_el, grid_rho0)
            if math.isinf(rho0):
                w = w_d
            else:
                if rho0 <= 0.0:
                    rho0 = 1.0
                w_t = 2.0 * z / (k_wave * rho0)
                w = math.sqrt(w_d * w_d + w_t * w_t)
        else:
            w = w_d
        w2 = w * w
        eta = 1.0 - math.exp(-2.0 * aperture2_m2 / w2)
        if jitter_rad > 0.0:
            d = jitter_rad * rng_km[i] * 1000.0
            d2 = d * d
            eta = eta * math.exp(-2.0 * d2 / w2)
        out[i] = eta
    return out


@njit(cache=True)
def _eta_atmosphere(el_rad: np.ndarray, tau_zenith: float) -> np.ndarray:
    """Slant extinction ``exp(-tau_zenith / sin(el))`` over a flat array."""
    out = np.empty(el_rad.size, dtype=np.float64)
    for i in range(el_rad.size):
        out[i] = math.exp(-tau_zenith / math.sin(el_rad[i]))
    return out


def _warm_transmissivity() -> None:
    rng = np.array([500.0, 1200.0])
    el = np.array([0.3, 1.2])
    grid = np.array([0.1, 1.5])
    rho0 = np.array([0.05, 0.2])
    _transmissivity(
        rng, el, 0.4, 300000.0, 0.36, 0.9, 1e-6, 7e6, True, grid, rho0, True, 0.006
    )


def _warm_eta_capture() -> None:
    rng = np.array([500.0, 1200.0])
    el = np.array([0.3, 1.2])
    grid = np.array([0.1, 1.5])
    rho0 = np.array([0.05, 0.2])
    _eta_capture(rng, el, 0.4, 300000.0, 0.36, 1e-6, 7e6, True, grid, rho0)


def _warm_eta_atmosphere() -> None:
    _eta_atmosphere(np.array([0.3, 1.2]), 0.006)


dispatch.register("fso.transmissivity", _transmissivity, warm=_warm_transmissivity)
dispatch.register("fso.eta_capture", _eta_capture, warm=_warm_eta_capture)
dispatch.register("fso.eta_atmosphere", _eta_atmosphere, warm=_warm_eta_atmosphere)
