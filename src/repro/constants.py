"""Physical and astronomical constants used throughout the QNTN simulator.

All constants use SI-derived units consistent with the package conventions:
kilometres for lengths, seconds for time, radians for angles. Wavelengths
are in metres because optics formulae are conventionally written that way;
helpers that mix the two are explicit about units in their docstrings.
"""

from __future__ import annotations

import math

__all__ = [
    "EARTH_RADIUS_KM",
    "EARTH_MU_KM3_S2",
    "EARTH_J2",
    "EARTH_ROTATION_RATE_RAD_S",
    "EARTH_FLATTENING",
    "WGS84_A_KM",
    "WGS84_B_KM",
    "WGS84_E2",
    "SIDEREAL_DAY_S",
    "SOLAR_DAY_S",
    "DAY_MINUTES",
    "SPEED_OF_LIGHT_KM_S",
    "SPEED_OF_LIGHT_M_S",
    "FIBER_REFRACTIVE_INDEX",
    "DEFAULT_WAVELENGTH_M",
    "QNTN_SATELLITE_ALTITUDE_KM",
    "QNTN_SEMI_MAJOR_AXIS_KM",
    "QNTN_INCLINATION_RAD",
    "QNTN_HAP_ALTITUDE_KM",
    "QNTN_HAP_LAT_DEG",
    "QNTN_HAP_LON_DEG",
    "QNTN_MIN_ELEVATION_RAD",
    "QNTN_TRANSMISSIVITY_THRESHOLD",
    "QNTN_FIBER_ATTENUATION_DB_KM",
    "QNTN_EPHEMERIS_STEP_S",
    "deg2rad",
    "rad2deg",
    "db_to_linear",
    "linear_to_db",
]

# --- Earth model -----------------------------------------------------------

#: Mean spherical Earth radius [km]; used for great-circle geometry.
EARTH_RADIUS_KM: float = 6371.0

#: Earth's gravitational parameter GM [km^3 / s^2].
EARTH_MU_KM3_S2: float = 398600.4418

#: Second zonal harmonic of Earth's gravity field (dimensionless).
EARTH_J2: float = 1.08262668e-3

#: Earth's sidereal rotation rate [rad/s].
EARTH_ROTATION_RATE_RAD_S: float = 7.2921150e-5

#: WGS-84 flattening (dimensionless).
EARTH_FLATTENING: float = 1.0 / 298.257223563

#: WGS-84 semi-major axis [km].
WGS84_A_KM: float = 6378.137

#: WGS-84 semi-minor axis [km].
WGS84_B_KM: float = WGS84_A_KM * (1.0 - EARTH_FLATTENING)

#: WGS-84 first eccentricity squared (dimensionless).
WGS84_E2: float = EARTH_FLATTENING * (2.0 - EARTH_FLATTENING)

#: Sidereal day [s].
SIDEREAL_DAY_S: float = 86164.0905

#: Mean solar day [s].
SOLAR_DAY_S: float = 86400.0

#: Minutes in a day, the denominator of the paper's coverage percentage Eq. (7).
DAY_MINUTES: float = 1440.0

# --- Optics / propagation ---------------------------------------------------

#: Speed of light in vacuum [km/s].
SPEED_OF_LIGHT_KM_S: float = 299792.458

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT_M_S: float = 299792458.0

#: Group refractive index of standard telecom fiber (dimensionless).
FIBER_REFRACTIVE_INDEX: float = 1.468

#: Default optical carrier wavelength [m] (810 nm downlink, as used by
#: satellite entanglement-distribution experiments such as Micius).
DEFAULT_WAVELENGTH_M: float = 810e-9

# --- QNTN scenario parameters (Sections II & IV of the paper) ---------------

#: Altitude of the LEO constellation [km].
QNTN_SATELLITE_ALTITUDE_KM: float = 500.0

#: Semi-major axis of the constellation orbits [km] (paper: 6871 km).
QNTN_SEMI_MAJOR_AXIS_KM: float = 6871.0

#: Inclination of all constellation planes [rad] (paper: 53 degrees).
QNTN_INCLINATION_RAD: float = math.radians(53.0)

#: Altitude of the high-altitude platform [km].
QNTN_HAP_ALTITUDE_KM: float = 30.0

#: HAP hover latitude [deg] (paper Section II-C).
QNTN_HAP_LAT_DEG: float = 35.6692

#: HAP hover longitude [deg] (paper Section II-C).
QNTN_HAP_LON_DEG: float = -85.0662

#: Minimum elevation angle for FSO links [rad] (paper: pi/9 = 20 degrees).
QNTN_MIN_ELEVATION_RAD: float = math.pi / 9.0

#: Transmissivity threshold for establishing a link (paper Fig. 5 analysis).
QNTN_TRANSMISSIVITY_THRESHOLD: float = 0.7

#: Fiber attenuation coefficient [dB/km] (paper Section IV).
QNTN_FIBER_ATTENUATION_DB_KM: float = 0.15

#: Cadence of the satellite movement sheets [s] (paper Section III-C).
QNTN_EPHEMERIS_STEP_S: float = 30.0

# --- Small unit helpers ------------------------------------------------------


def deg2rad(deg: float) -> float:
    """Convert degrees to radians (scalar convenience wrapper)."""
    return math.radians(deg)


def rad2deg(rad: float) -> float:
    """Convert radians to degrees (scalar convenience wrapper)."""
    return math.degrees(rad)


def db_to_linear(db: float) -> float:
    """Convert a decibel power ratio to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(linear: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises:
        ValueError: if ``linear`` is not strictly positive.
    """
    if linear <= 0.0:
        raise ValueError(f"linear power ratio must be positive, got {linear!r}")
    return 10.0 * math.log10(linear)
