"""NetworkX interoperability and connectivity diagnostics.

Converts the simulator's link graphs into :mod:`networkx` graphs so that
(a) the in-house Bellman–Ford/Dijkstra implementations can be
cross-validated against an independent library, and (b) standard
connectivity diagnostics (components, articulation points) are available
for network-design studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import NoPathError, RoutingError
from repro.network.topology import LinkGraph
from repro.routing.metrics import DEFAULT_EPSILON, edge_cost

__all__ = [
    "to_networkx",
    "networkx_path_cost",
    "ConnectivityReport",
    "connectivity_report",
]


def to_networkx(graph: LinkGraph, epsilon: float = DEFAULT_EPSILON) -> nx.Graph:
    """Build an undirected networkx graph with per-edge routing costs.

    Edge attributes: ``eta`` (transmissivity) and ``weight``
    (``1/(eta + eps)``, the paper's routing metric).
    """
    g = nx.Graph()
    g.add_nodes_from(graph)
    for u, neighbors in graph.items():
        for v, eta in neighbors.items():
            if not g.has_edge(u, v):
                g.add_edge(u, v, eta=eta, weight=edge_cost(eta, epsilon))
    return g


def networkx_path_cost(
    graph: LinkGraph, source: str, destination: str, epsilon: float = DEFAULT_EPSILON
) -> float:
    """Minimum routing cost via networkx's Dijkstra (cross-check oracle).

    Raises:
        NoPathError: when networkx finds no route.
        RoutingError: when either endpoint is missing.
    """
    if source not in graph or destination not in graph:
        raise RoutingError(f"unknown endpoint in ({source!r}, {destination!r})")
    g = to_networkx(graph, epsilon)
    try:
        return float(nx.shortest_path_length(g, source, destination, weight="weight"))
    except nx.NetworkXNoPath:
        raise NoPathError(source, destination) from None


@dataclass(frozen=True)
class ConnectivityReport:
    """Structural summary of a link-graph snapshot.

    Attributes:
        n_nodes / n_edges: graph size.
        n_components: connected components (isolated nodes count).
        largest_component_size: node count of the biggest component.
        n_articulation_points: single points of failure.
        lans_connected: whether all named LANs share one component.
    """

    n_nodes: int
    n_edges: int
    n_components: int
    largest_component_size: int
    n_articulation_points: int
    lans_connected: bool


def connectivity_report(
    graph: LinkGraph, lan_members: dict[str, list[str]] | None = None
) -> ConnectivityReport:
    """Compute a :class:`ConnectivityReport` for a snapshot.

    Args:
        graph: usable-link adjacency.
        lan_members: optional LAN membership to evaluate the paper's
            all-LANs-connected coverage condition structurally.
    """
    g = to_networkx(graph)
    components = list(nx.connected_components(g))
    largest = max((len(c) for c in components), default=0)

    lans_ok = False
    if lan_members:
        # Every LAN must have at least one member inside a single shared
        # component.
        for component in components:
            if all(any(m in component for m in members) for members in lan_members.values()):
                lans_ok = True
                break

    return ConnectivityReport(
        n_nodes=g.number_of_nodes(),
        n_edges=g.number_of_edges(),
        n_components=len(components),
        largest_component_size=largest,
        n_articulation_points=sum(1 for _ in nx.articulation_points(g)),
        lans_connected=lans_ok,
    )
