"""The transmissivity-based routing metric (paper Section III-B).

Transmissivity cannot be used directly as a distance — larger is better
and it lives in [0, 1] — so the paper minimises ``1/(eta + eps)`` with a
small ``eps`` guarding division by zero.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.network.topology import LinkGraph

__all__ = [
    "DEFAULT_EPSILON",
    "edge_cost",
    "path_cost",
    "path_transmissivity",
    "path_edges",
]

#: The paper's division-by-zero guard in the cost metric.
DEFAULT_EPSILON: float = 1e-6


def edge_cost(transmissivity: float, epsilon: float = DEFAULT_EPSILON) -> float:
    """Routing cost ``1/(eta + eps)`` of a single link."""
    if not 0.0 <= transmissivity <= 1.0 or not math.isfinite(transmissivity):
        raise ValidationError(f"transmissivity must be in [0, 1], got {transmissivity}")
    if epsilon <= 0.0:
        raise ValidationError(f"epsilon must be positive, got {epsilon}")
    return 1.0 / (transmissivity + epsilon)


def path_cost(transmissivities: Iterable[float], epsilon: float = DEFAULT_EPSILON) -> float:
    """Total Bellman–Ford cost of a path (sum of per-edge costs)."""
    return sum(edge_cost(eta, epsilon) for eta in transmissivities)


def path_transmissivity(transmissivities: Iterable[float]) -> float:
    """End-to-end transmissivity of a path (product of per-link eta).

    This is the quantity that parameterises the end-to-end amplitude
    damping, because amplitude-damping channels compose multiplicatively.
    """
    values = list(transmissivities)
    if not values:
        return 1.0
    if all(isinstance(eta, float) for eta in values):
        # Hot path: per-request paths are a handful of plain floats, and
        # the `0 <= eta <= 1` comparison rejects NaN by itself, so the
        # array round-trip below is pure overhead. A sequential product
        # matches np.prod bit-for-bit (both left-fold in order).
        product = 1.0
        for eta in values:
            if not 0.0 <= eta <= 1.0:
                raise ValidationError("transmissivities must lie in [0, 1]")
            product *= eta
        return float(product)
    etas = np.asarray(values, dtype=float)
    if np.any((etas < 0) | (etas > 1)) or not np.all(np.isfinite(etas)):
        raise ValidationError("transmissivities must lie in [0, 1]")
    return float(np.prod(etas))


def path_edges(graph: LinkGraph, path: Sequence[str]) -> list[float]:
    """Per-link transmissivities along ``path`` in ``graph``.

    Raises:
        ValidationError: if any consecutive pair is not linked.
    """
    etas: list[float] = []
    for u, v in zip(path, path[1:]):
        neighbors = graph.get(u, {})
        if v not in neighbors:
            raise ValidationError(f"path edge {u!r} -> {v!r} does not exist")
        etas.append(neighbors[v])
    return etas
