"""Yen's k-shortest simple paths on the ``1/(eta + eps)`` metric.

The multipath strategy layer (:mod:`repro.routing.strategies`) needs the
best *k* loop-free alternatives between two ground nodes, in
nondecreasing cost order, so it can reserve memory at intermediate
platforms and distill the resulting pairs. Yen's algorithm provides
exactly that: the best path comes from a single-source run, and every
further path is the cheapest "spur" deviation off an already-accepted
path with the deviating edges masked out.

The spur-path inner solver is :func:`repro.routing.dijkstra.dijkstra`
— all edge costs on this metric are positive, so Dijkstra is exact here
and this wires the previously stand-alone baseline into the serving
path (the shared-metric equivalence with Bellman–Ford is pinned in
``tests/routing/``).

Determinism: candidate spurs are ordered by ``(cost, path)`` — node
names break float ties — so the enumeration order is a pure function of
the graph, independent of dict iteration or hash randomisation.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Mapping

from repro.errors import NoPathError, RoutingError
from repro.network.topology import LinkGraph
from repro.routing.dijkstra import dijkstra_path
from repro.routing.metrics import DEFAULT_EPSILON, path_cost, path_edges

__all__ = ["k_shortest_paths", "yen_paths"]


class _MaskedGraph(Mapping):
    """Read-only view of a link graph with nodes and directed edges removed.

    Implements just enough of the mapping protocol for the Dijkstra /
    Bellman–Ford solvers (`in`, iteration, ``graph[u].items()``) without
    copying the underlying adjacency.
    """

    def __init__(
        self,
        graph: LinkGraph,
        banned_nodes: frozenset[str],
        banned_edges: frozenset[tuple[str, str]],
    ) -> None:
        self._graph = graph
        self._banned_nodes = banned_nodes
        self._banned_edges = banned_edges

    def __contains__(self, node: object) -> bool:
        return node in self._graph and node not in self._banned_nodes

    def __iter__(self):
        for node in self._graph:
            if node not in self._banned_nodes:
                yield node

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __getitem__(self, node: str) -> dict[str, float]:
        if node in self._banned_nodes:
            raise KeyError(node)
        return {
            v: eta
            for v, eta in self._graph[node].items()
            if v not in self._banned_nodes and (node, v) not in self._banned_edges
        }


def yen_paths(
    graph: LinkGraph,
    source: str,
    destination: str,
    epsilon: float = DEFAULT_EPSILON,
) -> Iterator[tuple[list[str], float]]:
    """Lazily yield ``(path, cost)`` in nondecreasing cost order.

    Paths are simple (loop-free) by construction: spur computations mask
    every root-prefix node, so a spur can never revisit the prefix. The
    generator terminates when the simple paths are exhausted.

    Raises:
        RoutingError: if either endpoint is not in the graph.
    """
    if source not in graph:
        raise RoutingError(f"source {source!r} is not in the graph")
    if destination not in graph:
        raise RoutingError(f"destination {destination!r} is not in the graph")
    try:
        first, _ = dijkstra_path(graph, source, destination, epsilon)
    except NoPathError:
        return
    accepted: list[list[str]] = [first]
    seen: set[tuple[str, ...]] = {tuple(first)}
    yield first, path_cost(path_edges(graph, first), epsilon)
    # Min-heap of (cost, path-tuple) candidate deviations; the path
    # tuple both deduplicates and breaks cost ties deterministically.
    frontier: list[tuple[float, tuple[str, ...]]] = []
    while True:
        prev = accepted[-1]
        for i in range(len(prev) - 1):
            spur_node = prev[i]
            root = prev[: i + 1]
            banned_edges = {
                (p[i], p[i + 1])
                for p in accepted
                if len(p) > i + 1 and p[: i + 1] == root
            }
            banned_nodes = frozenset(root[:-1])
            masked = _MaskedGraph(graph, banned_nodes, frozenset(banned_edges))
            try:
                spur, _ = dijkstra_path(masked, spur_node, destination, epsilon)
            except NoPathError:
                continue
            candidate = tuple(root[:-1] + spur)
            if candidate in seen:
                continue
            seen.add(candidate)
            cost = path_cost(path_edges(graph, list(candidate)), epsilon)
            heapq.heappush(frontier, (cost, candidate))
        if not frontier:
            return
        cost, best = heapq.heappop(frontier)
        accepted.append(list(best))
        yield list(best), cost


def k_shortest_paths(
    graph: LinkGraph,
    source: str,
    destination: str,
    k: int,
    epsilon: float = DEFAULT_EPSILON,
) -> list[tuple[list[str], float]]:
    """The best ``k`` simple paths as ``(path, cost)``, cost-ordered.

    Fewer than ``k`` entries are returned when the graph holds fewer
    simple paths; an empty list means the endpoints are disconnected.

    Raises:
        RoutingError: if ``k < 1`` or an endpoint is missing.
    """
    if k < 1:
        raise RoutingError(f"k must be >= 1, got {k}")
    out: list[tuple[list[str], float]] = []
    for path, cost in yen_paths(graph, source, destination, epsilon):
        out.append((path, cost))
        if len(out) == k:
            break
    return out
