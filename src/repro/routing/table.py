"""Per-node routing tables, the data structure of the paper's Algorithm 1.

Each node keeps, per destination, the best known cost and the next hop
toward it (the ``{cost, via}`` pairs of the INITIALIZE/UPDATE pseudocode).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import RoutingError

__all__ = ["RouteEntry", "RoutingTable"]


@dataclass(frozen=True)
class RouteEntry:
    """One routing-table row.

    Attributes:
        cost: accumulated metric to the destination (``inf`` if unknown).
        via: next hop toward the destination (``None`` if unknown/self).
    """

    cost: float
    via: str | None

    @property
    def reachable(self) -> bool:
        """Whether the destination is currently reachable."""
        return math.isfinite(self.cost)


@dataclass
class RoutingTable:
    """The routing table ``R`` of one node (paper Algorithm 1).

    Attributes:
        owner: name of the node that owns the table.
    """

    owner: str
    _entries: dict[str, RouteEntry] = field(default_factory=dict)

    def set(self, destination: str, cost: float, via: str | None) -> None:
        """Insert or overwrite the row for ``destination``."""
        self._entries[destination] = RouteEntry(cost, via)

    def get(self, destination: str) -> RouteEntry:
        """Row for ``destination``.

        Raises:
            RoutingError: if the destination was never initialised.
        """
        try:
            return self._entries[destination]
        except KeyError:
            raise RoutingError(
                f"{self.owner!r} has no routing entry for {destination!r}"
            ) from None

    def cost(self, destination: str) -> float:
        """Best known cost to ``destination``."""
        return self.get(destination).cost

    def destinations(self) -> list[str]:
        """All destinations with table rows."""
        return list(self._entries)

    def as_dict(self) -> dict[str, object]:
        """JSON-safe rendering for trace records and run reports.

        Unreachable destinations serialize with ``cost: None`` (JSON has
        no infinity), so round-tripped tables stay machine-comparable.
        """
        return {
            "owner": self.owner,
            "entries": {
                dest: {
                    "cost": entry.cost if entry.reachable else None,
                    "via": entry.via,
                }
                for dest, entry in sorted(self._entries.items())
            },
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, destination: str) -> bool:
        return destination in self._entries
