"""Pluggable routing strategies: k-shortest multipath with purification.

The paper's router serves a request over the single Bellman–Ford
shortest path and denies everything else. This module adds the
``k-shortest`` strategy behind every serving backend (direct / cached /
matrix): when the strict single-path service denies a request, the
strategy enumerates the best ``k`` simple paths on a *relaxed* link
graph (same elevation gate, lower per-link transmissivity threshold),
reserves entanglement-memory slots at each path's intermediate
platforms, and distills the resulting pairs (BBPSSW/DEJMPS recurrence
on Werner-twirled inputs) until the end-to-end fidelity clears the
baseline's own floor — the fidelity the strict policy would deliver on
a worst-case admitted two-hop path.

Equivalence guarantees (pinned by ``tests/routing/``):

* ``k = 1`` is the identity: the strategy never intervenes, so every
  backend's outcomes are bit-identical to the legacy router.
* ``k >= 2`` is monotone: strict-path service is untouched (memory
  bounds budget only the *extra* pairs multipath holds concurrently),
  so the served set is a superset of the baseline's.

Outcomes stay pure functions of ``(source, destination, t_s)``: the
memory pool is scoped to one request's purification attempt, so
streaming == batch and serial == sharded replays hold under any worker
count (DESIGN.md §16).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

import numpy as np

from repro import obs
from repro.errors import ValidationError
from repro.network.links import LinkPolicy
from repro.obs.trace import DenialCause
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity
from repro.routing.memory import MemoryPool
from repro.routing.metrics import DEFAULT_EPSILON, path_edges, path_transmissivity
from repro.routing.yen import yen_paths

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.analysis import SpaceGroundAnalysis
    from repro.network.topology import LinkGraph

__all__ = [
    "ROUTERS",
    "CandidatePath",
    "KShortestStrategy",
    "MultipathPlan",
    "PathTable",
    "StrategyConfig",
    "build_strategy",
    "distill_step",
    "projection_fidelity",
]

#: Recognised ``--router`` values, CLI choice order.
ROUTERS = ("shortest", "k-shortest")

# Per-strategy instruments (import-time creation, flag-check when
# disabled — the same overhead contract as the simulator's counters).
_ATTEMPTS = obs.counter("routing.strategy.multipath.attempts")
_RESCUED = obs.counter("routing.strategy.multipath.served")
_ROUNDS = obs.histogram("routing.strategy.purification.rounds", buckets=(1, 2, 3, 4, 6))
_EXHAUSTED = obs.counter("routing.strategy.denied.route_exhausted")
_MEMORY_FULL = obs.counter("routing.strategy.denied.memory_full")
_INSTALLED = obs.counter("routing.paths.installed")
_UNINSTALLED = obs.counter("routing.paths.uninstalled")
_HITS = obs.counter("routing.paths.hits")


def projection_fidelity(eta: float) -> float:
    """Werner (projection) fidelity of a pair delivered over ``eta``.

    The squared-convention closed form ``((1 + sqrt(eta)) / 2)^2`` —
    the overlap with the target Bell state after amplitude damping,
    which is the quantity the purification recurrence acts on. The
    density-matrix oracle in :mod:`repro.network.protocols` reproduces
    it exactly (pinned in ``tests/routing/``).
    """
    return float(entanglement_fidelity_from_transmissivity(eta, convention="squared"))


def distill_step(f1: float, f2: float) -> float:
    """BBPSSW output fidelity for two Werner pairs of fidelity f1, f2.

    The standard recurrence (success branch) after twirling both inputs
    to Werner form — identical to running
    :func:`repro.network.protocols.dejmps_purification` on the twirled
    density matrices, but in closed form for the serving hot path.
    """
    num = f1 * f2 + (1.0 - f1) * (1.0 - f2) / 9.0
    den = (
        f1 * f2
        + (f1 * (1.0 - f2) + f2 * (1.0 - f1)) / 3.0
        + 5.0 * (1.0 - f1) * (1.0 - f2) / 9.0
    )
    return num / den


@dataclass(frozen=True)
class StrategyConfig:
    """Declarative multipath-strategy knobs (picklable; shard workers
    rebuild an identical strategy from this record).

    Attributes:
        router: ``"shortest"`` (legacy single path, the default) or
            ``"k-shortest"`` (Yen multipath rescue).
        k: paths held concurrently per rescue attempt; ``k = 1`` keeps
            the strategy inert (the equivalence leg).
        memory_slots: entanglement-memory slots per intermediate
            platform (2 per transit pair); ``None`` = unbounded.
        eta_relax: per-link transmissivity threshold of the relaxed
            graph rescue paths route over (elevation gate unchanged).
        fidelity_floor: minimum delivered fidelity, in the engine's
            convention; ``None`` derives the baseline floor
            ``F(threshold^2)`` — the worst fidelity the strict policy
            itself admits on a two-hop path.
        max_rounds: purification-round budget per request.
        decoherence_window_s: how long a reserved pair stays usable;
            ``None`` = no expiry.
        swap_latency_s: per-hop establishment latency, the clock that
            ages earlier pairs while later paths are established.
        scan_limit: Yen enumeration budget per rescue (candidate paths
            examined, including memory-rejected ones); ``None`` derives
            ``max(4 * k, 8)``.
    """

    router: str = "shortest"
    k: int = 2
    memory_slots: int | None = 4
    eta_relax: float = 0.5
    fidelity_floor: float | None = None
    max_rounds: int = 3
    decoherence_window_s: float | None = 1.0
    swap_latency_s: float = 0.01
    scan_limit: int | None = None

    def __post_init__(self) -> None:
        if self.router not in ROUTERS:
            raise ValidationError(
                f"unknown router {self.router!r}; expected one of {ROUTERS}"
            )
        if self.k < 1:
            raise ValidationError(f"k must be >= 1, got {self.k}")
        if self.memory_slots is not None and self.memory_slots < 0:
            raise ValidationError(f"memory_slots must be >= 0, got {self.memory_slots}")
        if not 0.0 < self.eta_relax <= 1.0:
            raise ValidationError(f"eta_relax must be in (0, 1], got {self.eta_relax}")
        if self.max_rounds < 1:
            raise ValidationError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.swap_latency_s < 0.0:
            raise ValidationError(
                f"swap_latency_s must be >= 0, got {self.swap_latency_s}"
            )
        if self.scan_limit is not None and self.scan_limit < self.k:
            raise ValidationError(
                f"scan_limit must be >= k, got {self.scan_limit} < {self.k}"
            )


@dataclass(frozen=True)
class CandidatePath:
    """One enumerated rescue path.

    Attributes:
        path: full node sequence, endpoints included.
        eta: end-to-end transmissivity.
        interiors: intermediate *platform* names — the nodes whose
            entanglement memories the path occupies.
    """

    path: tuple[str, ...]
    eta: float
    interiors: tuple[str, ...]

    @property
    def hops(self) -> int:
        """Number of links (= sequential pair-establishment stages)."""
        return len(self.path) - 1


@dataclass(frozen=True)
class MultipathPlan:
    """Outcome of one rescue attempt.

    Attributes:
        served: whether distillation reached the fidelity floor.
        path: primary (highest-fidelity) path when served.
        eta: the primary path's end-to-end transmissivity.
        fidelity: distilled fidelity in the engine's convention.
        n_paths: pairs consumed by the distillation (>= 2 when served).
        rounds: purification rounds performed.
        cause: ``route_exhausted`` / ``memory_full`` when unserved.
    """

    served: bool
    path: tuple[str, ...] = ()
    eta: float = 0.0
    fidelity: float = float("nan")
    n_paths: int = 0
    rounds: int = 0
    cause: str | None = None


class PathTable:
    """Installed candidate-path sets, keyed by ``(src, dst)`` per epoch.

    An epoch identifies one link-state snapshot (the cache's weighted
    feasible-edge key, or the timestamp on the direct path). Lookups
    within an epoch reuse the installed enumeration; advancing the
    epoch uninstalls every entry and returns the pairs that were
    active, so the strategy can proactively re-install them against the
    new snapshot before traffic arrives.
    """

    def __init__(self) -> None:
        self._epoch: Hashable | None = None
        self._entries: dict[tuple[str, str], tuple[CandidatePath, ...]] = {}

    @property
    def epoch(self) -> Hashable | None:
        """The snapshot identity current entries were installed for."""
        return self._epoch

    def __len__(self) -> int:
        return len(self._entries)

    def advance(self, epoch: Hashable) -> list[tuple[str, str]]:
        """Enter ``epoch``; uninstall stale entries, return their pairs."""
        if epoch == self._epoch:
            return []
        stale = list(self._entries)
        _UNINSTALLED.inc(len(stale))
        self._entries.clear()
        self._epoch = epoch
        return stale

    def lookup(self, pair: tuple[str, str]) -> tuple[CandidatePath, ...] | None:
        """Installed candidates for ``pair`` in the current epoch."""
        hit = self._entries.get(pair)
        if hit is not None:
            _HITS.inc()
        return hit

    def install(
        self, pair: tuple[str, str], candidates: tuple[CandidatePath, ...]
    ) -> None:
        """Install an enumeration for ``pair`` under the current epoch."""
        self._entries[pair] = candidates
        _INSTALLED.inc()


class KShortestStrategy:
    """Yen k-shortest multipath rescue with memory-aware purification.

    Built once per engine (:func:`build_strategy`); holds the path
    table and derived policy/floor values, but no per-request state —
    every :meth:`plan` call scopes its own :class:`MemoryPool`.

    Args:
        config: the declarative knobs.
        policy: the engine's strict admission policy (floor + relaxed
            policy derive from it).
        fidelity_convention: ``"sqrt"`` / ``"squared"`` — the space
            ``fidelity_floor`` and delivered fidelities live in.
        epsilon: routing-metric epsilon (shared with the strict router).
    """

    def __init__(
        self,
        config: StrategyConfig,
        *,
        policy: LinkPolicy | None = None,
        fidelity_convention: str = "sqrt",
        epsilon: float = DEFAULT_EPSILON,
    ) -> None:
        base = policy or LinkPolicy()
        self.config = config
        self.policy = base
        self.fidelity_convention = fidelity_convention
        self.epsilon = epsilon
        self.relaxed_policy = LinkPolicy(
            transmissivity_threshold=config.eta_relax,
            min_elevation_rad=base.min_elevation_rad,
        )
        floor = (
            config.fidelity_floor
            if config.fidelity_floor is not None
            else float(
                entanglement_fidelity_from_transmissivity(
                    base.transmissivity_threshold**2, convention=fidelity_convention
                )
            )
        )
        self.fidelity_floor = floor
        # The distillation recurrence runs in projection (squared) space.
        self.floor_projection = floor**2 if fidelity_convention == "sqrt" else floor
        self.table = PathTable()

    @property
    def active(self) -> bool:
        """Whether the strategy ever intervenes (k >= 2 rescue)."""
        return self.config.router == "k-shortest" and self.config.k >= 2

    @property
    def scan_limit(self) -> int:
        """Yen enumeration budget per rescue attempt."""
        if self.config.scan_limit is not None:
            return self.config.scan_limit
        return max(4 * self.config.k, 8)

    def _to_convention(self, f_projection: float) -> float:
        return (
            math.sqrt(f_projection)
            if self.fidelity_convention == "sqrt"
            else f_projection
        )

    # --- candidate enumeration ----------------------------------------------

    def candidates(
        self,
        pair: tuple[str, str],
        epoch: Hashable,
        enumerate_pair: Callable[[tuple[str, str]], tuple[CandidatePath, ...]],
    ) -> tuple[CandidatePath, ...]:
        """Path-table front end: lookup, else install (proactively
        re-installing the previous epoch's active pairs first)."""
        for stale in self.table.advance(epoch):
            self.table.install(stale, enumerate_pair(stale))
        cached = self.table.lookup(pair)
        if cached is not None:
            return cached
        fresh = enumerate_pair(pair)
        self.table.install(pair, fresh)
        return fresh

    def graph_candidates(
        self,
        graph: "LinkGraph",
        source: str,
        destination: str,
        is_platform: Callable[[str], bool],
    ) -> tuple[CandidatePath, ...]:
        """Yen enumeration over a relaxed link graph (direct / cached)."""
        if source not in graph or destination not in graph:
            return ()
        out: list[CandidatePath] = []
        for path, _cost in yen_paths(graph, source, destination, self.epsilon):
            out.append(
                CandidatePath(
                    path=tuple(path),
                    eta=path_transmissivity(path_edges(graph, path)),
                    interiors=tuple(n for n in path[1:-1] if is_platform(n)),
                )
            )
            if len(out) >= self.scan_limit:
                break
        return tuple(out)

    def matrix_candidates(
        self,
        relaxed: "SpaceGroundAnalysis",
        source: str,
        destination: str,
        time_index: int,
        n_satellites: int | None = None,
    ) -> tuple[CandidatePath, ...]:
        """Two-hop relay enumeration over relaxed budget matrices.

        The matrix analog of :meth:`graph_candidates`: relays usable to
        both endpoints under the relaxed policy, ordered by the same
        two-hop cost :meth:`SpaceGroundAnalysis.best_relay` minimises
        (stable sort — float ties break by satellite index). Each relay
        is emitted up to ``k`` times: successive pairs established over
        the same relay are the matrix discretisation of the graph
        backends' near-duplicate fiber-detour paths, and the memory
        pool bounds how many a relay can actually hold concurrently
        (2 slots each).
        """
        bs = relaxed.budget(source)
        bd = relaxed.budget(destination)
        n = bs.usable.shape[0] if n_satellites is None else n_satellites
        ok = bs.usable[:n, time_index] & bd.usable[:n, time_index]
        if not np.any(ok):
            return ()
        eta_s = bs.transmissivity[:n, time_index]
        eta_d = bd.transmissivity[:n, time_index]
        cost = np.where(
            ok,
            1.0 / (eta_s + self.epsilon) + 1.0 / (eta_d + self.epsilon),
            np.inf,
        )
        order = np.argsort(cost, kind="stable")[: self.scan_limit]
        out: list[CandidatePath] = []
        for i in order:
            if not ok[i] or len(out) >= self.scan_limit:
                break
            relay = relaxed.ephemeris.names[int(i)]
            candidate = CandidatePath(
                path=(source, relay, destination),
                eta=float(eta_s[i] * eta_d[i]),
                interiors=(relay,),
            )
            out.extend([candidate] * min(self.config.k, self.scan_limit - len(out)))
        return tuple(out)

    # --- the rescue core ----------------------------------------------------

    def plan(self, candidates: Sequence[CandidatePath], t_s: float) -> MultipathPlan:
        """Reserve memory along candidate paths, distill, and decide.

        Candidates must arrive cost-ordered (Yen / relay-argmin order).
        Paths are accepted while memory admits them (2 slots per
        interior platform, atomically) up to ``k`` held pairs; the
        establishment clock advances one ``swap_latency_s`` per hop, so
        earlier pairs age — and may decohere — while later paths come
        up. Surviving pairs are distilled greedily, best fidelity
        first, until the floor is cleared or the round budget runs out.
        """
        cfg = self.config
        _ATTEMPTS.inc()
        pool = MemoryPool(cfg.memory_slots, window_s=cfg.decoherence_window_s)
        clock = t_s
        held: list[tuple[CandidatePath, object]] = []
        blocked = 0
        for cand in candidates:
            if len(held) >= cfg.k:
                break
            reservation = pool.try_reserve(cand.interiors, clock, slots_per_node=2)
            if reservation is None:
                blocked += 1
                continue
            clock += cand.hops * cfg.swap_latency_s
            held.append((cand, reservation))
        alive = [c for c, r in held if pool.alive(r, clock)]  # type: ignore[arg-type]
        if len(alive) < 2:
            # A lone relaxed pair is never served: the strict router
            # already owns single-path service, and a sub-threshold
            # link needs a partner pair to distill against.
            if blocked > 0:
                _MEMORY_FULL.inc()
                return MultipathPlan(served=False, cause=DenialCause.MEMORY_FULL.value)
            _EXHAUSTED.inc()
            return MultipathPlan(served=False, cause=DenialCause.ROUTE_EXHAUSTED.value)
        alive.sort(key=lambda c: (-c.eta, c.path))
        f = distill_step(
            projection_fidelity(alive[0].eta), projection_fidelity(alive[1].eta)
        )
        rounds, used = 1, 2
        for cand in alive[2:]:
            if f >= self.floor_projection or rounds >= cfg.max_rounds:
                break
            nxt = distill_step(f, projection_fidelity(cand.eta))
            if nxt <= f:
                break
            f = nxt
            rounds += 1
            used += 1
        if f < self.floor_projection:
            _EXHAUSTED.inc()
            return MultipathPlan(served=False, cause=DenialCause.ROUTE_EXHAUSTED.value)
        primary = alive[0]
        _RESCUED.inc()
        _ROUNDS.observe(rounds)
        return MultipathPlan(
            served=True,
            path=primary.path,
            eta=primary.eta,
            fidelity=self._to_convention(f),
            n_paths=used,
            rounds=rounds,
        )


def build_strategy(
    config: StrategyConfig | None,
    *,
    policy: LinkPolicy | None = None,
    fidelity_convention: str = "sqrt",
    epsilon: float = DEFAULT_EPSILON,
) -> KShortestStrategy | None:
    """Strategy instance for an engine, or ``None`` for the legacy router.

    ``None`` config and ``router="shortest"`` both mean "no strategy" —
    the serving paths then run the unmodified legacy code, which is the
    k-independent half of the equivalence guarantee.
    """
    if config is None or config.router == "shortest":
        return None
    return KShortestStrategy(
        config,
        policy=policy,
        fidelity_convention=fidelity_convention,
        epsilon=epsilon,
    )
