"""Bounded entanglement-memory accounting at intermediate platforms.

Entanglement swapping at a relay needs one memory slot per stored qubit
— two per transit path — and stored halves decohere: a reservation is
only usable inside its decoherence window. :class:`MemoryPool` is the
bookkeeping for both constraints: per-node slot capacities, atomic
multi-node reservations, explicit release, and time-based expiry.

The multipath strategy instantiates one pool per request (the serving
contract requires outcomes to be pure functions of
``(source, destination, t_s)``; see DESIGN.md §16), but the pool itself
is a general clocked accountant and the property suite drives it with
arbitrary interleaved reserve/release/expire streams: occupancy never
goes negative, and advancing time never increases occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["MemoryPool", "Reservation"]


@dataclass(frozen=True)
class Reservation:
    """One atomic multi-node slot reservation.

    Attributes:
        ticket: pool-unique identifier (monotonic issue order).
        nodes: platforms the slots were taken on.
        slots_per_node: slots held at each node.
        reserved_at_s: clock time of the reservation.
        expires_at_s: first instant the stored halves are unusable
            (``inf`` when the pool has no decoherence window).
    """

    ticket: int
    nodes: tuple[str, ...]
    slots_per_node: int
    reserved_at_s: float
    expires_at_s: float


class MemoryPool:
    """Per-node slot capacities with decoherence-window expiry.

    Args:
        capacity: slots available at each node (``None`` = unbounded —
            ground stations, whose memories the paper does not budget).
        window_s: decoherence window; a reservation made at ``t`` is
            alive on ``[t, t + window_s)``. ``None`` = no expiry.
    """

    def __init__(self, capacity: int | None, *, window_s: float | None = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValidationError(f"capacity must be >= 0, got {capacity}")
        if window_s is not None and window_s <= 0.0:
            raise ValidationError(f"window_s must be positive, got {window_s}")
        self.capacity = capacity
        self.window_s = window_s
        self._live: dict[int, Reservation] = {}
        self._next_ticket = 0

    # --- occupancy ----------------------------------------------------------

    def expire(self, t_s: float) -> int:
        """Drop every reservation whose window closed by ``t_s``.

        Returns the number of reservations dropped. Occupancy after an
        expiry sweep is monotone nonincreasing in ``t_s``: a reservation
        dead at ``t`` stays dead at every later time.
        """
        dead = [r.ticket for r in self._live.values() if r.expires_at_s <= t_s]
        for ticket in dead:
            del self._live[ticket]
        return len(dead)

    def in_use(self, node: str, t_s: float | None = None) -> int:
        """Slots held at ``node`` (alive-at-``t_s`` only, when given)."""
        return sum(
            r.slots_per_node
            for r in self._live.values()
            if node in r.nodes and (t_s is None or r.expires_at_s > t_s)
        )

    def available(self, node: str, t_s: float | None = None) -> int | None:
        """Free slots at ``node`` (``None`` = unbounded capacity)."""
        if self.capacity is None:
            return None
        return self.capacity - self.in_use(node, t_s)

    # --- reservations -------------------------------------------------------

    def try_reserve(
        self, nodes: tuple[str, ...] | list[str], t_s: float, *, slots_per_node: int = 2
    ) -> Reservation | None:
        """Atomically take ``slots_per_node`` at every node, or nothing.

        Expired reservations are swept first, so a full pool frees
        itself as the clock advances. Returns the reservation, or
        ``None`` when any node lacks capacity (the ``memory_full``
        signal upstream).
        """
        if slots_per_node < 1:
            raise ValidationError(f"slots_per_node must be >= 1, got {slots_per_node}")
        self.expire(t_s)
        unique = tuple(dict.fromkeys(nodes))
        if self.capacity is not None:
            for node in unique:
                # A path visiting a node once costs slots_per_node; the
                # caller passes each interior once (simple paths).
                if self.in_use(node) + slots_per_node > self.capacity:
                    return None
        expires = t_s + self.window_s if self.window_s is not None else float("inf")
        reservation = Reservation(
            ticket=self._next_ticket,
            nodes=unique,
            slots_per_node=slots_per_node,
            reserved_at_s=t_s,
            expires_at_s=expires,
        )
        self._next_ticket += 1
        self._live[reservation.ticket] = reservation
        return reservation

    def release(self, reservation: Reservation) -> bool:
        """Return a reservation's slots; False if already gone (expired)."""
        return self._live.pop(reservation.ticket, None) is not None

    def alive(self, reservation: Reservation, t_s: float) -> bool:
        """Whether the reserved halves are still coherent at ``t_s``."""
        live = self._live.get(reservation.ticket)
        return live is not None and t_s < live.expires_at_s
