"""Entanglement routing on transmissivity-weighted link graphs.

The paper routes with Bellman–Ford over the cost metric ``1/(eta + eps)``
(Section III-B, Algorithm 1). This package provides that algorithm —
both a literal routing-table implementation of Algorithm 1 and a fast
relaxation form — plus a Dijkstra baseline on the same metric for the
routing ablation.
"""

from repro.routing.bellman_ford import (
    BellmanFordResult,
    bellman_ford,
    build_routing_tables,
    shortest_path,
)
from repro.routing.dijkstra import dijkstra, dijkstra_path
from repro.routing.graphtools import (
    ConnectivityReport,
    connectivity_report,
    networkx_path_cost,
    to_networkx,
)
from repro.routing.metrics import (
    DEFAULT_EPSILON,
    edge_cost,
    path_cost,
    path_transmissivity,
)
from repro.routing.table import RouteEntry, RoutingTable

__all__ = [
    "DEFAULT_EPSILON",
    "edge_cost",
    "path_cost",
    "path_transmissivity",
    "bellman_ford",
    "BellmanFordResult",
    "build_routing_tables",
    "shortest_path",
    "dijkstra",
    "dijkstra_path",
    "to_networkx",
    "networkx_path_cost",
    "connectivity_report",
    "ConnectivityReport",
    "RouteEntry",
    "RoutingTable",
]
