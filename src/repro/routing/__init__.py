"""Entanglement routing on transmissivity-weighted link graphs.

The paper routes with Bellman–Ford over the cost metric ``1/(eta + eps)``
(Section III-B, Algorithm 1). This package provides that algorithm —
both a literal routing-table implementation of Algorithm 1 and a fast
relaxation form — plus a Dijkstra solver on the same metric (the
routing-ablation baseline and Yen's spur-path inner solver), Yen's
k-shortest simple paths (:mod:`repro.routing.yen`), bounded
entanglement-memory accounting (:mod:`repro.routing.memory`), and the
pluggable multipath strategy layer (:mod:`repro.routing.strategies`)
the serving backends mount behind ``--router k-shortest``.
"""

from repro.routing.bellman_ford import (
    BellmanFordResult,
    bellman_ford,
    build_routing_tables,
    shortest_path,
)
from repro.routing.dijkstra import dijkstra, dijkstra_path
from repro.routing.graphtools import (
    ConnectivityReport,
    connectivity_report,
    networkx_path_cost,
    to_networkx,
)
from repro.routing.metrics import (
    DEFAULT_EPSILON,
    edge_cost,
    path_cost,
    path_transmissivity,
)
from repro.routing.memory import MemoryPool, Reservation
from repro.routing.strategies import (
    ROUTERS,
    CandidatePath,
    KShortestStrategy,
    MultipathPlan,
    PathTable,
    StrategyConfig,
    build_strategy,
    distill_step,
    projection_fidelity,
)
from repro.routing.table import RouteEntry, RoutingTable
from repro.routing.yen import k_shortest_paths, yen_paths

__all__ = [
    "ROUTERS",
    "CandidatePath",
    "KShortestStrategy",
    "MemoryPool",
    "MultipathPlan",
    "PathTable",
    "Reservation",
    "StrategyConfig",
    "build_strategy",
    "distill_step",
    "k_shortest_paths",
    "projection_fidelity",
    "yen_paths",
    "DEFAULT_EPSILON",
    "edge_cost",
    "path_cost",
    "path_transmissivity",
    "bellman_ford",
    "BellmanFordResult",
    "build_routing_tables",
    "shortest_path",
    "dijkstra",
    "dijkstra_path",
    "to_networkx",
    "networkx_path_cost",
    "connectivity_report",
    "ConnectivityReport",
    "RouteEntry",
    "RoutingTable",
]
