"""Bellman–Ford entanglement routing (paper Algorithm 1).

Two interchangeable implementations are provided:

* :func:`build_routing_tables` — a literal rendering of the paper's
  distance-vector pseudocode: every node initialises its table, then all
  nodes run N-1 synchronous UPDATE rounds against their neighbours'
  tables (step 2, the table exchange, is a no-op in-process exactly as the
  paper notes).
* :func:`bellman_ford` — the standard single-source relaxation, used on
  hot paths. The test suite checks both produce identical costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import NoPathError, RoutingError
from repro.kernels import kernel
from repro.network.topology import LinkGraph
from repro.routing.metrics import DEFAULT_EPSILON, edge_cost, path_edges, path_transmissivity
from repro.routing.table import RoutingTable

__all__ = [
    "bellman_ford",
    "BellmanFordResult",
    "FlatGraph",
    "build_routing_tables",
    "shortest_path",
]


@dataclass(frozen=True)
class BellmanFordResult:
    """Single-source shortest-path tree.

    Attributes:
        source: tree root.
        costs: best cost per reachable destination.
        predecessors: previous hop per destination (source maps to None).
    """

    source: str
    costs: dict[str, float]
    predecessors: dict[str, str | None]

    def reachable(self, destination: str) -> bool:
        """Whether the tree holds a finite-cost route to ``destination``."""
        return math.isfinite(self.costs.get(destination, math.inf))

    def path_to(self, destination: str) -> list[str]:
        """Node sequence from the source to ``destination``.

        Raises:
            NoPathError: if the destination is unreachable.
        """
        if destination not in self.costs or not math.isfinite(self.costs[destination]):
            raise NoPathError(self.source, destination)
        path = [destination]
        while path[-1] != self.source:
            prev = self.predecessors[path[-1]]
            if prev is None:
                raise NoPathError(self.source, destination)
            path.append(prev)
        path.reverse()
        return path


class FlatGraph:
    """Flat edge-array rendering of a :data:`LinkGraph` for repeated trees.

    The per-call cost of :func:`bellman_ford` is dominated by rebuilding
    the ``(u, v, cost)`` edge list — one :func:`edge_cost` call per
    directed edge — even though the graph snapshot is identical for
    every source routed at the same time step. ``FlatGraph`` pays that
    conversion once: nodes become integer indices, edges become three
    parallel arrays, and :meth:`tree` relaxes them for any source.

    Edge *order* is part of the contract: edges are listed exactly as
    the dict-based loop iterates them (outer dict order, then neighbor
    order) and relaxed sequentially with the same
    ``candidate < cost - 1e-15`` improvement rule, so the resulting
    costs and predecessor trees are bit-identical to the original
    implementation whether the sweep runs in pure Python or in the
    compiled ``routing.relax`` kernel.
    """

    __slots__ = ("nodes", "_index", "_edges", "_n", "_u_arr", "_v_arr", "_cost_arr")

    def __init__(self, graph: LinkGraph, epsilon: float = DEFAULT_EPSILON) -> None:
        self.nodes = list(graph)
        self._index = {name: i for i, name in enumerate(self.nodes)}
        index = self._index
        self._edges = [
            (index[u], index[v], edge_cost(eta, epsilon))
            for u, neighbors in graph.items()
            for v, eta in neighbors.items()
        ]
        self._n = len(self.nodes)
        self._u_arr: np.ndarray | None = None
        self._v_arr: np.ndarray | None = None
        self._cost_arr: np.ndarray | None = None

    def _arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._u_arr is None:
            self._u_arr = np.fromiter(
                (e[0] for e in self._edges), dtype=np.int64, count=len(self._edges)
            )
            self._v_arr = np.fromiter(
                (e[1] for e in self._edges), dtype=np.int64, count=len(self._edges)
            )
            self._cost_arr = np.fromiter(
                (e[2] for e in self._edges), dtype=np.float64, count=len(self._edges)
            )
        assert self._v_arr is not None and self._cost_arr is not None
        return self._u_arr, self._v_arr, self._cost_arr

    def tree(self, source: str) -> BellmanFordResult:
        """Shortest-path tree rooted at ``source``.

        Raises:
            RoutingError: if ``source`` is not a node of the graph.
        """
        if source not in self._index:
            raise RoutingError(f"source {source!r} is not in the graph")
        src = self._index[source]
        relax = kernel("routing.relax")
        if relax is not None:
            u_arr, v_arr, cost_arr = self._arrays()
            flat_costs, flat_pred = relax(u_arr, v_arr, cost_arr, self._n, src)
            flat_costs = flat_costs.tolist()
            flat_pred = flat_pred.tolist()
        else:
            flat_costs = [math.inf] * self._n
            flat_pred = [-1] * self._n
            flat_costs[src] = 0.0
            edges = self._edges
            for _ in range(max(self._n - 1, 1)):
                changed = False
                for u, v, cost in edges:
                    candidate = flat_costs[u] + cost
                    if candidate < flat_costs[v] - 1e-15:
                        flat_costs[v] = candidate
                        flat_pred[v] = u
                        changed = True
                if not changed:
                    break
        nodes = self.nodes
        costs = dict(zip(nodes, flat_costs))
        predecessors = {
            nodes[i]: (nodes[p] if p >= 0 else None) for i, p in enumerate(flat_pred)
        }
        return BellmanFordResult(source, costs, predecessors)


def bellman_ford(
    graph: LinkGraph, source: str, epsilon: float = DEFAULT_EPSILON
) -> BellmanFordResult:
    """Single-source Bellman–Ford over the ``1/(eta + eps)`` metric.

    Args:
        graph: usable-link adjacency ``{u: {v: eta}}``.
        source: start node; must be present in the graph.

    All edge costs are positive, so no negative-cycle pass is needed; the
    relaxation stops early once an entire sweep changes nothing. Callers
    routing many sources over one graph snapshot should build a
    :class:`FlatGraph` once and call :meth:`FlatGraph.tree` instead.
    """
    if source not in graph:
        raise RoutingError(f"source {source!r} is not in the graph")
    return FlatGraph(graph, epsilon).tree(source)


def build_routing_tables(
    graph: LinkGraph, epsilon: float = DEFAULT_EPSILON
) -> dict[str, RoutingTable]:
    """The paper's Algorithm 1: per-node routing tables via N-1 UPDATE rounds.

    INITIALIZE sets each node's cost to itself to 0, to each neighbour to
    ``1/(eta + eps)``, and to everything else to infinity. Each UPDATE
    round lets every node improve its route to any destination ``u`` by
    going through a neighbour ``v`` (cost to ``v`` plus ``v``'s advertised
    cost to ``u``). Rounds are synchronous: all nodes read the previous
    round's tables, exactly like an exchanged-table implementation.
    """
    # INITIALIZE
    tables: dict[str, RoutingTable] = {}
    for node in graph:
        table = RoutingTable(node)
        for other in graph:
            if other == node:
                table.set(other, 0.0, None)
            elif other in graph[node]:
                table.set(other, edge_cost(graph[node][other], epsilon), other)
            else:
                table.set(other, math.inf, None)
        tables[node] = table

    # N-1 synchronous UPDATE rounds.
    nodes = list(graph)
    for _ in range(max(len(nodes) - 1, 1)):
        changed = False
        snapshot = {
            name: {dest: tables[name].get(dest) for dest in nodes} for name in nodes
        }
        for node in nodes:
            for v, eta in graph[node].items():
                cost_to_v = edge_cost(eta, epsilon)
                for dest in nodes:
                    advertised = snapshot[v][dest].cost
                    candidate = cost_to_v + advertised
                    if candidate < tables[node].cost(dest) - 1e-15:
                        tables[node].set(dest, candidate, v)
                        changed = True
        if not changed:
            break
    return tables


def shortest_path(
    graph: LinkGraph, source: str, destination: str, epsilon: float = DEFAULT_EPSILON
) -> tuple[list[str], float]:
    """Best path and its end-to-end transmissivity.

    Returns:
        ``(path, eta_path)`` where ``eta_path`` is the product of per-link
        transmissivities along the minimum-cost path.

    Raises:
        NoPathError: if no usable route exists.
    """
    result = bellman_ford(graph, source, epsilon)
    path = result.path_to(destination)
    return path, path_transmissivity(path_edges(graph, path))
