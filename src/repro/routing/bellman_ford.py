"""Bellman–Ford entanglement routing (paper Algorithm 1).

Two interchangeable implementations are provided:

* :func:`build_routing_tables` — a literal rendering of the paper's
  distance-vector pseudocode: every node initialises its table, then all
  nodes run N-1 synchronous UPDATE rounds against their neighbours'
  tables (step 2, the table exchange, is a no-op in-process exactly as the
  paper notes).
* :func:`bellman_ford` — the standard single-source relaxation, used on
  hot paths. The test suite checks both produce identical costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import NoPathError, RoutingError
from repro.network.topology import LinkGraph
from repro.routing.metrics import DEFAULT_EPSILON, edge_cost, path_edges, path_transmissivity
from repro.routing.table import RoutingTable

__all__ = ["bellman_ford", "BellmanFordResult", "build_routing_tables", "shortest_path"]


@dataclass(frozen=True)
class BellmanFordResult:
    """Single-source shortest-path tree.

    Attributes:
        source: tree root.
        costs: best cost per reachable destination.
        predecessors: previous hop per destination (source maps to None).
    """

    source: str
    costs: dict[str, float]
    predecessors: dict[str, str | None]

    def reachable(self, destination: str) -> bool:
        """Whether the tree holds a finite-cost route to ``destination``."""
        return math.isfinite(self.costs.get(destination, math.inf))

    def path_to(self, destination: str) -> list[str]:
        """Node sequence from the source to ``destination``.

        Raises:
            NoPathError: if the destination is unreachable.
        """
        if destination not in self.costs or not math.isfinite(self.costs[destination]):
            raise NoPathError(self.source, destination)
        path = [destination]
        while path[-1] != self.source:
            prev = self.predecessors[path[-1]]
            if prev is None:
                raise NoPathError(self.source, destination)
            path.append(prev)
        path.reverse()
        return path


def bellman_ford(
    graph: LinkGraph, source: str, epsilon: float = DEFAULT_EPSILON
) -> BellmanFordResult:
    """Single-source Bellman–Ford over the ``1/(eta + eps)`` metric.

    Args:
        graph: usable-link adjacency ``{u: {v: eta}}``.
        source: start node; must be present in the graph.

    All edge costs are positive, so no negative-cycle pass is needed; the
    relaxation stops early once an entire sweep changes nothing.
    """
    if source not in graph:
        raise RoutingError(f"source {source!r} is not in the graph")
    costs: dict[str, float] = {node: math.inf for node in graph}
    predecessors: dict[str, str | None] = {node: None for node in graph}
    costs[source] = 0.0

    edges = [
        (u, v, edge_cost(eta, epsilon))
        for u, neighbors in graph.items()
        for v, eta in neighbors.items()
    ]
    for _ in range(max(len(graph) - 1, 1)):
        changed = False
        for u, v, cost in edges:
            candidate = costs[u] + cost
            if candidate < costs[v] - 1e-15:
                costs[v] = candidate
                predecessors[v] = u
                changed = True
        if not changed:
            break
    return BellmanFordResult(source, costs, predecessors)


def build_routing_tables(
    graph: LinkGraph, epsilon: float = DEFAULT_EPSILON
) -> dict[str, RoutingTable]:
    """The paper's Algorithm 1: per-node routing tables via N-1 UPDATE rounds.

    INITIALIZE sets each node's cost to itself to 0, to each neighbour to
    ``1/(eta + eps)``, and to everything else to infinity. Each UPDATE
    round lets every node improve its route to any destination ``u`` by
    going through a neighbour ``v`` (cost to ``v`` plus ``v``'s advertised
    cost to ``u``). Rounds are synchronous: all nodes read the previous
    round's tables, exactly like an exchanged-table implementation.
    """
    # INITIALIZE
    tables: dict[str, RoutingTable] = {}
    for node in graph:
        table = RoutingTable(node)
        for other in graph:
            if other == node:
                table.set(other, 0.0, None)
            elif other in graph[node]:
                table.set(other, edge_cost(graph[node][other], epsilon), other)
            else:
                table.set(other, math.inf, None)
        tables[node] = table

    # N-1 synchronous UPDATE rounds.
    nodes = list(graph)
    for _ in range(max(len(nodes) - 1, 1)):
        changed = False
        snapshot = {
            name: {dest: tables[name].get(dest) for dest in nodes} for name in nodes
        }
        for node in nodes:
            for v, eta in graph[node].items():
                cost_to_v = edge_cost(eta, epsilon)
                for dest in nodes:
                    advertised = snapshot[v][dest].cost
                    candidate = cost_to_v + advertised
                    if candidate < tables[node].cost(dest) - 1e-15:
                        tables[node].set(dest, candidate, v)
                        changed = True
        if not changed:
            break
    return tables


def shortest_path(
    graph: LinkGraph, source: str, destination: str, epsilon: float = DEFAULT_EPSILON
) -> tuple[list[str], float]:
    """Best path and its end-to-end transmissivity.

    Returns:
        ``(path, eta_path)`` where ``eta_path`` is the product of per-link
        transmissivities along the minimum-cost path.

    Raises:
        NoPathError: if no usable route exists.
    """
    result = bellman_ford(graph, source, epsilon)
    path = result.path_to(destination)
    return path, path_transmissivity(path_edges(graph, path))
