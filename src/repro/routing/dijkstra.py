"""Dijkstra baseline on the same ``1/(eta + eps)`` metric.

All edge costs are positive, so Dijkstra and Bellman–Ford agree on every
optimal cost; the routing ablation benchmark compares their run times and
verifies the agreement at scale.
"""

from __future__ import annotations

import heapq
import math

from repro.errors import NoPathError, RoutingError
from repro.network.topology import LinkGraph
from repro.routing.metrics import DEFAULT_EPSILON, edge_cost, path_edges, path_transmissivity

__all__ = ["dijkstra", "dijkstra_path"]


def dijkstra(
    graph: LinkGraph, source: str, epsilon: float = DEFAULT_EPSILON
) -> tuple[dict[str, float], dict[str, str | None]]:
    """Single-source Dijkstra.

    Returns:
        ``(costs, predecessors)`` with unreachable nodes at infinity.
    """
    if source not in graph:
        raise RoutingError(f"source {source!r} is not in the graph")
    costs: dict[str, float] = {node: math.inf for node in graph}
    predecessors: dict[str, str | None] = {node: None for node in graph}
    costs[source] = 0.0
    heap: list[tuple[float, str]] = [(0.0, source)]
    visited: set[str] = set()
    while heap:
        cost_u, u = heapq.heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        for v, eta in graph[u].items():
            if v in visited:
                continue
            candidate = cost_u + edge_cost(eta, epsilon)
            if candidate < costs[v]:
                costs[v] = candidate
                predecessors[v] = u
                heapq.heappush(heap, (candidate, v))
    return costs, predecessors


def dijkstra_path(
    graph: LinkGraph, source: str, destination: str, epsilon: float = DEFAULT_EPSILON
) -> tuple[list[str], float]:
    """Best path and end-to-end transmissivity via Dijkstra.

    Raises:
        NoPathError: if no usable route exists.
    """
    costs, predecessors = dijkstra(graph, source, epsilon)
    if destination not in costs or not math.isfinite(costs[destination]):
        raise NoPathError(source, destination)
    path = [destination]
    while path[-1] != source:
        prev = predecessors[path[-1]]
        if prev is None:
            raise NoPathError(source, destination)
        path.append(prev)
    path.reverse()
    return path, path_transmissivity(path_edges(graph, path))
