"""Fiber-optic channel model (paper Eq. 1).

Transmissivity decays exponentially with length. The paper writes
``eta = exp(-alpha * l)`` with an "attenuation coefficient" quoted in
dB/km (0.15 dB/km, Section IV); engineering practice expresses the same
law as ``eta = 10^(-alpha_dB * l / 10)``. This model takes the dB/km
figure (matching the paper's quoted constant) and also exposes the
natural-units coefficient for papers that use the e-folding convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import (
    FIBER_REFRACTIVE_INDEX,
    QNTN_FIBER_ATTENUATION_DB_KM,
    SPEED_OF_LIGHT_KM_S,
)
from repro.errors import ValidationError
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["FiberChannelModel"]

_LN10_OVER_10 = math.log(10.0) / 10.0


@dataclass(frozen=True)
class FiberChannelModel:
    """Attenuating fiber channel.

    Attributes:
        attenuation_db_per_km: power loss per kilometre [dB/km]; the paper
            uses 0.15 dB/km.
        refractive_index: group index used for latency estimates.
    """

    attenuation_db_per_km: float = QNTN_FIBER_ATTENUATION_DB_KM
    refractive_index: float = FIBER_REFRACTIVE_INDEX

    def __post_init__(self) -> None:
        check_nonnegative("attenuation_db_per_km", self.attenuation_db_per_km)
        check_positive("refractive_index", self.refractive_index)

    @classmethod
    def from_natural_alpha(cls, alpha_per_km: float, **kwargs: float) -> "FiberChannelModel":
        """Build from an e-folding coefficient: ``eta = exp(-alpha * l)``."""
        check_nonnegative("alpha_per_km", alpha_per_km)
        return cls(attenuation_db_per_km=alpha_per_km / _LN10_OVER_10, **kwargs)

    @property
    def natural_alpha_per_km(self) -> float:
        """The e-folding attenuation coefficient [1/km] (paper Eq. 1 form)."""
        return self.attenuation_db_per_km * _LN10_OVER_10

    def transmissivity(self, length_km: np.ndarray | float) -> np.ndarray | float:
        """``eta = 10^(-alpha_dB * l / 10) = exp(-alpha * l)`` (vectorized)."""
        length = np.asarray(length_km, dtype=float)
        if np.any(length < 0) or not np.all(np.isfinite(length)):
            raise ValidationError("fiber length must be finite and >= 0")
        eta = np.exp(-self.natural_alpha_per_km * length)
        return eta if eta.ndim else float(eta)

    def length_for_transmissivity(self, eta: float) -> float:
        """Fiber length at which transmissivity drops to ``eta`` [km]."""
        if not 0.0 < eta <= 1.0:
            raise ValidationError(f"eta must be in (0, 1], got {eta}")
        if self.natural_alpha_per_km == 0.0:
            if eta == 1.0:
                return 0.0
            raise ValidationError("a lossless fiber never reaches eta < 1")
        return -math.log(eta) / self.natural_alpha_per_km

    def latency_s(self, length_km: float) -> float:
        """One-way photon propagation delay [s]."""
        check_nonnegative("length_km", length_km)
        return length_km * self.refractive_index / SPEED_OF_LIGHT_KM_S
