"""Optical channel models: fiber (Eq. 1) and free-space optics (Eq. 2).

Transmissivity is the single figure of merit that couples the photonic
layer to the quantum layer: it parameterises the amplitude-damping channel
(paper Section III-A) and hence the achievable entanglement fidelity.
"""

from repro.channels.atmosphere import (
    ExponentialAtmosphere,
    WeatherCondition,
    WeatherModel,
    hufnagel_valley_cn2,
    rytov_variance_slant,
    spherical_coherence_length,
)
from repro.channels.fiber import FiberChannelModel
from repro.channels.fso import (
    FSOChannelModel,
    aperture_averaging_factor,
    calibrate_beam_waist,
    fade_probability,
    mean_fade_margin_db,
)
from repro.channels.geometry import (
    elevation_between,
    great_circle_distance_km,
    slant_range_km,
)
from repro.channels.presets import (
    conservative_satellite_fso,
    paper_fiber,
    paper_hap_fso,
    paper_isl_fso,
    paper_satellite_fso,
)

__all__ = [
    "FiberChannelModel",
    "FSOChannelModel",
    "calibrate_beam_waist",
    "aperture_averaging_factor",
    "fade_probability",
    "mean_fade_margin_db",
    "ExponentialAtmosphere",
    "WeatherModel",
    "WeatherCondition",
    "hufnagel_valley_cn2",
    "spherical_coherence_length",
    "rytov_variance_slant",
    "great_circle_distance_km",
    "slant_range_km",
    "elevation_between",
    "paper_fiber",
    "paper_satellite_fso",
    "paper_hap_fso",
    "paper_isl_fso",
    "conservative_satellite_fso",
]
