"""Link geometry between geodetic points: distances, slant ranges, elevations.

Ground-to-ground fiber lengths use great-circle distance times a routing
factor (fiber never runs perfectly straight); ground-to-platform FSO links
use exact ECEF vector geometry from :mod:`repro.orbits.frames`.
"""

from __future__ import annotations

import math

from repro.constants import EARTH_RADIUS_KM
from repro.errors import ValidationError
from repro.orbits.frames import ecef_to_enu_matrix, enu_to_azimuth_elevation, geodetic_to_ecef

__all__ = [
    "great_circle_distance_km",
    "fiber_length_km",
    "slant_range_km",
    "elevation_between",
    "look_geometry",
]


def great_circle_distance_km(
    lat1_rad: float, lon1_rad: float, lat2_rad: float, lon2_rad: float
) -> float:
    """Great-circle distance between two surface points [km] (haversine)."""
    dlat = lat2_rad - lat1_rad
    dlon = lon2_rad - lon1_rad
    a = math.sin(dlat / 2.0) ** 2 + math.cos(lat1_rad) * math.cos(lat2_rad) * math.sin(
        dlon / 2.0
    ) ** 2
    if a > 1.0:
        a = 1.0
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def fiber_length_km(
    lat1_rad: float,
    lon1_rad: float,
    lat2_rad: float,
    lon2_rad: float,
    *,
    routing_factor: float = 1.0,
) -> float:
    """Fiber path length between two ground sites [km].

    Args:
        routing_factor: multiplier >= 1 accounting for non-straight cable
            routing (the paper's idealised setup corresponds to 1.0).
    """
    if routing_factor < 1.0:
        raise ValidationError(f"routing_factor must be >= 1, got {routing_factor}")
    return routing_factor * great_circle_distance_km(lat1_rad, lon1_rad, lat2_rad, lon2_rad)


def look_geometry(
    site_lat_rad: float,
    site_lon_rad: float,
    site_alt_km: float,
    target_lat_rad: float,
    target_lon_rad: float,
    target_alt_km: float,
) -> tuple[float, float, float]:
    """Azimuth, elevation, slant range from a site to a geodetic target.

    Returns:
        ``(azimuth_rad, elevation_rad, slant_range_km)``.
    """
    site = geodetic_to_ecef(site_lat_rad, site_lon_rad, site_alt_km)
    target = geodetic_to_ecef(target_lat_rad, target_lon_rad, target_alt_km)
    t = ecef_to_enu_matrix(site_lat_rad, site_lon_rad)
    enu = t @ (target - site)
    az, el, rng = enu_to_azimuth_elevation(enu)
    return float(az), float(el), float(rng)


def slant_range_km(
    site_lat_rad: float,
    site_lon_rad: float,
    site_alt_km: float,
    target_lat_rad: float,
    target_lon_rad: float,
    target_alt_km: float,
) -> float:
    """Straight-line distance between two geodetic points [km]."""
    return look_geometry(
        site_lat_rad, site_lon_rad, site_alt_km, target_lat_rad, target_lon_rad, target_alt_km
    )[2]


def elevation_between(
    site_lat_rad: float,
    site_lon_rad: float,
    site_alt_km: float,
    target_lat_rad: float,
    target_lon_rad: float,
    target_alt_km: float,
) -> float:
    """Elevation of the target above the site's local horizon [rad]."""
    return look_geometry(
        site_lat_rad, site_lon_rad, site_alt_km, target_lat_rad, target_lon_rad, target_alt_km
    )[1]
