"""Atmospheric models for FSO links: extinction, turbulence, weather.

Provides the ingredients of the paper's FSO transmissivity (Eq. 2):

* :class:`ExponentialAtmosphere` — molecular/aerosol extinction with an
  exponential density profile, integrated along slant paths (the
  ``eta_atm`` factor).
* Hufnagel–Valley turbulence structure profile, the spherical-wave
  coherence length, and the Rytov variance along slant paths (feeding the
  ``eta_th`` turbulence factor of :mod:`repro.channels.fso`).
* :class:`WeatherModel` — an extension beyond the paper's ideal-conditions
  assumption: per-condition extinction multipliers and turbulence scaling
  used by the HAP/hybrid ablation studies.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive

__all__ = [
    "ExponentialAtmosphere",
    "hufnagel_valley_cn2",
    "spherical_coherence_length",
    "rytov_variance_slant",
    "WeatherCondition",
    "WeatherModel",
]


@dataclass(frozen=True)
class ExponentialAtmosphere:
    """Exponential extinction profile ``beta(h) = beta0 * exp(-h / H)``.

    Attributes:
        beta0_per_km: sea-level extinction coefficient [1/km]. The default
            corresponds to very clear air at near-infrared wavelengths.
        scale_height_km: density scale height H [km].
    """

    beta0_per_km: float = 1.0e-3
    scale_height_km: float = 6.6

    def __post_init__(self) -> None:
        check_positive("beta0_per_km", self.beta0_per_km)
        check_positive("scale_height_km", self.scale_height_km)

    def zenith_optical_depth(self, top_altitude_km: float) -> float:
        """Optical depth of a vertical path from the ground to ``top_altitude_km``."""
        if top_altitude_km < 0:
            raise ValidationError(f"top_altitude_km must be >= 0, got {top_altitude_km}")
        h = self.scale_height_km
        return self.beta0_per_km * h * (1.0 - math.exp(-top_altitude_km / h))

    def optical_depth(
        self,
        elevation_rad: np.ndarray | float,
        top_altitude_km: float,
        *,
        ground_altitude_km: float = 0.0,
    ) -> np.ndarray:
        """Slant optical depth from the ground site to the platform altitude.

        Uses the flat-Earth secant approximation ``tau(E) = tau_zenith /
        sin(E)``, accurate to a few percent above ~10 degrees elevation —
        always satisfied under the paper's pi/9 minimum-elevation rule.
        Vectorized over ``elevation_rad``.
        """
        el = np.asarray(elevation_rad, dtype=float)
        if np.any(el <= 0):
            raise ValidationError("optical_depth requires elevation > 0")
        h = self.scale_height_km
        lo = math.exp(-max(ground_altitude_km, 0.0) / h)
        hi = math.exp(-max(top_altitude_km, 0.0) / h)
        tau_zenith = self.beta0_per_km * h * (lo - hi)
        return tau_zenith / np.sin(el)

    def transmissivity(
        self,
        elevation_rad: np.ndarray | float,
        top_altitude_km: float,
        *,
        ground_altitude_km: float = 0.0,
    ) -> np.ndarray:
        """``eta_atm = exp(-tau)`` along the slant path (vectorized)."""
        return np.exp(
            -self.optical_depth(
                elevation_rad, top_altitude_km, ground_altitude_km=ground_altitude_km
            )
        )


def hufnagel_valley_cn2(
    altitude_m: np.ndarray | float,
    *,
    wind_speed_m_s: float = 21.0,
    cn2_ground: float = 1.7e-14,
) -> np.ndarray:
    """Hufnagel–Valley refractive-index structure parameter Cn^2 [m^-2/3].

    The HV-5/7 profile with default parameters; ``altitude_m`` may be an
    array. Used to characterise optical turbulence strength along slant
    paths for the FSO ``eta_th`` factor.
    """
    h = np.asarray(altitude_m, dtype=float)
    if np.any(h < 0):
        raise ValidationError("altitude_m must be >= 0")
    w = wind_speed_m_s
    term1 = 0.00594 * (w / 27.0) ** 2 * (1e-5 * h) ** 10 * np.exp(-h / 1000.0)
    term2 = 2.7e-16 * np.exp(-h / 1500.0)
    term3 = cn2_ground * np.exp(-h / 100.0)
    return term1 + term2 + term3


def _slant_path_samples(
    elevation_rad: float, top_altitude_km: float, n_samples: int
) -> tuple[np.ndarray, np.ndarray]:
    """Path-length samples [m] and their altitudes [m] along a slant path."""
    if not 0 < elevation_rad <= math.pi / 2:
        raise ValidationError("elevation must be in (0, pi/2]")
    check_positive("top_altitude_km", top_altitude_km)
    sin_e = math.sin(elevation_rad)
    path_length_m = top_altitude_km * 1000.0 / sin_e
    z = np.linspace(0.0, path_length_m, n_samples)
    altitudes = z * sin_e
    return z, altitudes


def spherical_coherence_length(
    wavelength_m: float,
    elevation_rad: float,
    top_altitude_km: float,
    *,
    uplink: bool = True,
    n_samples: int = 512,
    cn2_scale: float = 1.0,
) -> float:
    """Spherical-wave transverse coherence length rho_0 [m] on a slant path.

    ``rho_0 = [1.46 k^2 \\int Cn^2(z) w(z)^{5/3} dz]^{-3/5}`` where
    ``w(z) = 1 - z_tx/L`` weights turbulence by the propagation distance
    remaining after it (the beam-spread lever arm). For an uplink the
    turbulent layer sits next to the transmitter and spreads the beam over
    the whole path (strong effect, small rho_0); for a downlink it sits at
    the receiver end (weak effect, large rho_0). Beyond the atmosphere
    Cn^2 is ~0, so the integral is truncated at the top of the turbulent
    atmosphere.

    Args:
        wavelength_m: optical wavelength [m].
        elevation_rad: path elevation [rad].
        top_altitude_km: altitude of the far end of the turbulent path
            [km]; values above ~30 km add nothing (Cn^2 ~ 0 there).
        uplink: transmitter on the ground (True) or on the platform (False).
        n_samples: trapezoid-rule resolution.
        cn2_scale: multiplier on the HV profile (weather knob).
    """
    check_positive("wavelength_m", wavelength_m)
    k = 2.0 * math.pi / wavelength_m
    turb_top_km = min(top_altitude_km, 30.0)
    z, altitudes = _slant_path_samples(elevation_rad, turb_top_km, n_samples)
    cn2 = hufnagel_valley_cn2(altitudes) * cn2_scale
    total_len = top_altitude_km * 1000.0 / math.sin(elevation_rad)
    # z runs from the ground outward; the beam-spread weight is the
    # remaining-path fraction measured from the transmitter.
    frac = 1.0 - z / total_len if uplink else z / total_len
    integrand = cn2 * np.abs(frac) ** (5.0 / 3.0)
    integral = float(np.trapezoid(integrand, z))
    if integral <= 0.0:
        return math.inf
    return (1.46 * k**2 * integral) ** (-3.0 / 5.0)


def rytov_variance_slant(
    wavelength_m: float,
    elevation_rad: float,
    top_altitude_km: float,
    *,
    n_samples: int = 512,
    cn2_scale: float = 1.0,
) -> float:
    """Rytov (log-amplitude) variance along a slant path (plane wave).

    ``sigma_R^2 = 2.25 k^{7/6} \\int Cn^2(h) (h / sin E)^{5/6} dh`` — the
    standard weak-fluctuation scintillation index; values below ~0.3 mean
    weak turbulence, above ~1 strong.
    """
    check_positive("wavelength_m", wavelength_m)
    k = 2.0 * math.pi / wavelength_m
    turb_top_km = min(top_altitude_km, 30.0)
    z, altitudes = _slant_path_samples(elevation_rad, turb_top_km, n_samples)
    cn2 = hufnagel_valley_cn2(altitudes) * cn2_scale
    integrand = cn2 * z ** (5.0 / 6.0)
    integral = float(np.trapezoid(integrand, z))
    return 2.25 * k ** (7.0 / 6.0) * integral


class WeatherCondition(enum.Enum):
    """Coarse weather classes with distinct optical behaviour."""

    CLEAR = "clear"
    HAZE = "haze"
    LIGHT_RAIN = "light_rain"
    HEAVY_RAIN = "heavy_rain"
    FOG = "fog"


#: Extinction multiplier and Cn^2 multiplier per condition. Extinction
#: multipliers follow typical near-IR attenuation ratios (clear ~1, haze
#: ~10x, rain ~40-150x, fog >500x); turbulence weakens slightly in rain.
_WEATHER_EFFECTS: dict[WeatherCondition, tuple[float, float]] = {
    WeatherCondition.CLEAR: (1.0, 1.0),
    WeatherCondition.HAZE: (10.0, 1.5),
    WeatherCondition.LIGHT_RAIN: (40.0, 0.8),
    WeatherCondition.HEAVY_RAIN: (150.0, 0.7),
    WeatherCondition.FOG: (600.0, 0.5),
}


@dataclass
class WeatherModel:
    """Stochastic weather for the non-ideal ablation studies.

    The paper assumes stable, clear weather (Section III-D); this model
    relaxes that by sampling conditions from a categorical distribution
    and exposing the resulting extinction / turbulence multipliers.

    Attributes:
        probabilities: mapping of condition to occurrence probability;
            must sum to 1.
    """

    probabilities: dict[WeatherCondition, float] = field(
        default_factory=lambda: {
            WeatherCondition.CLEAR: 0.6,
            WeatherCondition.HAZE: 0.2,
            WeatherCondition.LIGHT_RAIN: 0.12,
            WeatherCondition.HEAVY_RAIN: 0.05,
            WeatherCondition.FOG: 0.03,
        }
    )

    def __post_init__(self) -> None:
        total = sum(self.probabilities.values())
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ValidationError(f"weather probabilities must sum to 1, got {total}")
        if any(p < 0 for p in self.probabilities.values()):
            raise ValidationError("weather probabilities must be non-negative")

    def sample(self, rng: np.random.Generator) -> WeatherCondition:
        """Draw a weather condition."""
        conditions = list(self.probabilities)
        probs = np.array([self.probabilities[c] for c in conditions])
        return conditions[int(rng.choice(len(conditions), p=probs / probs.sum()))]

    @staticmethod
    def extinction_multiplier(condition: WeatherCondition) -> float:
        """Multiplier on the clear-air extinction coefficient."""
        return _WEATHER_EFFECTS[condition][0]

    @staticmethod
    def cn2_multiplier(condition: WeatherCondition) -> float:
        """Multiplier on the Hufnagel–Valley Cn^2 profile."""
        return _WEATHER_EFFECTS[condition][1]

    def perturbed_atmosphere(
        self, base: ExponentialAtmosphere, condition: WeatherCondition
    ) -> ExponentialAtmosphere:
        """Atmosphere with extinction scaled for ``condition``."""
        return ExponentialAtmosphere(
            beta0_per_km=base.beta0_per_km * self.extinction_multiplier(condition),
            scale_height_km=base.scale_height_km,
        )
