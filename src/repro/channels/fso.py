"""Free-space optical channel model (paper Eq. 2).

``eta = eta_th * eta_atm * eta_eff`` where

* ``eta_th`` — turbulence/diffraction transmissivity: the fraction of a
  Gaussian beam captured by the receiver aperture after diffraction
  spreading, turbulence-induced spreading (via the spherical-wave
  coherence length over the slant path), and optional pointing jitter;
* ``eta_atm`` — atmospheric extinction along the slant path
  (:class:`~repro.channels.atmosphere.ExponentialAtmosphere`);
* ``eta_eff`` — fixed receiver/system efficiency.

The hot path is vectorized: per-sample turbulence integrals would dominate
the constellation sweep, so the turbulence spread is tabulated once per
(model, platform-altitude) pair over an elevation grid and interpolated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro import kernels
from repro.channels.atmosphere import ExponentialAtmosphere, spherical_coherence_length
from repro.constants import DEFAULT_WAVELENGTH_M
from repro.errors import ChannelError, ValidationError
from repro.utils.validation import check_in_range, check_positive

__all__ = [
    "FSOChannelModel",
    "calibrate_beam_waist",
    "aperture_averaging_factor",
    "fade_probability",
    "mean_fade_margin_db",
]

#: Elevation grid for the tabulated turbulence spread [rad].
_ELEVATION_GRID = np.radians(np.linspace(1.0, 90.0, 90))

#: Placeholder turbulence table handed to the compiled kernels when the
#: model has no turbulence (the kernel never reads it then, but numba
#: still needs a concrete float64 array for the signature).
_EMPTY_GRID = np.zeros(1)


def _kernel_params(
    model: "FSOChannelModel", platform_altitude_km: float | None
) -> tuple | None:
    """Pack a model into the plain scalars/arrays the compiled kernels take.

    Returns ``None`` when the configuration cannot be represented — a
    subclassed channel or atmosphere model (whose overridden methods the
    kernel cannot see), or an atmospheric link without the altitude it
    needs — in which case the caller falls through to the NumPy path.
    """
    if type(model) is not FSOChannelModel:
        return None
    atmosphere = model.atmosphere
    use_atmosphere = atmosphere is not None
    if use_atmosphere and type(atmosphere) is not ExponentialAtmosphere:
        return None
    use_turbulence = bool(model.turbulence and use_atmosphere)
    if use_atmosphere:
        if platform_altitude_km is None:
            return None
        h = atmosphere.scale_height_km
        # Same expression as ExponentialAtmosphere.optical_depth with the
        # default ground altitude of zero, so the factored-out zenith
        # depth is bit-identical to the NumPy path's.
        lo = math.exp(-max(0.0, 0.0) / h)
        hi = math.exp(-max(float(platform_altitude_km), 0.0) / h)
        tau_zenith = atmosphere.beta0_per_km * h * (lo - hi)
    else:
        tau_zenith = 0.0
    if use_turbulence:
        grid_el, grid_rho0 = _coherence_table(
            model.wavelength_m,
            round(float(platform_altitude_km), 3),
            model.uplink,
            model.cn2_scale,
        )
    else:
        grid_el, grid_rho0 = _EMPTY_GRID, _EMPTY_GRID
    a = model.rx_aperture_radius_m
    return (
        model.beam_waist_m,
        model.rayleigh_range_m,
        a**2,
        model.receiver_efficiency,
        model.pointing_jitter_rad,
        2.0 * math.pi / model.wavelength_m,
        use_turbulence,
        grid_el,
        grid_rho0,
        use_atmosphere,
        tau_zenith,
    )


@dataclass(frozen=True)
class FSOChannelModel:
    """Gaussian-beam FSO link budget.

    Attributes:
        wavelength_m: optical wavelength [m].
        beam_waist_m: transmitter beam waist w0 [m] (1/e^2 intensity radius).
        rx_aperture_radius_m: receiver aperture radius [m] (half the
            "aperture size" quoted by the paper).
        receiver_efficiency: eta_eff in (0, 1].
        atmosphere: extinction model, or ``None`` for exo-atmospheric
            (inter-satellite) links.
        turbulence: include turbulence-induced beam spreading.
        uplink: transmitter on the ground (True) or on the platform
            (False). Downlink is the default, matching satellite
            entanglement sources that beam photons down to ground stations.
        cn2_scale: multiplier on the turbulence profile (weather knob).
        pointing_jitter_rad: RMS pointing error; widens the effective
            mispointing displacement ``d = jitter * range``.
    """

    wavelength_m: float = DEFAULT_WAVELENGTH_M
    beam_waist_m: float = 0.4
    rx_aperture_radius_m: float = 0.6
    receiver_efficiency: float = 1.0
    atmosphere: ExponentialAtmosphere | None = None
    turbulence: bool = False
    uplink: bool = False
    cn2_scale: float = 1.0
    pointing_jitter_rad: float = 0.0

    def __post_init__(self) -> None:
        check_positive("wavelength_m", self.wavelength_m)
        check_positive("beam_waist_m", self.beam_waist_m)
        check_positive("rx_aperture_radius_m", self.rx_aperture_radius_m)
        check_in_range("receiver_efficiency", self.receiver_efficiency, 0.0, 1.0)
        check_positive("cn2_scale", self.cn2_scale)
        if self.pointing_jitter_rad < 0:
            raise ValidationError("pointing_jitter_rad must be >= 0")

    # --- beam geometry ------------------------------------------------------

    @property
    def rayleigh_range_m(self) -> float:
        """Rayleigh range z_R = pi w0^2 / lambda [m]."""
        return math.pi * self.beam_waist_m**2 / self.wavelength_m

    def diffraction_spot_m(self, slant_range_km: np.ndarray | float) -> np.ndarray:
        """Diffraction-limited beam radius w(z) at the receiver [m]."""
        z = np.asarray(slant_range_km, dtype=float) * 1000.0
        if np.any(z < 0):
            raise ValidationError("slant range must be >= 0")
        return self.beam_waist_m * np.sqrt(1.0 + (z / self.rayleigh_range_m) ** 2)

    def _turbulence_spread_m(
        self,
        slant_range_km: np.ndarray,
        elevation_rad: np.ndarray,
        platform_altitude_km: float,
    ) -> np.ndarray:
        """Turbulence beam-spread radius ``2 L / (k rho_0)`` [m], interpolated."""
        if not self.turbulence or self.atmosphere is None:
            return np.zeros_like(np.asarray(slant_range_km, dtype=float))
        grid_el, grid_rho0 = _coherence_table(
            self.wavelength_m,
            round(float(platform_altitude_km), 3),
            self.uplink,
            self.cn2_scale,
        )
        rho0 = np.interp(np.asarray(elevation_rad, dtype=float), grid_el, grid_rho0)
        k = 2.0 * math.pi / self.wavelength_m
        z = np.asarray(slant_range_km, dtype=float) * 1000.0
        with np.errstate(divide="ignore"):
            spread = np.where(np.isinf(rho0), 0.0, 2.0 * z / (k * np.where(rho0 <= 0, 1, rho0)))
        return spread

    def effective_spot_m(
        self,
        slant_range_km: np.ndarray | float,
        elevation_rad: np.ndarray | float | None = None,
        platform_altitude_km: float | None = None,
    ) -> np.ndarray:
        """Long-term beam radius including turbulence spreading [m]."""
        w_d = self.diffraction_spot_m(slant_range_km)
        if self.turbulence and self.atmosphere is not None:
            if elevation_rad is None or platform_altitude_km is None:
                raise ChannelError(
                    "turbulent atmospheric links need elevation_rad and platform_altitude_km"
                )
            w_t = self._turbulence_spread_m(
                np.asarray(slant_range_km, dtype=float),
                np.asarray(elevation_rad, dtype=float),
                platform_altitude_km,
            )
            return np.sqrt(w_d**2 + w_t**2)
        return w_d

    # --- transmissivity factors ----------------------------------------------

    def eta_capture(
        self,
        slant_range_km: np.ndarray | float,
        elevation_rad: np.ndarray | float | None = None,
        platform_altitude_km: float | None = None,
    ) -> np.ndarray:
        """Aperture-capture factor ``1 - exp(-2 a^2 / w^2)`` with pointing loss.

        This is the paper's ``eta_th``: the geometric fraction of the
        (turbulence-broadened) Gaussian beam collected by the receiver.
        """
        fn = kernels.kernel("fso.eta_capture")
        if fn is not None:
            params = _kernel_params(self, platform_altitude_km)
            if params is not None and not (params[6] and elevation_rad is None):
                rng = np.asarray(slant_range_km, dtype=float)
                if np.any(rng < 0):
                    raise ValidationError("slant range must be >= 0")
                el = (
                    np.zeros_like(rng)
                    if elevation_rad is None
                    else np.asarray(elevation_rad, dtype=float)
                )
                rng_b, el_b = np.broadcast_arrays(rng, el)
                flat = fn(
                    np.ascontiguousarray(rng_b, dtype=float).ravel(),
                    np.ascontiguousarray(el_b, dtype=float).ravel(),
                    params[0],
                    params[1],
                    params[2],
                    params[4],
                    params[5],
                    params[6],
                    params[7],
                    params[8],
                )
                return flat.reshape(rng_b.shape)[()]
        w = self.effective_spot_m(slant_range_km, elevation_rad, platform_altitude_km)
        a = self.rx_aperture_radius_m
        eta = 1.0 - np.exp(-2.0 * a**2 / w**2)
        if self.pointing_jitter_rad > 0.0:
            d = self.pointing_jitter_rad * np.asarray(slant_range_km, dtype=float) * 1000.0
            eta = eta * np.exp(-2.0 * d**2 / w**2)
        return eta

    def eta_atmosphere(
        self,
        elevation_rad: np.ndarray | float | None,
        platform_altitude_km: float | None,
    ) -> np.ndarray | float:
        """Extinction factor ``eta_atm`` (1.0 for exo-atmospheric links)."""
        if self.atmosphere is None:
            return 1.0
        if elevation_rad is None or platform_altitude_km is None:
            raise ChannelError("atmospheric links need elevation_rad and platform_altitude_km")
        fn = kernels.kernel("fso.eta_atmosphere")
        if fn is not None:
            params = _kernel_params(self, platform_altitude_km)
            if params is not None:
                el = np.asarray(elevation_rad, dtype=float)
                if np.any(el <= 0):
                    raise ValidationError("optical_depth requires elevation > 0")
                flat = fn(np.ascontiguousarray(el, dtype=float).ravel(), params[10])
                return flat.reshape(el.shape)[()]
        return self.atmosphere.transmissivity(elevation_rad, platform_altitude_km)

    def transmissivity(
        self,
        slant_range_km: np.ndarray | float,
        elevation_rad: np.ndarray | float | None = None,
        platform_altitude_km: float | None = None,
    ) -> np.ndarray | float:
        """Total transmissivity ``eta = eta_th * eta_atm * eta_eff`` (Eq. 2).

        Args:
            slant_range_km: transmitter-to-receiver distance(s) [km].
            elevation_rad: path elevation(s) above the ground horizon
                [rad]; required when the model has an atmosphere.
            platform_altitude_km: altitude of the airborne/space end [km];
                required when the model has an atmosphere.

        Vectorized: ``slant_range_km`` and ``elevation_rad`` broadcast.
        """
        fn = kernels.kernel("fso.transmissivity")
        if fn is not None:
            params = _kernel_params(self, platform_altitude_km)
            if params is not None and not (params[9] and elevation_rad is None):
                rng = np.asarray(slant_range_km, dtype=float)
                if np.any(rng < 0):
                    raise ValidationError("slant range must be >= 0")
                el = (
                    np.zeros_like(rng)
                    if elevation_rad is None
                    else np.asarray(elevation_rad, dtype=float)
                )
                if params[9] and np.any(el <= 0):
                    raise ValidationError("optical_depth requires elevation > 0")
                rng_b, el_b = np.broadcast_arrays(rng, el)
                flat = fn(
                    np.ascontiguousarray(rng_b, dtype=float).ravel(),
                    np.ascontiguousarray(el_b, dtype=float).ravel(),
                    *params,
                )
                out = flat.reshape(rng_b.shape)
                return out if out.ndim else float(out)
        eta = (
            self.eta_capture(slant_range_km, elevation_rad, platform_altitude_km)
            * self.eta_atmosphere(elevation_rad, platform_altitude_km)
            * self.receiver_efficiency
        )
        eta = np.clip(eta, 0.0, 1.0)
        return eta if np.ndim(eta) else float(eta)

    def transmissivity_components(
        self,
        slant_range_km: float,
        elevation_rad: float | None = None,
        platform_altitude_km: float | None = None,
    ) -> dict[str, float]:
        """Per-factor breakdown of the link budget (for reports and tests)."""
        return {
            "eta_th": float(
                np.asarray(self.eta_capture(slant_range_km, elevation_rad, platform_altitude_km))
            ),
            "eta_atm": float(np.asarray(self.eta_atmosphere(elevation_rad, platform_altitude_km))),
            "eta_eff": self.receiver_efficiency,
            "eta": float(
                np.asarray(
                    self.transmissivity(slant_range_km, elevation_rad, platform_altitude_km)
                )
            ),
        }


@lru_cache(maxsize=64)
def _coherence_table(
    wavelength_m: float,
    platform_altitude_km: float,
    uplink: bool,
    cn2_scale: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Tabulated spherical coherence length rho_0 over the elevation grid."""
    rho0 = np.array(
        [
            spherical_coherence_length(
                wavelength_m,
                float(el),
                platform_altitude_km,
                uplink=uplink,
                cn2_scale=cn2_scale,
            )
            for el in _ELEVATION_GRID
        ]
    )
    return _ELEVATION_GRID.copy(), rho0


def aperture_averaging_factor(
    wavelength_m: float, path_length_km: float, rx_aperture_radius_m: float
) -> float:
    """Scintillation reduction from a finite receiver aperture.

    Andrews' plane-wave approximation
    ``A = [1 + 1.062 k a^2 / (4 L)]^{-7/6}``: an aperture much larger
    than the Fresnel zone ``sqrt(L/k)`` averages over many speckles and
    suppresses the scintillation index by A. The QNTN 120 cm ground
    apertures average aggressively (A ~ 0.06 on HAP paths).
    """
    check_positive("wavelength_m", wavelength_m)
    check_positive("path_length_km", path_length_km)
    check_positive("rx_aperture_radius_m", rx_aperture_radius_m)
    k = 2.0 * math.pi / wavelength_m
    ratio = 1.062 * k * rx_aperture_radius_m**2 / (4.0 * path_length_km * 1000.0)
    return (1.0 + ratio) ** (-7.0 / 6.0)


def fade_probability(
    mean_transmissivity: float,
    rytov_variance: float,
    threshold: float,
) -> float:
    """Probability that scintillation fades the link below ``threshold``.

    Weak-fluctuation model: the instantaneous transmissivity is
    log-normal, ``eta = eta_mean * exp(X - sigma^2/2)`` with
    ``X ~ N(0, sigma^2)`` and ``sigma^2 = ln(1 + sigma_I^2)`` where the
    scintillation index ``sigma_I^2 ~ sigma_R^2`` (the Rytov variance in
    the weak regime). The fade probability is then

        P(eta < thr) = Phi( (ln(thr/eta_mean) + sigma^2/2) / sigma ).

    This is what turns the paper's *deterministic* threshold rule into a
    duty factor: a link whose mean sits just above 0.7 still fades below
    it for a calculable fraction of the time.

    Args:
        mean_transmissivity: long-term mean eta of the link.
        rytov_variance: scintillation strength (see
            :func:`repro.channels.atmosphere.rytov_variance_slant`).
        threshold: the admission threshold (paper: 0.7).
    """
    check_in_range("mean_transmissivity", mean_transmissivity, 0.0, 1.0)
    check_in_range("threshold", threshold, 0.0, 1.0)
    if rytov_variance < 0:
        raise ValidationError(f"rytov_variance must be >= 0, got {rytov_variance}")
    if mean_transmissivity == 0.0:
        return 1.0
    if threshold == 0.0:
        return 0.0
    if rytov_variance == 0.0:
        return 1.0 if mean_transmissivity < threshold else 0.0
    sigma2 = math.log1p(rytov_variance)
    sigma = math.sqrt(sigma2)
    z = (math.log(threshold / mean_transmissivity) + sigma2 / 2.0) / sigma
    return 0.5 * math.erfc(-z / math.sqrt(2.0))


def mean_fade_margin_db(mean_transmissivity: float, threshold: float) -> float:
    """Link margin above the threshold [dB] (negative when below)."""
    check_in_range("mean_transmissivity", mean_transmissivity, 0.0, 1.0)
    check_in_range("threshold", threshold, 0.0, 1.0)
    if mean_transmissivity == 0.0 or threshold == 0.0:
        raise ValidationError("fade margin needs positive mean and threshold")
    return 10.0 * math.log10(mean_transmissivity / threshold)


def calibrate_beam_waist(
    target_eta: float,
    slant_range_km: float,
    elevation_rad: float,
    platform_altitude_km: float,
    *,
    wavelength_m: float = DEFAULT_WAVELENGTH_M,
    rx_aperture_radius_m: float = 0.6,
    receiver_efficiency: float = 1.0,
    atmosphere: ExponentialAtmosphere | None = None,
    turbulence: bool = False,
    uplink: bool = False,
    waist_bounds_m: tuple[float, float] = (0.01, 2.0),
    tol: float = 1e-6,
) -> float:
    """Beam waist w0 that achieves ``target_eta`` at a given operating point.

    Bisects on w0. Used to pin the "paper preset" so the link hits the
    paper's transmissivity threshold (0.7) exactly at its effective
    cut-off elevation; exposed publicly so users can recalibrate for
    their own hardware assumptions.

    Raises:
        ChannelError: if the target is unreachable within ``waist_bounds_m``.
    """
    check_in_range("target_eta", target_eta, 0.0, 1.0)

    def eta_of(w0: float) -> float:
        model = FSOChannelModel(
            wavelength_m=wavelength_m,
            beam_waist_m=w0,
            rx_aperture_radius_m=rx_aperture_radius_m,
            receiver_efficiency=receiver_efficiency,
            atmosphere=atmosphere,
            turbulence=turbulence,
            uplink=uplink,
        )
        return float(
            np.asarray(model.transmissivity(slant_range_km, elevation_rad, platform_altitude_km))
        )

    lo, hi = waist_bounds_m
    # eta is unimodal in w0: too small -> the beam diverges past the
    # aperture, too large -> the collimated beam overfills it. Scan for the
    # peak, then bisect on the SMALL-waist (far-field) branch: that branch
    # makes eta fall off steeply with range/elevation, which is the
    # behaviour a threshold-governed link needs (the large-waist branch is
    # nearly range-flat, so the threshold would never bite).
    grid = np.linspace(lo, hi, 200)
    etas = np.array([eta_of(float(w)) for w in grid])
    best = int(np.argmax(etas))
    if etas[best] < target_eta:
        raise ChannelError(
            f"target eta {target_eta} unreachable; best achievable is "
            f"{etas[best]:.4f} at w0={grid[best]:.3f} m"
        )
    lower = best
    while lower > 0 and etas[lower] >= target_eta:
        lower -= 1
    if etas[lower] >= target_eta:
        # Even the smallest waist stays above target; return the peak waist.
        return float(grid[best])
    a, b = grid[lower], grid[min(lower + 1, grid.size - 1)]
    # eta increases in w0 on [a, b]; bisect for the crossing.
    for _ in range(200):
        mid = 0.5 * (a + b)
        if eta_of(float(mid)) >= target_eta:
            b = mid
        else:
            a = mid
        if b - a < tol:
            break
    return float(0.5 * (a + b))
