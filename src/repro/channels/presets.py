"""Calibrated channel-parameter presets.

The "paper" presets reproduce the operating regime of the QNTN paper:
satellite downlinks cross the eta = 0.7 threshold near 24 degrees of
elevation (which makes a 108-satellite constellation cover ~55 % of the
day, Fig. 6), and HAP links sit near eta ~ 0.95 (fidelity ~0.98,
Section IV-C). The exact beam-waist numbers come from
:func:`repro.channels.fso.calibrate_beam_waist`; rerun the calibration if
you change any other parameter.

The "conservative" presets use heavier extinction and pointing jitter for
sensitivity studies.
"""

from __future__ import annotations

from repro.channels.atmosphere import ExponentialAtmosphere
from repro.channels.fiber import FiberChannelModel
from repro.channels.fso import FSOChannelModel

__all__ = [
    "paper_atmosphere",
    "paper_fiber",
    "paper_satellite_fso",
    "paper_hap_fso",
    "paper_isl_fso",
    "conservative_satellite_fso",
    "conservative_hap_fso",
]

#: Wavelength of the satellite downlink [m]. 532 nm keeps the capture
#: curve steep enough that the 0.7 threshold bites at ~24 deg elevation
#: while zenith links stay near 0.96.
PAPER_SATELLITE_WAVELENGTH_M: float = 532e-9

#: Beam waist of the satellite downlink transmitter [m], calibrated with
#: :func:`repro.channels.fso.calibrate_beam_waist` so the total
#: transmissivity equals 0.70 at 24 degrees elevation for a 500 km orbit
#: (slant range 1060.5 km) with the paper atmosphere, turbulence on, a
#: 0.6 m ground-aperture radius, and 0.98 receiver efficiency.
PAPER_SATELLITE_BEAM_WAIST_M: float = 0.25736

#: Beam waist of the HAP downlink transmitter [m]: the diffraction-optimal
#: waist for the nominal 78 km slant at 810 nm, capped by the paper's
#: 30 cm HAP aperture (radius 0.15 m).
PAPER_HAP_BEAM_WAIST_M: float = 0.1418


def paper_atmosphere() -> ExponentialAtmosphere:
    """Very clear near-IR atmosphere (the paper's ideal-conditions setup)."""
    return ExponentialAtmosphere(beta0_per_km=1.0e-3, scale_height_km=6.6)


def paper_fiber() -> FiberChannelModel:
    """Fiber model with the paper's 0.15 dB/km attenuation (Section IV)."""
    return FiberChannelModel(attenuation_db_per_km=0.15)


def paper_satellite_fso() -> FSOChannelModel:
    """Satellite-to-ground downlink calibrated to the paper's regime.

    120 cm apertures on satellite and ground (Section IV, [31]); 532 nm;
    downlink geometry so the turbulent layer sits at the receiver end.
    """
    return FSOChannelModel(
        wavelength_m=PAPER_SATELLITE_WAVELENGTH_M,
        beam_waist_m=PAPER_SATELLITE_BEAM_WAIST_M,
        rx_aperture_radius_m=0.6,
        receiver_efficiency=0.98,
        atmosphere=paper_atmosphere(),
        turbulence=True,
        uplink=False,
    )


def paper_hap_fso() -> FSOChannelModel:
    """HAP-to-ground downlink: 30 cm HAP transmit aperture (Section IV,
    [32], [33]), 120 cm ground receive aperture, 810 nm."""
    return FSOChannelModel(
        wavelength_m=810e-9,
        beam_waist_m=PAPER_HAP_BEAM_WAIST_M,
        rx_aperture_radius_m=0.6,
        receiver_efficiency=0.98,
        atmosphere=paper_atmosphere(),
        turbulence=True,
        uplink=False,
    )


def paper_isl_fso() -> FSOChannelModel:
    """Inter-satellite link: exo-atmospheric, 120 cm apertures.

    With the paper's aperture sizes and the >2000 km spacing of the QNTN
    constellation these links sit far below the 0.7 threshold, so they
    never qualify for routing — included for completeness and ablations.
    """
    return FSOChannelModel(
        wavelength_m=810e-9,
        beam_waist_m=0.6,
        rx_aperture_radius_m=0.6,
        receiver_efficiency=0.98,
        atmosphere=None,
        turbulence=False,
    )


def conservative_satellite_fso() -> FSOChannelModel:
    """Satellite downlink with haze-level extinction and pointing jitter."""
    return FSOChannelModel(
        wavelength_m=PAPER_SATELLITE_WAVELENGTH_M,
        beam_waist_m=PAPER_SATELLITE_BEAM_WAIST_M,
        rx_aperture_radius_m=0.6,
        receiver_efficiency=0.9,
        atmosphere=ExponentialAtmosphere(beta0_per_km=1.0e-2, scale_height_km=6.6),
        turbulence=True,
        uplink=False,
        pointing_jitter_rad=1.0e-7,
    )


def conservative_hap_fso() -> FSOChannelModel:
    """HAP downlink with haze-level extinction and platform jitter."""
    return FSOChannelModel(
        wavelength_m=810e-9,
        beam_waist_m=PAPER_HAP_BEAM_WAIST_M,
        rx_aperture_radius_m=0.6,
        receiver_efficiency=0.9,
        atmosphere=ExponentialAtmosphere(beta0_per_km=1.0e-2, scale_height_km=6.6),
        turbulence=True,
        uplink=False,
        pointing_jitter_rad=5.0e-7,
    )
