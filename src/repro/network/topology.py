"""Network assembly: hosts, channels, and time-dependent link graphs.

A :class:`QuantumNetwork` owns the hosts and physical channels of a QNTN
deployment. Calling :meth:`QuantumNetwork.link_graph` evaluates every
channel at a simulation time under the admission policy and returns the
weighted adjacency the routing layer consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.channels.fiber import FiberChannelModel
from repro.channels.fso import FSOChannelModel
from repro.channels.presets import paper_fiber
from repro.data.ground_nodes import LocalNetwork, qntn_local_networks
from repro.errors import LinkError, UnknownHostError, ValidationError
from repro.network.hap import HAP
from repro.network.host import GroundStation, Host
from repro.network.links import LinkPolicy, QuantumChannel
from repro.network.satellite import Satellite
from repro.orbits.ephemeris import Ephemeris

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plane import FaultPlane

__all__ = [
    "LinkGraph",
    "QuantumNetwork",
    "build_qntn_ground_network",
    "attach_satellites",
    "attach_hap",
]

#: Weighted adjacency: ``graph[u][v]`` is the usable-link transmissivity.
LinkGraph = dict[str, dict[str, float]]


class QuantumNetwork:
    """A collection of hosts joined by quantum channels.

    Hosts are identified by unique names. Channels are undirected; at most
    one channel may join a given host pair.
    """

    def __init__(self) -> None:
        self._hosts: dict[str, Host] = {}
        self._channels: dict[frozenset[str], QuantumChannel] = {}
        self._local_networks: dict[str, list[str]] = {}

    # --- construction -------------------------------------------------------

    def add_host(self, host: Host) -> Host:
        """Register a host; returns it for chaining.

        Raises:
            ValidationError: on duplicate names.
        """
        if host.name in self._hosts:
            raise ValidationError(f"duplicate host name {host.name!r}")
        self._hosts[host.name] = host
        if host.network:
            self._local_networks.setdefault(host.network, []).append(host.name)
        return host

    def add_channel(self, channel: QuantumChannel) -> QuantumChannel:
        """Register a channel between two existing hosts."""
        for name in channel.names:
            if name not in self._hosts:
                raise UnknownHostError(name)
        key = frozenset(channel.names)
        if key in self._channels:
            raise LinkError(f"channel {sorted(key)} already exists")
        self._channels[key] = channel
        return channel

    def connect(
        self, name_a: str, name_b: str, model: FiberChannelModel | FSOChannelModel
    ) -> QuantumChannel:
        """Create and register a channel between two hosts by name."""
        return self.add_channel(QuantumChannel(self.host(name_a), self.host(name_b), model))

    # --- inspection -----------------------------------------------------------

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise UnknownHostError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._hosts

    @property
    def host_names(self) -> list[str]:
        """All host names in insertion order."""
        return list(self._hosts)

    @property
    def n_hosts(self) -> int:
        """Number of hosts."""
        return len(self._hosts)

    @property
    def n_channels(self) -> int:
        """Number of channels."""
        return len(self._channels)

    def hosts(self) -> Iterator[Host]:
        """Iterate over hosts in insertion order."""
        return iter(self._hosts.values())

    def channels(self) -> Iterator[QuantumChannel]:
        """Iterate over channels in insertion order."""
        return iter(self._channels.values())

    def channel_between(self, name_a: str, name_b: str) -> QuantumChannel | None:
        """The channel joining two hosts, or ``None``."""
        return self._channels.get(frozenset((name_a, name_b)))

    @property
    def local_networks(self) -> dict[str, list[str]]:
        """Mapping of LAN name to member host names."""
        return {k: list(v) for k, v in self._local_networks.items()}

    def hosts_of_kind(self, kind: str) -> list[Host]:
        """All hosts whose ``kind`` tag matches."""
        return [h for h in self._hosts.values() if h.kind == kind]

    # --- link-state snapshots ---------------------------------------------------

    def link_graph(
        self,
        t_s: float,
        policy: LinkPolicy | None = None,
        faults: "FaultPlane | None" = None,
    ) -> LinkGraph:
        """Usable-link adjacency at time ``t_s``.

        Evaluates every channel under ``policy`` (paper defaults: eta >=
        0.7 and elevation >= pi/9 for ground-platform FSO) and returns
        ``{u: {v: eta}}`` containing only admitted links, in both
        directions. An active ``faults`` plane perturbs each evaluation
        through :meth:`FaultPlane.apply_channel` — physics untouched,
        identical rule to the cached paths.
        """
        policy = policy or LinkPolicy()
        if faults is not None and faults.is_noop:
            faults = None
        graph: LinkGraph = {name: {} for name in self._hosts}
        for channel in self._channels.values():
            state = channel.evaluate(t_s, policy)
            if faults is None:
                eta, usable = state.transmissivity, state.usable
            else:
                eta, usable = faults.apply_channel(channel, state, t_s, policy)
            if usable:
                a, b = channel.names
                graph[a][b] = eta
                graph[b][a] = eta
        return graph


def build_qntn_ground_network(
    fiber_model: FiberChannelModel | None = None,
    *,
    networks: Iterable[LocalNetwork] | None = None,
    intra_topology: str = "mesh",
) -> QuantumNetwork:
    """Build the three QNTN LANs with intra-LAN fiber (paper Section II-A).

    Args:
        fiber_model: fiber channel model; defaults to the paper preset
            (0.15 dB/km).
        networks: LANs to instantiate; defaults to Table I.
        intra_topology: ``"mesh"`` (every pair in a LAN gets a fiber,
            matching the paper's "interconnected via fiber optic channels")
            or ``"chain"`` (consecutive Table I nodes only).
    """
    if intra_topology not in ("mesh", "chain"):
        raise ValidationError(f"intra_topology must be 'mesh' or 'chain', got {intra_topology!r}")
    fiber = fiber_model or paper_fiber()
    nets = list(networks) if networks is not None else list(qntn_local_networks())
    network = QuantumNetwork()
    for lan in nets:
        stations = [
            network.add_host(GroundStation(n.name, n.lat_deg, n.lon_deg, n.alt_km, lan.name))
            for n in lan.nodes
        ]
        if intra_topology == "mesh":
            for i, a in enumerate(stations):
                for b in stations[i + 1 :]:
                    network.connect(a.name, b.name, fiber)
        else:
            for a, b in zip(stations, stations[1:]):
                network.connect(a.name, b.name, fiber)
    return network


def attach_satellites(
    network: QuantumNetwork,
    ephemeris: Ephemeris,
    fso_model: FSOChannelModel,
    *,
    nominal_altitude_km: float = 500.0,
    isl_model: FSOChannelModel | None = None,
) -> list[Satellite]:
    """Add a constellation and FSO channels to every ground station.

    Args:
        network: target network (mutated in place).
        ephemeris: constellation movement sheet.
        fso_model: ground-satellite link model.
        nominal_altitude_km: link-budget altitude for the constellation.
        isl_model: optional inter-satellite link model; when given, every
            satellite pair gets an ISL channel (the paper's FSO-between-
            satellites option — with paper apertures these never pass the
            0.7 threshold).

    Returns:
        The created :class:`Satellite` hosts.
    """
    satellites = Satellite.constellation_from_ephemeris(
        ephemeris, nominal_altitude_km=nominal_altitude_km
    )
    ground = network.hosts_of_kind("ground")
    for sat in satellites:
        network.add_host(sat)
    for sat in satellites:
        for station in ground:
            network.connect(sat.name, station.name, fso_model)
    if isl_model is not None:
        for i, sat_a in enumerate(satellites):
            for sat_b in satellites[i + 1 :]:
                network.connect(sat_a.name, sat_b.name, isl_model)
    return satellites


def attach_hap(
    network: QuantumNetwork,
    hap: HAP,
    fso_model: FSOChannelModel,
) -> HAP:
    """Add a HAP and FSO channels to every ground station."""
    network.add_host(hap)
    for station in network.hosts_of_kind("ground"):
        network.connect(hap.name, station.name, fso_model)
    return hap
