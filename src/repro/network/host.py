"""Host types: the base location-aware node and stationary ground stations.

Mirrors the paper's extension of QuNetSim's ``Host`` class with latitude,
longitude, and altitude (Section III-C). Subclasses override
:meth:`Host.position_ecef_km` for platform-specific motion.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.ground_nodes import GroundNode
from repro.errors import ValidationError
from repro.orbits.frames import geodetic_to_ecef

__all__ = ["Host", "GroundStation"]


class Host:
    """A quantum network node with a geodetic location.

    Args:
        name: globally unique identifier.
        lat_deg: geodetic latitude [deg].
        lon_deg: geodetic longitude [deg].
        alt_km: altitude above the ellipsoid [km].
        network: name of the local network the host belongs to (empty for
            relay platforms).
    """

    #: Host kind tag used by link-budget dispatch; overridden by subclasses.
    kind: str = "ground"

    def __init__(
        self,
        name: str,
        lat_deg: float,
        lon_deg: float,
        alt_km: float = 0.0,
        network: str = "",
    ) -> None:
        if not name:
            raise ValidationError("host name must be non-empty")
        if not -90.0 <= lat_deg <= 90.0:
            raise ValidationError(f"latitude {lat_deg} out of range for host {name!r}")
        if not -180.0 <= lon_deg <= 180.0:
            raise ValidationError(f"longitude {lon_deg} out of range for host {name!r}")
        self.name = name
        self.lat_deg = lat_deg
        self.lon_deg = lon_deg
        self.alt_km = alt_km
        self.network = network

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, lat={self.lat_deg:.4f}, "
            f"lon={self.lon_deg:.4f}, alt={self.alt_km:g} km)"
        )

    @property
    def lat_rad(self) -> float:
        """Latitude [rad]."""
        return math.radians(self.lat_deg)

    @property
    def lon_rad(self) -> float:
        """Longitude [rad]."""
        return math.radians(self.lon_deg)

    @property
    def is_mobile(self) -> bool:
        """Whether the host's position depends on time."""
        return False

    def position_ecef_km(self, t_s: float) -> np.ndarray:
        """ECEF position at simulation time ``t_s`` [km].

        Stationary hosts ignore ``t_s``.
        """
        del t_s
        return geodetic_to_ecef(self.lat_rad, self.lon_rad, self.alt_km)

    def altitude_km_at(self, t_s: float) -> float:
        """Altitude above the ellipsoid at ``t_s`` [km]."""
        del t_s
        return self.alt_km


class GroundStation(Host):
    """A stationary ground node belonging to a local network."""

    kind = "ground"

    @classmethod
    def from_ground_node(cls, node: GroundNode) -> "GroundStation":
        """Build a station from a Table I :class:`GroundNode` record."""
        return cls(node.name, node.lat_deg, node.lon_deg, node.alt_km, node.network)
