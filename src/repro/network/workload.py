"""Event-driven request workloads.

The paper evaluates batches of requests at fixed time steps; this module
adds the event-driven view: entanglement requests arriving as a Poisson
process over the simulation horizon, scheduled and served through the
:class:`~repro.network.events.EventTimeline`. It reports the same
aggregates (served fraction, fidelity) plus arrival-resolution detail the
stepped evaluation cannot see.

Arrivals are materialized as explicit :class:`TimedRequest` records by
:func:`poisson_request_stream`, and both consumers — the legacy
:func:`run_poisson_workload` batch evaluation and the streaming front
end in :mod:`repro.serve` — replay the same records, so "the workload"
is one concrete, picklable value rather than a bag of closures. (The
previous implementation captured each arrival in a closure through the
``def serve(at=t, src=src, dst=dst)`` default-argument idiom; the
records replace that pattern while drawing from the RNG in the exact
same order, so seeded outputs are unchanged — pinned by a regression
test.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.network.events import EventTimeline
from repro.network.simulator import NetworkSimulator, RequestOutcome
from repro.utils.seeding import as_generator

__all__ = [
    "TimedRequest",
    "WorkloadReport",
    "align_to_grid",
    "lans_from_sites",
    "poisson_request_stream",
    "run_poisson_workload",
]


@dataclass(frozen=True)
class TimedRequest:
    """One timestamped entanglement request of a workload stream.

    Attributes:
        request_id: position in the stream (0-based, unique, ascending).
        t_s: arrival time.
        source / destination: endpoint host names (different LANs).
        tenant: admission-queue assignment for the streaming front end;
            batch consumers ignore it.
    """

    request_id: int
    t_s: float
    source: str
    destination: str
    tenant: str = "default"

    @property
    def endpoints(self) -> tuple[str, str]:
        """The ``(source, destination)`` pair."""
        return (self.source, self.destination)


@dataclass(frozen=True)
class WorkloadReport:
    """Aggregates of an event-driven workload run.

    Attributes:
        outcomes: every served/unserved request in arrival order.
        duration_s: workload horizon.
    """

    outcomes: tuple[RequestOutcome, ...]
    duration_s: float

    @property
    def n_requests(self) -> int:
        """Total arrivals."""
        return len(self.outcomes)

    @property
    def served_fraction(self) -> float:
        """Fraction of arrivals served."""
        if not self.outcomes:
            return float("nan")
        return sum(o.served for o in self.outcomes) / len(self.outcomes)

    @property
    def mean_fidelity(self) -> float:
        """Mean fidelity over served arrivals (NaN when none served)."""
        fids = [o.fidelity for o in self.outcomes if o.served]
        return float(np.mean(fids)) if fids else float("nan")

    @property
    def arrival_rate_hz(self) -> float:
        """Empirical arrival rate."""
        return self.n_requests / self.duration_s if self.duration_s > 0 else float("nan")


def lans_from_sites(sites: Iterable) -> dict[str, list[str]]:
    """``LAN -> member node names`` mapping from ground-node records.

    Accepts anything with ``name`` and ``network`` attributes (e.g.
    :class:`~repro.data.ground_nodes.GroundNode`), preserving first-seen
    LAN order — the matrix serving path has no ``QuantumNetwork`` to read
    ``local_networks`` from, so streams over it start here.
    """
    lans: dict[str, list[str]] = {}
    for site in sites:
        lans.setdefault(site.network, []).append(site.name)
    return lans


def _random_inter_lan_pair(
    lans: dict[str, list[str]], rng: np.random.Generator
) -> tuple[str, str]:
    """Draw a (source, destination) pair from different LANs."""
    names = list(lans)
    all_nodes = [(lan, node) for lan in names for node in lans[lan]]
    src_lan, src = all_nodes[int(rng.integers(len(all_nodes)))]
    others = [(lan, node) for lan, node in all_nodes if lan != src_lan]
    _, dst = others[int(rng.integers(len(others)))]
    return src, dst


def poisson_request_stream(
    lans: dict[str, list[str]],
    *,
    rate_hz: float,
    duration_s: float,
    seed: int | np.random.Generator | None = None,
    tenants: Sequence[str] = ("default",),
) -> tuple[TimedRequest, ...]:
    """Materialize a Poisson arrival stream as explicit request records.

    Inter-arrival gaps are exponential with mean ``1/rate_hz``; each
    arrival draws a random inter-LAN endpoint pair. The RNG consumption
    order (gap, then pair, per arrival; tenant only when more than one is
    offered) keeps single-tenant streams bit-identical to the historic
    closure-based workload for the same seed.

    Args:
        lans: ``LAN -> member node names`` (>= 2 LANs required).
        rate_hz: mean arrival rate.
        duration_s: horizon; arrivals lie strictly inside ``(0, duration_s)``.
        seed: RNG seed or generator.
        tenants: tenant labels assigned uniformly at random per request.
    """
    if rate_hz <= 0 or duration_s <= 0:
        raise ValidationError("rate_hz and duration_s must be positive")
    if len(lans) < 2:
        raise ValidationError("a Poisson workload needs at least two LANs")
    if not tenants:
        raise ValidationError("tenants must be non-empty")
    rng = as_generator(seed)
    requests: list[TimedRequest] = []
    t = float(rng.exponential(1.0 / rate_hz))
    while t < duration_s:
        src, dst = _random_inter_lan_pair(lans, rng)
        tenant = (
            tenants[0]
            if len(tenants) == 1
            else tenants[int(rng.integers(len(tenants)))]
        )
        requests.append(TimedRequest(len(requests), t, src, dst, tenant))
        t += float(rng.exponential(1.0 / rate_hz))
    return tuple(requests)


def align_to_grid(
    requests: Sequence[TimedRequest], times_s: np.ndarray
) -> tuple[TimedRequest, ...]:
    """Quantize each arrival to the most recent grid sample at or before it.

    Sample-and-hold link state makes outcomes constant between ephemeris
    samples; snapping arrival times onto the grid lets batch consumers
    group many requests per timestamp (and routing-tree memoization pay
    off) without changing any serving decision. Identity and order are
    preserved.
    """
    grid = np.asarray(times_s, dtype=float)
    idx = np.searchsorted(grid, [r.t_s for r in requests], side="right") - 1
    idx = np.clip(idx, 0, grid.size - 1)
    return tuple(
        replace(r, t_s=float(grid[k])) for r, k in zip(requests, idx)
    )


def run_poisson_workload(
    simulator: NetworkSimulator,
    *,
    rate_hz: float,
    duration_s: float,
    seed: int | np.random.Generator | None = None,
) -> WorkloadReport:
    """Drive a simulator with Poisson-arriving inter-LAN requests.

    Arrival times are drawn from an exponential inter-arrival process
    (via :func:`poisson_request_stream`), scheduled on a fresh
    :class:`EventTimeline`, and served at their exact arrival instants
    (the simulator evaluates satellite geometry at each arrival's clock
    time, not at a step boundary).

    Args:
        simulator: the network under test; must contain >= 2 LANs.
        rate_hz: mean arrival rate.
        duration_s: horizon.
        seed: RNG seed or generator.
    """
    requests = poisson_request_stream(
        simulator.network.local_networks,
        rate_hz=rate_hz,
        duration_s=duration_s,
        seed=seed,
    )
    timeline = EventTimeline()
    outcomes: list[RequestOutcome] = []

    def serve(request: TimedRequest) -> None:
        outcomes.append(
            simulator.serve_request(request.source, request.destination, request.t_s)
        )

    for request in requests:
        timeline.schedule(
            request.t_s,
            lambda request=request: serve(request),
            label=f"{request.source}->{request.destination}",
        )
    timeline.run()
    return WorkloadReport(tuple(outcomes), duration_s)
