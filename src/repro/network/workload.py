"""Event-driven request workloads.

The paper evaluates batches of requests at fixed time steps; this module
adds the event-driven view: entanglement requests arriving as a Poisson
process over the simulation horizon, scheduled and served through the
:class:`~repro.network.events.EventTimeline`. It reports the same
aggregates (served fraction, fidelity) plus arrival-resolution detail the
stepped evaluation cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.network.events import EventTimeline
from repro.network.simulator import NetworkSimulator, RequestOutcome
from repro.utils.seeding import as_generator

__all__ = ["WorkloadReport", "run_poisson_workload"]


@dataclass(frozen=True)
class WorkloadReport:
    """Aggregates of an event-driven workload run.

    Attributes:
        outcomes: every served/unserved request in arrival order.
        duration_s: workload horizon.
    """

    outcomes: tuple[RequestOutcome, ...]
    duration_s: float

    @property
    def n_requests(self) -> int:
        """Total arrivals."""
        return len(self.outcomes)

    @property
    def served_fraction(self) -> float:
        """Fraction of arrivals served."""
        if not self.outcomes:
            return float("nan")
        return sum(o.served for o in self.outcomes) / len(self.outcomes)

    @property
    def mean_fidelity(self) -> float:
        """Mean fidelity over served arrivals (NaN when none served)."""
        fids = [o.fidelity for o in self.outcomes if o.served]
        return float(np.mean(fids)) if fids else float("nan")

    @property
    def arrival_rate_hz(self) -> float:
        """Empirical arrival rate."""
        return self.n_requests / self.duration_s if self.duration_s > 0 else float("nan")


def _random_inter_lan_pair(
    lans: dict[str, list[str]], rng: np.random.Generator
) -> tuple[str, str]:
    """Draw a (source, destination) pair from different LANs."""
    names = list(lans)
    all_nodes = [(lan, node) for lan in names for node in lans[lan]]
    src_lan, src = all_nodes[int(rng.integers(len(all_nodes)))]
    others = [(lan, node) for lan, node in all_nodes if lan != src_lan]
    _, dst = others[int(rng.integers(len(others)))]
    return src, dst


def run_poisson_workload(
    simulator: NetworkSimulator,
    *,
    rate_hz: float,
    duration_s: float,
    seed: int | np.random.Generator | None = None,
) -> WorkloadReport:
    """Drive a simulator with Poisson-arriving inter-LAN requests.

    Arrival times are drawn from an exponential inter-arrival process,
    scheduled on a fresh :class:`EventTimeline`, and served at their exact
    arrival instants (the simulator evaluates satellite geometry at each
    arrival's clock time, not at a step boundary).

    Args:
        simulator: the network under test; must contain >= 2 LANs.
        rate_hz: mean arrival rate.
        duration_s: horizon.
        seed: RNG seed or generator.
    """
    if rate_hz <= 0 or duration_s <= 0:
        raise ValidationError("rate_hz and duration_s must be positive")
    lans = simulator.network.local_networks
    if len(lans) < 2:
        raise ValidationError("a Poisson workload needs at least two LANs")
    rng = as_generator(seed)

    timeline = EventTimeline()
    outcomes: list[RequestOutcome] = []

    t = float(rng.exponential(1.0 / rate_hz))
    while t < duration_s:
        src, dst = _random_inter_lan_pair(lans, rng)

        def serve(at: float = t, src: str = src, dst: str = dst) -> None:
            outcomes.append(simulator.serve_request(src, dst, at))

        timeline.schedule(t, serve, label=f"{src}->{dst}")
        t += float(rng.exponential(1.0 / rate_hz))

    timeline.run()
    return WorkloadReport(tuple(outcomes), duration_s)
