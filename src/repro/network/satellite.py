"""Satellite hosts driven by movement sheets.

The paper's upgraded QuNetSim gives each ``Satellite`` a movement list —
STK-exported positions at 30-second cadence — advanced by a background
thread. Here the movement list is an :class:`~repro.orbits.ephemeris.Ephemeris`
column and positions are advanced deterministically by querying the
ephemeris at the simulation clock (sample-and-hold), which produces the
same trajectory without thread nondeterminism.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.network.host import Host
from repro.orbits.ephemeris import Ephemeris
from repro.orbits.frames import ecef_to_geodetic

__all__ = ["Satellite"]


class Satellite(Host):
    """A moving satellite host backed by an ephemeris column.

    Args:
        name: unique host name; must exist in ``ephemeris.names``.
        ephemeris: movement sheet shared by the constellation.
        nominal_altitude_km: altitude used by link budgets for slant
            integrals (the true sample altitude varies by a few km).
    """

    kind = "satellite"

    def __init__(
        self,
        name: str,
        ephemeris: Ephemeris,
        *,
        nominal_altitude_km: float = 500.0,
    ) -> None:
        index = ephemeris.index_of(name)
        first = ephemeris.positions_ecef_km[index, 0]
        lat, lon, alt = ecef_to_geodetic(first)
        super().__init__(name, float(np.degrees(lat)), float(np.degrees(lon)), float(alt))
        self._ephemeris = ephemeris
        self._index = index
        if nominal_altitude_km <= 0:
            raise ValidationError(
                f"nominal_altitude_km must be positive, got {nominal_altitude_km}"
            )
        self.nominal_altitude_km = nominal_altitude_km

    @property
    def is_mobile(self) -> bool:
        """Satellites move."""
        return True

    @property
    def ephemeris(self) -> Ephemeris:
        """The movement sheet backing this satellite."""
        return self._ephemeris

    @property
    def ephemeris_index(self) -> int:
        """Row of this satellite in the shared ephemeris."""
        return self._index

    def position_ecef_km(self, t_s: float) -> np.ndarray:
        """Sample-and-hold position from the movement sheet [km]."""
        return self._ephemeris.position_at(self._index, t_s)

    def altitude_km_at(self, t_s: float) -> float:
        """Geodetic altitude at ``t_s`` [km] (from the sampled position)."""
        _, _, alt = ecef_to_geodetic(self.position_ecef_km(t_s))
        return float(alt)

    @classmethod
    def constellation_from_ephemeris(
        cls, ephemeris: Ephemeris, *, nominal_altitude_km: float = 500.0
    ) -> list["Satellite"]:
        """One :class:`Satellite` per platform in the movement sheet."""
        return [
            cls(name, ephemeris, nominal_altitude_km=nominal_altitude_km)
            for name in ephemeris.names
        ]
