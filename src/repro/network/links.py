"""Quantum channels between hosts: fiber (ground-ground) and FSO (to platforms).

A :class:`QuantumChannel` binds two hosts to a physical-layer model and
evaluates its transmissivity at a given simulation time from the hosts'
instantaneous geometry. Whether the link is *usable* is decided by the
network-level policy (transmissivity threshold + minimum elevation), which
lives in :class:`LinkPolicy`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.channels.fiber import FiberChannelModel
from repro.channels.fso import FSOChannelModel
from repro.constants import QNTN_MIN_ELEVATION_RAD, QNTN_TRANSMISSIVITY_THRESHOLD
from repro.errors import LinkError
from repro.network.hap import HAP
from repro.network.host import Host
from repro.orbits.frames import ecef_to_enu_matrix, enu_to_azimuth_elevation

__all__ = ["ChannelKind", "LinkState", "LinkPolicy", "QuantumChannel"]


class ChannelKind(enum.Enum):
    """Physical channel families used by the QNTN architectures."""

    FIBER = "fiber"
    FSO = "fso"


@dataclass(frozen=True)
class LinkState:
    """Instantaneous link evaluation.

    Attributes:
        transmissivity: eta in [0, 1].
        distance_km: path length (fiber) or slant range (FSO) [km].
        elevation_rad: elevation of the higher endpoint above the ground
            endpoint's horizon [rad]; NaN for fiber and inter-platform links.
        usable: whether the policy admits the link for routing.
    """

    transmissivity: float
    distance_km: float
    elevation_rad: float
    usable: bool


@dataclass(frozen=True)
class LinkPolicy:
    """Network-level admission rule for links (paper Sections III-A, IV).

    Attributes:
        transmissivity_threshold: minimum eta for a usable link (0.7,
            identified in Fig. 5).
        min_elevation_rad: minimum elevation for ground-to-platform FSO
            links (pi/9).
    """

    transmissivity_threshold: float = QNTN_TRANSMISSIVITY_THRESHOLD
    min_elevation_rad: float = QNTN_MIN_ELEVATION_RAD

    def admits(self, state_eta: float, elevation_rad: float, needs_elevation: bool) -> bool:
        """Whether a link with this evaluation may carry entanglement."""
        if state_eta < self.transmissivity_threshold:
            return False
        if needs_elevation and not (
            math.isfinite(elevation_rad) and elevation_rad >= self.min_elevation_rad
        ):
            return False
        return True


class QuantumChannel:
    """A physical link between two hosts.

    Args:
        host_a: first endpoint.
        host_b: second endpoint.
        model: :class:`FiberChannelModel` (both endpoints on the ground) or
            :class:`FSOChannelModel` (at least one platform endpoint).

    The channel decides its :class:`ChannelKind` from the model type and
    validates it against the endpoint kinds.
    """

    def __init__(
        self,
        host_a: Host,
        host_b: Host,
        model: FiberChannelModel | FSOChannelModel,
    ) -> None:
        if host_a.name == host_b.name:
            raise LinkError(f"channel endpoints must differ, got {host_a.name!r} twice")
        self.host_a = host_a
        self.host_b = host_b
        self.model = model
        if isinstance(model, FiberChannelModel):
            self.kind = ChannelKind.FIBER
            if host_a.kind != "ground" or host_b.kind != "ground":
                raise LinkError(
                    f"fiber channel {host_a.name}-{host_b.name} requires ground endpoints"
                )
        elif isinstance(model, FSOChannelModel):
            self.kind = ChannelKind.FSO
        else:  # pragma: no cover - defensive
            raise LinkError(f"unsupported channel model type {type(model).__name__}")

    def __repr__(self) -> str:
        return (
            f"QuantumChannel({self.host_a.name!r} <-> {self.host_b.name!r}, "
            f"{self.kind.value})"
        )

    @property
    def names(self) -> tuple[str, str]:
        """Endpoint names (a, b)."""
        return self.host_a.name, self.host_b.name

    @property
    def is_ground_to_platform(self) -> bool:
        """Whether exactly one endpoint is a ground station."""
        kinds = {self.host_a.kind == "ground", self.host_b.kind == "ground"}
        return kinds == {True, False}

    def _geometry(self, t_s: float) -> tuple[float, float]:
        """(distance_km, elevation_rad) at time ``t_s``.

        Elevation is measured at the ground endpoint for ground-platform
        links; NaN otherwise.
        """
        pa = self.host_a.position_ecef_km(t_s)
        pb = self.host_b.position_ecef_km(t_s)
        if self.kind is ChannelKind.FIBER or not self.is_ground_to_platform:
            return float(np.linalg.norm(pb - pa)), float("nan")
        ground, platform = (
            (self.host_a, pb) if self.host_a.kind == "ground" else (self.host_b, pa)
        )
        site = ground.position_ecef_km(t_s)
        t = ecef_to_enu_matrix(ground.lat_rad, ground.lon_rad)
        _, el, rng = enu_to_azimuth_elevation(t @ (platform - site))
        return float(rng), float(el)

    def _platform_altitude_km(self, t_s: float) -> float | None:
        """Altitude of the airborne endpoint, if any [km]."""
        if not self.is_ground_to_platform:
            return None
        platform = self.host_a if self.host_a.kind != "ground" else self.host_b
        if platform.kind == "satellite":
            return platform.nominal_altitude_km  # type: ignore[attr-defined]
        return platform.alt_km

    def _operational(self, t_s: float) -> bool:
        """Whether both endpoints can currently form links (HAP duty cycle)."""
        for host in (self.host_a, self.host_b):
            if isinstance(host, HAP) and not host.is_operational(t_s):
                return False
        return True

    def evaluate(self, t_s: float, policy: LinkPolicy | None = None) -> LinkState:
        """Evaluate transmissivity and usability at time ``t_s``.

        Args:
            t_s: simulation time [s].
            policy: admission policy; defaults to the paper's thresholds.
        """
        if not self._operational(t_s):
            distance, elevation = self._geometry(t_s)
            return LinkState(0.0, distance, elevation, False)
        return self.evaluate_physics(t_s, policy)

    def evaluate_physics(self, t_s: float, policy: LinkPolicy | None = None) -> LinkState:
        """Physical-layer evaluation at ``t_s``, ignoring duty cycles.

        Same as :meth:`evaluate` minus the HAP operational gate; the
        link-state cache evaluates the (time-independent) physics once
        and applies the duty-cycle mask separately per sample.
        """
        policy = policy or LinkPolicy()
        distance, elevation = self._geometry(t_s)

        if self.kind is ChannelKind.FIBER:
            eta = float(np.asarray(self.model.transmissivity(distance)))
            return LinkState(eta, distance, elevation, policy.admits(eta, elevation, False))

        if self.is_ground_to_platform:
            if not math.isfinite(elevation) or elevation <= 0.0:
                return LinkState(0.0, distance, elevation, False)
            alt = self._platform_altitude_km(t_s)
            eta = float(
                np.asarray(self.model.transmissivity(distance, elevation, alt))
            )
            return LinkState(eta, distance, elevation, policy.admits(eta, elevation, True))

        # Inter-platform (e.g. inter-satellite) vacuum link.
        eta = float(np.asarray(self.model.transmissivity(distance)))
        return LinkState(eta, distance, elevation, policy.admits(eta, elevation, False))

    def transmissivity(self, t_s: float) -> float:
        """Transmissivity at ``t_s`` (no admission policy applied)."""
        return self.evaluate(t_s).transmissivity
