"""High-altitude platform host.

The paper's HAP hovers at a fixed geodetic point (35.6692, -85.0662) at
30 km (Section II-C) and is assumed continuously available. The duty-cycle
fields model the paper's acknowledged limitation — finite flight time —
for the hybrid-architecture extension: outside its operational windows a
HAP forms no links.
"""

from __future__ import annotations

from repro.constants import QNTN_HAP_ALTITUDE_KM, QNTN_HAP_LAT_DEG, QNTN_HAP_LON_DEG
from repro.errors import ValidationError
from repro.network.host import Host
from repro.utils.intervals import Interval, IntervalSet

__all__ = ["HAP"]


class HAP(Host):
    """A hovering high-altitude platform.

    Args:
        name: unique host name.
        lat_deg / lon_deg / alt_km: hover position; defaults are the
            paper's QNTN values.
        operational_windows: time intervals during which the platform is
            flying and can form links. ``None`` (default) means always
            operational, matching the paper's ideal-conditions assumption.
    """

    kind = "hap"

    def __init__(
        self,
        name: str = "hap-0",
        lat_deg: float = QNTN_HAP_LAT_DEG,
        lon_deg: float = QNTN_HAP_LON_DEG,
        alt_km: float = QNTN_HAP_ALTITUDE_KM,
        *,
        operational_windows: list[Interval] | None = None,
    ) -> None:
        if alt_km <= 0:
            raise ValidationError(f"HAP altitude must be positive, got {alt_km}")
        super().__init__(name, lat_deg, lon_deg, alt_km)
        self._windows = IntervalSet(operational_windows) if operational_windows else None

    @property
    def always_operational(self) -> bool:
        """Whether the platform has no duty-cycle restriction."""
        return self._windows is None

    def is_operational(self, t_s: float) -> bool:
        """Whether the platform can form links at time ``t_s``."""
        if self._windows is None:
            return True
        return self._windows.contains(t_s)

    def operational_fraction(self, horizon_s: float) -> float:
        """Fraction of ``[0, horizon_s)`` the platform is operational."""
        if self._windows is None:
            return 1.0
        return self._windows.coverage_fraction(horizon_s)
