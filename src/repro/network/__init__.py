"""QuNetSim-style quantum network simulator, upgraded per paper Section III-C.

The paper extends QuNetSim with location-aware hosts, FSO channels, and
satellite/HAP host types driven by STK movement sheets. This package
provides the same capabilities natively: :class:`Host` subclasses with
geodetic locations, :class:`QuantumChannel` links over the fiber/FSO
models, deterministic time-stepped platform movement (replacing the
paper's position-update threads), a discrete-event timeline, and the
entanglement-distribution protocol machinery.
"""

from repro.network.events import Event, EventTimeline
from repro.network.hap import HAP
from repro.network.host import GroundStation, Host
from repro.network.links import ChannelKind, LinkState, QuantumChannel
from repro.network.protocols import (
    EntangledPair,
    dejmps_purification,
    distribute_entanglement,
    entanglement_swap,
    generate_bell_pair,
)
from repro.network.satellite import Satellite
from repro.network.simulator import NetworkSimulator, RequestOutcome
from repro.network.topology import QuantumNetwork, build_qntn_ground_network

__all__ = [
    "Host",
    "GroundStation",
    "Satellite",
    "HAP",
    "QuantumChannel",
    "ChannelKind",
    "LinkState",
    "QuantumNetwork",
    "build_qntn_ground_network",
    "Event",
    "EventTimeline",
    "NetworkSimulator",
    "RequestOutcome",
    "EntangledPair",
    "generate_bell_pair",
    "distribute_entanglement",
    "entanglement_swap",
    "dejmps_purification",
]
