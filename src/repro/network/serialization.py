"""Scenario persistence: save and reload whole network topologies.

A saved scenario is a JSON document describing hosts, channel models, and
policy-relevant parameters, plus — when the network contains satellites —
a movement-sheet CSV next to it (exactly the paper's artefact split:
topology in the simulator, trajectories in STK export sheets).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.channels.atmosphere import ExponentialAtmosphere
from repro.channels.fiber import FiberChannelModel
from repro.channels.fso import FSOChannelModel
from repro.errors import ValidationError
from repro.network.hap import HAP
from repro.network.host import GroundStation, Host
from repro.network.satellite import Satellite
from repro.network.topology import QuantumNetwork
from repro.orbits.ephemeris import Ephemeris
from repro.utils.intervals import Interval

__all__ = ["save_network", "load_network"]

#: Schema version of scenario files.
SCENARIO_VERSION = 1


def _model_to_dict(model: FiberChannelModel | FSOChannelModel) -> dict[str, Any]:
    if isinstance(model, FiberChannelModel):
        return {
            "type": "fiber",
            "attenuation_db_per_km": model.attenuation_db_per_km,
            "refractive_index": model.refractive_index,
        }
    atmosphere = None
    if model.atmosphere is not None:
        atmosphere = {
            "beta0_per_km": model.atmosphere.beta0_per_km,
            "scale_height_km": model.atmosphere.scale_height_km,
        }
    return {
        "type": "fso",
        "wavelength_m": model.wavelength_m,
        "beam_waist_m": model.beam_waist_m,
        "rx_aperture_radius_m": model.rx_aperture_radius_m,
        "receiver_efficiency": model.receiver_efficiency,
        "atmosphere": atmosphere,
        "turbulence": model.turbulence,
        "uplink": model.uplink,
        "cn2_scale": model.cn2_scale,
        "pointing_jitter_rad": model.pointing_jitter_rad,
    }


def _model_from_dict(data: dict[str, Any]) -> FiberChannelModel | FSOChannelModel:
    kind = data.get("type")
    if kind == "fiber":
        return FiberChannelModel(
            attenuation_db_per_km=data["attenuation_db_per_km"],
            refractive_index=data["refractive_index"],
        )
    if kind == "fso":
        atmosphere = None
        if data.get("atmosphere") is not None:
            atmosphere = ExponentialAtmosphere(**data["atmosphere"])
        return FSOChannelModel(
            wavelength_m=data["wavelength_m"],
            beam_waist_m=data["beam_waist_m"],
            rx_aperture_radius_m=data["rx_aperture_radius_m"],
            receiver_efficiency=data["receiver_efficiency"],
            atmosphere=atmosphere,
            turbulence=data["turbulence"],
            uplink=data["uplink"],
            cn2_scale=data["cn2_scale"],
            pointing_jitter_rad=data["pointing_jitter_rad"],
        )
    raise ValidationError(f"unknown channel model type {kind!r}")


def _host_to_dict(host: Host) -> dict[str, Any]:
    base: dict[str, Any] = {
        "kind": host.kind,
        "name": host.name,
        "lat_deg": host.lat_deg,
        "lon_deg": host.lon_deg,
        "alt_km": host.alt_km,
        "network": host.network,
    }
    if isinstance(host, Satellite):
        base["nominal_altitude_km"] = host.nominal_altitude_km
    if isinstance(host, HAP):
        base["operational_windows"] = (
            None
            if host.always_operational
            else [[iv.start, iv.end] for iv in host._windows]  # noqa: SLF001
        )
    return base


def save_network(
    network: QuantumNetwork,
    path: str | Path,
    *,
    movement_sheet_path: str | Path | None = None,
) -> Path:
    """Write a scenario JSON (plus a movement sheet if satellites exist).

    Args:
        network: the topology to persist.
        path: scenario JSON destination.
        movement_sheet_path: CSV destination for satellite trajectories;
            required when the network contains satellites. The JSON
            stores the path *relative to itself* when possible.

    Returns:
        The written JSON path.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)

    satellites = [h for h in network.hosts() if isinstance(h, Satellite)]
    sheet_ref: str | None = None
    if satellites:
        if movement_sheet_path is None:
            raise ValidationError(
                "network contains satellites: movement_sheet_path is required"
            )
        sheet = Path(movement_sheet_path)
        sheet.parent.mkdir(parents=True, exist_ok=True)
        ephemeris = satellites[0].ephemeris
        names = {s.name for s in satellites}
        if set(ephemeris.names) != names:
            raise ValidationError(
                "satellites must all share one ephemeris covering exactly "
                "the constellation"
            )
        ephemeris.to_csv(sheet)
        try:
            sheet_ref = str(sheet.relative_to(out.parent))
        except ValueError:
            sheet_ref = str(sheet)

    doc = {
        "version": SCENARIO_VERSION,
        "movement_sheet": sheet_ref,
        "hosts": [_host_to_dict(h) for h in network.hosts()],
        "channels": [
            {
                "a": channel.names[0],
                "b": channel.names[1],
                "model": _model_to_dict(channel.model),
            }
            for channel in network.channels()
        ],
    }
    out.write_text(json.dumps(doc, indent=2))
    return out


def load_network(path: str | Path) -> QuantumNetwork:
    """Reload a scenario written by :func:`save_network`."""
    src = Path(path)
    doc = json.loads(src.read_text())
    if doc.get("version") != SCENARIO_VERSION:
        raise ValidationError(f"unsupported scenario version {doc.get('version')!r}")

    ephemeris: Ephemeris | None = None
    if doc.get("movement_sheet"):
        sheet = Path(doc["movement_sheet"])
        if not sheet.is_absolute():
            sheet = src.parent / sheet
        ephemeris = Ephemeris.from_csv(sheet)

    network = QuantumNetwork()
    for record in doc["hosts"]:
        kind = record["kind"]
        if kind == "ground":
            network.add_host(
                GroundStation(
                    record["name"],
                    record["lat_deg"],
                    record["lon_deg"],
                    record["alt_km"],
                    record["network"],
                )
            )
        elif kind == "hap":
            windows = record.get("operational_windows")
            network.add_host(
                HAP(
                    record["name"],
                    record["lat_deg"],
                    record["lon_deg"],
                    record["alt_km"],
                    operational_windows=(
                        None
                        if windows is None
                        else [Interval(a, b) for a, b in windows]
                    ),
                )
            )
        elif kind == "satellite":
            if ephemeris is None:
                raise ValidationError(
                    f"satellite {record['name']!r} present but no movement sheet"
                )
            network.add_host(
                Satellite(
                    record["name"],
                    ephemeris,
                    nominal_altitude_km=record["nominal_altitude_km"],
                )
            )
        else:
            raise ValidationError(f"unknown host kind {kind!r}")

    for record in doc["channels"]:
        network.connect(record["a"], record["b"], _model_from_dict(record["model"]))
    return network
