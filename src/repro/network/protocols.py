"""Entanglement-distribution protocols.

Implements the quantum-layer machinery the paper's evaluation relies on —
Bell-pair generation, per-hop amplitude damping, and end-to-end fidelity —
plus two standard protocol building blocks used by tests and extensions:
full density-matrix entanglement swapping (Bell measurement at a relay
with Pauli correction) and one round of DEJMPS purification.

Because amplitude-damping channels compose multiplicatively
(``AD(a) ∘ AD(b) = AD(a*b)``), transmitting one half of a pair across a
multi-hop path with per-link transmissivities ``eta_i`` is exactly
equivalent to a single damping with ``prod(eta_i)`` — the identity the
fast evaluation path exploits and the tests verify against this module's
explicit hop-by-hop Kraus application.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import QuantumStateError, ValidationError
from repro.quantum.channels import amplitude_damping
from repro.quantum.fidelity import pure_state_fidelity
from repro.quantum.operators import (
    PAULI_I,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    embed_operator,
    partial_trace,
    tensor,
)
from repro.quantum.states import BellState, bell_state, density_matrix

__all__ = [
    "EntangledPair",
    "generate_bell_pair",
    "distribute_entanglement",
    "entanglement_swap",
    "dejmps_purification",
    "werner_twirl",
    "PurificationOutcome",
    "purified_delivery",
    "teleport",
    "average_teleportation_fidelity",
    "controlled_not",
]


@dataclass(frozen=True)
class EntangledPair:
    """An end-to-end entangled pair delivered by the network.

    Attributes:
        source: name of the node holding qubit 0.
        destination: name of the node holding qubit 1.
        rho: two-qubit density matrix of the delivered pair.
        path_transmissivity: product of per-link transmissivities along
            the route the travelling qubit took.
    """

    source: str
    destination: str
    rho: np.ndarray
    path_transmissivity: float

    def fidelity(self, convention: str = "sqrt") -> float:
        """Fidelity against |Phi+> (paper Eq. 5; see DESIGN.md on conventions)."""
        return pure_state_fidelity(bell_state(BellState.PHI_PLUS), self.rho, convention=convention)


def generate_bell_pair(kind: BellState | str = BellState.PHI_PLUS) -> np.ndarray:
    """Fresh Bell-pair density matrix (default |Phi+><Phi+|)."""
    return density_matrix(bell_state(kind))


def distribute_entanglement(
    link_transmissivities: Sequence[float],
    *,
    source: str = "source",
    destination: str = "destination",
    travelling_qubit: int = 1,
) -> EntangledPair:
    """Distribute a |Phi+> pair across a path of lossy links.

    A pair is generated at the source; its travelling half crosses each
    link in turn, each modelled as an amplitude-damping channel with that
    link's transmissivity (paper Eqs. 3-4). Relays are assumed to forward
    the photon transparently (the paper's idealised swap), so losses
    multiply along the path.

    Args:
        link_transmissivities: per-link eta in path order; must be non-empty.
        source / destination: endpoint labels recorded on the pair.
        travelling_qubit: which half of the pair is transmitted (0 or 1).
    """
    etas = [float(e) for e in link_transmissivities]
    if not etas:
        raise ValidationError("a path needs at least one link")
    if any(not 0.0 <= e <= 1.0 or not math.isfinite(e) for e in etas):
        raise ValidationError(f"link transmissivities must lie in [0, 1], got {etas}")
    rho = generate_bell_pair()
    for eta in etas:
        rho = amplitude_damping(eta).on_qubit(travelling_qubit, 2).apply(rho)
    return EntangledPair(source, destination, rho, float(np.prod(etas)))


def controlled_not(control: int, target: int, n_qubits: int) -> np.ndarray:
    """CNOT between arbitrary qubits of an n-qubit register (big-endian)."""
    if control == target:
        raise QuantumStateError("control and target must differ")
    p0 = np.array([[1, 0], [0, 0]], dtype=complex)
    p1 = np.array([[0, 0], [0, 1]], dtype=complex)
    term0 = embed_operator(p0, control, n_qubits)
    term1 = embed_operator(p1, control, n_qubits) @ embed_operator(PAULI_X, target, n_qubits)
    return term0 + term1


#: Bell-measurement outcome -> Pauli correction applied to the far qubit.
_SWAP_CORRECTIONS: dict[BellState, np.ndarray] = {
    BellState.PHI_PLUS: PAULI_I,
    BellState.PHI_MINUS: PAULI_Z,
    BellState.PSI_PLUS: PAULI_X,
    BellState.PSI_MINUS: PAULI_Y,
}


def entanglement_swap(
    rho_ab: np.ndarray, rho_cd: np.ndarray
) -> tuple[np.ndarray, dict[BellState, float]]:
    """Entanglement swapping at a relay holding qubits B and C.

    Given pairs (A, B) and (C, D), performs a Bell-state measurement on
    (B, C), applies the outcome-dependent Pauli correction to D, and
    averages over outcomes, yielding the swapped pair (A, D).

    Returns:
        ``(rho_ad, outcome_probabilities)``. Swapping two perfect |Phi+>
        pairs returns |Phi+> with uniform outcome probabilities.
    """
    a = np.asarray(rho_ab, dtype=complex)
    b = np.asarray(rho_cd, dtype=complex)
    if a.shape != (4, 4) or b.shape != (4, 4):
        raise QuantumStateError("entanglement_swap expects two-qubit density matrices")

    joint = tensor(a, b)  # qubits (A, B, C, D)
    rho_out = np.zeros((4, 4), dtype=complex)
    probabilities: dict[BellState, float] = {}
    for outcome, correction in _SWAP_CORRECTIONS.items():
        bell = bell_state(outcome)
        projector_bc = np.outer(bell, bell.conj())
        # B and C are adjacent qubits (1, 2) of the 4-qubit register.
        projector = tensor(PAULI_I, projector_bc, PAULI_I)
        unnormalised = projector @ joint @ projector.conj().T
        p = float(np.real(np.trace(unnormalised)))
        probabilities[outcome] = p
        if p <= 1e-15:
            continue
        reduced = partial_trace(unnormalised / p, keep=[0, 3])
        corrector = embed_operator(correction, 1, 2)
        rho_out += p * (corrector @ reduced @ corrector.conj().T)

    total = sum(probabilities.values())
    if not math.isclose(total, 1.0, abs_tol=1e-9):
        raise QuantumStateError(f"swap outcome probabilities sum to {total}, expected 1")
    return rho_out, probabilities


def _rx(angle: float) -> np.ndarray:
    """Single-qubit rotation about X by ``angle``."""
    c = math.cos(angle / 2.0)
    s = math.sin(angle / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def dejmps_purification(
    rho1: np.ndarray, rho2: np.ndarray
) -> tuple[float, np.ndarray]:
    """One round of DEJMPS entanglement purification.

    Alice holds qubits A1, A2 and Bob holds B1, B2 of two noisy pairs.
    Both apply pi/2 X-rotations (opposite signs), bilateral CNOTs from
    pair 1 onto pair 2, then measure pair 2 in the computational basis;
    the round succeeds when the outcomes coincide.

    Returns:
        ``(success_probability, rho_out)`` where ``rho_out`` is the kept
        pair (A1, B1) conditioned on success. For two identical
        amplitude-damped |Phi+> inputs with eta > ~0.5 the output fidelity
        exceeds the input fidelity (verified by the test suite).
    """
    r1 = np.asarray(rho1, dtype=complex)
    r2 = np.asarray(rho2, dtype=complex)
    if r1.shape != (4, 4) or r2.shape != (4, 4):
        raise QuantumStateError("dejmps_purification expects two-qubit density matrices")

    # Register order (A1, B1, A2, B2).
    joint = tensor(r1, r2)
    n = 4
    u = (
        embed_operator(_rx(math.pi / 2.0), 0, n)
        @ embed_operator(_rx(-math.pi / 2.0), 1, n)
        @ embed_operator(_rx(math.pi / 2.0), 2, n)
        @ embed_operator(_rx(-math.pi / 2.0), 3, n)
    )
    joint = u @ joint @ u.conj().T
    cnots = controlled_not(0, 2, n) @ controlled_not(1, 3, n)
    joint = cnots @ joint @ cnots.conj().T

    p0 = np.array([[1, 0], [0, 0]], dtype=complex)
    p1 = np.array([[0, 0], [0, 1]], dtype=complex)
    success_state = np.zeros((4, 4), dtype=complex)
    success_prob = 0.0
    for pa, pb in ((p0, p0), (p1, p1)):
        projector = embed_operator(pa, 2, n) @ embed_operator(pb, 3, n)
        unnormalised = projector @ joint @ projector.conj().T
        p = float(np.real(np.trace(unnormalised)))
        if p <= 1e-15:
            continue
        success_prob += p
        success_state += partial_trace(unnormalised, keep=[0, 1])

    if success_prob <= 1e-15:
        raise QuantumStateError("purification round has zero success probability")
    return success_prob, success_state / success_prob


def werner_twirl(rho: np.ndarray) -> np.ndarray:
    """Twirl a two-qubit state into the Werner form with the same fidelity.

    Random bilateral rotations symmetrise any state into
    ``F |Phi+><Phi+| + (1-F)/3 (I - |Phi+><Phi+|)`` where
    ``F = <Phi+|rho|Phi+>``. Amplitude-damped pairs are a fixed point of
    bare DEJMPS, so recurrence purification twirls first (as in the
    original BBPSSW/DEJMPS analyses).
    """
    arr = np.asarray(rho, dtype=complex)
    if arr.shape != (4, 4):
        raise QuantumStateError(f"werner_twirl expects a two-qubit state, got {arr.shape}")
    phi = generate_bell_pair()
    f = float(np.real(np.trace(phi @ arr)))
    f = min(max(f, 0.0), 1.0)
    return f * phi + (1.0 - f) / 3.0 * (np.eye(4, dtype=complex) - phi)


@dataclass(frozen=True)
class PurificationOutcome:
    """Result of a recurrence-purification delivery.

    Attributes:
        fidelity: fidelity (sqrt convention) of the final kept pair.
        success_probability: probability all rounds succeed.
        pairs_consumed: raw delivered pairs consumed (2**rounds).
        rounds: purification rounds applied.
    """

    fidelity: float
    success_probability: float
    pairs_consumed: int
    rounds: int

    @property
    def expected_raw_pairs_per_delivered(self) -> float:
        """Mean raw pairs spent per successfully delivered purified pair."""
        if self.success_probability <= 0.0:
            return math.inf
        return self.pairs_consumed / self.success_probability


def purified_delivery(eta_path: float, rounds: int = 1) -> PurificationOutcome:
    """Deliver a pair over a lossy path with recurrence purification.

    Each round twirls the current pairs to Werner form and runs DEJMPS on
    two identical copies; ``rounds`` rounds consume ``2**rounds`` raw
    pairs. This is the fidelity-vs-throughput countermeasure for the
    space-ground regime where path fidelity hovers near the threshold.

    Args:
        eta_path: end-to-end path transmissivity of each raw pair.
        rounds: purification rounds (0 = no purification).
    """
    if rounds < 0:
        raise ValidationError(f"rounds must be >= 0, got {rounds}")
    rho = distribute_entanglement([eta_path]).rho
    success = 1.0
    for _ in range(rounds):
        twirled = werner_twirl(rho)
        p, rho = dejmps_purification(twirled, twirled)
        success *= min(p, 1.0)
    fidelity = pure_state_fidelity(bell_state(BellState.PHI_PLUS), rho, convention="sqrt")
    return PurificationOutcome(fidelity, success, 2**rounds, rounds)


#: Teleportation corrections per Bell-measurement outcome (on Bob's qubit).
_TELEPORT_CORRECTIONS: dict[BellState, np.ndarray] = {
    BellState.PHI_PLUS: PAULI_I,
    BellState.PHI_MINUS: PAULI_Z,
    BellState.PSI_PLUS: PAULI_X,
    BellState.PSI_MINUS: PAULI_Y,
}


def teleport(input_state: np.ndarray, resource_rho: np.ndarray) -> np.ndarray:
    """Teleport a single-qubit state through a (possibly noisy) pair.

    The standard circuit: Alice Bell-measures (input, her half), Bob
    applies the outcome's Pauli correction. The returned state averages
    over the four outcomes — exact for any resource density matrix.

    Teleportation is what the paper's Fig. 5 threshold is *for* ("high-
    fidelity teleportation and quantum information exchange"), so the
    test suite checks the delivered-pair fidelity translates into the
    textbook average teleportation fidelity.

    Args:
        input_state: ket (length 2) or density matrix (2x2) to teleport.
        resource_rho: two-qubit resource pair; qubit 0 is Alice's half.

    Returns:
        Bob's single-qubit output density matrix.
    """
    arr = np.asarray(input_state, dtype=complex)
    if arr.ndim == 1:
        if arr.shape != (2,):
            raise QuantumStateError(f"input ket must have length 2, got {arr.shape}")
        rho_in = np.outer(arr, arr.conj()) / float(np.real(np.vdot(arr, arr)))
    elif arr.shape == (2, 2):
        rho_in = arr
    else:
        raise QuantumStateError(f"input must be a qubit, got shape {arr.shape}")
    resource = np.asarray(resource_rho, dtype=complex)
    if resource.shape != (4, 4):
        raise QuantumStateError("resource must be a two-qubit density matrix")

    # Register (input, alice, bob); Bell measurement on (input, alice).
    joint = tensor(rho_in, resource)
    output = np.zeros((2, 2), dtype=complex)
    for outcome, correction in _TELEPORT_CORRECTIONS.items():
        bell = bell_state(outcome)
        projector = tensor(np.outer(bell, bell.conj()), PAULI_I)
        unnormalised = projector @ joint @ projector.conj().T
        p = float(np.real(np.trace(unnormalised)))
        if p <= 1e-15:
            continue
        bob = partial_trace(unnormalised / p, keep=[2])
        output += p * (correction @ bob @ correction.conj().T)
    return output


def average_teleportation_fidelity(resource_rho: np.ndarray, n_samples: int = 64) -> float:
    """Average teleportation fidelity of a resource pair over Haar inputs.

    Estimated by averaging over a deterministic set of sample input kets
    (Haar via a fixed-seed generator, adequate at n_samples ~ 64). For a
    resource with Jozsa Bell fidelity F the textbook relation is
    ``F_tel = (2 F + 1) / 3`` — pinned by the tests.
    """
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    from repro.quantum.states import random_pure_state

    rng = np.random.default_rng(0x7E1E)
    total = 0.0
    for _ in range(n_samples):
        psi = random_pure_state(1, rng)
        out = teleport(psi, resource_rho)
        total += float(np.real(psi.conj() @ out @ psi))
    return total / n_samples
