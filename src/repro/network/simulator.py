"""The network simulation driver.

:class:`NetworkSimulator` binds a :class:`~repro.network.topology.QuantumNetwork`
to the admission policy and the routing layer, serving entanglement
requests at given simulation times. Platform motion is deterministic —
querying a link at time ``t`` evaluates the satellites' movement sheets at
``t`` — so results are reproducible (the paper's position-update threads
are replaced by this clocked evaluation; see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import obs
from repro.engine.linkstate import LinkStateCache
from repro.errors import NoPathError, UnknownHostError
from repro.network.events import EventTimeline
from repro.network.links import LinkPolicy
from repro.network.protocols import EntangledPair, distribute_entanglement
from repro.network.topology import LinkGraph, QuantumNetwork
from repro.obs import trace
from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity
from repro.routing.bellman_ford import BellmanFordResult, bellman_ford, shortest_path
from repro.routing.metrics import DEFAULT_EPSILON, path_edges, path_transmissivity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plane import FaultPlane
    from repro.routing.strategies import (
        KShortestStrategy,
        MultipathPlan,
        StrategyConfig,
    )

__all__ = ["RequestOutcome", "NetworkSimulator"]

# Created once at import; each record below is a flag check when
# telemetry is off (the disabled-mode overhead contract, DESIGN.md §9).
_REQUESTS_SERVED = obs.counter("network.requests.served")
_REQUESTS_DENIED = obs.counter("network.requests.denied")
_PATH_HOPS = obs.histogram("network.path.hops", buckets=(1, 2, 3, 4, 5, 6, 8, 12))
_FIDELITY = obs.histogram("network.fidelity")


@dataclass(frozen=True)
class RequestOutcome:
    """Result of one entanglement-distribution request.

    Attributes:
        source / destination: endpoint host names.
        time_s: simulation time the request was served at.
        served: whether a usable route existed.
        path: routed node sequence (empty if unserved).
        path_transmissivity: product of per-link eta (0 if unserved).
        fidelity: end-to-end entanglement fidelity (NaN if unserved).
        pair: the delivered pair's full density-matrix record, when the
            simulator runs with ``track_states=True`` (None otherwise;
            multipath-purified deliveries always report the closed
            form).
        cause: canonical denial cause decided *during* serving, when
            the routing strategy attributed one (``route_exhausted`` /
            ``memory_full``); ``None`` otherwise — legacy denials are
            attributed post-hoc by :meth:`NetworkSimulator.denial_cause`.
        n_paths: entangled pairs consumed to deliver the request (1 on
            the single-path router; >= 2 when purified).
        purified: whether the delivery went through the multipath
            purification scheduler.
    """

    source: str
    destination: str
    time_s: float
    served: bool
    path: tuple[str, ...]
    path_transmissivity: float
    fidelity: float
    pair: EntangledPair | None = None
    cause: str | None = None
    n_paths: int = 1
    purified: bool = False


class NetworkSimulator:
    """Serves entanglement requests over a quantum network.

    Args:
        network: the assembled host/channel topology.
        policy: link admission policy (defaults to the paper's eta >= 0.7
            and elevation >= pi/9).
        fidelity_convention: "sqrt" (default; matches the paper's reported
            numbers) or "squared" (Eq. 5 as written).
        epsilon: routing-metric epsilon.
        track_states: carry full density matrices on outcomes. Exact but
            ~100x slower than the closed form; the fast path uses the
            AD-composition identity instead (tests verify equivalence).
        use_cache: serve requests from a vectorized
            :class:`~repro.engine.linkstate.LinkStateCache` (link budgets
            for all channels precomputed in NumPy passes over the
            ephemeris grid, Bellman–Ford tables memoized per
            feasible-edge set). ``False`` (default) keeps the direct
            per-channel scalar path — the test oracle the cache is
            equivalence-tested against.
        faults: optional compiled :class:`~repro.faults.plane.FaultPlane`
            (or ``None``); both serving paths consume it through the
            same rule, so cached-vs-direct equivalence holds under any
            schedule. A no-op plane is dropped — the fault-free run
            stays bit-identical.
        linkstate_window: optional chunk size (samples) for the cache's
            incremental link-state build (see
            :class:`~repro.engine.linkstate.LinkStateCache`); ``None``
            keeps the eager full-horizon build. Only meaningful with
            ``use_cache=True``.
        strategy: optional
            :class:`~repro.routing.strategies.KShortestStrategy`, or a
            bare :class:`~repro.routing.strategies.StrategyConfig`
            (built here against this simulator's policy / convention /
            epsilon). When active (k >= 2), a strict-policy denial is
            retried over the strategy's relaxed link graph: Yen
            k-shortest candidates, memory-slot reservation at
            intermediate platforms, and purification against the
            fidelity floor. Strict-path service is untouched, so
            ``strategy=None`` and ``k = 1`` are bit-identical to the
            legacy router.
    """

    def __init__(
        self,
        network: QuantumNetwork,
        *,
        policy: LinkPolicy | None = None,
        fidelity_convention: str = "sqrt",
        epsilon: float = DEFAULT_EPSILON,
        track_states: bool = False,
        use_cache: bool = False,
        faults: "FaultPlane | None" = None,
        linkstate_window: int | None = None,
        strategy: "KShortestStrategy | StrategyConfig | None" = None,
    ) -> None:
        self.network = network
        self.policy = policy or LinkPolicy()
        self.fidelity_convention = fidelity_convention
        self.epsilon = epsilon
        self.track_states = track_states
        self.use_cache = use_cache
        self.faults = faults if faults is not None and not faults.is_noop else None
        self.linkstate_window = linkstate_window
        if strategy is not None and not hasattr(strategy, "plan"):
            from repro.routing.strategies import build_strategy

            strategy = build_strategy(
                strategy,
                policy=self.policy,
                fidelity_convention=fidelity_convention,
                epsilon=epsilon,
            )
        self.strategy = strategy
        self.timeline = EventTimeline()
        self._graph_cache: tuple[float, LinkGraph] | None = None
        self._linkstate: LinkStateCache | None = None
        self._relaxed_graph_cache: tuple[float, LinkGraph] | None = None
        self._relaxed_linkstate: LinkStateCache | None = None

    # --- link-state access ------------------------------------------------------

    @property
    def linkstate(self) -> LinkStateCache:
        """The vectorized link-state cache (built lazily on first use)."""
        if self._linkstate is None:
            self._linkstate = LinkStateCache(
                self.network, policy=self.policy, epsilon=self.epsilon,
                faults=self.faults, window=self.linkstate_window,
            )
        return self._linkstate

    def link_graph(self, t_s: float) -> LinkGraph:
        """Usable-link adjacency at ``t_s`` (memoised per time stamp)."""
        if self.use_cache:
            return self.linkstate.graph(t_s)
        if self._graph_cache is not None and self._graph_cache[0] == t_s:
            return self._graph_cache[1]
        graph = self.network.link_graph(t_s, self.policy, faults=self.faults)
        self._graph_cache = (t_s, graph)
        return graph

    def invalidate_cache(self) -> None:
        """Drop all memoised link state (call after mutating the network)."""
        self._graph_cache = None
        self._linkstate = None
        self._relaxed_graph_cache = None
        self._relaxed_linkstate = None

    def _routing_tree(self, graph: LinkGraph, source: str, t_s: float) -> BellmanFordResult:
        """Bellman–Ford tree at ``t_s`` — memoized when the cache is on."""
        if self.use_cache:
            return self.linkstate.routing_tree(t_s, source)
        return bellman_ford(graph, source, self.epsilon)

    # --- multipath rescue --------------------------------------------------------

    @property
    def _relaxed_cache(self) -> LinkStateCache:
        """Link-state cache under the strategy's relaxed policy.

        Built lazily on the first rescue: same network, same fault
        plane, same fill window — only the admission threshold differs,
        so fault suppression composes identically with relaxation.
        """
        if self._relaxed_linkstate is None:
            self._relaxed_linkstate = LinkStateCache(
                self.network,
                policy=self.strategy.relaxed_policy,
                epsilon=self.epsilon,
                faults=self.faults,
                window=self.linkstate_window,
            )
        return self._relaxed_linkstate

    def _relaxed_graph(self, t_s: float) -> LinkGraph:
        """Relaxed-policy link graph on the direct (scalar) path."""
        if self._relaxed_graph_cache is not None and self._relaxed_graph_cache[0] == t_s:
            return self._relaxed_graph_cache[1]
        graph = self.network.link_graph(
            t_s, self.strategy.relaxed_policy, faults=self.faults
        )
        self._relaxed_graph_cache = (t_s, graph)
        return graph

    def _rescue(
        self, source: str, destination: str, t_s: float, time_index: int | None = None
    ) -> "tuple[MultipathPlan, LinkGraph] | None":
        """Run the strategy's multipath rescue after a strict denial.

        Returns ``(plan, relaxed_graph)``, or ``None`` when no strategy
        is active or the relaxed graph holds no candidate path at all
        (the legacy cause cascade then attributes the denial).
        """
        strategy = self.strategy
        if strategy is None or not strategy.active:
            return None
        if self.use_cache:
            rls = self._relaxed_cache
            k = rls.time_index(t_s) if time_index is None else time_index
            graph = rls.graph_at_index(k)
            epoch: object = ("edges", rls.edge_key(k))
        else:
            graph = self._relaxed_graph(t_s)
            epoch = ("t", t_s)

        def is_platform(name: str) -> bool:
            return self.network.host(name).kind != "ground"

        def enumerate_pair(pair: tuple[str, str]) -> tuple:
            return strategy.graph_candidates(graph, pair[0], pair[1], is_platform)

        candidates = strategy.candidates((source, destination), epoch, enumerate_pair)
        if not candidates:
            return None
        return strategy.plan(candidates, t_s), graph

    # --- flight recorder ---------------------------------------------------------

    def _lan_of(self, name: str) -> str | None:
        """LAN name of a host, or None for platforms."""
        return getattr(self.network.host(name), "network", "") or None

    def _attribute_denial(
        self, source: str, destination: str, t_s: float, max_candidates: int
    ) -> tuple[trace.DenialCause, list[dict], dict[str, int]]:
        """Cause cascade over the candidate uplink platforms at ``t_s``.

        Evaluates every platform's channels to both endpoints under the
        simulator's policy and folds the per-gate outcomes into exactly
        one canonical :class:`~repro.obs.trace.DenialCause` — only run
        for requests that are both denied and trace-sampled, so its cost
        never touches the untraced hot path.
        """
        min_el = self.policy.min_elevation_rad
        faults = self.faults
        candidates: list[dict] = []
        n_platforms = n_visible = n_elev = n_usable = n_healthy = 0
        for platform in self.network.hosts():
            if platform.kind == "ground":
                continue
            ch_s = self.network.channel_between(source, platform.name)
            ch_d = self.network.channel_between(destination, platform.name)
            if ch_s is None or ch_d is None:
                continue
            n_platforms += 1
            st_s = ch_s.evaluate(t_s, self.policy)
            st_d = ch_d.evaluate(t_s, self.policy)
            visible = (
                math.isfinite(st_s.elevation_rad)
                and st_s.elevation_rad > 0.0
                and math.isfinite(st_d.elevation_rad)
                and st_d.elevation_rad > 0.0
            )
            elev_ok = (
                visible and st_s.elevation_rad >= min_el and st_d.elevation_rad >= min_el
            )
            healthy = st_s.usable and st_d.usable
            if faults is None:
                usable = healthy
            else:
                _, ok_s = faults.apply_channel(ch_s, st_s, t_s, self.policy)
                _, ok_d = faults.apply_channel(ch_d, st_d, t_s, self.policy)
                usable = ok_s and ok_d
            n_visible += visible
            n_elev += elev_ok
            n_healthy += healthy
            n_usable += usable
            if visible and len(candidates) < max_candidates:
                entry = {
                    "platform": platform.name,
                    "eta_src": st_s.transmissivity,
                    "eta_dst": st_d.transmissivity,
                    "elevation_src_rad": st_s.elevation_rad,
                    "elevation_dst_rad": st_d.elevation_rad,
                    "visible": True,
                    "elevation_ok": elev_ok,
                    "usable": usable,
                }
                if faults is not None:
                    entry["faulted"] = healthy and not usable
                candidates.append(entry)
        cause = trace.classify_denial(
            n_visible > 0,
            n_elev > 0,
            n_healthy > 0,
            fault_blocked=n_healthy > 0 and n_usable == 0,
        )
        counts = {
            "platforms": n_platforms,
            "visible": n_visible,
            "elevation_ok": n_elev,
            "usable": n_usable,
        }
        if faults is not None:
            counts["healthy_usable"] = n_healthy
        return cause, candidates, counts

    def _trace_outcome(
        self,
        rec: trace.TraceRecorder,
        graph: LinkGraph,
        source: str,
        destination: str,
        t_s: float,
        *,
        path: tuple[str, ...] | list[str] = (),
        eta_path: float = 0.0,
        fidelity: float | None = None,
        cause: trace.DenialCause | None = None,
    ) -> None:
        """Record one (already sampled) request outcome; empty path = denied.

        ``cause`` overrides the gate-cascade attribution for denials
        the strategy layer decided in-line (route exhaustion, memory
        pressure) — the cascade still supplies the candidate detail.
        """
        if path:
            rec.record_request(
                t_s=t_s,
                source=source,
                destination=destination,
                source_lan=self._lan_of(source),
                destination_lan=self._lan_of(destination),
                served=True,
                path=list(path),
                hop_etas=path_edges(graph, list(path)),
                path_eta=eta_path,
                fidelity=fidelity,
            )
            return
        cascade_cause, candidates, counts = self._attribute_denial(
            source, destination, t_s, rec.config.max_candidates
        )
        if cause is None:
            cause = cascade_cause
        rec.record_request(
            t_s=t_s,
            source=source,
            destination=destination,
            source_lan=self._lan_of(source),
            destination_lan=self._lan_of(destination),
            served=False,
            cause=cause,
            candidates=candidates,
            candidate_counts=counts,
        )

    def denial_cause(self, source: str, destination: str, t_s: float) -> trace.DenialCause:
        """Canonical cause for an unserved ``source -> destination`` at ``t_s``.

        Runs the same gate cascade the flight recorder uses (without
        collecting candidate detail), so a streaming engine and a traced
        batch sweep attribute the identical denial to the identical
        cause. Only meaningful for requests that actually went unserved —
        the cascade presumes no usable end-to-end route exists.
        """
        cause, _, _ = self._attribute_denial(source, destination, t_s, 0)
        return cause

    # --- request service -----------------------------------------------------------

    def _denied_outcome(
        self,
        source: str,
        destination: str,
        t_s: float,
        rec: trace.TraceRecorder | None,
        graph: LinkGraph,
        time_index: int | None = None,
    ) -> RequestOutcome:
        """Resolve a strict-path denial: multipath rescue, else denial.

        The shared tail of both serving shapes — streaming and batch
        reduce to the same rescue decision, which is what keeps them
        bit-identical under any strategy configuration.
        """
        rescue = self._rescue(source, destination, t_s, time_index)
        if rescue is not None and rescue[0].served:
            plan, relaxed_graph = rescue
            _REQUESTS_SERVED.inc()
            _PATH_HOPS.observe(len(plan.path) - 1)
            _FIDELITY.observe(plan.fidelity)
            if rec is not None:
                self._trace_outcome(
                    rec, relaxed_graph, source, destination, t_s,
                    path=plan.path, eta_path=plan.eta, fidelity=plan.fidelity,
                )
            return RequestOutcome(
                source, destination, t_s, True, plan.path, plan.eta,
                plan.fidelity, None, n_paths=plan.n_paths, purified=True,
            )
        cause = rescue[0].cause if rescue is not None else None
        _REQUESTS_DENIED.inc()
        if rec is not None:
            self._trace_outcome(
                rec, graph, source, destination, t_s,
                cause=trace.DenialCause(cause) if cause is not None else None,
            )
        return RequestOutcome(
            source, destination, t_s, False, (), 0.0, float("nan"), None, cause=cause
        )

    def serve_request(self, source: str, destination: str, t_s: float) -> RequestOutcome:
        """Route and deliver one entanglement request at time ``t_s``.

        The route is the Bellman–Ford minimum of ``sum 1/(eta + eps)``;
        the delivered fidelity comes from amplitude damping with the
        path's end-to-end transmissivity.
        """
        if source not in self.network:
            raise UnknownHostError(source)
        if destination not in self.network:
            raise UnknownHostError(destination)
        k: int | None = None
        if self.use_cache:
            # Resolve the grid index once and hit the memos by index —
            # link_graph/routing_tree would each re-bisect the time grid.
            ls = self.linkstate
            k = ls.time_index(t_s)
            graph = ls.graph_at_index(k)
        else:
            graph = self.link_graph(t_s)
        rec = trace.active()
        if rec is not None and not rec.sampled(source, destination, t_s):
            rec = None
        try:
            if self.use_cache:
                path = ls.routing_tree_at_index(k, source).path_to(destination)
                eta_path = path_transmissivity(path_edges(graph, path))
            else:
                path, eta_path = shortest_path(graph, source, destination, self.epsilon)
        except NoPathError:
            return self._denied_outcome(source, destination, t_s, rec, graph, k)
        pair = None
        if self.track_states:
            pair = distribute_entanglement(
                path_edges(graph, path), source=source, destination=destination
            )
            fidelity = pair.fidelity(self.fidelity_convention)
        else:
            fidelity = float(
                entanglement_fidelity_from_transmissivity(
                    eta_path, convention=self.fidelity_convention
                )
            )
        _REQUESTS_SERVED.inc()
        _PATH_HOPS.observe(len(path) - 1)
        _FIDELITY.observe(fidelity)
        if rec is not None:
            self._trace_outcome(
                rec, graph, source, destination, t_s,
                path=path, eta_path=eta_path, fidelity=fidelity,
            )
        return RequestOutcome(
            source, destination, t_s, True, tuple(path), eta_path, fidelity, pair
        )

    def serve_requests(
        self, requests: list[tuple[str, str]], t_s: float
    ) -> list[RequestOutcome]:
        """Serve a batch of (source, destination) requests at one time.

        Routing trees are shared across requests with the same source, so
        batches are cheaper than repeated :meth:`serve_request` calls.
        """
        graph = self.link_graph(t_s)
        trees: dict[str, object] = {}
        outcomes: list[RequestOutcome] = []
        recorder = trace.active()
        for source, destination in requests:
            if source not in self.network:
                raise UnknownHostError(source)
            if destination not in self.network:
                raise UnknownHostError(destination)
            rec = recorder
            if rec is not None and not rec.sampled(source, destination, t_s):
                rec = None
            if source not in trees:
                trees[source] = self._routing_tree(graph, source, t_s)
            tree = trees[source]
            try:
                path = tree.path_to(destination)  # type: ignore[attr-defined]
            except NoPathError:
                outcomes.append(
                    self._denied_outcome(source, destination, t_s, rec, graph)
                )
                continue
            etas = path_edges(graph, path)
            eta_path = path_transmissivity(etas)
            if self.track_states:
                pair = distribute_entanglement(etas, source=source, destination=destination)
                fidelity = pair.fidelity(self.fidelity_convention)
            else:
                pair = None
                fidelity = float(
                    entanglement_fidelity_from_transmissivity(
                        eta_path, convention=self.fidelity_convention
                    )
                )
            _REQUESTS_SERVED.inc()
            _PATH_HOPS.observe(len(path) - 1)
            _FIDELITY.observe(fidelity)
            if rec is not None:
                self._trace_outcome(
                    rec, graph, source, destination, t_s,
                    path=path, eta_path=eta_path, fidelity=fidelity,
                )
            outcomes.append(
                RequestOutcome(
                    source, destination, t_s, True, tuple(path), eta_path, fidelity, pair
                )
            )
        return outcomes

    # --- connectivity queries ----------------------------------------------------

    def lans_connected(self, lan_a: str, lan_b: str, t_s: float) -> bool:
        """Whether some node pair across two LANs has a usable route."""
        members = self.network.local_networks
        graph = self.link_graph(t_s)
        sources = members.get(lan_a, [])
        targets = set(members.get(lan_b, []))
        if not sources or not targets:
            return False
        tree = self._routing_tree(graph, sources[0], t_s)
        # All LAN members are fiber-meshed, so reachability from one
        # member implies reachability from all (fiber links always pass
        # the threshold at intra-LAN distances).
        return any(tree.reachable(t) for t in targets)

    def all_lans_connected(self, t_s: float) -> bool:
        """Paper coverage condition: every LAN pair connected at ``t_s``."""
        lans = list(self.network.local_networks)
        for i, a in enumerate(lans):
            for b in lans[i + 1 :]:
                if not self.lans_connected(a, b, t_s):
                    return False
        return True
