"""Deterministic discrete-event timeline.

A minimal event engine in the SeQUeNCe/QuNetSim mould: events are
(time, priority, sequence) ordered, callbacks fire in deterministic order,
and the clock only moves forward. The network simulator uses it to
schedule platform-position updates and request arrivals; the paper's
thread-based satellite movement maps onto periodic events here.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SchedulingError

__all__ = ["Event", "EventTimeline"]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback.

    Ordering is by (time, priority, sequence) so simultaneous events fire
    in a deterministic, insertion-respecting order.
    """

    time_s: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventTimeline:
    """A forward-only discrete-event scheduler.

    Example:
        >>> timeline = EventTimeline()
        >>> fired = []
        >>> _ = timeline.schedule(10.0, lambda: fired.append("a"))
        >>> timeline.run_until(20.0)
        2000...  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now_s(self) -> float:
        """Current simulation time [s]."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events not yet fired."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def schedule(
        self,
        time_s: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time_s``.

        Raises:
            SchedulingError: if ``time_s`` is in the past.
        """
        if time_s < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time_s} (clock is already at {self._now})"
            )
        event = Event(time_s, priority, next(self._counter), action, label)
        heapq.heappush(self._queue, event)
        return event

    def schedule_periodic(
        self,
        start_s: float,
        period_s: float,
        end_s: float,
        action: Callable[[float], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> int:
        """Schedule ``action(t)`` every ``period_s`` from ``start_s`` to ``end_s``.

        Returns the number of occurrences scheduled. This is the
        deterministic replacement for the paper's position-update thread.
        """
        if period_s <= 0:
            raise SchedulingError(f"period_s must be positive, got {period_s}")
        count = 0
        t = start_s
        while t <= end_s:
            fire_at = t

            def fire(at: float = fire_at) -> None:
                action(at)

            self.schedule(fire_at, fire, priority=priority, label=label)
            count += 1
            t += period_s
        return count

    def step(self) -> Event | None:
        """Fire the next event; return it, or ``None`` if the queue is empty."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        self._now = event.time_s
        event.action()
        self._processed += 1
        return event

    def run_until(self, end_s: float) -> int:
        """Fire all events up to and including ``end_s``; return the count."""
        fired = 0
        while self._queue and self._queue[0].time_s <= end_s:
            self.step()
            fired += 1
        self._now = max(self._now, end_s)
        return fired

    def run(self) -> int:
        """Fire every remaining event; return the count."""
        fired = 0
        while self.step() is not None:
            fired += 1
        return fired
