"""The 108-satellite orbital configuration of paper Table II.

Each row is a ``(raan_deg, true_anomaly_deg)`` pair; all satellites share
altitude 500 km (semi-major axis 6871 km), inclination 53 degrees, zero
eccentricity. The generator in :mod:`repro.orbits.walker` must reproduce
this table exactly — the test suite cross-checks the two.
"""

from __future__ import annotations

from repro.errors import ValidationError

__all__ = ["TABLE_II_ROWS", "table_ii_configurations"]

_WALKER_RAANS = (0.0, 60.0, 120.0, 180.0, 240.0, 300.0)
_GAP_RAANS = (20.0, 40.0, 80.0, 100.0, 140.0, 160.0, 200.0, 220.0, 260.0, 280.0, 320.0, 340.0)
_ANOMALIES = (0.0, 60.0, 120.0, 180.0, 240.0, 300.0)

#: All 108 ``(raan_deg, true_anomaly_deg)`` rows in deployment order:
#: first the 36 Walker-seed satellites (Table II column 1: RAAN varying
#: fastest within each true-anomaly round), then the 12 gap-filling planes
#: (columns 2-3), each fully populated.
TABLE_II_ROWS: tuple[tuple[float, float], ...] = tuple(
    [(raan, ta) for ta in _ANOMALIES for raan in _WALKER_RAANS]
    + [(raan, ta) for raan in _GAP_RAANS for ta in _ANOMALIES]
)


def table_ii_configurations(n_satellites: int = 108) -> tuple[tuple[float, float], ...]:
    """First ``n_satellites`` rows of Table II in deployment order.

    Args:
        n_satellites: 1..108; beyond the 36-satellite Walker seed the
            count must land on a plane boundary (multiple of 6), matching
            the paper's incremental sweep.
    """
    if not 1 <= n_satellites <= len(TABLE_II_ROWS):
        raise ValidationError(f"n_satellites must be in [1, 108], got {n_satellites}")
    if n_satellites > 36 and n_satellites % 6 != 0:
        raise ValidationError(
            f"gap planes are deployed whole (multiples of 6); got {n_satellites}"
        )
    return TABLE_II_ROWS[:n_satellites]
