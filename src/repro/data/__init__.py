"""Static scenario data from the paper: ground nodes (Table I) and the
satellite orbital configuration (Table II)."""

from repro.data.constellation import TABLE_II_ROWS, table_ii_configurations
from repro.data.ground_nodes import (
    EPB_NODES,
    ORNL_NODES,
    TTU_NODES,
    GroundNode,
    LocalNetwork,
    all_ground_nodes,
    qntn_local_networks,
)

__all__ = [
    "GroundNode",
    "LocalNetwork",
    "TTU_NODES",
    "ORNL_NODES",
    "EPB_NODES",
    "all_ground_nodes",
    "qntn_local_networks",
    "TABLE_II_ROWS",
    "table_ii_configurations",
]
