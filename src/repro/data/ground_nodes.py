"""Ground-node coordinates of the three QNTN local networks (paper Table I).

Three quantum LANs: Tennessee Tech University (5 nodes, Cookeville), the
EPB commercial network (15 nodes, Chattanooga), and Oak Ridge National
Laboratory (11 nodes). Coordinates are (latitude, longitude) in degrees
exactly as printed in Table I.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = [
    "GroundNode",
    "LocalNetwork",
    "TTU_COORDS_DEG",
    "EPB_COORDS_DEG",
    "ORNL_COORDS_DEG",
    "TTU_NODES",
    "EPB_NODES",
    "ORNL_NODES",
    "all_ground_nodes",
    "qntn_local_networks",
]

#: Tennessee Tech University nodes (engineering quad), Table I.
TTU_COORDS_DEG: tuple[tuple[float, float], ...] = (
    (36.1757, -85.5066),
    (36.1751, -85.5067),
    (36.1754, -85.5074),
    (36.1755, -85.5058),
    (36.1756, -85.5080),
)

#: EPB commercial network nodes (Chattanooga), Table I.
EPB_COORDS_DEG: tuple[tuple[float, float], ...] = (
    (35.04159, -85.2799),
    (35.04169, -85.2801),
    (35.04179, -85.2803),
    (35.04189, -85.2805),
    (35.04199, -85.2807),
    (35.04051, -85.2806),
    (35.04061, -85.2807),
    (35.04071, -85.2808),
    (35.04081, -85.2809),
    (35.04091, -85.2810),
    (35.03971, -85.2810),
    (35.03981, -85.2811),
    (35.03991, -85.2812),
    (35.04001, -85.2813),
    (35.04011, -85.2814),
)

#: Oak Ridge National Laboratory nodes, Table I.
ORNL_COORDS_DEG: tuple[tuple[float, float], ...] = (
    (35.91, -84.3),
    (35.91, -84.303),
    (35.918, -84.304),
    (35.92, -84.321),
    (35.927, -84.313),
    (35.92380, -84.316),
    (35.9285, -84.31283),
    (35.9294, -84.3101),
    (35.9293, -84.3106),
    (35.9298, -84.3106),
    (35.9309, -84.308),
)


@dataclass(frozen=True)
class GroundNode:
    """A stationary quantum node.

    Attributes:
        name: globally unique node identifier, e.g. ``"ttu-0"``.
        lat_deg: geodetic latitude [deg].
        lon_deg: geodetic longitude [deg].
        alt_km: altitude above the ellipsoid [km].
        network: name of the LAN the node belongs to.
    """

    name: str
    lat_deg: float
    lon_deg: float
    alt_km: float = 0.0
    network: str = ""

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat_deg <= 90.0:
            raise ValidationError(f"latitude {self.lat_deg} out of range for {self.name!r}")
        if not -180.0 <= self.lon_deg <= 180.0:
            raise ValidationError(f"longitude {self.lon_deg} out of range for {self.name!r}")

    @property
    def lat_rad(self) -> float:
        """Latitude [rad]."""
        return math.radians(self.lat_deg)

    @property
    def lon_rad(self) -> float:
        """Longitude [rad]."""
        return math.radians(self.lon_deg)


@dataclass(frozen=True)
class LocalNetwork:
    """A quantum LAN: a named group of ground nodes joined by fiber.

    Attributes:
        name: LAN identifier (``"ttu"``, ``"epb"``, ``"ornl"``).
        nodes: member nodes in Table I order.
    """

    name: str
    nodes: tuple[GroundNode, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValidationError(f"local network {self.name!r} has no nodes")

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def node_names(self) -> tuple[str, ...]:
        """Names of all member nodes."""
        return tuple(node.name for node in self.nodes)

    @property
    def centroid_deg(self) -> tuple[float, float]:
        """Arithmetic centroid (lat, lon) [deg] — adequate for a city-scale LAN."""
        lat = sum(n.lat_deg for n in self.nodes) / len(self.nodes)
        lon = sum(n.lon_deg for n in self.nodes) / len(self.nodes)
        return lat, lon


def _build_nodes(
    prefix: str, coords: tuple[tuple[float, float], ...], network: str
) -> tuple[GroundNode, ...]:
    return tuple(
        GroundNode(f"{prefix}-{i}", lat, lon, 0.0, network)
        for i, (lat, lon) in enumerate(coords)
    )


TTU_NODES: tuple[GroundNode, ...] = _build_nodes("ttu", TTU_COORDS_DEG, "ttu")
EPB_NODES: tuple[GroundNode, ...] = _build_nodes("epb", EPB_COORDS_DEG, "epb")
ORNL_NODES: tuple[GroundNode, ...] = _build_nodes("ornl", ORNL_COORDS_DEG, "ornl")


def all_ground_nodes() -> tuple[GroundNode, ...]:
    """All 31 QNTN ground nodes in Table I order (TTU, EPB, ORNL)."""
    return TTU_NODES + EPB_NODES + ORNL_NODES


def qntn_local_networks() -> tuple[LocalNetwork, LocalNetwork, LocalNetwork]:
    """The three QNTN LANs (Section II-A)."""
    return (
        LocalNetwork("ttu", TTU_NODES),
        LocalNetwork("epb", EPB_NODES),
        LocalNetwork("ornl", ORNL_NODES),
    )
