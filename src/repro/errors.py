"""Exception hierarchy for the QNTN reproduction package.

Every error raised deliberately by :mod:`repro` derives from
:class:`ReproError` so callers can catch package-level failures with a
single ``except`` clause while still distinguishing subsystems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "OrbitError",
    "KeplerConvergenceError",
    "ChannelError",
    "QuantumStateError",
    "NetworkError",
    "UnknownHostError",
    "LinkError",
    "RoutingError",
    "NoPathError",
    "SimulationError",
    "SchedulingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or type)."""


class OrbitError(ReproError):
    """Orbital-mechanics computation failed."""


class KeplerConvergenceError(OrbitError):
    """The Kepler-equation iteration did not converge.

    Attributes:
        iterations: number of iterations performed before giving up.
        residual: worst absolute residual of Kepler's equation at exit.
    """

    def __init__(self, iterations: int, residual: float) -> None:
        super().__init__(
            f"Kepler solver failed to converge after {iterations} iterations "
            f"(worst residual {residual:.3e})"
        )
        self.iterations = iterations
        self.residual = residual


class ChannelError(ReproError):
    """Optical-channel model computation failed."""


class QuantumStateError(ReproError):
    """A quantum state or operator is malformed (shape, trace, hermiticity)."""


class NetworkError(ReproError):
    """Network-simulator failure."""


class UnknownHostError(NetworkError, KeyError):
    """A host name was not found in the network."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown host {name!r}")
        self.name = name


class LinkError(NetworkError):
    """A quantum channel/link is invalid or unusable."""


class RoutingError(ReproError):
    """Entanglement-routing failure."""


class NoPathError(RoutingError):
    """No route exists between the requested endpoints.

    Attributes:
        source: source host name.
        destination: destination host name.
    """

    def __init__(self, source: str, destination: str) -> None:
        super().__init__(f"no route from {source!r} to {destination!r}")
        self.source = source
        self.destination = destination


class SimulationError(ReproError):
    """Top-level simulation-driver failure."""


class SchedulingError(SimulationError):
    """The discrete-event timeline was used incorrectly."""
