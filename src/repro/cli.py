"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the paper's experiments:

* ``threshold`` — Fig. 5: fidelity vs transmissivity, threshold pick.
* ``coverage`` — Fig. 6: coverage vs constellation size.
* ``sweep`` — Figs. 6-8 in one pass, full series.
* ``compare`` — Table III: space-ground vs air-ground.
* ``hybrid`` — the future-work hybrid with a duty-cycled HAP.

All commands accept ``--step`` (ephemeris cadence) and print ASCII tables;
``--csv DIR`` additionally writes figure series as CSV.

The global ``--cache-dir DIR`` flag (before the subcommand) points the
content-addressed artifact store at DIR, so a second run of the same
experiment skips orbit propagation and link-budget math entirely;
``--no-cache`` forces everything to be recomputed. Without either flag
the store follows the ``REPRO_CACHE_DIR`` environment variable (unset =
caching off).

Telemetry (DESIGN.md §9): ``--telemetry PATH`` records metrics and spans
for the run and writes the JSON run manifest to PATH; ``--profile``
prints the per-phase profile table after the results. ``-v`` / ``-vv``
turn on diagnostic logging (stderr) — result tables always go to stdout.

Request tracing (DESIGN.md §10): ``--trace PATH`` turns on the flight
recorder — one JSONL record per entanglement request with denial
attribution; ``repro report <manifest>`` renders a run manifest as a
self-contained HTML (or ASCII) report, and ``repro obs diff A B``
compares two manifests with optional threshold-based exit codes
(``--format json`` emits the rows as machine-readable JSON for CI).

Timeline tracing (DESIGN.md §15): ``--timeline PATH`` records causal
span events (one trace per served request, across worker processes) to
a JSONL stream; ``repro trace PATH`` exports it as Chrome/Perfetto
``trace_event`` JSON, raw JSON, or an ASCII span tree.

Live operation (DESIGN.md §14): ``repro serve --http-port N`` attaches
the ``/metrics`` / ``/healthz`` / ``/readyz`` / ``/status`` endpoints
to the streaming service, ``--slo SPEC.json`` evaluates burn-rate SLO
alerts during the run (``--slo-snapshots PATH`` streams JSONL
time-series points for the report's SLO panel), ``--hold S`` keeps the
service scrapeable for S seconds after the stream is submitted, and
``repro top URL`` renders ``/status`` as a live terminal dashboard.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import Sequence

from repro import obs
from repro.core.architecture import (
    AirGroundArchitecture,
    HybridArchitecture,
    SpaceGroundArchitecture,
)
from repro.core.comparison import compare_architectures
from repro.core.sweeps import run_constellation_sweep
from repro.core.threshold import transmissivity_threshold_experiment
from repro.reporting.figures import FigureSeries, write_series_csv
from repro.routing.strategies import ROUTERS
from repro.reporting.tables import render_table, render_table_iii
from repro.utils.intervals import Interval

__all__ = ["build_parser", "main"]

_LOG = logging.getLogger("repro.cli")


def _probability(text: str) -> float:
    """Argparse type: a float in [0, 1]; NaN and out-of-range rejected."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}")
    if value != value:  # NaN
        raise argparse.ArgumentTypeError("must be a number in [0, 1], got NaN")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {value!r}")
    return value


def _nonneg_int(text: str) -> int:
    """Argparse type: an integer >= 0 (seeds)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _setup_logging(verbosity: int) -> None:
    """Configure the ``repro`` logger tree for CLI diagnostics.

    Handlers go on the package logger (stderr), not the root logger, so
    embedding applications and pytest's log capture are left alone. The
    CLI's own handler is tagged and replaced on every call: repeated
    ``main()`` invocations in one process (tests, notebooks) keep exactly
    one CLI handler — never stacked duplicates that double-print — and
    each call's ``-v`` level takes effect. Foreign handlers someone else
    attached to the ``repro`` logger are left untouched.
    """
    level = logging.WARNING
    if verbosity == 1:
        level = logging.INFO
    elif verbosity >= 2:
        level = logging.DEBUG
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in [h for h in logger.handlers if getattr(h, "_repro_cli", False)]:
        logger.removeHandler(handler)
        handler.close()
    handler = logging.StreamHandler()
    handler._repro_cli = True  # type: ignore[attr-defined]
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger.addHandler(handler)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QNTN regional quantum network experiments (SC 2024 reproduction)",
    )
    cache = parser.add_mutually_exclusive_group()
    cache.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persist ephemerides and link budgets in this content-addressed "
        "store; warm reruns skip propagation and budget math",
    )
    cache.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact store (ignore REPRO_CACHE_DIR too)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="diagnostic logging on stderr (-v info, -vv debug)",
    )
    parser.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="PATH",
        help="record metrics and spans, then write the JSON run manifest to PATH",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record spans and print the per-phase profile table after the results",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="flight recorder: stream one JSONL record per entanglement request "
        "to PATH (DESIGN.md §10); the summary embeds into --telemetry manifests",
    )
    parser.add_argument(
        "--trace-sample-rate",
        type=_probability,
        default=1.0,
        metavar="RATE",
        help="fraction of requests to trace, deterministic per (endpoints, step) "
        "(default 1.0 = every request)",
    )
    parser.add_argument(
        "--timeline",
        type=Path,
        default=None,
        metavar="PATH",
        help="causal timeline: record begin/end span events with trace context "
        "to PATH as JSONL (DESIGN.md §15); export with `repro trace PATH`",
    )
    parser.add_argument(
        "--timeline-sample-rate",
        type=_probability,
        default=1.0,
        metavar="RATE",
        help="fraction of request traces to record on the timeline, "
        "deterministic per trace id (default 1.0 = every request)",
    )
    parser.add_argument(
        "--faults",
        type=Path,
        default=None,
        metavar="PATH",
        help="JSON fault schedule (repro.faults): satellite outages, station "
        "downtime, weather fades, link flaps perturb the run without touching "
        "physics; the schedule hash lands in the run manifest",
    )
    parser.add_argument(
        "--fault-seed",
        type=_nonneg_int,
        default=0,
        metavar="SEED",
        help="seed realizing the schedule's stochastic failure processes "
        "(default 0; ignored for purely explicit schedules)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_threshold = sub.add_parser("threshold", help="Fig. 5: fidelity vs transmissivity")
    p_threshold.add_argument("--step", type=float, default=0.01, help="eta sweep step")
    p_threshold.add_argument(
        "--target", type=float, default=0.9, help="fidelity requirement"
    )
    p_threshold.add_argument("--csv", type=Path, default=None, help="write series CSV here")

    for name, help_text in (
        ("coverage", "Fig. 6: coverage vs constellation size"),
        ("sweep", "Figs. 6-8: the full constellation sweep"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "--sizes",
            type=int,
            nargs="+",
            default=None,
            help="constellation sizes (ascending; default 6..108 step 6)",
        )
        p.add_argument("--step", type=float, default=30.0, help="ephemeris cadence [s]")
        p.add_argument("--requests", type=int, default=100, help="requests per step")
        p.add_argument("--time-steps", type=int, default=100, help="evaluation steps")
        p.add_argument("--seed", type=int, default=7, help="workload seed")
        p.add_argument("--csv", type=Path, default=None, help="write series CSVs here")
        p.add_argument(
            "--workers",
            type=int,
            default=0,
            help="worker processes for the service evaluation (0 = serial); "
            "budget matrices travel via shared memory",
        )

    p_compare = sub.add_parser("compare", help="Table III: architecture comparison")
    p_compare.add_argument("--satellites", type=int, default=108)
    p_compare.add_argument("--step", type=float, default=30.0, help="ephemeris cadence [s]")
    p_compare.add_argument("--requests", type=int, default=100)
    p_compare.add_argument("--time-steps", type=int, default=100)
    p_compare.add_argument("--seed", type=int, default=7)

    p_hybrid = sub.add_parser("hybrid", help="duty-cycled HAP + constellation")
    p_hybrid.add_argument("--satellites", type=int, default=108)
    p_hybrid.add_argument(
        "--duty-hours", type=float, default=12.0, help="HAP flight hours per day"
    )
    p_hybrid.add_argument("--step", type=float, default=120.0)
    p_hybrid.add_argument("--requests", type=int, default=50)
    p_hybrid.add_argument("--time-steps", type=int, default=50)
    p_hybrid.add_argument("--seed", type=int, default=7)

    p_weather = sub.add_parser(
        "weather", help="Monte Carlo weather study of the air-ground architecture"
    )
    p_weather.add_argument("--trials", type=int, default=100)
    p_weather.add_argument("--requests", type=int, default=20)
    p_weather.add_argument("--seed", type=int, default=11)
    p_weather.add_argument(
        "--workers", type=int, default=0, help="process count (0 = serial)"
    )

    p_design = sub.add_parser(
        "design", help="orbit design sweep: coverage over inclination x altitude"
    )
    p_design.add_argument(
        "--inclinations", type=float, nargs="+", default=[37.0, 45.0, 53.0, 60.0]
    )
    p_design.add_argument(
        "--altitudes", type=float, nargs="+", default=[400.0, 500.0, 600.0]
    )
    p_design.add_argument("--satellites", type=int, default=108)
    p_design.add_argument("--step", type=float, default=240.0)

    p_report = sub.add_parser(
        "report",
        help="run every paper experiment and write a combined report, or — given a "
        "run manifest — render it as a self-contained HTML/ASCII report",
    )
    p_report.add_argument(
        "manifest",
        type=Path,
        nargs="?",
        default=None,
        help="JSON run manifest (from --telemetry) to render; omit to run the "
        "full experiment suite instead",
    )
    p_report.add_argument(
        "--out",
        type=Path,
        default=None,
        help="experiment mode: output directory (required); render mode: HTML "
        "output path (default: <manifest>.html)",
    )
    p_report.add_argument(
        "--format",
        choices=("html", "ascii", "json"),
        default="html",
        help="render mode output format (default html); json emits the "
        "normalized summary the renderers consume, for scripting",
    )
    p_report.add_argument("--step", type=float, default=30.0)
    p_report.add_argument("--requests", type=int, default=100)
    p_report.add_argument("--time-steps", type=int, default=100)
    p_report.add_argument("--seed", type=int, default=7)
    p_report.add_argument(
        "--sizes", type=int, nargs="+", default=None, help="sweep sizes (ascending)"
    )

    p_serve = sub.add_parser(
        "serve",
        help="streaming request service: asyncio front end over one ServeEngine "
        "(Poisson arrivals, per-tenant admission queues, latency telemetry)",
    )
    p_serve.add_argument(
        "--duration", type=float, default=60.0, help="simulated stream horizon [s]"
    )
    p_serve.add_argument(
        "--rate", type=float, default=20.0, help="mean Poisson arrival rate [Hz]"
    )
    p_serve.add_argument(
        "--engine",
        choices=("cached", "direct", "matrix"),
        default="cached",
        help="serving backend (default cached; all three are equivalence-tested)",
    )
    p_serve.add_argument("--satellites", type=int, default=108)
    p_serve.add_argument("--step", type=float, default=30.0, help="ephemeris cadence [s]")
    p_serve.add_argument("--seed", type=int, default=7, help="arrival-stream seed")
    p_serve.add_argument(
        "--tenants", type=int, default=1, help="number of tenant admission queues"
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=1024, help="per-tenant queue capacity"
    )
    p_serve.add_argument(
        "--backpressure",
        action="store_true",
        help="block producers at a full queue instead of shedding (queue_full)",
    )
    p_serve.add_argument(
        "--window",
        type=int,
        default=0,
        help="incremental-advance chunk size [ephemeris samples]: link state "
        "extends lazily as the stream's time cursor moves instead of a "
        "full-horizon precompute before the first request (0 = eager)",
    )
    p_serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose /metrics /healthz /readyz /status on this port while the "
        "stream runs (DESIGN.md §14); implies live telemetry",
    )
    p_serve.add_argument(
        "--http-host",
        default="127.0.0.1",
        metavar="HOST",
        help="bind address for --http-port (default loopback)",
    )
    p_serve.add_argument(
        "--hold",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="after the stream is fully submitted, keep the service (and its "
        "observability endpoints) up this long before draining — gives "
        "scrapers and `repro top` a stable window (default 0)",
    )
    p_serve.add_argument(
        "--slo",
        type=Path,
        default=None,
        metavar="SPEC",
        help="JSON SLO spec (repro.obs.slo.SLOSpec): evaluate multi-window "
        "burn-rate alerts during the run; the summary embeds into "
        "--telemetry manifests",
    )
    p_serve.add_argument(
        "--slo-snapshots",
        type=Path,
        default=None,
        metavar="PATH",
        help="stream one JSONL SLO/metrics snapshot per evaluation interval to "
        "PATH (feeds the report's SLO time-series panel; default SLO spec "
        "if --slo is not given)",
    )
    p_serve.add_argument(
        "--slo-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="SLO evaluation / snapshot cadence (default 1.0)",
    )
    p_serve.add_argument(
        "--router",
        choices=ROUTERS,
        default="shortest",
        help="routing strategy: shortest = the paper's single Bellman-Ford "
        "path (default); k-shortest = Yen multipath rescue of denied "
        "requests with memory-aware swapping and purification "
        "(DESIGN.md §16)",
    )
    p_serve.add_argument(
        "--k",
        type=int,
        default=2,
        metavar="N",
        help="candidate paths per rescue attempt under --router k-shortest "
        "(k=1 is bit-identical to shortest; default 2)",
    )
    p_serve.add_argument(
        "--memory-slots",
        type=int,
        default=4,
        metavar="M",
        help="entanglement memory slots per intermediate satellite; each "
        "held pair pins 2 slots at every swap node (default 4)",
    )

    p_trace = sub.add_parser(
        "trace",
        help="export a --timeline JSONL stream as Chrome/Perfetto trace_event "
        "JSON, raw JSON records, or an ASCII span tree",
    )
    p_trace.add_argument(
        "file",
        type=Path,
        help="timeline JSONL written by --timeline (rotated parts are followed)",
    )
    p_trace.add_argument(
        "--format",
        choices=("perfetto", "json", "tree"),
        default="perfetto",
        help="perfetto = Chrome trace_event JSON loadable in ui.perfetto.dev "
        "(default); json = raw event records; tree = ASCII span tree",
    )
    p_trace.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="PATH",
        help="write here instead of stdout",
    )
    p_trace.add_argument(
        "--limit",
        type=_nonneg_int,
        default=0,
        metavar="N",
        help="tree format: show only the N slowest traces (0 = all)",
    )

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running service's /status endpoint",
    )
    p_top.add_argument(
        "url",
        help="service /status URL, e.g. http://127.0.0.1:8700/status "
        "(a bare http://host:port gets /status appended)",
    )
    p_top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls"
    )
    p_top.add_argument(
        "--iterations",
        type=_nonneg_int,
        default=0,
        metavar="N",
        help="stop after N frames (0 = run until Ctrl-C or the service exits)",
    )
    p_top.add_argument(
        "--no-clear",
        action="store_true",
        help="print frames sequentially instead of ANSI-clearing the screen "
        "(for logs and captured output)",
    )

    p_obs = sub.add_parser("obs", help="observability utilities (run diffs)")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_diff = obs_sub.add_parser(
        "diff",
        help="compare two run manifests / bench records / BENCH_*.json trajectories",
    )
    p_diff.add_argument("a", type=Path, help="baseline summary (manifest or bench JSON)")
    p_diff.add_argument("b", type=Path, help="candidate summary (manifest or bench JSON)")
    p_diff.add_argument(
        "--max-served-delta",
        type=float,
        default=None,
        metavar="PCT_POINTS",
        help="fail (exit 1) if |served %% delta| exceeds this",
    )
    p_diff.add_argument(
        "--max-coverage-delta",
        type=float,
        default=None,
        metavar="PCT_POINTS",
        help="fail if |coverage %% delta| exceeds this",
    )
    p_diff.add_argument(
        "--max-fidelity-delta",
        type=float,
        default=None,
        metavar="ABS",
        help="fail if |mean fidelity delta| exceeds this",
    )
    p_diff.add_argument(
        "--max-cause-delta",
        type=float,
        default=None,
        metavar="COUNT",
        help="fail if any denial-cause count moves by more than this",
    )
    p_diff.add_argument(
        "--max-phase-delta-pct",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if any phase wall-time changes by more than this percent",
    )
    p_diff.add_argument(
        "--max-timing-delta-pct",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if any bench timing changes by more than this percent",
    )
    p_diff.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format: human table (default) or one JSON document with "
        "the diff rows and breach verdict, for CI consumption",
    )
    return parser


def _cmd_threshold(args: argparse.Namespace) -> int:
    result = transmissivity_threshold_experiment(step=args.step, target_fidelity=args.target)
    rows = [
        (f"{eta:.2f}", f"{f:.4f}")
        for eta, f in zip(result.transmissivities, result.fidelities)
        if round(eta * 100) % 10 == 0
    ]
    print(render_table(["eta", "fidelity"], rows, title="FIG. 5: FIDELITY VS TRANSMISSIVITY"))
    print(f"smallest eta reaching F >= {args.target}: {result.threshold:.2f}")
    print("paper's chosen network threshold: 0.70")
    if args.csv is not None:
        path = write_series_csv(
            FigureSeries(
                "fig5_fidelity_vs_transmissivity",
                "transmissivity",
                "fidelity",
                tuple(result.transmissivities),
                tuple(result.fidelities),
            ),
            args.csv / "fig5_fidelity_vs_transmissivity.csv",
        )
        _LOG.info("series written to %s", path)
    return 0


def _run_sweep(args: argparse.Namespace):
    return run_constellation_sweep(
        sizes=args.sizes,
        step_s=args.step,
        n_requests=args.requests,
        n_time_steps=args.time_steps,
        seed=args.seed,
        n_workers=getattr(args, "workers", 0),
        faults=getattr(args, "fault_schedule", None),
        fault_seed=getattr(args, "fault_seed", None),
    )


def _cmd_coverage(args: argparse.Namespace) -> int:
    sweep = _run_sweep(args)
    rows = [
        (p.n_satellites, f"{p.coverage.percentage:.2f}", f"{p.coverage.total_minutes:.1f}")
        for p in sweep.points
    ]
    print(
        render_table(
            ["satellites", "coverage %", "T_c minutes"],
            rows,
            title="FIG. 6: COVERAGE VS CONSTELLATION SIZE",
        )
    )
    print("paper at 108 satellites: 55.17 %")
    _maybe_write_sweep_csv(sweep, args.csv, coverage_only=True)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep = _run_sweep(args)
    rows = [
        (
            p.n_satellites,
            f"{p.coverage.percentage:.2f}",
            f"{p.service.served_percentage:.2f}",
            f"{p.service.mean_fidelity:.4f}",
        )
        for p in sweep.points
    ]
    print(
        render_table(
            ["satellites", "coverage %", "served %", "fidelity"],
            rows,
            title="FIGS. 6-8: CONSTELLATION SWEEP",
        )
    )
    print("paper at 108 satellites: 55.17 % / 57.75 % / 0.96")
    _maybe_write_sweep_csv(sweep, args.csv, coverage_only=False)
    return 0


def _maybe_write_sweep_csv(sweep, csv_dir: Path | None, *, coverage_only: bool) -> None:
    if csv_dir is None:
        return
    sizes = tuple(float(s) for s in sweep.sizes)
    series = [
        FigureSeries(
            "fig6_coverage_vs_satellites",
            "n_satellites",
            "coverage_pct",
            sizes,
            tuple(sweep.coverage_percentages),
        )
    ]
    if not coverage_only:
        series.append(
            FigureSeries(
                "fig7_served_requests_vs_satellites",
                "n_satellites",
                "served_pct",
                sizes,
                tuple(sweep.served_percentages),
            )
        )
        series.append(
            FigureSeries(
                "fig8_fidelity_vs_satellites",
                "n_satellites",
                "mean_fidelity",
                sizes,
                tuple(sweep.mean_fidelities),
            )
        )
    for s in series:
        path = write_series_csv(s, csv_dir / f"{s.name}.csv")
        _LOG.info("series written to %s", path)


def _cmd_compare(args: argparse.Namespace) -> int:
    space = SpaceGroundArchitecture(args.satellites, step_s=args.step)
    air = AirGroundArchitecture(step_s=args.step)
    rows = compare_architectures(
        n_requests=args.requests,
        n_time_steps=args.time_steps,
        seed=args.seed,
        space=space,
        air=air,
    )
    print(render_table_iii(rows))
    print("paper: Space-Ground 55.17% / 57.75% / 0.96 ; Air-Ground 100% / 100% / 0.98")
    return 0


def _cmd_hybrid(args: argparse.Namespace) -> int:
    duty_s = args.duty_hours * 3600.0
    windows = [Interval(0.0, duty_s)] if duty_s < 86400.0 else None
    space = SpaceGroundArchitecture(args.satellites, step_s=args.step)
    air = AirGroundArchitecture(step_s=args.step, operational_windows=windows)
    hybrid = HybridArchitecture(space, air)
    kwargs = dict(n_requests=args.requests, n_time_steps=args.time_steps, seed=args.seed)
    results = [space.evaluate(**kwargs), air.evaluate(**kwargs), hybrid.evaluate(**kwargs)]
    print(
        render_table(
            ["architecture", "coverage %", "served %", "fidelity"],
            [
                (
                    r.name,
                    f"{r.coverage_percentage:.2f}",
                    f"{r.served_percentage:.2f}",
                    f"{r.mean_fidelity:.4f}",
                )
                for r in results
            ],
            title=f"HYBRID STUDY ({args.duty_hours:g} h/day HAP + {args.satellites} satellites)",
        )
    )
    return 0


def _cmd_weather(args: argparse.Namespace) -> int:
    from repro.core.montecarlo import weather_study

    result = weather_study(
        n_trials=args.trials,
        n_requests=args.requests,
        seed=args.seed,
        n_workers=args.workers,
    )
    counts = result.condition_counts()
    print(
        render_table(
            ["condition", "days"],
            [(c.value, n) for c, n in sorted(counts.items(), key=lambda kv: -kv[1])],
            title=f"WEATHER MONTE CARLO ({args.trials} sampled days)",
        )
    )
    print(f"all-weather availability: {result.availability:.1%} (ideal paper case: 100%)")
    print(f"fidelity when available:  {result.mean_fidelity_when_available:.4f}")
    return 0


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.core.design import design_sweep

    result = design_sweep(
        list(args.inclinations),
        list(args.altitudes),
        n_satellites=args.satellites,
        step_s=args.step,
    )
    matrix = result.coverage_matrix(list(args.inclinations), list(args.altitudes))
    print(
        render_table(
            ["inclination \\ altitude"] + [f"{a:.0f} km" for a in args.altitudes],
            [
                [f"{inc:.0f} deg"] + [f"{matrix[i, j]:.1f}%" for j in range(len(args.altitudes))]
                for i, inc in enumerate(args.inclinations)
            ],
            title=f"ORBIT DESIGN SWEEP ({args.satellites} satellites)",
        )
    )
    best = result.best
    print(f"best design: {best.inclination_deg:.0f} deg / {best.altitude_km:.0f} km "
          f"-> {best.coverage_percentage:.1f}% (paper: 53 deg / 500 km)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.manifest is not None:
        return _render_manifest_report(args)
    if args.out is None:
        print("repro report: --out DIR is required in experiment mode", file=sys.stderr)
        raise SystemExit(2)
    from repro.core.report import full_reproduction_report

    report = full_reproduction_report(
        sizes=args.sizes,
        step_s=args.step,
        n_requests=args.requests,
        n_time_steps=args.time_steps,
        seed=args.seed,
        output_dir=args.out,
    )
    print(report.markdown)
    _LOG.info("artifacts written to %s", args.out)
    return 0


def _render_manifest_report(args: argparse.Namespace) -> int:
    from repro.errors import ValidationError
    from repro.obs import report as report_mod

    try:
        summary = report_mod.load_summary(args.manifest)
    except ValidationError as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        # The exact normalized summary both renderers consume — one data
        # extraction, three output formats.
        print(json.dumps(summary, indent=2, sort_keys=True, default=str))
        return 0
    if args.format == "ascii":
        print(report_mod.render_ascii_report(summary))
        return 0
    out = args.out if args.out is not None else args.manifest.with_suffix(".html")
    out.write_text(report_mod.render_html_report(summary), encoding="utf-8")
    print(f"report written to {out}")
    return 0


async def _serve_stream_live(
    server,
    stream,
    *,
    http_host: str,
    http_port: int | None,
    tracker,
    snapshots_path: Path | None,
    interval_s: float,
    hold_s: float,
):
    """Run the stream with the live observability plane attached.

    Starts the HTTP endpoints (if requested) and a periodic SLO
    evaluate/snapshot task on the same event loop as the serving front
    end, submits the whole stream, optionally holds the service
    scrapeable before draining, and tears everything down in reverse
    order. Returns the :class:`~repro.serve.server.StreamReport`.
    """
    import asyncio
    import json
    import time

    from repro.serve.http import ObservabilityServer

    endpoints = None
    if http_port is not None:
        endpoints = ObservabilityServer(
            server, slo=tracker, host=http_host, port=http_port
        )
        await endpoints.start()
        print(
            f"observability endpoints: http://{http_host}:{endpoints.port}"
            "/{metrics,healthz,readyz,status}",
            file=sys.stderr,
        )
    snapshot_fh = (
        snapshots_path.open("w", encoding="utf-8") if snapshots_path is not None else None
    )
    stop = asyncio.Event()

    def _tick() -> None:
        if tracker is None:
            return
        point = tracker.snapshot()
        if snapshot_fh is not None:
            snapshot_fh.write(json.dumps(point) + "\n")
            snapshot_fh.flush()

    async def _evaluate_loop() -> None:
        while not stop.is_set():
            try:
                await asyncio.wait_for(stop.wait(), timeout=interval_s)
            except asyncio.TimeoutError:
                pass
            _tick()

    evaluator = (
        asyncio.get_running_loop().create_task(_evaluate_loop())
        if tracker is not None
        else None
    )
    t0 = time.perf_counter()
    try:
        server.start()
        for request in stream:
            await server.submit(request)
        wall_s = time.perf_counter() - t0
        if hold_s > 0.0:
            _LOG.info("stream submitted; holding service for %g s", hold_s)
            await asyncio.sleep(hold_s)
        await server.drain()
        return server.report(wall_s=wall_s)
    finally:
        stop.set()
        if evaluator is not None:
            await evaluator
            _tick()  # final point captures the drained end state
        if snapshot_fh is not None:
            snapshot_fh.close()
        if endpoints is not None:
            await endpoints.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.engine.store import default_store
    from repro.network.workload import lans_from_sites, poisson_request_stream
    from repro.orbits.ephemeris import generate_movement_sheet
    from repro.orbits.walker import qntn_constellation
    from repro.serve import ServeServer, ServerConfig, build_engine

    duration_s = max(args.duration, args.step)
    with obs.span("propagate"):
        elements = qntn_constellation(args.satellites)
        store = default_store()
        if store is not None:
            ephemeris = store.get_or_build_ephemeris(
                elements, duration_s=duration_s, step_s=args.step
            )
        else:
            ephemeris = generate_movement_sheet(
                elements, duration_s=duration_s, step_s=args.step
            )
    faults = getattr(args, "fault_schedule", None)
    window = args.window if args.window > 0 else None
    strategy = None
    if args.router != "shortest":
        from repro.routing.strategies import StrategyConfig

        strategy = StrategyConfig(
            router=args.router, k=args.k, memory_slots=args.memory_slots
        )
    with obs.span("build-engine"):
        engine = build_engine(
            args.engine, ephemeris, faults=faults, window=window, strategy=strategy
        )
    args.serve_extra = {
        "kernel_backend": engine.kernel_backend,
        "window": window,
        "router": args.router,
    }
    if strategy is not None:
        args.serve_extra["k"] = strategy.k
        args.serve_extra["memory_slots"] = strategy.memory_slots
    from repro.data.ground_nodes import all_ground_nodes

    tenants = tuple(f"tenant-{i}" for i in range(args.tenants))
    stream = poisson_request_stream(
        lans_from_sites(all_ground_nodes()),
        rate_hz=args.rate,
        duration_s=args.duration,
        seed=args.seed,
        tenants=tenants,
    )
    plane = faults.compile() if faults is not None else None
    server = ServeServer(
        engine,
        config=ServerConfig(
            queue_depth=args.queue_depth, shed_on_full=not args.backpressure
        ),
        faults=plane,
    )
    want_live = (
        args.http_port is not None
        or args.slo is not None
        or args.slo_snapshots is not None
    )
    forced_here = False
    if want_live and not obs.enabled():
        # A --http-port run without --telemetry needs the windowed
        # instruments recording, but not the full diagnostic telemetry
        # (spans, cumulative engine metrics) — force-enable just the
        # live plane, which costs a few percent of serving throughput
        # instead of half of it. The reset clears the timeline recorder
        # too, so a --timeline run detaches it across the reset.
        from repro.obs import events as events_mod
        from repro.obs import live

        timeline = events_mod.detach()
        obs.reset()
        events_mod.attach(timeline)
        live.force(True)
        forced_here = True
    tracker = None
    if args.slo is not None or args.slo_snapshots is not None:
        from repro.errors import ValidationError
        from repro.obs.slo import SLOSpec, load_slo_spec

        try:
            spec = load_slo_spec(args.slo) if args.slo is not None else SLOSpec()
        except ValidationError as exc:
            print(f"repro serve: --slo {args.slo}: {exc}", file=sys.stderr)
            return 2
        tracker = server.slo_tracker(spec)
    try:
        with obs.span("stream"):
            if want_live:
                report = asyncio.run(
                    _serve_stream_live(
                        server,
                        stream,
                        http_host=args.http_host,
                        http_port=args.http_port,
                        tracker=tracker,
                        snapshots_path=args.slo_snapshots,
                        interval_s=args.slo_interval,
                        hold_s=args.hold,
                    )
                )
            else:
                report = asyncio.run(server.run(stream))
    finally:
        if tracker is not None:
            args.slo_extra = tracker.manifest_summary()
        if forced_here:
            from repro.obs import live

            live.force(False)
    rows = [
        ("engine", engine.name),
        ("kernel backend", engine.kernel_backend),
        ("advance window", str(window) if window is not None else "full"),
        ("simulated duration", f"{args.duration:g} s"),
        ("requests", report.n_submitted),
        ("served", f"{report.n_served} ({100 * report.served_fraction:.2f} %)"),
        ("denied", report.n_denied),
        ("shed (queue_full)", report.n_shed),
        ("p50 latency", f"{1e3 * report.latency_p50_s:.3f} ms"),
        ("p99 latency", f"{1e3 * report.latency_p99_s:.3f} ms"),
        ("max queue depth", report.max_queue_depth),
        ("throughput", f"{report.requests_per_min:,.0f} req/min"),
    ]
    if strategy is not None:
        n_rescued = sum(1 for o in report.outcomes if o.purified)
        rows.insert(1, ("router", f"{args.router} (k={args.k}, M={args.memory_slots})"))
        rows.insert(7, ("rescued (purified)", n_rescued))
        args.serve_extra["rescued"] = n_rescued
    print(render_table(["metric", "value"], rows, title=f"STREAMING SERVICE ({args.engine})"))
    causes = sorted(report.cause_counts.items(), key=lambda kv: -kv[1])
    if causes:
        print(render_table(["denial cause", "count"], causes, title="DENIAL CAUSES"))
    if not report.accounting_ok:  # pragma: no cover - invariant guard
        print("serve: accounting mismatch (submitted != completed)", file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import events as events_mod

    if not args.file.exists():
        print(f"repro trace: no such file: {args.file}", file=sys.stderr)
        return 2
    records = list(events_mod.read_events(args.file))
    if args.format == "tree":
        text = events_mod.render_tree(records, limit=args.limit)
    elif args.format == "json":
        text = json.dumps(records, indent=2)
    else:
        text = json.dumps(events_mod.to_chrome_trace(records), indent=2)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n", encoding="utf-8")
        print(f"trace written to {args.output} ({len(records)} events)")
    else:
        print(text)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import run_top

    url = args.url
    if not url.rstrip("/").endswith("/status"):
        url = url.rstrip("/") + "/status"
    return run_top(
        url,
        interval_s=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
    )


def _cmd_obs(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.errors import ValidationError
    from repro.obs import report as report_mod

    try:
        a = report_mod.load_summary(args.a)
        b = report_mod.load_summary(args.b)
    except ValidationError as exc:
        print(f"repro obs diff: {exc}", file=sys.stderr)
        return 2
    thresholds = report_mod.DiffThresholds(
        served_pct=args.max_served_delta,
        coverage_pct=args.max_coverage_delta,
        mean_fidelity=args.max_fidelity_delta,
        cause_count=args.max_cause_delta,
        phase_pct=args.max_phase_delta_pct,
        timing_pct=args.max_timing_delta_pct,
    )
    rows = report_mod.diff_summaries(a, b, thresholds=thresholds)
    breached = [r for r in rows if r.breached]
    if args.format == "json":
        def _json_safe(value):
            # Strict JSON has no NaN literal; absent values become null.
            if isinstance(value, float) and value != value:
                return None
            return value

        document = {
            "a": str(args.a),
            "b": str(args.b),
            "rows": [
                {k: _json_safe(v) for k, v in dataclasses.asdict(r).items()}
                for r in rows
            ],
            "n_breached": len(breached),
            "ok": not breached,
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(
            report_mod.render_diff_table(rows, label_a=args.a.name, label_b=args.b.name)
        )
    if breached:
        for row in breached:
            print(f"threshold breached: {row.metric} delta {row.delta:+g}", file=sys.stderr)
        return 1
    return 0


_COMMANDS = {
    "threshold": _cmd_threshold,
    "coverage": _cmd_coverage,
    "sweep": _cmd_sweep,
    "compare": _cmd_compare,
    "hybrid": _cmd_hybrid,
    "weather": _cmd_weather,
    "design": _cmd_design,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "obs": _cmd_obs,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _setup_logging(args.verbose)
    from repro.engine.store import ArtifactStore, set_default_store
    from repro.obs import events, trace

    telemetry_on = args.telemetry is not None or args.profile
    if telemetry_on:
        obs.reset()
        obs.enable()
    tracing = args.trace is not None
    if tracing:
        trace.start(args.trace, sample_rate=args.trace_sample_rate)
    timeline_on = args.timeline is not None
    if timeline_on:
        # After obs.reset() above: the reset would otherwise drop the
        # just-started recorder (satellite: back-to-back runs must not
        # leak events between CLI invocations in one process).
        events.start(args.timeline, sample_rate=args.timeline_sample_rate)
    fault_extra = None
    if args.faults is not None:
        from repro.errors import ValidationError
        from repro.faults import load_faults

        try:
            schedule = load_faults(args.faults)
        except ValidationError as exc:
            print(f"repro: --faults {args.faults}: {exc}", file=sys.stderr)
            return 2
        # Realize once at the CLI's fixed one-day horizon; everything
        # downstream (sweep, workers, manifest hash) sees the same
        # concrete events. Realizing a realized schedule is an identity,
        # so run_constellation_sweep's own realize call is harmless.
        realized = schedule.realize(seed=args.fault_seed, horizon_s=86400.0)
        args.fault_schedule = realized
        fault_extra = {
            "source": str(args.faults),
            "seed": args.fault_seed,
            "schedule_hash": realized.schedule_hash(),
            "events": len(realized),
        }
    previous = None
    configured = args.no_cache or args.cache_dir is not None
    if configured:
        store = None if args.no_cache else ArtifactStore(args.cache_dir)
        previous = set_default_store(store)
    try:
        with obs.span(args.command):
            return _COMMANDS[args.command](args)
    finally:
        if configured:
            set_default_store(previous)
        if args.profile:
            from repro.obs.export import render_profile_table

            print(render_profile_table())
        if args.telemetry is not None:
            # Manifest before trace.stop(): the recorder must still be
            # active for its summary to embed in the manifest.
            extra = {}
            if fault_extra is not None:
                extra["faults"] = fault_extra
            serve_extra = getattr(args, "serve_extra", None)
            if serve_extra is not None:
                extra["serve"] = serve_extra
            slo_extra = getattr(args, "slo_extra", None)
            if slo_extra is not None:
                extra["slo"] = slo_extra
            path = obs.write_run_manifest(
                args.telemetry,
                command=args.command,
                argv=list(argv) if argv is not None else sys.argv[1:],
                workload={
                    k: v
                    for k, v in vars(args).items()
                    if k not in ("fault_schedule", "serve_extra", "slo_extra")
                },
                extra=extra or None,
            )
            _LOG.info("run manifest written to %s", path)
        if tracing:
            trace.stop()
            _LOG.info("trace written to %s", args.trace)
        if timeline_on:
            # After the manifest write: the recorder must still be
            # active for its summary (span counts, slowest waterfalls)
            # to embed under the manifest's "events" key.
            events.stop()
            _LOG.info("timeline written to %s", args.timeline)
        if telemetry_on:
            obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
