"""QNTN: a simulation framework for regional quantum networks.

Reproduction of "QNTN: Establishing a Regional Quantum Network in
Tennessee" (SC 2024): three quantum LANs (Tennessee Tech, ORNL, EPB)
interconnected either by a LEO constellation (space-ground) or by a
high-altitude platform (air-ground), evaluated on coverage period,
served entanglement requests, and entanglement fidelity.

Quickstart::

    from repro import AirGroundArchitecture, SpaceGroundArchitecture

    space = SpaceGroundArchitecture(n_satellites=108)
    result = space.evaluate()
    print(result.coverage_percentage, result.mean_fidelity)

Subpackages:

* :mod:`repro.core` — architectures and paper experiments.
* :mod:`repro.orbits` — orbital mechanics (the STK substitute).
* :mod:`repro.quantum` — states, Kraus channels, fidelity.
* :mod:`repro.channels` — fiber and FSO link budgets.
* :mod:`repro.network` — the QuNetSim-style host/channel simulator.
* :mod:`repro.engine` — vectorized link-budget and link-state caches.
* :mod:`repro.routing` — Bellman–Ford entanglement routing (Algorithm 1).
* :mod:`repro.parallel` — process-pool sweeps.
* :mod:`repro.reporting` — table/figure renderers.
"""

from repro.core.architecture import (
    AirGroundArchitecture,
    ArchitectureResult,
    HybridArchitecture,
    SpaceGroundArchitecture,
)
from repro.core.comparison import ComparisonRow, compare_architectures
from repro.core.coverage import CoverageResult, constellation_coverage_sweep
from repro.core.requests import Request, generate_requests
from repro.core.threshold import ThresholdResult, transmissivity_threshold_experiment
from repro.engine import LinkStateCache
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "SpaceGroundArchitecture",
    "AirGroundArchitecture",
    "HybridArchitecture",
    "ArchitectureResult",
    "compare_architectures",
    "ComparisonRow",
    "constellation_coverage_sweep",
    "CoverageResult",
    "generate_requests",
    "LinkStateCache",
    "Request",
    "transmissivity_threshold_experiment",
    "ThresholdResult",
]
