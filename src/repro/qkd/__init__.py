"""Quantum key distribution layer.

The paper's related-work section contrasts QNTN's entanglement
distribution with regional networks limited to QKD over trusted fiber
nodes (its reference [14]) and with satellite QKD (Micius, EuroQCI). This
package makes those comparisons quantitative:

* :mod:`repro.qkd.bbm92` — entanglement-based QKD (BBM92/E91): QBER and
  asymptotic secret fractions computed directly from the delivered
  two-qubit density matrices of the entanglement layer.
* :mod:`repro.qkd.trusted_node` — the fiber trusted-node chain baseline:
  point-to-point decoy-BB84-style key rates hop by hop, end-to-end rate
  limited by the weakest hop, with the security caveat that every relay
  must be trusted (no end-to-end entanglement).
"""

from repro.qkd.bbm92 import (
    bbm92_key_rate_hz,
    bbm92_secret_fraction,
    binary_entropy,
    qber_from_state,
    qber_from_transmissivity,
)
from repro.qkd.e91 import TSIRELSON_BOUND, chsh_from_transmissivity, chsh_value
from repro.qkd.trusted_node import TrustedNodeChain, fiber_bb84_key_rate_hz

__all__ = [
    "chsh_value",
    "chsh_from_transmissivity",
    "TSIRELSON_BOUND",
    "binary_entropy",
    "qber_from_state",
    "qber_from_transmissivity",
    "bbm92_secret_fraction",
    "bbm92_key_rate_hz",
    "fiber_bb84_key_rate_hz",
    "TrustedNodeChain",
]
