"""Trusted-node fiber QKD chain — the regional baseline the paper rejects.

The paper's related work (its reference [14]) describes regional QKD over
fiber with trusted intermediate nodes that measure and re-encode. Such a
chain extends key distribution arbitrarily far, but (a) every relay holds
the key in the clear, and (b) the network can never distribute
entanglement. This module models the chain so the QKD ablation can put
numbers on the comparison.

Per-hop key rate: a decoy-BB84-style asymptotic model

    R_hop = rate * eta_hop * sifting * max(0, 1 - 2 h(e_hop))

with a distance-independent intrinsic error plus a dark-count floor that
grows as transmissivity falls. End-to-end, every hop must produce the key
material, so the chain rate is the minimum hop rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.channels.fiber import FiberChannelModel
from repro.errors import ValidationError
from repro.qkd.bbm92 import binary_entropy
from repro.utils.validation import check_positive, check_probability

__all__ = ["fiber_bb84_key_rate_hz", "TrustedNodeChain"]


def fiber_bb84_key_rate_hz(
    length_km: float,
    *,
    fiber: FiberChannelModel | None = None,
    pulse_rate_hz: float = 1.0e9,
    mean_photon_number: float = 0.5,
    detector_efficiency: float = 0.2,
    dark_count_prob: float = 1.0e-6,
    intrinsic_error: float = 0.01,
    sifting_factor: float = 0.5,
) -> float:
    """Asymptotic decoy-BB84 secret-key rate of one fiber hop [bits/s].

    Args:
        length_km: hop length.
        fiber: attenuation model (paper preset by default).
        pulse_rate_hz: laser clock.
        mean_photon_number: signal-state mean photon number mu.
        detector_efficiency: receiver detection efficiency.
        dark_count_prob: dark-count probability per gate.
        intrinsic_error: misalignment QBER floor.
        sifting_factor: basis-sifting survival fraction.

    Returns:
        Secret bits per second; 0 when dark counts swamp the signal.
    """
    check_positive("pulse_rate_hz", pulse_rate_hz)
    check_positive("mean_photon_number", mean_photon_number)
    check_probability("detector_efficiency", detector_efficiency)
    check_probability("dark_count_prob", dark_count_prob)
    check_probability("intrinsic_error", intrinsic_error)
    model = fiber or FiberChannelModel()
    eta = float(model.transmissivity(length_km)) * detector_efficiency
    # Detection probability per pulse: signal clicks + dark counts.
    p_signal = 1.0 - math.exp(-mean_photon_number * eta)
    p_click = p_signal + dark_count_prob
    if p_click <= 0.0:
        return 0.0
    # Dark counts are random: they contribute QBER 1/2 on their fraction.
    qber = (intrinsic_error * p_signal + 0.5 * dark_count_prob) / p_click
    secret_fraction = max(0.0, 1.0 - 2.0 * binary_entropy(min(qber, 0.5)))
    return pulse_rate_hz * p_click * sifting_factor * secret_fraction


@dataclass(frozen=True)
class TrustedNodeChain:
    """A chain of trusted relays spanning a long fiber route.

    Attributes:
        total_length_km: end-to-end route length.
        n_trusted_nodes: intermediate relays (>= 0); the route is split
            into ``n_trusted_nodes + 1`` equal hops.
    """

    total_length_km: float
    n_trusted_nodes: int

    def __post_init__(self) -> None:
        check_positive("total_length_km", self.total_length_km)
        if self.n_trusted_nodes < 0:
            raise ValidationError(
                f"n_trusted_nodes must be >= 0, got {self.n_trusted_nodes}"
            )

    @property
    def n_hops(self) -> int:
        """Number of fiber hops."""
        return self.n_trusted_nodes + 1

    @property
    def hop_length_km(self) -> float:
        """Length of each (equal) hop."""
        return self.total_length_km / self.n_hops

    def key_rate_hz(self, **hop_kwargs: float) -> float:
        """End-to-end key rate: the minimum hop rate (all hops identical)."""
        return fiber_bb84_key_rate_hz(self.hop_length_km, **hop_kwargs)

    @property
    def supports_entanglement(self) -> bool:
        """Trusted relays measure and re-encode: never entanglement-capable."""
        return False

    @staticmethod
    def minimum_nodes_for_rate(
        total_length_km: float, min_rate_hz: float, max_nodes: int = 64, **hop_kwargs: float
    ) -> int | None:
        """Fewest trusted nodes achieving ``min_rate_hz``, or None."""
        for n in range(max_nodes + 1):
            chain = TrustedNodeChain(total_length_km, n)
            if chain.key_rate_hz(**hop_kwargs) >= min_rate_hz:
                return n
        return None
