"""E91 security witness: CHSH Bell-inequality violation.

The E91 protocol certifies security by a CHSH test on the delivered
pairs: S > 2 witnesses entanglement, S = 2*sqrt(2) is the quantum
maximum. This module evaluates S for delivered density matrices at the
standard measurement angles, tying the paper's fidelity metric to a
device-independent-style security indicator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError
from repro.quantum.operators import PAULI_X, PAULI_Z, tensor
from repro.quantum.states import validate_density_matrix

__all__ = ["chsh_value", "chsh_from_transmissivity", "TSIRELSON_BOUND"]

#: The quantum-mechanical maximum of the CHSH combination.
TSIRELSON_BOUND: float = 2.0 * math.sqrt(2.0)


def _rotated_observable(angle: float) -> np.ndarray:
    """Spin observable in the X-Z plane at ``angle`` from Z."""
    return math.cos(angle) * PAULI_Z + math.sin(angle) * PAULI_X


def chsh_value(
    rho: np.ndarray,
    *,
    angles_a: tuple[float, float] = (0.0, math.pi / 2),
    angles_b: tuple[float, float] = (math.pi / 4, -math.pi / 4),
) -> float:
    """CHSH combination ``S = |E(a,b) + E(a,b') + E(a',b) - E(a',b')|``.

    Default angles are optimal for |Phi+>: S = 2*sqrt(2) on a perfect
    pair, decaying with channel noise. S > 2 certifies entanglement.

    Args:
        rho: two-qubit density matrix.
        angles_a / angles_b: measurement angles (a, a') and (b, b') in the
            X-Z plane.
    """
    arr = validate_density_matrix(rho)
    if arr.shape != (4, 4):
        raise ValidationError(f"chsh_value expects a two-qubit state, got {arr.shape}")

    def corr(theta_a: float, theta_b: float) -> float:
        observable = tensor(_rotated_observable(theta_a), _rotated_observable(theta_b))
        return float(np.real(np.trace(observable @ arr)))

    a, a_prime = angles_a
    b, b_prime = angles_b
    s = corr(a, b) + corr(a, b_prime) + corr(a_prime, b) - corr(a_prime, b_prime)
    return abs(s)


def chsh_from_transmissivity(eta_path: float) -> float:
    """CHSH value of an amplitude-damped |Phi+> with path transmissivity eta.

    Uses the default (|Phi+>-optimal) angles — a slightly conservative
    witness for damped states, which is how a deployed E91 link would run.
    """
    if not 0.0 <= eta_path <= 1.0:
        raise ValidationError(f"eta_path must be in [0, 1], got {eta_path}")
    from repro.quantum.fidelity import bell_pair_after_loss

    return chsh_value(bell_pair_after_loss(eta_path))
