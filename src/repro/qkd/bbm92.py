"""Entanglement-based QKD (BBM92 / E91) over the QNTN quantum layer.

Both endpoints measure their halves of each delivered pair in randomly
chosen Z or X bases; sifting keeps matched-basis rounds. The QBER in each
basis is read directly off the delivered density matrix, and the
asymptotic secret fraction follows the standard entropic bound

    r = 1 - h(e_z) - h(e_x)

(h the binary entropy). Combined with the heralded pair rate of
:class:`repro.core.timing.EntanglementRateModel`, this turns the paper's
fidelity metric into secret-key throughput — the quantity its related
work (Micius, trusted-node networks) reports.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError
from repro.quantum.fidelity import bell_pair_after_loss
from repro.quantum.operators import HADAMARD, tensor
from repro.quantum.states import validate_density_matrix

__all__ = [
    "binary_entropy",
    "qber_from_state",
    "qber_from_transmissivity",
    "bbm92_secret_fraction",
    "bbm92_key_rate_hz",
]


def binary_entropy(p: float) -> float:
    """Binary entropy h(p) in bits; h(0) = h(1) = 0."""
    if not 0.0 <= p <= 1.0:
        raise ValidationError(f"probability must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def _disagreement_probability(rho: np.ndarray) -> float:
    """P(outcomes differ) for computational-basis measurement of a pair."""
    p01 = float(np.real(rho[1, 1]))
    p10 = float(np.real(rho[2, 2]))
    return min(max(p01 + p10, 0.0), 1.0)


def qber_from_state(rho: np.ndarray) -> tuple[float, float]:
    """(QBER_Z, QBER_X) of a delivered two-qubit state.

    Z errors are anti-correlated computational outcomes; X errors the same
    after Hadamards on both qubits. For |Phi+>-type pairs both should be
    zero; channel noise raises them.
    """
    arr = validate_density_matrix(rho)
    if arr.shape != (4, 4):
        raise ValidationError(f"expected a two-qubit state, got shape {arr.shape}")
    e_z = _disagreement_probability(arr)
    hh = tensor(HADAMARD, HADAMARD)
    e_x = _disagreement_probability(hh @ arr @ hh.conj().T)
    return e_z, e_x


def qber_from_transmissivity(eta_path: float) -> tuple[float, float]:
    """QBERs of an amplitude-damped |Phi+> pair with path transmissivity eta.

    Closed relationship used by the fast evaluation path; equals
    :func:`qber_from_state` on :func:`bell_pair_after_loss` (tested).
    """
    if not 0.0 <= eta_path <= 1.0:
        raise ValidationError(f"eta_path must be in [0, 1], got {eta_path}")
    return qber_from_state(bell_pair_after_loss(eta_path))


def bbm92_secret_fraction(e_z: float, e_x: float) -> float:
    """Asymptotic secret bits per sifted bit: ``max(0, 1 - h(e_z) - h(e_x))``."""
    return max(0.0, 1.0 - binary_entropy(e_z) - binary_entropy(e_x))


def bbm92_key_rate_hz(
    eta_path: float,
    pair_rate_hz: float,
    *,
    sifting_factor: float = 0.5,
    rho: np.ndarray | None = None,
) -> float:
    """Secret-key rate of BBM92 over a delivered-pair stream [bits/s].

    Args:
        eta_path: end-to-end transmissivity (sets the pair state unless
            ``rho`` is given).
        pair_rate_hz: heralded pair rate from the throughput model.
        sifting_factor: fraction of pairs surviving basis sifting (1/2 for
            uniform random bases).
        rho: explicit delivered state overriding the amplitude-damping
            default.
    """
    if pair_rate_hz < 0:
        raise ValidationError(f"pair_rate_hz must be >= 0, got {pair_rate_hz}")
    if not 0.0 < sifting_factor <= 1.0:
        raise ValidationError(f"sifting_factor must be in (0, 1], got {sifting_factor}")
    e_z, e_x = qber_from_state(rho) if rho is not None else qber_from_transmissivity(eta_path)
    return pair_rate_hz * sifting_factor * bbm92_secret_fraction(e_z, e_x)
