"""Zero-copy shared-memory plane for process-pool sweeps.

``parallel_sweep`` and ``parallel_service_sweep`` fan tasks out over a
process pool; without this module every task pickles its inputs — for a
day sweep that means serialising the multi-MB ``(N, T, 3)`` ephemeris
block (and, for array-level sweeps, the per-site budget matrices) once
per shard. This module moves those arrays into
:mod:`multiprocessing.shared_memory` segments so workers receive only a
(name, shape, dtype) descriptor a few dozen bytes long and map the pages
directly — zero copies on dispatch, identical bytes on arrival.

Lifecycle (documented in DESIGN.md §8):

* the **parent** publishes arrays through a :class:`ShmArena`, which owns
  the segments; ``close()`` (or the context-manager exit, which runs even
  when a worker raises) both closes the parent's mappings and *unlinks*
  the segments so nothing outlives the sweep;
* each **worker** attaches by name via :class:`ShmAttachment`, builds
  NumPy views over the mapped buffers, copies out only the slice it
  needs, and closes its mappings before returning. Workers never unlink.

On Linux with the default fork start method the pool workers share the
parent's ``resource_tracker``, so parent-side unlink is authoritative and
leak-free even across abnormal worker exits.

Determinism: attached arrays are byte-for-byte the published ones, so a
sweep over shared memory returns bit-identical results to the pickling
path and to serial execution — pinned by ``tests/parallel/test_shm.py``
and gated across 1/2/4 workers in ``benchmarks/bench_artifact_store.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro import obs
from repro.errors import ValidationError
from repro.orbits.ephemeris import Ephemeris

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.budgets import LinkBudgetTable, SiteLinkBudget

__all__ = [
    "SharedArraySpec",
    "ShmArena",
    "ShmAttachment",
    "EphemerisHandle",
    "BudgetHandle",
    "BudgetTableHandle",
    "publish_ephemeris",
    "attach_ephemeris",
    "publish_budget_table",
    "attach_budget_table",
]


# Dispatch-plane accounting: the counters are lifetime totals, the gauge
# tracks bytes currently resident across live arenas.
_SEGMENTS_PUBLISHED = obs.counter("shm.segments.published")
_BYTES_PUBLISHED = obs.counter("shm.bytes.published")
_ARENA_BYTES = obs.gauge("shm.arena.bytes")


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything a worker needs to map one published array.

    Attributes:
        name: OS-level shared-memory segment name.
        shape: array shape.
        dtype: NumPy dtype string (e.g. ``"<f8"``).
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class ShmArena:
    """Parent-side owner of a sweep's shared-memory segments.

    Publish arrays before dispatching tasks; close (unlink included)
    after the pool drains. Use as a context manager so segments are
    reclaimed even when a worker raises::

        with ShmArena() as arena:
            handle = publish_ephemeris(arena, ephemeris)
            results = parallel_map(task, [(handle, block) for block in blocks])
        # segments are gone here, success or not
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False

    def publish(self, array: np.ndarray) -> SharedArraySpec:
        """Copy one array into a fresh segment; returns its descriptor."""
        if self._closed:
            raise ValidationError("cannot publish into a closed ShmArena")
        arr = np.ascontiguousarray(array)
        if arr.nbytes == 0:
            raise ValidationError("cannot publish an empty array to shared memory")
        segment = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        self._segments.append(segment)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
        view[...] = arr
        _SEGMENTS_PUBLISHED.inc()
        _BYTES_PUBLISHED.inc(arr.nbytes)
        _ARENA_BYTES.add(arr.nbytes)
        return SharedArraySpec(segment.name, tuple(arr.shape), arr.dtype.str)

    @property
    def total_bytes(self) -> int:
        """Bytes currently held across all published segments."""
        return sum(seg.size for seg in self._segments)

    def close(self) -> None:
        """Close and unlink every segment. Idempotent."""
        if self._closed:
            return
        self._closed = True
        _ARENA_BYTES.add(-sum(seg.size for seg in self._segments))
        for segment in self._segments:
            try:
                segment.close()
            except OSError:
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ShmAttachment:
    """Worker-side view factory over published segments.

    Attaching yields a read-only zero-copy NumPy view; the worker copies
    out whatever slice it needs and closes its mappings before returning
    (views into a closed mapping are invalid). Never unlinks — that is
    the arena's job in the parent.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    def attach(self, spec: SharedArraySpec) -> np.ndarray:
        """Map one descriptor to a read-only array view (zero-copy)."""
        segment = shared_memory.SharedMemory(name=spec.name, create=False)
        self._segments.append(segment)
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
        view.flags.writeable = False
        return view

    def close(self) -> None:
        """Drop the worker's mappings (segments stay alive in the parent)."""
        for segment in self._segments:
            try:
                segment.close()
            except OSError:
                pass
        self._segments.clear()

    def __enter__(self) -> "ShmAttachment":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# --- ephemeris over shared memory --------------------------------------------


@dataclass(frozen=True)
class EphemerisHandle:
    """Picklable stand-in for an :class:`Ephemeris` living in shared memory.

    A few hundred bytes on the wire regardless of constellation size;
    compare ~7.5 MB for pickling the 108-satellite day sheet directly.
    """

    times: SharedArraySpec
    positions: SharedArraySpec
    names: tuple[str, ...]

    @property
    def payload_bytes(self) -> int:
        """Bytes of array data referenced (not shipped) by this handle."""
        return self.times.nbytes + self.positions.nbytes


def publish_ephemeris(arena: ShmArena, ephemeris: Ephemeris) -> EphemerisHandle:
    """Publish a movement sheet's arrays; returns the worker handle."""
    return EphemerisHandle(
        times=arena.publish(ephemeris.times_s),
        positions=arena.publish(ephemeris.positions_ecef_km),
        names=tuple(ephemeris.names),
    )


def attach_ephemeris(
    handle: EphemerisHandle, attachment: ShmAttachment
) -> Ephemeris:
    """Rebuild an :class:`Ephemeris` over shared buffers (zero-copy).

    The returned object's arrays are views into the mapped segments;
    callers slicing with ``at_time_indices`` / ``subset`` get fresh
    copies (those methods copy), which remain valid after
    ``attachment.close()``.
    """
    times = attachment.attach(handle.times)
    positions = attachment.attach(handle.positions)
    return Ephemeris(times, positions, list(handle.names))


# --- link-budget tables over shared memory -----------------------------------


@dataclass(frozen=True)
class BudgetHandle:
    """Shared-memory descriptors for one site's budget matrices.

    ``usable_healthy`` is present only for budgets that were derived
    through an active fault plane in the parent — shipping it keeps the
    worker-side denial attribution identical to the serial path.
    """

    site_name: str
    elevation: SharedArraySpec
    slant_range: SharedArraySpec
    transmissivity: SharedArraySpec
    usable: SharedArraySpec
    usable_healthy: SharedArraySpec | None = None


@dataclass(frozen=True)
class BudgetTableHandle:
    """Picklable stand-in for a fully-computed :class:`LinkBudgetTable`.

    Carries per-site array descriptors plus the small picklable context
    (sites, channel model, policy, altitude) and the ephemeris handle
    needed to reconstruct an equivalent table in a worker.
    """

    ephemeris: EphemerisHandle
    budgets: tuple[BudgetHandle, ...]
    sites: tuple[object, ...]
    fso_model: object
    policy: object
    platform_altitude_km: float

    @property
    def payload_bytes(self) -> int:
        """Bytes of array data referenced (not shipped) by this handle."""
        total = self.ephemeris.payload_bytes
        for b in self.budgets:
            total += (
                b.elevation.nbytes
                + b.slant_range.nbytes
                + b.transmissivity.nbytes
                + b.usable.nbytes
                + (b.usable_healthy.nbytes if b.usable_healthy is not None else 0)
            )
        return total


def publish_budget_table(
    arena: ShmArena,
    table: "LinkBudgetTable",
    *,
    site_names: Iterable[str] | None = None,
) -> BudgetTableHandle:
    """Publish a budget table's matrices; returns the worker handle.

    Args:
        site_names: restrict publication to these sites (default: all).
            Budgets are computed first if still lazy.
    """
    names = list(site_names) if site_names is not None else table.site_names
    handles = []
    for name in names:
        budget = table.budget(name)
        handles.append(
            BudgetHandle(
                site_name=name,
                elevation=arena.publish(budget.elevation_rad),
                slant_range=arena.publish(budget.slant_range_km),
                transmissivity=arena.publish(budget.transmissivity),
                usable=arena.publish(budget.usable),
                usable_healthy=(
                    None
                    if budget.usable_healthy is None
                    else arena.publish(budget.usable_healthy)
                ),
            )
        )
    return BudgetTableHandle(
        ephemeris=publish_ephemeris(arena, table.ephemeris),
        budgets=tuple(handles),
        sites=tuple(s for s in table.sites if s.name in set(names)),
        fso_model=table.fso_model,
        policy=table.policy,
        platform_altitude_km=table.platform_altitude_km,
    )


def attach_budget_table(
    handle: BudgetTableHandle, attachment: ShmAttachment
) -> "LinkBudgetTable":
    """Rebuild a :class:`LinkBudgetTable` over shared buffers (zero-copy).

    Every published site budget arrives pre-materialised as views into
    the mapped segments; no geometry is recomputed in the worker.
    """
    from repro.engine.budgets import LinkBudgetTable, SiteLinkBudget

    table = LinkBudgetTable(
        attach_ephemeris(handle.ephemeris, attachment),
        list(handle.sites),
        handle.fso_model,
        policy=handle.policy,
        platform_altitude_km=handle.platform_altitude_km,
    )
    for b in handle.budgets:
        table._budgets[b.site_name] = SiteLinkBudget(
            table.site(b.site_name),
            attachment.attach(b.elevation),
            attachment.attach(b.slant_range),
            attachment.attach(b.transmissivity),
            attachment.attach(b.usable),
            usable_healthy=(
                None
                if b.usable_healthy is None
                else attachment.attach(b.usable_healthy)
            ),
        )
    return table


def shared_arrays(
    arena: ShmArena, arrays: Mapping[str, np.ndarray]
) -> dict[str, SharedArraySpec]:
    """Publish a name->array mapping; returns name->descriptor."""
    return {name: arena.publish(arr) for name, arr in arrays.items()}


def attach_arrays(
    specs: Mapping[str, SharedArraySpec], attachment: ShmAttachment
) -> dict[str, np.ndarray]:
    """Map a name->descriptor mapping back to read-only array views."""
    return {name: attachment.attach(spec) for name, spec in specs.items()}
