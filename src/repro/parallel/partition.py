"""Domain-decomposition helpers: block and cyclic partitions.

The same decompositions MPI codes use to scatter work across ranks,
reused here to chunk sweep tasks across worker processes.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.errors import ValidationError

__all__ = ["block_partition", "cyclic_partition", "partition_bounds"]

T = TypeVar("T")


def partition_bounds(n_items: int, n_parts: int) -> list[tuple[int, int]]:
    """Balanced contiguous [start, end) bounds for ``n_parts`` blocks.

    The first ``n_items % n_parts`` blocks get one extra item, so sizes
    differ by at most one (the standard MPI block distribution).
    """
    if n_parts <= 0:
        raise ValidationError(f"n_parts must be positive, got {n_parts}")
    if n_items < 0:
        raise ValidationError(f"n_items must be >= 0, got {n_items}")
    base, extra = divmod(n_items, n_parts)
    bounds: list[tuple[int, int]] = []
    start = 0
    for part in range(n_parts):
        size = base + (1 if part < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def block_partition(items: Sequence[T], n_parts: int) -> list[list[T]]:
    """Split ``items`` into ``n_parts`` contiguous, balanced blocks."""
    return [list(items[lo:hi]) for lo, hi in partition_bounds(len(items), n_parts)]


def cyclic_partition(items: Sequence[T], n_parts: int) -> list[list[T]]:
    """Deal ``items`` round-robin into ``n_parts`` lists.

    Cyclic distribution balances *cost* when task expense grows with item
    index (e.g. constellation size), at the price of non-contiguity.
    """
    if n_parts <= 0:
        raise ValidationError(f"n_parts must be positive, got {n_parts}")
    return [list(items[part::n_parts]) for part in range(n_parts)]
