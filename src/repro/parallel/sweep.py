"""Process-pool parameter sweeps with deterministic per-task seeding.

``parallel_sweep`` is the workhorse behind the constellation-size sweeps:
it fans a task function out over a parameter list using a process pool,
hands every task its own spawned RNG stream (so results are independent
of worker count and scheduling), and gathers results in input order —
scatter/compute/gather, exactly the shape of an MPI collective pipeline.

Tasks must be picklable module-level callables; for quick functional work
on already-loaded data, ``parallel_map`` with ``n_workers=0`` (serial
fallback) avoids process-spawn overhead entirely.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from repro.errors import ValidationError
from repro.parallel.partition import block_partition
from repro.utils.timing import Stopwatch

__all__ = [
    "parallel_map",
    "parallel_sweep",
    "parallel_service_sweep",
    "SweepResult",
    "default_worker_count",
]

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """A sane process count: physical parallelism minus one, at least 1."""
    return max((os.cpu_count() or 2) - 1, 1)


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a parameter sweep.

    Attributes:
        parameters: swept parameter values, input order.
        results: one result per parameter, same order.
        elapsed_s: wall-clock duration of the sweep.
        n_workers: process count used (0 = serial).
    """

    parameters: tuple[Any, ...]
    results: tuple[Any, ...]
    elapsed_s: float
    n_workers: int

    def as_dict(self) -> dict[Any, Any]:
        """Mapping of parameter -> result (parameters must be hashable)."""
        return dict(zip(self.parameters, self.results))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    n_workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Order-preserving map over a process pool.

    Args:
        fn: picklable callable.
        items: inputs.
        n_workers: process count; ``0`` runs serially in-process (useful
            under profilers and in tests), ``None`` picks a default.
        chunksize: items per inter-process message; raise it for many
            small tasks to amortise IPC.
    """
    if n_workers is None:
        n_workers = default_worker_count()
    if n_workers < 0:
        raise ValidationError(f"n_workers must be >= 0, got {n_workers}")
    if chunksize < 1:
        raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
    if n_workers == 0 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def _service_shard(args: tuple) -> list[list[Any]]:
    """Worker task: serve every request at every timestep of one shard.

    Rebuilds the QNTN network over the shard's slice of the movement
    sheet and instantiates ONE simulator for the whole shard — with
    ``use_cache=True`` the worker's :class:`LinkStateCache` is built once
    from the shard ephemeris and reused across every request and
    timestep, instead of re-evaluating links per request.
    """
    ephemeris, time_indices, pairs, use_cache, fso_model, policy, convention = args
    from repro.channels.presets import paper_satellite_fso
    from repro.network.simulator import NetworkSimulator
    from repro.network.topology import attach_satellites, build_qntn_ground_network

    shard = ephemeris.at_time_indices(time_indices)
    network = build_qntn_ground_network()
    attach_satellites(network, shard, fso_model or paper_satellite_fso())
    simulator = NetworkSimulator(
        network, policy=policy, fidelity_convention=convention, use_cache=use_cache
    )
    return [
        simulator.serve_requests(list(pairs), float(t)) for t in shard.times_s
    ]


def parallel_service_sweep(
    ephemeris: Any,
    requests: Sequence[Any],
    *,
    time_indices: Sequence[int] | None = None,
    n_workers: int | None = None,
    n_shards: int | None = None,
    use_cache: bool = True,
    fso_model: Any = None,
    policy: Any = None,
    fidelity_convention: str = "sqrt",
) -> list[list[Any]]:
    """Serve a request batch over a day sweep with time-sharded workers.

    The ephemeris sample axis is block-partitioned across worker
    processes; each worker builds its shard of the link-state cache once
    and serves the full request batch at every shard timestep. Results
    are gathered in time order, so the output is independent of
    ``n_workers`` and ``n_shards`` — ``n_workers=0`` (serial) and any
    pool size produce identical outcome lists, which the determinism
    tests pin.

    Args:
        ephemeris: constellation movement sheet.
        requests: :class:`~repro.core.requests.Request` objects or plain
            ``(source, destination)`` pairs.
        time_indices: ephemeris sample indices to serve at (default: all).
        n_workers: process count (0 = serial in-process).
        n_shards: number of contiguous time blocks (default: one per
            worker).
        use_cache: build each worker's vectorized link-state cache
            (default) or run the direct scalar path.
        fso_model / policy / fidelity_convention: simulator knobs.

    Returns:
        One list of :class:`RequestOutcome` per evaluated timestep.
    """
    if n_workers is None:
        n_workers = default_worker_count()
    indices = (
        list(range(ephemeris.n_samples))
        if time_indices is None
        else [int(i) for i in time_indices]
    )
    if not indices:
        return []
    pairs = tuple(
        r.endpoints if hasattr(r, "endpoints") else (str(r[0]), str(r[1]))
        for r in requests
    )
    shards = n_shards if n_shards is not None else max(n_workers, 1)
    shards = min(shards, len(indices))
    tasks = [
        (ephemeris, block, pairs, use_cache, fso_model, policy, fidelity_convention)
        for block in block_partition(indices, shards)
        if block
    ]
    per_shard = parallel_map(_service_shard, tasks, n_workers=n_workers)
    return [step for shard_result in per_shard for step in shard_result]


def _seeded_call(args: tuple[Callable[..., Any], Any, int | None]) -> Any:
    fn, parameter, seed = args
    if seed is None:
        return fn(parameter)
    return fn(parameter, seed=seed)


def parallel_sweep(
    fn: Callable[..., R],
    parameters: Sequence[T],
    *,
    seed: int | None = None,
    n_workers: int | None = None,
    chunksize: int = 1,
) -> SweepResult:
    """Sweep ``fn`` over ``parameters`` with independent per-task seeds.

    When ``seed`` is given, task ``i`` is called as ``fn(param, seed=s_i)``
    with ``s_i`` spawned from a root :class:`numpy.random.SeedSequence` —
    the per-rank stream discipline of parallel Monte-Carlo codes. With
    ``seed=None`` tasks are called as ``fn(param)``.

    Returns:
        :class:`SweepResult` with results in parameter order.
    """
    params = list(parameters)
    if seed is None:
        task_seeds: list[int | None] = [None] * len(params)
    else:
        root = np.random.SeedSequence(seed)
        task_seeds = [int(child.generate_state(1)[0]) for child in root.spawn(len(params))]

    watch = Stopwatch()
    with watch.lap("sweep"):
        results = parallel_map(
            _seeded_call,
            [(fn, p, s) for p, s in zip(params, task_seeds)],
            n_workers=n_workers,
            chunksize=chunksize,
        )
    return SweepResult(
        parameters=tuple(params),
        results=tuple(results),
        elapsed_s=watch.totals()["sweep"],
        n_workers=default_worker_count() if n_workers is None else n_workers,
    )
