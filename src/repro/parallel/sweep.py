"""Process-pool parameter sweeps with deterministic per-task seeding.

``parallel_sweep`` is the workhorse behind the constellation-size sweeps:
it fans a task function out over a parameter list using a process pool,
hands every task its own spawned RNG stream (so results are independent
of worker count and scheduling), and gathers results in input order —
scatter/compute/gather, exactly the shape of an MPI collective pipeline.

Tasks must be picklable module-level callables; for quick functional work
on already-loaded data, ``parallel_map`` with ``n_workers=0`` (serial
fallback) avoids process-spawn overhead entirely.

Large arrays ride the zero-copy plane of :mod:`repro.parallel.shm`
instead of the pickle stream: ``parallel_service_sweep`` publishes the
ephemeris block into shared memory once and ships workers a descriptor a
few hundred bytes long, and ``parallel_sweep(shared=...)`` does the same
for arbitrary task-shared arrays. Results are bit-identical either way.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence, TypeVar

import numpy as np

from repro import obs
from repro.errors import ValidationError
from repro.parallel.partition import block_partition
from repro.parallel.shm import (
    EphemerisHandle,
    ShmArena,
    ShmAttachment,
    attach_arrays,
    attach_ephemeris,
    publish_ephemeris,
    shared_arrays,
)
from repro.obs import Stopwatch

__all__ = [
    "parallel_map",
    "parallel_sweep",
    "parallel_service_sweep",
    "SweepResult",
    "default_worker_count",
]

T = TypeVar("T")
R = TypeVar("R")


def default_worker_count() -> int:
    """A sane process count: physical parallelism minus one, at least 1."""
    return max((os.cpu_count() or 2) - 1, 1)


@dataclass(frozen=True)
class SweepResult:
    """Outcome of a parameter sweep.

    Attributes:
        parameters: swept parameter values, input order.
        results: one result per parameter, same order.
        elapsed_s: wall-clock duration of the sweep.
        n_workers: process count used (0 = serial).
    """

    parameters: tuple[Any, ...]
    results: tuple[Any, ...]
    elapsed_s: float
    n_workers: int

    def as_dict(self) -> dict[Any, Any]:
        """Mapping of parameter -> result (parameters must be hashable)."""
        return dict(zip(self.parameters, self.results))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    n_workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Order-preserving map over a process pool.

    Args:
        fn: picklable callable.
        items: inputs.
        n_workers: process count; ``0`` runs serially in-process (useful
            under profilers and in tests), ``None`` picks a default.
        chunksize: items per inter-process message; raise it for many
            small tasks to amortise IPC.
    """
    if n_workers is None:
        n_workers = default_worker_count()
    if n_workers < 0:
        raise ValidationError(f"n_workers must be >= 0, got {n_workers}")
    if chunksize < 1:
        raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
    if n_workers == 0 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


def _service_shard(args: tuple) -> tuple[list[list[Any]], dict[str, Any]]:
    """Worker task: serve every request at every timestep of one shard.

    Rebuilds the QNTN network over the shard's slice of the movement
    sheet and instantiates ONE simulator for the whole shard — with
    ``use_cache=True`` the worker's :class:`LinkStateCache` is built once
    from the shard ephemeris and reused across every request and
    timestep, instead of re-evaluating links per request.

    Returns ``(per_step_outcomes, report)``. The report carries the
    shard's identity (pid, index range), phase timings, and the delta of
    this worker's metrics over the shard (snapshot at exit minus snapshot
    at entry — correct under both fork, where the child inherits parent
    counts, and spawn, where it starts from zero). The parent folds the
    delta into its registry only when the task actually ran in another
    process; in-process (serial) execution already incremented the parent
    registry directly.
    """
    (
        ephemeris,
        time_indices,
        pairs,
        use_cache,
        fso_model,
        policy,
        convention,
        obs_enabled,
        trace_cfg,
        fault_schedule,
        events_cfg,
    ) = args
    from repro.channels.presets import paper_satellite_fso
    from repro.network.simulator import NetworkSimulator
    from repro.network.topology import attach_satellites, build_qntn_ground_network
    from repro.obs import events, trace
    from repro.obs.metrics import metrics_delta

    if obs_enabled:
        obs.enable()
    if trace_cfg is not None:
        # Pooled task: never write through a fork-inherited recorder (its
        # file descriptor is shared with the parent); record this shard
        # into its own recorder and ship the payload back for merging.
        # The simulator's instrumentation reads the process-global hook,
        # so the shard recorder is activated rather than held locally.
        trace.reset_for_worker()
        trace.start_shard(trace_cfg)
    if events_cfg is not None:
        events.reset_for_worker()
        events.start_shard(events_cfg)
    baseline = obs.registry().snapshot()
    t0 = time.perf_counter()
    attachment = ShmAttachment()
    try:
        if isinstance(ephemeris, EphemerisHandle):
            # Zero-copy dispatch: map the parent's published arrays and
            # copy out only this shard's columns (at_time_indices copies).
            ephemeris = attach_ephemeris(ephemeris, attachment)
        shard = ephemeris.at_time_indices(time_indices)
    finally:
        attachment.close()
    t_attach = time.perf_counter()
    network = build_qntn_ground_network()
    attach_satellites(network, shard, fso_model or paper_satellite_fso())
    # The schedule travels realized (concrete events, no RNG left), so
    # every worker compiles the identical plane regardless of shard
    # order — serial == sharded holds under faults too.
    plane = fault_schedule.compile() if fault_schedule is not None else None
    simulator = NetworkSimulator(
        network,
        policy=policy,
        fidelity_convention=convention,
        use_cache=use_cache,
        faults=plane,
    )
    t_build = time.perf_counter()
    results = [
        simulator.serve_requests(list(pairs), float(t)) for t in shard.times_s
    ]
    t_serve = time.perf_counter()
    report = {
        "pid": os.getpid(),
        "first_index": int(time_indices[0]),
        "last_index": int(time_indices[-1]),
        "n_steps": len(time_indices),
        "timings_s": {
            "attach": t_attach - t0,
            "build": t_build - t_attach,
            "serve": t_serve - t_build,
            "total": t_serve - t0,
        },
        "metrics": metrics_delta(obs.registry().snapshot(), baseline),
    }
    if trace_cfg is not None:
        report["trace"] = trace.finish_shard()
    if events_cfg is not None:
        report["events"] = events.finish_shard()
    return results, report


def parallel_service_sweep(
    ephemeris: Any,
    requests: Sequence[Any],
    *,
    time_indices: Sequence[int] | None = None,
    n_workers: int | None = None,
    n_shards: int | None = None,
    use_cache: bool = True,
    fso_model: Any = None,
    policy: Any = None,
    fidelity_convention: str = "sqrt",
    use_shm: bool | None = None,
    faults: Any = None,
) -> list[list[Any]]:
    """Serve a request batch over a day sweep with time-sharded workers.

    The ephemeris sample axis is block-partitioned across worker
    processes; each worker builds its shard of the link-state cache once
    and serves the full request batch at every shard timestep. Results
    are gathered in time order, so the output is independent of
    ``n_workers`` and ``n_shards`` — ``n_workers=0`` (serial) and any
    pool size produce identical outcome lists, which the determinism
    tests pin.

    Args:
        ephemeris: constellation movement sheet.
        requests: :class:`~repro.core.requests.Request` objects or plain
            ``(source, destination)`` pairs.
        time_indices: ephemeris sample indices to serve at (default: all).
        n_workers: process count (0 = serial in-process).
        n_shards: number of contiguous time blocks (default: one per
            worker).
        use_cache: build each worker's vectorized link-state cache
            (default) or run the direct scalar path.
        fso_model / policy / fidelity_convention: simulator knobs.
        use_shm: publish the ephemeris into shared memory and send
            workers only a descriptor, instead of pickling the position
            block once per shard (default: on whenever a pool is used;
            forced off for serial execution where there is no dispatch).
            Results are bit-identical either way.
        faults: optional :class:`~repro.faults.FaultSchedule`. Must be
            realized (concrete events only — call
            :meth:`FaultSchedule.realize` first); each worker compiles
            the identical plane, keeping serial == sharded.

    Returns:
        One list of :class:`RequestOutcome` per evaluated timestep.
    """
    if n_workers is None:
        n_workers = default_worker_count()
    indices = (
        list(range(ephemeris.n_samples))
        if time_indices is None
        else [int(i) for i in time_indices]
    )
    if not indices:
        return []
    pairs = tuple(
        r.endpoints if hasattr(r, "endpoints") else (str(r[0]), str(r[1]))
        for r in requests
    )
    shards = n_shards if n_shards is not None else max(n_workers, 1)
    shards = min(shards, len(indices))
    blocks = [block for block in block_partition(indices, shards) if block]
    pooled = n_workers > 0 and len(blocks) > 1
    if use_shm is None:
        use_shm = pooled
    if faults is not None:
        if getattr(faults, "is_empty", False):
            faults = None
        elif not getattr(faults, "is_realized", True):
            raise ValidationError(
                "parallel_service_sweep needs a realized FaultSchedule "
                "(call schedule.realize(seed=...) first)"
            )
    from repro.obs import events, trace

    arena = ShmArena() if (use_shm and pooled) else None
    try:
        payload: Any = (
            publish_ephemeris(arena, ephemeris) if arena is not None else ephemeris
        )
        tasks = [
            (
                payload,
                block,
                pairs,
                use_cache,
                fso_model,
                policy,
                fidelity_convention,
                obs.enabled(),
                # In-process (non-pooled) tasks record straight into the
                # parent's active recorder via the simulator's global
                # hook; only pooled tasks get shard recorders. Sampling
                # keys on (endpoints, t_s), so both modes sample — and
                # attribute — exactly the same requests.
                trace.shard_config(int(block[0])) if pooled else None,
                faults,
                events.shard_config(int(block[0])) if pooled else None,
            )
            for block in blocks
        ]
        t_dispatch_us = events.now_us()
        shard_outputs = parallel_map(_service_shard, tasks, n_workers=n_workers)
    finally:
        if arena is not None:
            arena.close()
    timeline = events.active()
    per_shard = []
    for results, report in shard_outputs:
        per_shard.append(results)
        metrics = report.pop("metrics", None)
        if pooled and metrics:
            # Only pooled tasks ran in another process; the serial path
            # already incremented this registry directly, so folding its
            # delta back in would double-count.
            obs.registry().merge(metrics)
        trace.absorb_shard(report.pop("trace", None))
        events_payload = report.pop("events", None)
        if timeline is not None and events_payload is not None:
            timeline.complete(
                "dispatch",
                begin_us=t_dispatch_us,
                end_us=events.now_us(),
                attrs={"shard": int(events_payload.get("shard", 0))},
            )
        events.absorb_shard(events_payload)
        obs.record_worker_report(report)
    return [step for shard_result in per_shard for step in shard_result]


def _seeded_call(args: tuple) -> Any:
    """Worker task for :func:`parallel_sweep`.

    ``args`` is ``(fn, parameter, seed, shared_specs)``; when
    ``shared_specs`` is set the worker attaches the published arrays and
    passes them through as ``fn(param, shared={...})``, copying nothing.
    """
    fn, parameter, seed, shared_specs = args
    kwargs: dict[str, Any] = {}
    if seed is not None:
        kwargs["seed"] = seed
    if shared_specs is None:
        return fn(parameter, **kwargs)
    attachment = ShmAttachment()
    try:
        kwargs["shared"] = attach_arrays(shared_specs, attachment)
        return fn(parameter, **kwargs)
    finally:
        attachment.close()


def parallel_sweep(
    fn: Callable[..., R],
    parameters: Sequence[T],
    *,
    seed: int | None = None,
    n_workers: int | None = None,
    chunksize: int = 1,
    shared: Mapping[str, np.ndarray] | None = None,
) -> SweepResult:
    """Sweep ``fn`` over ``parameters`` with independent per-task seeds.

    When ``seed`` is given, task ``i`` is called as ``fn(param, seed=s_i)``
    with ``s_i`` spawned from a root :class:`numpy.random.SeedSequence` —
    the per-rank stream discipline of parallel Monte-Carlo codes. With
    ``seed=None`` tasks are called as ``fn(param)``.

    When ``shared`` is given, every task additionally receives
    ``fn(param, ..., shared=<name-to-array mapping>)``. Under a process
    pool the arrays travel once through shared memory (workers get
    zero-copy read-only views) instead of being pickled per task; the
    serial path passes the originals straight through. Segments are
    unlinked when the sweep returns, even on task failure.

    Returns:
        :class:`SweepResult` with results in parameter order.
    """
    params = list(parameters)
    if seed is None:
        task_seeds: list[int | None] = [None] * len(params)
    else:
        root = np.random.SeedSequence(seed)
        task_seeds = [int(child.generate_state(1)[0]) for child in root.spawn(len(params))]

    pool_workers = default_worker_count() if n_workers is None else n_workers
    pooled = pool_workers > 0 and len(params) > 1
    arena = ShmArena() if (shared is not None and pooled) else None
    watch = Stopwatch()
    try:
        with watch.lap("sweep"):
            if shared is None:
                specs_or_shared: Any = None
                tasks = [(fn, p, s, None) for p, s in zip(params, task_seeds)]
            elif arena is not None:
                specs_or_shared = shared_arrays(arena, shared)
                tasks = [
                    (fn, p, s, specs_or_shared) for p, s in zip(params, task_seeds)
                ]
            else:
                # Serial: hand the original arrays straight to the task.
                tasks = [
                    (_passthrough_shared, (fn, p, dict(shared)), s, None)
                    for p, s in zip(params, task_seeds)
                ]
            results = parallel_map(
                _seeded_call, tasks, n_workers=n_workers, chunksize=chunksize
            )
    finally:
        if arena is not None:
            arena.close()
    return SweepResult(
        parameters=tuple(params),
        results=tuple(results),
        elapsed_s=watch.totals()["sweep"],
        n_workers=pool_workers,
    )


def _passthrough_shared(bundle: tuple, seed: int | None = None) -> Any:
    """Serial-path shim: unwraps ``(fn, param, shared)`` for the task."""
    fn, parameter, shared = bundle
    kwargs: dict[str, Any] = {"shared": shared}
    if seed is not None:
        kwargs["seed"] = seed
    return fn(parameter, **kwargs)
