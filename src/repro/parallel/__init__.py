"""Parallel execution utilities for parameter sweeps.

Sweeps over constellation sizes and Monte-Carlo seeds are embarrassingly
parallel. :mod:`repro.parallel.sweep` provides a process-pool map with
chunking and per-task seeding that mirrors MPI scatter/gather semantics
(mpi4py itself is unavailable in the offline environment);
:mod:`repro.parallel.partition` provides the block/cyclic domain
decompositions the chunking is built on; :mod:`repro.parallel.shm` is
the zero-copy plane that moves large arrays to workers through
``multiprocessing.shared_memory`` descriptors instead of pickles.
"""

from repro.parallel.partition import block_partition, cyclic_partition, partition_bounds
from repro.parallel.shm import (
    BudgetTableHandle,
    EphemerisHandle,
    SharedArraySpec,
    ShmArena,
    ShmAttachment,
    attach_budget_table,
    attach_ephemeris,
    publish_budget_table,
    publish_ephemeris,
)
from repro.parallel.sweep import (
    SweepResult,
    parallel_map,
    parallel_service_sweep,
    parallel_sweep,
)

__all__ = [
    "block_partition",
    "cyclic_partition",
    "partition_bounds",
    "parallel_map",
    "parallel_service_sweep",
    "parallel_sweep",
    "BudgetTableHandle",
    "EphemerisHandle",
    "SharedArraySpec",
    "ShmArena",
    "ShmAttachment",
    "attach_budget_table",
    "attach_ephemeris",
    "publish_budget_table",
    "publish_ephemeris",
    "SweepResult",
]
