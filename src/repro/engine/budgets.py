"""Per-site link-budget matrices over a constellation ephemeris.

One vectorized NumPy pass per ground site produces the elevation, slant
range, transmissivity and policy-admission matrices of shape
``(n_platforms, n_times)`` that every paper sweep consumes. The tables
built here are shared: the coverage analysis, the request-service
analysis, and the :class:`~repro.engine.linkstate.LinkStateCache` all
read the same arrays instead of re-deriving geometry per query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import kernels
from repro.channels.fso import FSOChannelModel, _kernel_params
from repro.data.ground_nodes import GroundNode
from repro.errors import ValidationError
from repro.network.links import LinkPolicy
from repro.orbits.ephemeris import Ephemeris
from repro.orbits.visibility import elevation_and_range

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.store import ArtifactStore
    from repro.faults.plane import FaultPlane

__all__ = [
    "SiteLinkBudget",
    "compute_site_budget",
    "fill_budget_block",
    "LinkBudgetTable",
]


@dataclass(frozen=True)
class SiteLinkBudget:
    """Per-site link-budget matrices against a moving constellation.

    Attributes:
        site: the ground node.
        elevation_rad: shape ``(n_sats, n_times)``.
        slant_range_km: shape ``(n_sats, n_times)``.
        transmissivity: shape ``(n_sats, n_times)``; zero where geometry
            forbids a link (platform below the horizon).
        usable: boolean mask of policy-admitted links.
        usable_healthy: pre-fault admission mask, present only on
            budgets derived through an active
            :class:`~repro.faults.plane.FaultPlane` — lets denial
            attribution tell "blocked only by faults" from physics.
    """

    site: GroundNode
    elevation_rad: np.ndarray
    slant_range_km: np.ndarray
    transmissivity: np.ndarray
    usable: np.ndarray
    usable_healthy: np.ndarray | None = None

    @property
    def healthy_usable(self) -> np.ndarray:
        """Pre-fault admission mask (``usable`` itself when unfaulted)."""
        return self.usable if self.usable_healthy is None else self.usable_healthy

    def at_time_indices(self, indices: np.ndarray) -> "SiteLinkBudget":
        """Budget restricted to the given sample indices (array views)."""
        idx = np.asarray(indices, dtype=int)
        return SiteLinkBudget(
            self.site,
            self.elevation_rad[:, idx],
            self.slant_range_km[:, idx],
            self.transmissivity[:, idx],
            self.usable[:, idx],
            usable_healthy=(
                None if self.usable_healthy is None else self.usable_healthy[:, idx]
            ),
        )


def fill_budget_block(
    el: np.ndarray,
    rng: np.ndarray,
    fso_model: FSOChannelModel,
    policy: LinkPolicy,
    platform_altitude_km: float,
    *,
    horizon_rad: float = 1e-3,
) -> tuple[np.ndarray, np.ndarray]:
    """Transmissivity and admission masks for a block of geometry.

    The shared fill behind :func:`compute_site_budget` (``horizon_rad``
    1e-3), the link-state cache's ground-satellite group pass
    (``horizon_rad`` 0.0, mirroring ``QuantumChannel.evaluate``), and the
    windowed incremental fills. Runs the fused ``budgets.fill`` compiled
    kernel when the numba backend is active and the model is
    kernel-representable; otherwise the original masked NumPy pass, so
    the fallback is bit-identical to the pre-kernel behaviour.
    """
    fn = kernels.kernel("budgets.fill")
    if fn is not None:
        params = _kernel_params(fso_model, platform_altitude_km)
        if params is not None:
            flat_eta, flat_usable = fn(
                np.ascontiguousarray(el, dtype=float).ravel(),
                np.ascontiguousarray(rng, dtype=float).ravel(),
                float(horizon_rad),
                policy.min_elevation_rad,
                policy.transmissivity_threshold,
                *params,
            )
            return flat_eta.reshape(el.shape), flat_usable.reshape(el.shape)
    above = el > horizon_rad
    eta = np.zeros_like(el)
    if np.any(above):
        eta[above] = np.asarray(
            fso_model.transmissivity(rng[above], el[above], platform_altitude_km)
        )
    usable = (
        above
        & (el >= policy.min_elevation_rad)
        & (eta >= policy.transmissivity_threshold)
    )
    return eta, usable


def compute_site_budget(
    site: GroundNode,
    ephemeris: Ephemeris,
    fso_model: FSOChannelModel,
    *,
    policy: LinkPolicy | None = None,
    platform_altitude_km: float = 500.0,
) -> SiteLinkBudget:
    """One vectorized link-budget pass: site against every platform sample.

    The transmissivity is evaluated only where the platform sits above
    the horizon (``elevation > 1e-3``); everywhere else eta is zero. A
    link is usable when it clears both policy constraints.
    """
    policy = policy or LinkPolicy()
    _, el, rng = elevation_and_range(
        site.lat_rad, site.lon_rad, site.alt_km, ephemeris.positions_ecef_km
    )
    eta, usable = fill_budget_block(
        el, rng, fso_model, policy, platform_altitude_km, horizon_rad=1e-3
    )
    return SiteLinkBudget(site, el, rng, eta, usable)


class LinkBudgetTable:
    """Lazily-computed, shareable collection of :class:`SiteLinkBudget`.

    Args:
        ephemeris: constellation movement sheet.
        sites: ground nodes.
        fso_model: ground-platform channel model.
        policy: link admission policy.
        platform_altitude_km: nominal constellation altitude for slant
            extinction integrals.
        store: optional :class:`~repro.engine.store.ArtifactStore`; when
            set, per-site budgets are loaded from / persisted to the
            content-addressed cache instead of always being recomputed.
        faults: optional compiled :class:`~repro.faults.plane.FaultPlane`;
            when active, each healthy budget is perturbed *after* the
            store/compute step (store artifacts always stay healthy) and
            the derived budget carries the healthy mask alongside.
        window: optional chunk size (samples) for incremental fills.
            When set, each site's eta/admission matrices start zeroed and
            are filled ``window`` samples at a time as
            :meth:`ensure_index` advances — a streaming engine pays for
            the samples it has reached instead of a whole-day pass up
            front. Geometry (elevation/range) is still computed eagerly;
            chunk fills are elementwise over the time axis, so a fully
            advanced windowed table is bitwise equal to an eager one.
            Mutually exclusive with ``store``.

    Budgets are computed on first access and memoized per site name.
    :meth:`at_time_indices` derives a reduced-horizon table by slicing
    the already-computed matrices, so e.g. the Figs. 7-8 service sweep
    reuses the coverage sweep's full-day pass instead of re-deriving
    geometry for its ~100 sampled steps.
    """

    def __init__(
        self,
        ephemeris: Ephemeris,
        sites: list[GroundNode],
        fso_model: FSOChannelModel,
        *,
        policy: LinkPolicy | None = None,
        platform_altitude_km: float = 500.0,
        store: "ArtifactStore | None" = None,
        faults: "FaultPlane | None" = None,
        window: int | None = None,
    ) -> None:
        if not sites:
            raise ValidationError("a link-budget table needs at least one ground site")
        if window is not None:
            if store is not None:
                raise ValidationError(
                    "window and store are mutually exclusive: windowed budgets "
                    "are partial, the artifact store caches full-horizon passes"
                )
            if int(window) != window or window < 1:
                raise ValidationError(f"window must be a positive integer, got {window!r}")
            window = int(window)
        self.ephemeris = ephemeris
        self.sites = list(sites)
        self.fso_model = fso_model
        self.policy = policy or LinkPolicy()
        self.platform_altitude_km = platform_altitude_km
        self.store = store
        self.faults = faults if faults is not None and not faults.is_noop else None
        self.window = window
        self._budgets: dict[str, SiteLinkBudget] = {}
        self._ephemeris_fp: dict | None = None
        self._filled: dict[str, int] = {}
        self._target = 0 if window is None else min(window, ephemeris.n_samples)

    @property
    def site_names(self) -> list[str]:
        """Names of the covered ground sites."""
        return [s.name for s in self.sites]

    def site(self, name: str) -> GroundNode:
        """Site lookup by node name."""
        for s in self.sites:
            if s.name == name:
                return s
        raise ValidationError(f"unknown site {name!r}")

    def budget(self, site_name: str) -> SiteLinkBudget:
        """Link-budget matrices for one site (computed once, memoized).

        With a backing store, the budget is served from the on-disk
        cache when present and persisted after computation otherwise;
        either way the in-process memo makes repeat lookups free.
        """
        if site_name not in self._budgets:
            if self.window is not None:
                return self._materialize_windowed(site_name)
            if self.store is not None:
                if self._ephemeris_fp is None:
                    from repro.engine.store import ephemeris_fingerprint

                    self._ephemeris_fp = ephemeris_fingerprint(self.ephemeris)
                self._budgets[site_name] = self.store.get_or_build_site_budget(
                    self.site(site_name),
                    self.ephemeris,
                    self.fso_model,
                    policy=self.policy,
                    platform_altitude_km=self.platform_altitude_km,
                    ephemeris_fp=self._ephemeris_fp,
                )
            else:
                self._budgets[site_name] = compute_site_budget(
                    self.site(site_name),
                    self.ephemeris,
                    self.fso_model,
                    policy=self.policy,
                    platform_altitude_km=self.platform_altitude_km,
                )
            if self.faults is not None:
                self._budgets[site_name] = self.faults.faulted_site_budget(
                    self._budgets[site_name], self.ephemeris, self.policy
                )
        return self._budgets[site_name]

    # --- windowed incremental fills ----------------------------------------

    def _materialize_windowed(self, site_name: str) -> SiteLinkBudget:
        """Allocate a windowed budget: eager geometry, zeroed eta/admission."""
        site = self.site(site_name)
        _, el, rng = elevation_and_range(
            site.lat_rad, site.lon_rad, site.alt_km, self.ephemeris.positions_ecef_km
        )
        healthy = None if self.faults is None else np.zeros(el.shape, dtype=bool)
        budget = SiteLinkBudget(
            site,
            el,
            rng,
            np.zeros_like(el),
            np.zeros(el.shape, dtype=bool),
            usable_healthy=healthy,
        )
        self._budgets[site_name] = budget
        self._filled[site_name] = 0
        self._fill_site_to(site_name, self._target)
        return budget

    def _fill_site_to(self, site_name: str, target: int) -> None:
        """Fill one windowed budget's series over ``[filled, target)``."""
        j0 = self._filled[site_name]
        if target <= j0:
            return
        budget = self._budgets[site_name]
        el = budget.elevation_rad[:, j0:target]
        rng = budget.slant_range_km[:, j0:target]
        eta, usable = fill_budget_block(
            el, rng, self.fso_model, self.policy, self.platform_altitude_km
        )
        if self.faults is not None:
            chunk = SiteLinkBudget(budget.site, el, rng, eta, usable)
            faulted = self.faults.faulted_site_budget(
                chunk,
                self.ephemeris.at_time_indices(np.arange(j0, target)),
                self.policy,
            )
            eta, usable = faulted.transmissivity, faulted.usable
            assert budget.usable_healthy is not None
            budget.usable_healthy[:, j0:target] = faulted.healthy_usable
        budget.transmissivity[:, j0:target] = eta
        budget.usable[:, j0:target] = usable
        self._filled[site_name] = target

    def ensure_index(self, k: int) -> None:
        """Guarantee every materialised budget is filled through sample ``k``.

        Rounds the fill frontier up to the next ``window`` boundary so a
        streaming engine triggers one chunked fill per window, not one
        per sample. A no-op for eager (non-windowed) tables and for
        indices already inside the filled prefix.
        """
        if self.window is None:
            return
        n = self.ephemeris.n_samples
        if not 0 <= k < n:
            raise ValidationError(f"time index {k} outside [0, {n})")
        target = min(n, (k // self.window + 1) * self.window)
        if target > self._target:
            self._target = target
        for name in self._budgets:
            self._fill_site_to(name, self._target)

    def compute_all(self) -> None:
        """Force computation of every site's budget (full horizon)."""
        for site in self.sites:
            self.budget(site.name)
        if self.window is not None:
            self.ensure_index(self.ephemeris.n_samples - 1)

    def at_time_indices(self, indices: Sequence[int] | np.ndarray) -> "LinkBudgetTable":
        """Table restricted to the given sample indices.

        Every site budget is materialised on the full horizon first and
        then sliced (windowed tables are advanced to the end), so the
        derived table performs no geometry passes of its own.
        """
        if self.window is not None:
            self.compute_all()
        idx = np.asarray(indices, dtype=int)
        table = LinkBudgetTable(
            self.ephemeris.at_time_indices(idx),
            self.sites,
            self.fso_model,
            policy=self.policy,
            platform_altitude_km=self.platform_altitude_km,
        )
        for site in self.sites:
            table._budgets[site.name] = self.budget(site.name).at_time_indices(idx)
        return table
