"""Content-addressed on-disk artifact store for cross-run caching.

Every benchmark and sweep in this repo re-propagates the same
108-satellite ephemeris and re-derives the same link-budget matrices on
every run. This module amortises that work *across runs*: artifacts are
persisted under a cache directory as ``.npz`` payloads with JSON
sidecars, addressed by a SHA-256 digest of the exact inputs that
determine their content —

* an **ephemeris** artifact is keyed by the orbital elements (raw float64
  bytes of every element array), the time grid (duration, step), the
  platform names, and the propagation options (J2, GMST epoch);
* a **site-budget** artifact is keyed by the ephemeris *content* (hashes
  of the sample times and position block), the ground site, every FSO
  channel parameter (atmosphere included), the link-admission policy,
  and the platform altitude.

Changing any single input — one satellite's RAAN, the cadence, a beam
waist, the admission threshold — changes the digest, so a stale artifact
can never be served for fresh inputs; it is simply never looked up.
Artifacts carry no interpretation logic of their own: a loaded array is
bitwise-identical to the one that was computed, so cached and rebuilt
sweeps produce identical results (pinned by ``tests/engine/test_store.py``
and gated in ``benchmarks/bench_artifact_store.py``).

Integrity: payloads are written atomically (temp file + ``os.replace``)
and loaded defensively — a corrupted or truncated ``.npz`` (every zip
member's CRC is verified on load, catching byte flips), a missing or
mismatched sidecar, or wrong array shapes all count as a miss and
trigger a rebuild, never an exception.

Warm loads are **zero-copy**: ``np.savez`` stores members uncompressed,
so each ``.npy`` member occupies a contiguous byte range of the payload
file and can be served as a read-only ``np.memmap`` view straight out of
the page cache. Materialising 31 site-budget matrices (~240 MB) this way
costs file-backed page faults instead of allocating, zeroing and copying
a quarter-gigabyte of anonymous memory per run — the difference between
the warm path being bound by ``memcpy`` and being effectively free. Any
irregularity (a compressed member, an unexpected ``.npy`` format
version) silently falls back to the copying ``np.load`` path.

The store is **opt-in**: nothing caches unless a store is passed
explicitly, the ``REPRO_CACHE_DIR`` environment variable is set, or
:func:`set_default_store` is called (the CLI's ``--cache-dir`` /
``--no-cache`` flags do exactly that).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import struct
import tempfile
import time
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro import obs
from repro.channels.fso import FSOChannelModel
from repro.data.ground_nodes import GroundNode
from repro.engine.budgets import LinkBudgetTable, SiteLinkBudget, compute_site_budget
from repro.errors import ValidationError
from repro.network.links import LinkPolicy
from repro.orbits.elements import ElementSet
from repro.orbits.ephemeris import Ephemeris, generate_movement_sheet

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactStore",
    "StoreStats",
    "canonical_digest",
    "ephemeris_build_key",
    "ephemeris_fingerprint",
    "site_budget_key",
    "default_store",
    "set_default_store",
]

#: Version of the digest schema. Bump whenever the fingerprint layout or
#: the artifact payload format changes; old artifacts are then simply
#: never addressed again (they live under a versioned subdirectory).
SCHEMA_VERSION = 1

#: Environment variable that opt-ins the process-wide default store.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_EPHEMERIS_KIND = "ephemeris"
_SITE_BUDGET_KIND = "site-budget"

# Process-wide mirrors of the per-instance StoreStats counters, so the
# run manifest sees store traffic summed over every store a run touched.
_HITS = obs.counter("store.hits")
_MISSES = obs.counter("store.misses")
_REBUILDS = obs.counter("store.rebuilds")
_WRITES = obs.counter("store.writes")


# --- fingerprinting ----------------------------------------------------------


def _array_fingerprint(array: np.ndarray) -> dict[str, Any]:
    """Shape/dtype/content hash of one array (raw little-endian bytes)."""
    arr = np.ascontiguousarray(array)
    return {
        "shape": list(arr.shape),
        "dtype": arr.dtype.str,
        "sha256": hashlib.sha256(arr.tobytes()).hexdigest(),
    }


def canonical_digest(payload: dict[str, Any]) -> str:
    """SHA-256 digest of a payload dict in canonical JSON form.

    The schema version is folded into every digest, so a schema bump
    invalidates the whole store without touching any file.
    """
    body = json.dumps(
        {"schema": SCHEMA_VERSION, **payload}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(body.encode()).hexdigest()


def _elements_fingerprint(elements: ElementSet) -> dict[str, Any]:
    return {
        name: _array_fingerprint(getattr(elements, name))
        for name in ("a", "e", "inc", "raan", "argp", "nu")
    }


def _fso_fingerprint(model: FSOChannelModel) -> dict[str, Any]:
    out = dataclasses.asdict(model)
    # ``asdict`` already expands the nested ExponentialAtmosphere dataclass
    # (or leaves None); everything left is a JSON-serialisable scalar.
    return out


def _policy_fingerprint(policy: LinkPolicy) -> dict[str, Any]:
    return dataclasses.asdict(policy)


def _site_fingerprint(site: GroundNode) -> dict[str, Any]:
    return dataclasses.asdict(site)


def ephemeris_fingerprint(ephemeris: Ephemeris) -> dict[str, Any]:
    """Content fingerprint of a movement sheet (times, positions, names)."""
    return {
        "times_s": _array_fingerprint(ephemeris.times_s),
        "positions_ecef_km": _array_fingerprint(ephemeris.positions_ecef_km),
        "names": list(ephemeris.names),
    }


def ephemeris_build_key(
    elements: ElementSet,
    *,
    duration_s: float,
    step_s: float,
    names: Sequence[str] | None = None,
    include_j2: bool = False,
    gmst_epoch_rad: float = 0.0,
) -> str:
    """Digest addressing the ephemeris generated from these exact inputs."""
    return canonical_digest(
        {
            "kind": _EPHEMERIS_KIND,
            "elements": _elements_fingerprint(elements),
            "duration_s": float(duration_s),
            "step_s": float(step_s),
            "names": list(names) if names is not None else None,
            "include_j2": bool(include_j2),
            "gmst_epoch_rad": float(gmst_epoch_rad),
        }
    )


def site_budget_key(
    ephemeris_fp: dict[str, Any],
    site: GroundNode,
    fso_model: FSOChannelModel,
    *,
    policy: LinkPolicy,
    platform_altitude_km: float,
) -> str:
    """Digest addressing one site's link-budget matrices.

    ``ephemeris_fp`` is the :func:`ephemeris_fingerprint` of the movement
    sheet the budget is computed against — pass it in precomputed so a
    31-site table hashes the multi-MB position block once, not 31 times.
    """
    return canonical_digest(
        {
            "kind": _SITE_BUDGET_KIND,
            "ephemeris": ephemeris_fp,
            "site": _site_fingerprint(site),
            "fso_model": _fso_fingerprint(fso_model),
            "policy": _policy_fingerprint(policy),
            "platform_altitude_km": float(platform_altitude_km),
        }
    )


# --- zero-copy payload loading -----------------------------------------------

_ZIP_LOCAL_HEADER_LEN = 30
_ZIP_LOCAL_MAGIC = b"PK\x03\x04"


def _mmap_npz(payload: Path) -> dict[str, np.ndarray]:
    """Map every member of an uncompressed ``.npz`` as a read-only array.

    ``np.savez`` stores members with ``ZIP_STORED``, so each ``.npy``
    sits verbatim at a known offset of the payload file; after a
    streaming CRC pass over the member bytes (the same integrity check
    ``zipfile`` performs on read) the array data is served as an
    ``np.memmap`` view — no allocation, no copy, pages fault in from the
    page cache on first touch.

    Raises on anything unexpected (compressed member, Fortran order,
    unknown ``.npy`` version, truncation, CRC mismatch); the caller
    falls back to the copying ``np.load`` path.
    """
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(payload) as zf, open(payload, "rb") as fh:
        for info in zf.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"member {info.filename!r} is compressed")
            if not info.filename.endswith(".npy"):
                raise ValueError(f"unexpected member {info.filename!r}")
            fh.seek(info.header_offset)
            local = fh.read(_ZIP_LOCAL_HEADER_LEN)
            if len(local) != _ZIP_LOCAL_HEADER_LEN or local[:4] != _ZIP_LOCAL_MAGIC:
                raise ValueError("bad zip local header")
            n_name, n_extra = struct.unpack("<HH", local[26:30])
            data_start = info.header_offset + _ZIP_LOCAL_HEADER_LEN + n_name + n_extra
            fh.seek(data_start)
            crc = 0
            remaining = info.file_size
            while remaining:
                chunk = fh.read(min(1 << 20, remaining))
                if not chunk:
                    raise ValueError("truncated member")
                crc = zlib.crc32(chunk, crc)
                remaining -= len(chunk)
            if crc != info.CRC:
                raise ValueError(f"CRC mismatch in member {info.filename!r}")
            fh.seek(data_start)
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
            else:
                raise ValueError(f"unsupported .npy version {version}")
            if fortran:
                raise ValueError("Fortran-ordered member")
            arrays[info.filename[: -len(".npy")]] = np.memmap(
                payload, dtype=dtype, mode="r", shape=shape, offset=fh.tell()
            )
    return arrays


# --- the store ---------------------------------------------------------------


@dataclass
class StoreStats:
    """Counters for one :class:`ArtifactStore` instance.

    Attributes:
        hits: artifacts served from disk.
        misses: artifacts absent and built fresh.
        rebuilds: artifacts present but unreadable (corrupt/truncated/
            mismatched sidecar) and therefore rebuilt.
        writes: artifacts persisted.
    """

    hits: int = 0
    misses: int = 0
    rebuilds: int = 0
    writes: int = 0

    def as_dict(self) -> dict[str, int]:
        """The counters as a plain mapping (manifests, assertions)."""
        return dataclasses.asdict(self)


class ArtifactStore:
    """Content-addressed cache of expensive simulation artifacts.

    Args:
        cache_dir: root directory; artifacts live under a
            ``v<SCHEMA_VERSION>/`` subdirectory so schema bumps never
            collide. Defaults to ``$REPRO_CACHE_DIR`` or
            ``~/.cache/repro-qntn``.

    The store is safe to share across processes: writes are atomic
    renames, and concurrent writers of the same digest produce the same
    bytes (content addressing), so the race is benign.
    """

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_DIR_ENV) or (
                Path.home() / ".cache" / "repro-qntn"
            )
        self.root = Path(cache_dir) / f"v{SCHEMA_VERSION}"
        self.stats = StoreStats()

    # --- paths & raw IO -----------------------------------------------------

    def payload_path(self, kind: str, digest: str) -> Path:
        """Path of an artifact's ``.npz`` payload."""
        return self.root / f"{kind}-{digest}.npz"

    def sidecar_path(self, kind: str, digest: str) -> Path:
        """Path of an artifact's JSON sidecar."""
        return self.root / f"{kind}-{digest}.json"

    def _try_load(self, kind: str, digest: str) -> dict[str, np.ndarray] | None:
        """Load an artifact's arrays, or None on any miss/corruption.

        A present-but-unreadable artifact (bad zip CRC, truncated file,
        missing or mismatched sidecar, wrong shapes) is deleted and
        counted as a rebuild — the caller recomputes and overwrites.
        """
        payload = self.payload_path(kind, digest)
        sidecar = self.sidecar_path(kind, digest)
        if not payload.exists():
            self.stats.misses += 1
            _MISSES.inc()
            return None
        try:
            meta = json.loads(sidecar.read_text())
            if meta.get("digest") != digest or meta.get("schema") != SCHEMA_VERSION:
                raise ValueError("sidecar does not describe this artifact")
            expected: dict[str, Any] = meta["arrays"]
            try:
                arrays = _mmap_npz(payload)
            except Exception:
                # Not servable zero-copy (or corrupt — np.load decides):
                # fall back to the copying loader, whose zip CRC pass
                # raises on genuine corruption.
                with np.load(payload) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            if set(arrays) != set(expected):
                raise ValueError("payload arrays do not match sidecar")
            for name, arr in arrays.items():
                spec = expected[name]
                if list(arr.shape) != spec["shape"] or arr.dtype.str != spec["dtype"]:
                    raise ValueError(f"array {name!r} shape/dtype mismatch")
        except Exception:
            # Corrupt, truncated, or inconsistent: drop it and rebuild.
            self.stats.rebuilds += 1
            _REBUILDS.inc()
            for path in (payload, sidecar):
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        self.stats.hits += 1
        _HITS.inc()
        return arrays

    def _write(
        self,
        kind: str,
        digest: str,
        arrays: dict[str, np.ndarray],
        meta: dict[str, Any],
    ) -> None:
        """Persist an artifact atomically (payload first, sidecar last)."""
        self.root.mkdir(parents=True, exist_ok=True)
        sidecar_body = json.dumps(
            {
                "digest": digest,
                "kind": kind,
                "schema": SCHEMA_VERSION,
                "written_at_unix_s": time.time(),
                "arrays": {
                    name: {"shape": list(a.shape), "dtype": a.dtype.str}
                    for name, a in arrays.items()
                },
                **meta,
            },
            sort_keys=True,
            indent=1,
        )
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".npz.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, self.payload_path(kind, digest))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(sidecar_body)
            os.replace(tmp, self.sidecar_path(kind, digest))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        _WRITES.inc()

    # --- ephemeris artifacts ------------------------------------------------

    def get_or_build_ephemeris(
        self,
        elements: ElementSet,
        *,
        duration_s: float,
        step_s: float,
        names: Sequence[str] | None = None,
        include_j2: bool = False,
        gmst_epoch_rad: float = 0.0,
    ) -> Ephemeris:
        """A movement sheet for these inputs, loaded if cached, else built.

        The cached artifact round-trips bit-exactly: loaded sample times
        and positions equal the propagated ones array-for-array.
        """
        digest = ephemeris_build_key(
            elements,
            duration_s=duration_s,
            step_s=step_s,
            names=names,
            include_j2=include_j2,
            gmst_epoch_rad=gmst_epoch_rad,
        )
        arrays = self._try_load(_EPHEMERIS_KIND, digest)
        if arrays is not None:
            meta = json.loads(self.sidecar_path(_EPHEMERIS_KIND, digest).read_text())
            return Ephemeris(
                arrays["times_s"], arrays["positions_ecef_km"], list(meta["names"])
            )
        ephemeris = generate_movement_sheet(
            elements,
            duration_s=duration_s,
            step_s=step_s,
            names=names,
            include_j2=include_j2,
            gmst_epoch_rad=gmst_epoch_rad,
        )
        self._write(
            _EPHEMERIS_KIND,
            digest,
            {
                "times_s": ephemeris.times_s,
                "positions_ecef_km": ephemeris.positions_ecef_km,
            },
            {
                "names": list(ephemeris.names),
                "inputs": {
                    "duration_s": float(duration_s),
                    "step_s": float(step_s),
                    "include_j2": bool(include_j2),
                    "gmst_epoch_rad": float(gmst_epoch_rad),
                    "n_platforms": ephemeris.n_platforms,
                },
            },
        )
        return ephemeris

    # --- link-budget artifacts ----------------------------------------------

    def get_or_build_site_budget(
        self,
        site: GroundNode,
        ephemeris: Ephemeris,
        fso_model: FSOChannelModel,
        *,
        policy: LinkPolicy | None = None,
        platform_altitude_km: float = 500.0,
        ephemeris_fp: dict[str, Any] | None = None,
    ) -> SiteLinkBudget:
        """One site's link-budget matrices, loaded if cached, else computed.

        Args:
            ephemeris_fp: precomputed :func:`ephemeris_fingerprint`; pass
                it when building many sites against one ephemeris so the
                position block is hashed once.
        """
        policy = policy or LinkPolicy()
        if ephemeris_fp is None:
            ephemeris_fp = ephemeris_fingerprint(ephemeris)
        digest = site_budget_key(
            ephemeris_fp,
            site,
            fso_model,
            policy=policy,
            platform_altitude_km=platform_altitude_km,
        )
        arrays = self._try_load(_SITE_BUDGET_KIND, digest)
        n_expected = (ephemeris.n_platforms, ephemeris.n_samples)
        if arrays is not None and arrays["transmissivity"].shape == n_expected:
            return SiteLinkBudget(
                site,
                arrays["elevation_rad"],
                arrays["slant_range_km"],
                arrays["transmissivity"],
                arrays["usable"],
            )
        budget = compute_site_budget(
            site,
            ephemeris,
            fso_model,
            policy=policy,
            platform_altitude_km=platform_altitude_km,
        )
        self._write(
            _SITE_BUDGET_KIND,
            digest,
            {
                "elevation_rad": budget.elevation_rad,
                "slant_range_km": budget.slant_range_km,
                "transmissivity": budget.transmissivity,
                "usable": budget.usable,
            },
            {"site": _site_fingerprint(site)},
        )
        return budget

    def get_or_build_budget_table(
        self,
        ephemeris: Ephemeris,
        sites: list[GroundNode],
        fso_model: FSOChannelModel,
        *,
        policy: LinkPolicy | None = None,
        platform_altitude_km: float = 500.0,
    ) -> LinkBudgetTable:
        """A :class:`LinkBudgetTable` whose per-site budgets go through
        this store (loaded on a warm run, computed-and-persisted cold).

        Budgets stay lazy: a sweep that only ever touches three sites
        neither computes nor loads the other twenty-eight.
        """
        return LinkBudgetTable(
            ephemeris,
            sites,
            fso_model,
            policy=policy,
            platform_altitude_km=platform_altitude_km,
            store=self,
        )


# --- process-wide default ----------------------------------------------------

_UNSET = object()
_default: Any = _UNSET


def default_store() -> ArtifactStore | None:
    """The process-wide store, or None when caching is off.

    Resolution order: whatever :func:`set_default_store` installed;
    otherwise an :class:`ArtifactStore` rooted at ``$REPRO_CACHE_DIR`` if
    that variable is set; otherwise None (caching disabled — runs behave
    exactly as before this layer existed).
    """
    global _default
    if _default is _UNSET:
        env = os.environ.get(CACHE_DIR_ENV)
        _default = ArtifactStore(env) if env else None
    return _default


def set_default_store(store: ArtifactStore | None) -> ArtifactStore | None:
    """Install (or with None: disable) the process-wide default store.

    Returns the previous value so callers can restore it. Used by the
    CLI's ``--cache-dir`` / ``--no-cache`` flags and by tests.
    """
    global _default
    previous = None if _default is _UNSET else _default
    if not (store is None or isinstance(store, ArtifactStore)):
        raise ValidationError("set_default_store expects an ArtifactStore or None")
    _default = store
    return previous
