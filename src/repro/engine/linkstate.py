"""Time-indexed link-state cache over a quantum network.

:class:`LinkStateCache` precomputes, in vectorized NumPy passes over the
constellation :class:`~repro.orbits.ephemeris.Ephemeris` arrays, the
transmissivity and policy-admission series of every channel in a
:class:`~repro.network.topology.QuantumNetwork` — ground-satellite FSO,
inter-satellite FSO, ground-HAP FSO and fiber alike — on the movement
sheet's sample grid. Link-graph snapshots and Bellman–Ford routing
tables are then memoized per time index; routing tables are keyed on the
weighted feasible-edge set, so timesteps whose usable links (and etas)
are identical — every timestep of a fiber/HAP network, and frozen
periods of a satellite pass — share one table instead of re-running the
relaxation.

The cache reproduces :meth:`QuantumNetwork.link_graph` to floating-point
noise (the scalar path multiplies 3x3 matrices one vector at a time, the
vectorized path uses one einsum); the equivalence suite in
``tests/engine/`` pins served/path decisions exactly and transmissivities
to 1e-12. Time is quantized to the ephemeris grid — queries between
samples resolve to the most recent sample, matching the satellites'
sample-and-hold motion.

The cache snapshots the network at construction: mutate the network (add
hosts/channels, change ephemerides) and the cache is stale — build a new
one (``NetworkSimulator.invalidate_cache`` does this for you).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro import obs
from repro.errors import ValidationError
from repro.network.hap import HAP
from repro.network.links import LinkPolicy, QuantumChannel
from repro.network.satellite import Satellite
from repro.network.topology import LinkGraph, QuantumNetwork
from repro.orbits.visibility import elevation_and_range
from repro.routing.bellman_ford import BellmanFordResult, FlatGraph
from repro.routing.metrics import DEFAULT_EPSILON

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plane import FaultPlane

__all__ = ["LinkStateCache"]

#: Weighted feasible-edge set: sorted ((u, v, eta), ...) with u < v.
EdgeKey = tuple[tuple[str, str, float], ...]

# Memoization accounting (import-time instruments; flag-check when off).
_TREE_HITS = obs.counter("linkstate.tree.hits")
_TREE_MISSES = obs.counter("linkstate.tree.misses")
_GRAPH_HITS = obs.counter("linkstate.graph.hits")
_GRAPH_MISSES = obs.counter("linkstate.graph.misses")


class LinkStateCache:
    """Vectorized per-time-index link graphs and routing tables.

    Args:
        network: the assembled host/channel topology (snapshotted).
        policy: link admission policy (paper defaults).
        epsilon: routing-metric epsilon for the memoized tables.
        times_s: explicit sample grid; defaults to the times of the first
            satellite's ephemeris, or ``[0.0]`` for all-static networks.
        faults: optional compiled :class:`~repro.faults.plane.FaultPlane`;
            when active, every channel's eta/admission series is
            perturbed through :meth:`FaultPlane.apply_edge_series` as it
            is built — the same rule the direct path applies per scalar
            evaluation, so cached-vs-direct equivalence holds under any
            schedule.
        window: optional chunk size (samples) for incremental builds.
            When set, the dynamic channels' eta/admission series start
            zeroed and are filled ``window`` samples at a time as the
            query frontier advances, so a streaming engine pays link
            physics for the samples it has reached instead of a full-day
            precompute. Geometry stays eager and chunk fills are
            elementwise over the time axis (faults included), so a fully
            advanced windowed cache is bitwise equal to an eager one.
    """

    def __init__(
        self,
        network: QuantumNetwork,
        *,
        policy: LinkPolicy | None = None,
        epsilon: float = DEFAULT_EPSILON,
        times_s: np.ndarray | None = None,
        faults: "FaultPlane | None" = None,
        window: int | None = None,
    ) -> None:
        if window is not None:
            if int(window) != window or window < 1:
                raise ValidationError(f"window must be a positive integer, got {window!r}")
            window = int(window)
        self.network = network
        self.policy = policy or LinkPolicy()
        self.epsilon = epsilon
        self.faults = faults if faults is not None and not faults.is_noop else None
        self.window = window
        self.times_s = self._resolve_grid(times_s)
        self._times_list: list[float] = self.times_s.tolist()
        self._host_names = list(network.host_names)
        #: per-channel (name_a, name_b, eta_series, usable_series); the
        #: series are scalars for static channels, (T,) arrays otherwise.
        self._edges: list[tuple[str, str, np.ndarray | float, np.ndarray | bool]] = []
        #: windowed mode: chunk builders filling [j0, j1) of every series.
        self._deferred: list[Callable[[int, int], None]] = []
        self._built_upto = 0
        self._build()
        if not self._deferred:
            self._built_upto = self.n_times
        self._graphs: dict[int, LinkGraph] = {}
        self._keys: dict[int, EdgeKey] = {}
        self._trees: dict[EdgeKey, dict[str, BellmanFordResult]] = {}
        self._flat: dict[EdgeKey, FlatGraph] = {}
        # Per-index alias of the edge-keyed tree memo: hashing an
        # EdgeKey tuple is O(edges) and tuples don't cache their hash,
        # so the request hot path resolves trees by int index instead.
        self._trees_at: dict[int, dict[str, BellmanFordResult]] = {}
        self._cursor = 0
        self.n_tree_builds = 0
        self.n_tree_hits = 0

    # --- construction -------------------------------------------------------

    def _resolve_grid(self, times_s: np.ndarray | None) -> np.ndarray:
        if times_s is not None:
            grid = np.ascontiguousarray(times_s, dtype=float)
            if grid.ndim != 1 or grid.size == 0:
                raise ValidationError("times_s must be a non-empty 1-D array")
            if grid.size > 1 and not np.all(np.diff(grid) > 0):
                raise ValidationError("times_s must be strictly increasing")
            return grid
        for host in self.network.hosts():
            if isinstance(host, Satellite):
                return host.ephemeris.times_s.copy()
        return np.array([0.0])

    def _sample_positions(self, sat: Satellite) -> np.ndarray:
        """Sample-and-hold positions of one satellite on the grid, (T, 3)."""
        eph = sat.ephemeris
        if eph.times_s.shape == self.times_s.shape and np.array_equal(
            eph.times_s, self.times_s
        ):
            return eph.positions_ecef_km[sat.ephemeris_index]
        idx = np.searchsorted(eph.times_s, self.times_s, side="right") - 1
        idx = np.clip(idx, 0, eph.n_samples - 1)
        return eph.positions_ecef_km[sat.ephemeris_index, idx]

    def _hap_mask(self, channel: QuantumChannel) -> np.ndarray | bool:
        """Duty-cycle availability of a channel over the grid."""
        mask: np.ndarray | bool = True
        for host in (channel.host_a, channel.host_b):
            if isinstance(host, HAP) and not host.always_operational:
                op = np.fromiter(
                    (host.is_operational(float(t)) for t in self.times_s),
                    dtype=bool,
                    count=self.times_s.size,
                )
                mask = op if mask is True else (mask & op)
        return mask

    def _build(self) -> None:
        # Group ground-satellite channels by (site, model, altitude) so
        # each group is one vectorized pass over (n_sats, n_times).
        groups: dict[tuple, list[tuple[QuantumChannel, Satellite]]] = {}
        for channel in self.network.channels():
            a, b = channel.host_a, channel.host_b
            sat_ends = [h for h in (a, b) if isinstance(h, Satellite)]
            if not sat_ends:
                self._add_static(channel)
            elif channel.is_ground_to_platform:
                ground = a if a.kind == "ground" else b
                sat = sat_ends[0]
                key = (
                    ground.name,
                    id(sat.ephemeris),
                    id(channel.model),
                    sat.nominal_altitude_km,
                )
                groups.setdefault(key, []).append((channel, sat))
            elif len(sat_ends) == 2:
                self._add_inter_satellite(channel, sat_ends[0], sat_ends[1])
            else:
                self._add_platform_satellite(channel, sat_ends[0])
        for members in groups.values():
            self._add_ground_satellite_group(members)

    def _push_edge(
        self,
        channel: QuantumChannel,
        eta: np.ndarray | float,
        usable: np.ndarray | bool,
    ) -> None:
        """Record one channel's series, fault-perturbed when a plane is active."""
        if self.faults is not None:
            eta, usable = self.faults.apply_edge_series(
                channel, eta, usable, self.times_s, self.policy
            )
        a, b = channel.names
        self._edges.append((a, b, eta, usable))

    def _add_static(self, channel: QuantumChannel) -> None:
        """Fiber / ground-HAP channel: one evaluation, optional duty mask."""
        state = channel.evaluate_physics(float(self.times_s[0]), self.policy)
        usable = self._hap_mask(channel) & np.asarray(state.usable)
        self._push_edge(channel, state.transmissivity, usable)

    def _add_ground_satellite_group(
        self, members: list[tuple[QuantumChannel, Satellite]]
    ) -> None:
        """Vectorized link budget for one site against many satellites.

        The horizon gate mirrors ``QuantumChannel.evaluate``: below or at
        the horizon the link does not exist (eta 0), above it the full
        budget applies (``fill_budget_block`` with ``horizon_rad=0.0``).
        """
        # Function-level import: repro.engine.budgets pulls in the
        # repro.network package, which imports this module — at module
        # import time the name is not resolvable yet.
        from repro.engine.budgets import fill_budget_block

        channel0, sat0 = members[0]
        ground = (
            channel0.host_a if channel0.host_a.kind == "ground" else channel0.host_b
        )
        positions = np.stack([self._sample_positions(sat) for _, sat in members])
        _, el, rng = elevation_and_range(
            ground.lat_rad, ground.lon_rad, ground.alt_km, positions
        )
        if self.window is None:
            eta, usable = fill_budget_block(
                el,
                rng,
                channel0.model,
                self.policy,
                sat0.nominal_altitude_km,
                horizon_rad=0.0,
            )
            for row, (channel, _) in enumerate(members):
                self._push_edge(channel, eta[row], usable[row] & self._hap_mask(channel))
            return

        eta = np.zeros(el.shape)
        usable = np.zeros(el.shape, dtype=bool)
        hap_masks = [self._hap_mask(channel) for channel, _ in members]

        def fill(j0: int, j1: int) -> None:
            e, u = fill_budget_block(
                el[:, j0:j1],
                rng[:, j0:j1],
                channel0.model,
                self.policy,
                sat0.nominal_altitude_km,
                horizon_rad=0.0,
            )
            for row, (channel, _) in enumerate(members):
                e_row, u_row = e[row], u[row]
                mask = hap_masks[row]
                u_row = u_row & (
                    mask if isinstance(mask, (bool, np.bool_)) else mask[j0:j1]
                )
                if self.faults is not None:
                    e_row, u_row = self.faults.apply_edge_series(
                        channel, e_row, u_row, self.times_s[j0:j1], self.policy
                    )
                eta[row, j0:j1] = e_row
                usable[row, j0:j1] = u_row

        self._deferred.append(fill)
        for row, (channel, _) in enumerate(members):
            a, b = channel.names
            self._edges.append((a, b, eta[row], usable[row]))

    def _add_inter_satellite(
        self, channel: QuantumChannel, sat_a: Satellite, sat_b: Satellite
    ) -> None:
        """ISL: vacuum link, distance-only budget (no elevation gate)."""
        delta = self._sample_positions(sat_a) - self._sample_positions(sat_b)
        dist = np.linalg.norm(delta, axis=-1)
        if self.window is None:
            eta = np.asarray(channel.model.transmissivity(dist), dtype=float)
            usable = eta >= self.policy.transmissivity_threshold
            self._push_edge(channel, eta, usable)
            return
        eta = np.zeros(self.n_times)
        usable = np.zeros(self.n_times, dtype=bool)

        def fill(j0: int, j1: int) -> None:
            e = np.asarray(channel.model.transmissivity(dist[j0:j1]), dtype=float)
            u = e >= self.policy.transmissivity_threshold
            if self.faults is not None:
                e, u = self.faults.apply_edge_series(
                    channel, e, u, self.times_s[j0:j1], self.policy
                )
            eta[j0:j1] = e
            usable[j0:j1] = u

        self._deferred.append(fill)
        a, b = channel.names
        self._edges.append((a, b, eta, usable))

    def _add_platform_satellite(self, channel: QuantumChannel, sat: Satellite) -> None:
        """Satellite to non-ground static platform (e.g. HAP): vacuum link."""
        other = (
            channel.host_b if channel.host_a is sat else channel.host_a
        )
        if other.is_mobile:

            def chunk_series(j0: int, j1: int) -> tuple[np.ndarray, np.ndarray]:
                # Unknown mobile platform: fall back to per-sample scalar
                # evaluation so exotic hosts stay correct, just not fast.
                states = [
                    channel.evaluate_physics(float(t), self.policy)
                    for t in self.times_s[j0:j1]
                ]
                e = np.array([s.transmissivity for s in states])
                u = np.array([s.usable for s in states])
                return e, u

        else:
            static = other.position_ecef_km(float(self.times_s[0]))
            dist = np.linalg.norm(self._sample_positions(sat) - static, axis=-1)

            def chunk_series(j0: int, j1: int) -> tuple[np.ndarray, np.ndarray]:
                e = np.asarray(channel.model.transmissivity(dist[j0:j1]), dtype=float)
                u = e >= self.policy.transmissivity_threshold
                return e, u

        if self.window is None:
            eta, usable = chunk_series(0, self.n_times)
            self._push_edge(channel, eta, usable & self._hap_mask(channel))
            return
        eta = np.zeros(self.n_times)
        usable = np.zeros(self.n_times, dtype=bool)
        hap_mask = self._hap_mask(channel)

        def fill(j0: int, j1: int) -> None:
            e, u = chunk_series(j0, j1)
            u = u & (
                hap_mask
                if isinstance(hap_mask, (bool, np.bool_))
                else hap_mask[j0:j1]
            )
            if self.faults is not None:
                e, u = self.faults.apply_edge_series(
                    channel, e, u, self.times_s[j0:j1], self.policy
                )
            eta[j0:j1] = e
            usable[j0:j1] = u

        self._deferred.append(fill)
        a, b = channel.names
        self._edges.append((a, b, eta, usable))

    # --- time lookup --------------------------------------------------------

    @property
    def n_times(self) -> int:
        """Number of grid samples."""
        return self.times_s.size

    def time_index(self, t_s: float) -> int:
        """Index of the most recent grid sample at or before ``t_s`` (clamped).

        Clamping is two-sided: any ``t_s`` before the first sample
        resolves to index 0 (the grid's state is held backwards in time),
        and any ``t_s`` at or past the last sample resolves to the final
        index — out-of-range queries never raise.
        """
        idx = bisect_right(self._times_list, t_s) - 1
        return min(max(idx, 0), self.n_times - 1)

    def advance_index(self, t_s: float) -> int:
        """:meth:`time_index` with a monotonic cursor for streaming callers.

        A long-lived serving loop queries times that only move forward;
        keeping the last resolved index and bisecting only the remaining
        tail of the grid makes each advance O(log remaining) with a
        cursor==answer fast path, instead of re-searching the whole day.

        The result equals :meth:`time_index` for *every* input, clamping
        included: queries *behind* the cursor fall back to the full
        search and return the earlier index, but the cursor itself never
        moves backwards (a subsequent forward query resumes from the
        furthest point reached); queries before the grid clamp to index
        0 and queries at or beyond the last sample clamp to (and park
        the cursor at) the final index. Non-monotonic call sequences are
        therefore safe — only the fast path, not correctness, assumes
        forward motion.
        """
        k = self._cursor
        times = self._times_list
        if times[k] <= t_s:
            if k + 1 >= len(times) or t_s < times[k + 1]:
                return k  # still inside the cursor's sample interval
            k = bisect_right(times, t_s, k + 1) - 1
            k = min(k, self.n_times - 1)
            self._cursor = k
            return k
        return self.time_index(t_s)

    # --- graphs & routing ---------------------------------------------------

    def _ensure_index(self, k: int) -> None:
        """Windowed mode: fill every deferred series through sample ``k``.

        The fill frontier advances in whole windows (rounded up to the
        next ``window`` boundary) so a streaming engine triggers one
        chunked physics pass per window, not one per sample. A no-op for
        eager caches and for indices inside the built prefix.
        """
        if k < self._built_upto:
            return
        assert self.window is not None
        target = min(self.n_times, (k // self.window + 1) * self.window)
        if target <= self._built_upto:
            return
        with obs.span("budget"):
            for fill in self._deferred:
                fill(self._built_upto, target)
        self._built_upto = target

    def graph(self, t_s: float) -> LinkGraph:
        """Usable-link adjacency at ``t_s`` (quantized to the grid)."""
        return self.graph_at_index(self.time_index(t_s))

    def graph_at_index(self, k: int) -> LinkGraph:
        """Usable-link adjacency at grid sample ``k`` (memoized)."""
        if k in self._graphs:
            _GRAPH_HITS.inc()
            return self._graphs[k]
        _GRAPH_MISSES.inc()
        if not 0 <= k < self.n_times:
            raise ValidationError(f"time index {k} outside [0, {self.n_times})")
        self._ensure_index(k)
        graph: LinkGraph = {name: {} for name in self._host_names}
        for a, b, eta, usable in self._edges:
            ok = usable if isinstance(usable, (bool, np.bool_)) else usable[k]
            if ok:
                value = float(eta) if np.ndim(eta) == 0 else float(eta[k])
                graph[a][b] = value
                graph[b][a] = value
        self._graphs[k] = graph
        return graph

    def edge_key(self, k: int) -> EdgeKey:
        """Canonical weighted feasible-edge set at grid sample ``k``.

        Two timesteps with equal keys have identical link graphs, hence
        identical optimal routes — the memoization invariant. Keying on
        the weighted set (not the bare edge set) is what keeps reused
        tables exact: equal topology with drifted etas gets a new table.
        """
        if k not in self._keys:
            graph = self.graph_at_index(k)
            self._keys[k] = tuple(
                sorted(
                    (u, v, eta)
                    for u, neighbors in graph.items()
                    for v, eta in neighbors.items()
                    if u < v
                )
            )
        return self._keys[k]

    def routing_tree(self, t_s: float, source: str) -> BellmanFordResult:
        """Memoized Bellman–Ford tree rooted at ``source`` at time ``t_s``."""
        return self.routing_tree_at_index(self.time_index(t_s), source)

    def routing_tree_at_index(self, k: int, source: str) -> BellmanFordResult:
        """Memoized Bellman–Ford tree at grid sample ``k``.

        The flat edge arrays (node indexing plus per-edge costs) are
        themselves memoized per weighted edge set, so routing N sources
        over one snapshot pays the graph conversion once instead of once
        per source — the relaxation is bit-identical to
        :func:`~repro.routing.bellman_ford.bellman_ford` on the dict
        graph.
        """
        trees = self._trees_at.get(k)
        if trees is None:
            key = self.edge_key(k)
            trees = self._trees.setdefault(key, {})
            self._trees_at[k] = trees
        if source not in trees:
            with obs.span("route"):
                key = self.edge_key(k)
                flat = self._flat.get(key)
                if flat is None:
                    flat = FlatGraph(self.graph_at_index(k), self.epsilon)
                    self._flat[key] = flat
                trees[source] = flat.tree(source)
            self.n_tree_builds += 1
            _TREE_MISSES.inc()
        else:
            self.n_tree_hits += 1
            _TREE_HITS.inc()
        return trees[source]

    # --- diagnostics --------------------------------------------------------

    def feasible_edge_counts(self) -> np.ndarray:
        """Number of usable links at each grid sample, shape ``(T,)``."""
        self._ensure_index(self.n_times - 1)
        counts = np.zeros(self.n_times, dtype=int)
        for _, _, _, usable in self._edges:
            if isinstance(usable, (bool, np.bool_)):
                counts += int(usable)
            else:
                counts += usable.astype(int)
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinkStateCache({len(self._edges)} channels, {self.n_times} samples, "
            f"{len(self._trees)} edge sets memoized)"
        )
