"""Vectorized link-state engine.

The object-level :class:`~repro.network.simulator.NetworkSimulator`
evaluates one channel per Python call, which is exact but loop-bound.
This package holds the array engine underneath the paper-scale sweeps:

* :mod:`repro.engine.budgets` — per-site link-budget matrices
  ``(n_platforms, n_times)`` computed in one NumPy pass, shared between
  the coverage and service analyses.
* :mod:`repro.engine.linkstate` — :class:`LinkStateCache`, the
  time-indexed link-graph and routing-table cache behind the
  ``use_cache=True`` flag of the simulator and the core sweeps.
* :mod:`repro.engine.store` — :class:`ArtifactStore`, the
  content-addressed on-disk cache that persists ephemerides and
  link-budget matrices across runs (``.npz`` + JSON sidecar keyed by a
  SHA-256 digest of the exact inputs).

The direct scalar path stays available everywhere as the test oracle;
``tests/engine/`` pins cached and direct results against each other.
"""

from repro.engine.budgets import LinkBudgetTable, SiteLinkBudget, compute_site_budget
from repro.engine.linkstate import LinkStateCache
from repro.engine.store import (
    SCHEMA_VERSION,
    ArtifactStore,
    StoreStats,
    default_store,
    set_default_store,
)

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactStore",
    "LinkBudgetTable",
    "LinkStateCache",
    "SiteLinkBudget",
    "StoreStats",
    "compute_site_budget",
    "default_store",
    "set_default_store",
]
