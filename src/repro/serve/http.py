"""HTTP observability endpoints for a live :class:`ServeServer`.

A stdlib-only asyncio HTTP/1.1 listener that rides the *same event loop*
as the serving front end — no threads, no web framework — and answers
the four operational questions about a running service:

* ``GET /metrics`` — the full registry in Prometheus text exposition
  format (:func:`repro.obs.export.to_prometheus_text`), cumulative and
  windowed series alike; point a scrape config here.
* ``GET /healthz`` — liveness: 200 while the process serves or holds,
  503 once the server has drained/aborted. Body ``ok``/``closed``.
* ``GET /readyz`` — readiness: 200 only when the engine is built,
  consumers have started, and the ephemeris time cursor has advanced at
  least once (a service that never advanced its cursor has not proven it
  can serve); 503 with the blocking reason otherwise.
* ``GET /status`` — JSON operational snapshot:
  :meth:`ServeServer.status` (per-tenant queue depths, denial-cause
  breakdown, rolling rates/quantiles, fault pressure) plus the SLO
  tracker's objective states when one is attached. ``repro top`` renders
  this endpoint.

Handlers only read server state and windowed instruments — a scrape
never calls into the engine, so observing the service cannot change any
outcome (the differential harness's bit-identity contract survives an
aggressive scraper).

Requests are parsed minimally (request line + headers, no bodies) and
every response closes the connection; that is sufficient for curl,
Prometheus, and the bundled ``repro top``, and keeps the attack surface
of an operational port as small as the feature allows. Bind to
localhost (the default) unless the network is trusted.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.slo import SLOTracker
    from repro.serve.server import ServeServer

__all__ = ["ObservabilityServer"]

_MAX_REQUEST_BYTES = 8192
_REQUEST_TIMEOUT_S = 10.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


class ObservabilityServer:
    """The ``/metrics`` / ``/healthz`` / ``/readyz`` / ``/status`` listener.

    Args:
        server: the :class:`ServeServer` to expose.
        slo: optional :class:`~repro.obs.slo.SLOTracker`; when attached,
            ``/status`` embeds its objective states under ``"slo"``.
        host: bind address (default loopback).
        port: TCP port; 0 picks a free one (tests) — read :attr:`port`
            after :meth:`start` for the bound value.
    """

    def __init__(
        self,
        server: "ServeServer",
        *,
        slo: "SLOTracker | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = server
        self.slo = slo
        self.host = host
        self._requested_port = port
        self._listener: asyncio.AbstractServer | None = None
        self.n_requests = 0

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._listener is None:
            raise ValidationError("observability server not started")
        return self._listener.sockets[0].getsockname()[1]

    async def start(self) -> "ObservabilityServer":
        """Bind and start accepting scrapes; returns self."""
        self._listener = await asyncio.start_server(
            self._handle, host=self.host, port=self._requested_port
        )
        return self

    async def close(self) -> None:
        """Stop accepting connections and release the port."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    # --- endpoint bodies ------------------------------------------------------

    def _metrics(self) -> tuple[int, str, str]:
        from repro.obs.export import to_prometheus_text

        return 200, to_prometheus_text(), "text/plain; version=0.0.4; charset=utf-8"

    def _healthz(self) -> tuple[int, str, str]:
        if self.server._closed:
            return 503, "closed\n", "text/plain; charset=utf-8"
        return 200, "ok\n", "text/plain; charset=utf-8"

    def _readyz(self) -> tuple[int, str, str]:
        reasons = []
        if self.server.engine is None:  # pragma: no cover - defensive
            reasons.append("engine not built")
        if not self.server._started:
            reasons.append("consumers not started")
        if self.server.n_cursor_advances == 0:
            reasons.append("ephemeris cursor has not advanced")
        if self.server._closed:
            reasons.append("server closed")
        if reasons:
            return 503, "not ready: " + "; ".join(reasons) + "\n", "text/plain; charset=utf-8"
        return 200, "ready\n", "text/plain; charset=utf-8"

    def _status(self) -> tuple[int, str, str]:
        status = self.server.status()
        if self.slo is not None:
            status["slo"] = self.slo.status()
        return 200, json.dumps(status, sort_keys=True) + "\n", "application/json"

    # --- plumbing -------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body, content_type = await self._respond(reader)
            payload = body.encode()
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + payload)
            await writer.drain()
        except (ConnectionError, asyncio.TimeoutError):
            pass  # client went away or stalled; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - platform-dependent
                pass

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, str, str]:
        try:
            raw = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=_REQUEST_TIMEOUT_S
            )
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, "malformed request\n", "text/plain; charset=utf-8"
        if len(raw) > _MAX_REQUEST_BYTES:
            return 400, "request too large\n", "text/plain; charset=utf-8"
        request_line = raw.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split()
        if len(parts) != 3:
            return 400, "malformed request\n", "text/plain; charset=utf-8"
        method, target, _version = parts
        if method != "GET":
            return 405, "method not allowed\n", "text/plain; charset=utf-8"
        path = target.split("?", 1)[0]
        self.n_requests += 1
        routes = {
            "/metrics": self._metrics,
            "/healthz": self._healthz,
            "/readyz": self._readyz,
            "/status": self._status,
        }
        handler = routes.get(path)
        if handler is None:
            known = " ".join(sorted(routes))
            return 404, f"not found; endpoints: {known}\n", "text/plain; charset=utf-8"
        return handler()
