"""Always-on request serving: one engine API over the three serving paths.

``repro.serve`` turns the repository's offline day-sweeps into a
service. :mod:`repro.serve.engine` defines the :class:`ServeEngine`
protocol — ``submit(request) -> ServeOutcome`` — and implements it over
the three equivalence-tested serving paths (direct scalar simulator,
vectorized link-state cache, budget-matrix analysis);
:mod:`repro.serve.server` is the asyncio front end with per-tenant
bounded admission queues, backpressure/shedding, and latency/queue
telemetry; :mod:`repro.serve.sharded` replays a stream across worker
processes. The differential harness in ``tests/serve/`` pins streaming
outcomes bit-identical to the batch path per backend, with and without
fault schedules, serial and sharded.

Live operation (DESIGN.md §14): :mod:`repro.serve.http` attaches the
``/metrics`` / ``/healthz`` / ``/readyz`` / ``/status`` observability
endpoints to a running server on the same event loop, and
:mod:`repro.serve.top` renders ``/status`` as the ``repro top``
dashboard. Both read the windowed instruments of
:mod:`repro.obs.live`; SLO alerting over the same instruments lives in
:mod:`repro.obs.slo`.
"""

from repro.serve.engine import (
    ENGINE_KINDS,
    ServeEngine,
    ServeOutcome,
    build_engine,
    outcomes_equal,
)
from repro.serve.http import ObservabilityServer
from repro.serve.server import ServeServer, ServerConfig, StreamReport
from repro.serve.sharded import serve_stream_sharded

__all__ = [
    "ENGINE_KINDS",
    "ObservabilityServer",
    "ServeEngine",
    "ServeOutcome",
    "ServeServer",
    "ServerConfig",
    "StreamReport",
    "build_engine",
    "outcomes_equal",
    "serve_stream_sharded",
]
