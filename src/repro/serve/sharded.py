"""Sharded stream replay: one request stream, many worker processes.

A time-ordered request stream is block-partitioned (contiguous runs of
``request_id``) across worker processes; each worker builds its own
engine over the *full* movement sheet — time quantization must see the
whole grid, a sliced ephemeris would clamp differently at block edges —
and replays its block through a local :class:`~repro.serve.server.ServeServer`
in backpressure mode (no shedding, so outcomes are pure engine physics).
Blocks are gathered in input order, which makes the result independent
of worker count: ``n_workers=0`` (serial, in-process) and any pool size
produce identical outcome lists — the serial == sharded leg of the
differential harness.

The worker protocol mirrors ``repro.parallel.sweep._service_shard``:
the ephemeris travels through shared memory when pooled, each worker
reports its metrics delta and an optional trace-shard payload, and the
parent folds both back in.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any, Sequence

from repro import obs
from repro.errors import ValidationError
from repro.parallel.partition import block_partition
from repro.parallel.shm import (
    EphemerisHandle,
    ShmArena,
    ShmAttachment,
    attach_ephemeris,
    publish_ephemeris,
)
from repro.parallel.sweep import default_worker_count, parallel_map
from repro.routing.metrics import DEFAULT_EPSILON
from repro.serve.engine import ServeOutcome, build_engine
from repro.serve.server import ServeServer, ServerConfig

__all__ = ["serve_stream_sharded"]


def _serve_stream_shard(args: tuple) -> tuple[list[ServeOutcome], dict[str, Any]]:
    """Worker task: replay one contiguous request block through a fresh engine."""
    (
        ephemeris,
        requests,
        kind,
        fso_model,
        policy,
        convention,
        epsilon,
        attribute_denials,
        fault_schedule,
        obs_enabled,
        queue_depth,
        trace_cfg,
        window,
        events_cfg,
        strategy,
    ) = args
    from repro.obs import events, trace
    from repro.obs.metrics import metrics_delta

    if obs_enabled:
        obs.enable()
    if trace_cfg is not None:
        trace.reset_for_worker()
        trace.start_shard(trace_cfg)
    if events_cfg is not None:
        events.reset_for_worker()
        events.start_shard(events_cfg)
    baseline = obs.registry().snapshot()
    t0 = time.perf_counter()
    attachment = ShmAttachment()
    try:
        if isinstance(ephemeris, EphemerisHandle):
            ephemeris = attach_ephemeris(ephemeris, attachment)
        engine = build_engine(
            kind,
            ephemeris,
            fso_model=fso_model,
            policy=policy,
            faults=fault_schedule,
            epsilon=epsilon,
            fidelity_convention=convention,
            attribute_denials=attribute_denials,
            window=window,
            strategy=strategy,
        )
        t_build = time.perf_counter()
        server = ServeServer(
            engine,
            config=ServerConfig(queue_depth=queue_depth, shed_on_full=False),
        )
        stream_report = asyncio.run(server.run(requests))
    finally:
        attachment.close()
    t_serve = time.perf_counter()
    report = {
        "pid": os.getpid(),
        "first_request_id": int(requests[0].request_id) if requests else -1,
        "last_request_id": int(requests[-1].request_id) if requests else -1,
        "n_requests": len(requests),
        "timings_s": {
            "build": t_build - t0,
            "serve": t_serve - t_build,
            "total": t_serve - t0,
        },
        "metrics": metrics_delta(obs.registry().snapshot(), baseline),
    }
    if trace_cfg is not None:
        report["trace"] = trace.finish_shard()
    if events_cfg is not None:
        report["events"] = events.finish_shard()
    return list(stream_report.outcomes), report


def serve_stream_sharded(
    ephemeris: Any,
    requests: Sequence[Any],
    *,
    engine: str = "cached",
    n_workers: int | None = 0,
    n_shards: int | None = None,
    fso_model: Any = None,
    policy: Any = None,
    fidelity_convention: str = "sqrt",
    epsilon: float = DEFAULT_EPSILON,
    attribute_denials: bool = True,
    faults: Any = None,
    queue_depth: int = 1024,
    use_shm: bool | None = None,
    window: int | None = None,
    strategy: Any = None,
) -> list[ServeOutcome]:
    """Replay a timestamped request stream across worker processes.

    Args:
        ephemeris: constellation movement sheet (shared by every worker).
        requests: time-ordered :class:`~repro.network.workload.TimedRequest`
            records.
        engine: backend kind (``cached`` / ``direct`` / ``matrix``).
        n_workers: process count; 0 (default) replays serially in-process.
        n_shards: contiguous request blocks (default: one per worker).
        fso_model / policy / fidelity_convention / epsilon /
        attribute_denials: engine knobs, identical across workers.
        faults: optional realized :class:`~repro.faults.FaultSchedule`
            (each worker compiles the identical plane) or a compiled
            ``FaultPlane``.
        queue_depth: per-tenant admission queue size inside each worker.
        use_shm: ship the ephemeris via shared memory (default: whenever
            a pool is used).
        window: incremental-advance chunk size forwarded to each
            worker's :func:`~repro.serve.engine.build_engine`; a worker
            only fills link state over the samples its block actually
            visits.
        strategy: optional
            :class:`~repro.routing.strategies.StrategyConfig`; every
            worker mounts an identical multipath router. Rescue
            decisions are pure per request, so outcomes stay
            independent of the worker count under any strategy.

    Returns:
        One :class:`ServeOutcome` per request, in ``request_id`` order,
        independent of ``n_workers``.
    """
    if n_workers is None:
        n_workers = default_worker_count()
    stream = list(requests)
    if not stream:
        return []
    if faults is not None:
        if getattr(faults, "is_empty", False):
            faults = None
        elif not getattr(faults, "is_realized", True):
            raise ValidationError(
                "serve_stream_sharded needs a realized FaultSchedule "
                "(call schedule.realize(seed=...) first)"
            )
    from repro.obs import events, trace

    shards = n_shards if n_shards is not None else max(n_workers, 1)
    shards = min(shards, len(stream))
    blocks = [block for block in block_partition(stream, shards) if block]
    pooled = n_workers > 0 and len(blocks) > 1
    if use_shm is None:
        use_shm = pooled
    arena = ShmArena() if (use_shm and pooled) else None
    try:
        payload: Any = (
            publish_ephemeris(arena, ephemeris) if arena is not None else ephemeris
        )
        tasks = [
            (
                payload,
                block,
                engine,
                fso_model,
                policy,
                fidelity_convention,
                epsilon,
                attribute_denials,
                faults,
                obs.enabled(),
                queue_depth,
                trace.shard_config(int(block[0].request_id)) if pooled else None,
                window,
                events.shard_config(int(block[0].request_id)) if pooled else None,
                strategy,
            )
            for block in blocks
        ]
        t_dispatch_us = events.now_us()
        shard_outputs = parallel_map(_serve_stream_shard, tasks, n_workers=n_workers)
    finally:
        if arena is not None:
            arena.close()
    timeline = events.active()
    outcomes: list[ServeOutcome] = []
    for block_outcomes, report in shard_outputs:
        outcomes.extend(block_outcomes)
        metrics = report.pop("metrics", None)
        if pooled and metrics:
            obs.registry().merge(metrics)
        trace.absorb_shard(report.pop("trace", None))
        events_payload = report.pop("events", None)
        if timeline is not None and events_payload is not None:
            # Parent-side dispatch span per shard: the Perfetto export
            # attaches a flow arrow from it to the shard's first event,
            # tying the cross-process timelines together.
            timeline.complete(
                "dispatch",
                begin_us=t_dispatch_us,
                end_us=events.now_us(),
                attrs={"shard": int(events_payload.get("shard", 0))},
            )
        events.absorb_shard(events_payload)
        obs.record_worker_report(report)
    return outcomes
