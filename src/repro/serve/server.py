"""Asyncio front end: admission queues, backpressure, service telemetry.

:class:`ServeServer` runs one consumer task per tenant over bounded
:class:`asyncio.Queue` admission queues. Producers :meth:`submit`
timestamped requests; each consumer advances its engine's monotonic
time cursor to the request's arrival time and serves it. Admission
control has two modes:

* **shedding** (default): a request arriving at a full tenant queue is
  denied immediately with the canonical ``queue_full`` cause — a
  first-class :class:`~repro.serve.engine.ServeOutcome`, counted and
  traceable, never a silent drop;
* **backpressure** (``shed_on_full=False``): :meth:`submit` awaits
  queue space, pushing the arrival process back instead.

Telemetry rides the existing :mod:`repro.obs` plane: served / denied /
shed / cancelled counters, a wall-clock service-latency histogram
(p50/p99 via :meth:`~repro.obs.metrics.Histogram.quantile` land in the
run manifest), queue-depth and active-fault gauges. The
:class:`StreamReport` returned by :meth:`ServeServer.run` carries exact
percentile latencies computed from every sample.

Determinism: engine outcomes are pure functions of the request, so the
interleaving of consumer tasks cannot change any outcome's content —
only completion order, which the report normalizes by ``request_id``.
Shutdown is explicit: :meth:`drain` finishes every admitted request and
checks the accounting invariant (submitted == served + denied + shed),
:meth:`abort` cancels consumers and counts abandoned requests, keeping
the same invariant with cancellations included.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import ValidationError
from repro.obs import events as _events
from repro.obs import live
from repro.obs.trace import DenialCause
from repro.serve.engine import ServeEngine, ServeOutcome

__all__ = [
    "LATENCY_BUCKETS_S",
    "LIVE_WINDOW_S",
    "ServeServer",
    "ServerConfig",
    "StreamReport",
]

#: Latency histogram bucket upper bounds [s]: log-spaced micro- to second scale.
LATENCY_BUCKETS_S = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
)

#: Sliding-window span of the live ``serve.*`` instruments [s].
LIVE_WINDOW_S = 60.0

# Import-time instruments (one flag check each when telemetry is off).
_SUBMITTED = obs.counter("serve.requests.submitted")
_SERVED = obs.counter("serve.requests.served")
_DENIED = obs.counter("serve.requests.denied")
_SHED = obs.counter("serve.requests.shed")
_CANCELLED = obs.counter("serve.requests.cancelled")
_LATENCY = obs.histogram("serve.latency_s", buckets=LATENCY_BUCKETS_S)
_QUEUE_DEPTH = obs.gauge("serve.queue.depth")
_FAULTS_ACTIVE = obs.gauge("serve.faults.active")
_TIME_CURSOR = obs.gauge("serve.time_cursor_s")

# Windowed (live) variants: per-second rates and rolling quantiles over
# the last LIVE_WINDOW_S seconds, for the HTTP scrape plane and the SLO
# tracker. Same one-flag-check-when-disabled contract as above.
_LIVE_SUBMITTED = live.windowed_counter("serve.live.submitted", LIVE_WINDOW_S)
_LIVE_SERVED = live.windowed_counter("serve.live.served", LIVE_WINDOW_S)
_LIVE_DENIED = live.windowed_counter("serve.live.denied", LIVE_WINDOW_S)
_LIVE_SHED = live.windowed_counter("serve.live.shed", LIVE_WINDOW_S)
_LIVE_LATENCY = live.windowed_histogram("serve.live.latency_s", LIVE_WINDOW_S)
_LIVE_QUEUE_DEPTH = live.windowed_gauge("serve.live.queue_depth", LIVE_WINDOW_S)
_LIVE_FAULTS = live.windowed_gauge("serve.live.faults_active", LIVE_WINDOW_S)
_LIVE_CURSOR = live.windowed_gauge("serve.live.cursor_s", LIVE_WINDOW_S)

_SENTINEL = object()


_LIVE_CAUSE_COUNTERS: dict[str, live.WindowedCounter] = {}


def _live_cause_counter(cause: str) -> live.WindowedCounter:
    """Per-denial-cause windowed counter, created on first denial.

    Cached in a module dict: the registry's get-or-create is a hash of
    the full name plus kwargs validation — too heavy for the per-denial
    hot path. Registry resets keep instrument objects registered, so the
    cached references stay live.
    """
    counter = _LIVE_CAUSE_COUNTERS.get(cause)
    if counter is None:
        counter = _LIVE_CAUSE_COUNTERS[cause] = live.windowed_counter(
            f"serve.live.denied.{cause}", LIVE_WINDOW_S
        )
    return counter


@dataclass(frozen=True)
class ServerConfig:
    """Admission-control knobs.

    Attributes:
        queue_depth: per-tenant admission queue capacity.
        shed_on_full: deny (``queue_full``) at a full queue instead of
            making the producer wait.
    """

    queue_depth: int = 1024
    shed_on_full: bool = True

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValidationError("queue_depth must be >= 1")


@dataclass(frozen=True)
class StreamReport:
    """Aggregates of one streamed run.

    ``outcomes`` are sorted by ``request_id`` (completion order is an
    artifact of task interleaving, identity order is canonical).
    """

    outcomes: tuple[ServeOutcome, ...]
    n_submitted: int
    n_served: int
    n_denied: int
    n_shed: int
    n_cancelled: int
    cause_counts: dict[str, int] = field(default_factory=dict)
    latency_p50_s: float = float("nan")
    latency_p99_s: float = float("nan")
    latency_mean_s: float = float("nan")
    max_queue_depth: int = 0
    wall_s: float = float("nan")

    @property
    def served_fraction(self) -> float:
        """Served fraction of completed (non-cancelled) requests."""
        done = self.n_served + self.n_denied + self.n_shed
        return self.n_served / done if done else float("nan")

    @property
    def requests_per_min(self) -> float:
        """Completed requests per wall-clock minute."""
        done = self.n_served + self.n_denied + self.n_shed
        return 60.0 * done / self.wall_s if self.wall_s > 0 else float("nan")

    @property
    def accounting_ok(self) -> bool:
        """Every submitted request is served, denied, shed or cancelled."""
        return (
            self.n_submitted
            == self.n_served + self.n_denied + self.n_shed + self.n_cancelled
        )


class ServeServer:
    """Per-tenant queued serving over one :class:`ServeEngine`.

    Args:
        engine: the serving backend.
        config: admission-control knobs.
        faults: optional compiled
            :class:`~repro.faults.plane.FaultPlane`; consumers report
            ``len(active_events(t))`` on the fault-pressure gauge as the
            cursor advances (the engine already *applies* the plane —
            this is observability only).

    Consumers start on :meth:`start` (or the :meth:`run` convenience).
    Requests submitted before ``start`` still queue — and shed
    deterministically once the queue fills — which the robustness tests
    use to pin shedding behavior without relying on scheduling.
    """

    def __init__(
        self,
        engine: ServeEngine,
        *,
        config: ServerConfig | None = None,
        faults=None,
    ) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self.faults = faults if faults is not None and not faults.is_noop else None
        self.outcomes: list[ServeOutcome] = []
        self.n_submitted = 0
        self.n_served = 0
        self.n_denied = 0
        self.n_shed = 0
        self.n_cancelled = 0
        self.cause_counts: dict[str, int] = {}
        self.max_queue_depth = 0
        self.time_cursor_s: float | None = None
        self.n_cursor_advances = 0
        self._latencies: list[float] = []
        self._queues: dict[str, asyncio.Queue] = {}
        self._consumers: dict[str, asyncio.Task] = {}
        self._started = False
        self._closed = False
        self._created_at = time.monotonic()

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start one consumer task per known tenant (idempotent)."""
        if self._closed:
            raise ValidationError("server already drained/aborted")
        self._started = True
        for tenant, queue in self._queues.items():
            if tenant not in self._consumers:
                self._consumers[tenant] = asyncio.get_running_loop().create_task(
                    self._consume(queue)
                )

    def _queue_for(self, tenant: str) -> asyncio.Queue:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = asyncio.Queue(maxsize=self.config.queue_depth)
            self._queues[tenant] = queue
            if self._started:
                self._consumers[tenant] = asyncio.get_running_loop().create_task(
                    self._consume(queue)
                )
        return queue

    # --- submission ---------------------------------------------------------

    async def submit(self, request) -> ServeOutcome | None:
        """Admit one request; returns its shed outcome, or None if enqueued.

        In shedding mode a full queue denies immediately with cause
        ``queue_full``; in backpressure mode this coroutine waits for
        space. Either way the producer yields to the event loop once, so
        free-running producers and consumers interleave fairly.
        """
        if self._closed:
            raise ValidationError("server already drained/aborted")
        self.n_submitted += 1
        _SUBMITTED.inc()
        _LIVE_SUBMITTED.inc()
        # Timeline root: one trace per request, id derived from the
        # request identity so serial and sharded replays agree. The
        # handle travels with the queue item (cross-coroutine — the root
        # covers submit -> outcome, spanning queue residency) and is
        # closed by _record.
        recorder = _events._ACTIVE
        handle = None
        if recorder is not None:
            handle = recorder.trace_begin(
                f"req-{request.request_id}",
                "request",
                attrs={"tenant": request.tenant, "t_s": request.t_s},
            )
        queue = self._queue_for(request.tenant)
        shed = None
        if self.config.shed_on_full and queue.full():
            shed = ServeOutcome(
                request_id=request.request_id,
                source=request.source,
                destination=request.destination,
                t_s=request.t_s,
                tenant=request.tenant,
                served=False,
                path=(),
                path_eta=0.0,
                fidelity=float("nan"),
                cause=DenialCause.QUEUE_FULL.value,
            )
            self._record(shed, latency=None, handle=handle)
            await asyncio.sleep(0)
            return shed
        await queue.put((request, time.perf_counter(), handle))
        depth = queue.qsize()
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth
        if self.n_submitted & 15 == 0:
            # Depth changes on every put/get; sampling every 16th submit
            # keeps the gauges honest without paying two gauge writes
            # per request. The exact peak stays in max_queue_depth.
            _QUEUE_DEPTH.set(depth)
            _LIVE_QUEUE_DEPTH.set(depth)
        await asyncio.sleep(0)
        return None

    # --- consumption --------------------------------------------------------

    async def _consume(self, queue: asyncio.Queue) -> None:
        while True:
            item = await queue.get()
            if item is _SENTINEL:
                queue.task_done()
                return
            request, enqueued_at, handle = item
            # Everything from here to the next await is atomic with
            # respect to cancellation: a pulled request is always fully
            # recorded, so abort() never half-counts one.
            self.engine.advance_to(request.t_s)
            if request.t_s != self.time_cursor_s:
                # Grid-aligned streams revisit each time sample many
                # times; updating the cursor gauges only on actual
                # movement keeps them off the per-request hot path.
                self.time_cursor_s = request.t_s
                _TIME_CURSOR.set(request.t_s)
                _LIVE_CURSOR.set(request.t_s)
            self.n_cursor_advances += 1
            if self.faults is not None:
                n_active = len(self.faults.active_events(request.t_s))
                _FAULTS_ACTIVE.set(n_active)
                _LIVE_FAULTS.set(n_active)
            if handle is not None:
                # Queue residency as a complete child span (its begin
                # predates this coroutine regaining control), then the
                # engine call scoped under the root so every nested
                # obs.span parents into this trace — or is suppressed
                # wholesale when the trace is unsampled.
                handle.child_complete("queue", begin_us=int(enqueued_at * 1e6))
                with handle.scope():
                    outcome = self.engine.submit(request)
            else:
                outcome = self.engine.submit(request)
            self._record(
                outcome, latency=time.perf_counter() - enqueued_at, handle=handle
            )
            queue.task_done()

    def _record(
        self,
        outcome: ServeOutcome,
        *,
        latency: float | None,
        handle=None,
    ) -> None:
        self.outcomes.append(outcome)
        if outcome.served:
            self.n_served += 1
            _SERVED.inc()
            _LIVE_SERVED.inc()
        elif outcome.cause == DenialCause.QUEUE_FULL.value:
            self.n_shed += 1
            _SHED.inc()
            _LIVE_SHED.inc()
        else:
            self.n_denied += 1
            _DENIED.inc()
            _LIVE_DENIED.inc()
        if outcome.cause is not None:
            self.cause_counts[outcome.cause] = self.cause_counts.get(outcome.cause, 0) + 1
            _live_cause_counter(outcome.cause).inc()
        if latency is not None:
            self._latencies.append(latency)
            if handle is not None and handle.sampled:
                # Retain the trace id of the slowest observation per
                # bucket/window so /metrics exemplars and /status can
                # point at a concrete timeline for any latency spike.
                _LATENCY.observe_with_exemplar(latency, handle.trace_id)
                _LIVE_LATENCY.observe_with_exemplar(latency, handle.trace_id)
            else:
                _LATENCY.observe(latency)
                _LIVE_LATENCY.observe(latency)
        if handle is not None:
            attrs: dict = {"served": outcome.served}
            if outcome.cause is not None:
                attrs["cause"] = outcome.cause
            if outcome.purified:
                # Path-choice detail for multipath deliveries: how many
                # pairs the purification consumed is what distinguishes
                # a rescued request on the timeline.
                attrs["purified"] = True
                attrs["n_paths"] = outcome.n_paths
            handle.end(attrs=attrs)

    # --- shutdown -----------------------------------------------------------

    async def drain(self) -> None:
        """Finish every admitted request, then stop all consumers.

        After the drain the accounting invariant holds with zero
        cancellations; further submissions are rejected.
        """
        self.start()
        for queue in self._queues.values():
            await queue.put(_SENTINEL)
        if self._consumers:
            await asyncio.gather(*self._consumers.values())
        self._consumers.clear()
        self._closed = True

    async def abort(self) -> None:
        """Cancel consumers; count abandoned queued requests as cancelled."""
        for task in self._consumers.values():
            task.cancel()
        if self._consumers:
            await asyncio.gather(*self._consumers.values(), return_exceptions=True)
        self._consumers.clear()
        for queue in self._queues.values():
            while not queue.empty():
                item = queue.get_nowait()
                if item is not _SENTINEL:
                    self.n_cancelled += 1
                    _CANCELLED.inc()
                    handle = item[2]
                    if handle is not None:
                        # Abandoned requests still close their root span
                        # so the timeline never leaks an open trace.
                        handle.end(attrs={"served": False, "cause": "cancelled"})
        self._closed = True

    # --- live observability -------------------------------------------------

    def status(self) -> dict:
        """JSON-safe live snapshot of the server — the ``/status`` body.

        Everything here reads existing state or the windowed instruments;
        no engine work happens, so a scrape never perturbs serving.
        """
        denial_rates = {
            cause: _live_cause_counter(cause).rate() for cause in self.cause_counts
        }
        return {
            "engine": self.engine.name,
            "kernel_backend": self.engine.kernel_backend,
            "started": self._started,
            "closed": self._closed,
            "uptime_s": time.monotonic() - self._created_at,
            "time_cursor_s": self.time_cursor_s,
            "cursor_advances": self.n_cursor_advances,
            "window": self.engine.window,
            "engine_cursor": self.engine.cursor_info(),
            "window_s": LIVE_WINDOW_S,
            "counts": {
                "submitted": self.n_submitted,
                "served": self.n_served,
                "denied": self.n_denied,
                "shed": self.n_shed,
                "cancelled": self.n_cancelled,
            },
            "rates_per_s": {
                "submitted": _LIVE_SUBMITTED.rate(),
                "served": _LIVE_SERVED.rate(),
                "denied": _LIVE_DENIED.rate(),
                "shed": _LIVE_SHED.rate(),
            },
            "latency_s": {
                "p50": _LIVE_LATENCY.quantile(0.5),
                "p99": _LIVE_LATENCY.quantile(0.99),
                "mean": _LIVE_LATENCY.mean(),
                "window_count": _LIVE_LATENCY.count(),
                "exemplar": _LIVE_LATENCY.exemplar(),
            },
            "queues": {
                tenant: queue.qsize() for tenant, queue in sorted(self._queues.items())
            },
            "max_queue_depth": self.max_queue_depth,
            "denial_causes": dict(self.cause_counts),
            "denial_rates_per_s": denial_rates,
            "faults_active": (
                len(self.faults.active_events(self.time_cursor_s))
                if self.faults is not None and self.time_cursor_s is not None
                else 0
            ),
        }

    def slo_tracker(self, spec):
        """An :class:`~repro.obs.slo.SLOTracker` over this server's live
        instruments (shared process-wide — one tracker per process)."""
        from repro.obs.slo import SLOTracker

        return SLOTracker(
            spec,
            submitted=_LIVE_SUBMITTED,
            served=_LIVE_SERVED,
            denied=_LIVE_DENIED,
            shed=_LIVE_SHED,
            latency=_LIVE_LATENCY,
        )

    # --- reporting ----------------------------------------------------------

    def report(self, *, wall_s: float = float("nan")) -> StreamReport:
        """Snapshot the run as a :class:`StreamReport` (exact percentiles)."""
        if self._latencies:
            lat = np.asarray(self._latencies)
            p50, p99 = (float(q) for q in np.percentile(lat, [50.0, 99.0]))
            mean = float(lat.mean())
        else:
            p50 = p99 = mean = float("nan")
        return StreamReport(
            outcomes=tuple(sorted(self.outcomes, key=lambda o: o.request_id)),
            n_submitted=self.n_submitted,
            n_served=self.n_served,
            n_denied=self.n_denied,
            n_shed=self.n_shed,
            n_cancelled=self.n_cancelled,
            cause_counts=dict(self.cause_counts),
            latency_p50_s=p50,
            latency_p99_s=p99,
            latency_mean_s=mean,
            max_queue_depth=self.max_queue_depth,
            wall_s=wall_s,
        )

    async def run(self, requests) -> StreamReport:
        """Convenience: start, submit a whole stream, drain, report."""
        t0 = time.perf_counter()
        self.start()
        for request in requests:
            await self.submit(request)
        await self.drain()
        return self.report(wall_s=time.perf_counter() - t0)
