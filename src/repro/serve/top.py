"""``repro top`` — a curses-free live dashboard over ``/status``.

Polls the JSON ``/status`` endpoint of a running service
(:mod:`repro.serve.http`) and redraws one terminal screen per poll using
plain ANSI clear codes — no curses, no dependencies, works in any
terminal and degrades to sequential frames when piped to a file.

The renderer (:func:`render_dashboard`) is a pure function of one
status dict, so tests pin the screen layout without a server; the poll
loop (:func:`run_top`) owns the fetching, clearing, and Ctrl-C exit.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.errors import ValidationError

__all__ = ["fetch_status", "render_dashboard", "run_top"]

#: ANSI: clear screen, cursor home.
_CLEAR = "\x1b[2J\x1b[H"

_STATE_BADGES = {"ok": "OK", "warning": "WARN", "critical": "CRIT"}


def fetch_status(url: str, *, timeout_s: float = 5.0) -> dict[str, Any]:
    """GET ``url`` and parse the JSON ``/status`` body."""
    if not url.startswith(("http://", "https://")):
        raise ValidationError(f"status URL must be http(s), got {url!r}")
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            body = response.read()
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        raise ValidationError(f"cannot fetch {url}: {exc}") from exc
    try:
        data = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{url} did not return JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValidationError(f"{url} did not return a JSON object")
    return data


def _fmt_s(value: Any) -> str:
    if value is None:
        return "-"
    return f"{float(value):.4g}"


def _fmt_ms(value: Any) -> str:
    if value is None or value != value:
        return "-"
    return f"{1e3 * float(value):.3f} ms"


def _bar(fraction: float, width: int = 24) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def render_dashboard(status: Mapping[str, Any], *, url: str = "") -> str:
    """One dashboard frame for a ``/status`` payload."""
    counts = status.get("counts") or {}
    rates = status.get("rates_per_s") or {}
    latency = status.get("latency_s") or {}
    lines: list[str] = []

    header = "repro top"
    if url:
        header += f" - {url}"
    lines.append(header)
    lines.append("=" * max(len(header), 60))
    fill = status.get("window")
    engine_cursor = status.get("engine_cursor") or {}
    t_index = engine_cursor.get("t_index")
    lines.append(
        f"engine {status.get('engine', '?')} | "
        f"kernels {status.get('kernel_backend', '?')} | "
        f"window {fill if fill is not None else 'full'} | "
        f"uptime {_fmt_s(status.get('uptime_s'))} s | "
        f"cursor {_fmt_s(status.get('time_cursor_s'))} s"
        + (f" @ sample {t_index}" if t_index is not None else "")
        + f" ({status.get('cursor_advances', 0)} advances) | "
        f"faults {status.get('faults_active', 0)}"
    )
    lines.append("")

    submitted = counts.get("submitted", 0) or 0
    served = counts.get("served", 0) or 0
    completed = served + (counts.get("denied", 0) or 0) + (counts.get("shed", 0) or 0)
    served_frac = served / completed if completed else 0.0
    lines.append(
        f"requests  submitted {submitted}  served {served}  "
        f"denied {counts.get('denied', 0)}  shed {counts.get('shed', 0)}  "
        f"cancelled {counts.get('cancelled', 0)}"
    )
    lines.append(
        f"served    [{_bar(served_frac)}] {100 * served_frac:6.2f} % of completed"
    )
    window = status.get("window_s")
    suffix = f" (last {window:g} s)" if isinstance(window, (int, float)) else ""
    lines.append(
        f"rates{suffix}  submit {_fmt_s(rates.get('submitted'))}/s  "
        f"serve {_fmt_s(rates.get('served'))}/s  "
        f"deny {_fmt_s(rates.get('denied'))}/s  "
        f"shed {_fmt_s(rates.get('shed'))}/s"
    )
    exemplar = latency.get("exemplar")
    exemplar_txt = (
        f"  worst {_fmt_ms(exemplar.get('value'))} ({exemplar.get('trace_id')})"
        if isinstance(exemplar, Mapping)
        else ""
    )
    lines.append(
        f"latency   p50 {_fmt_ms(latency.get('p50'))}  "
        f"p99 {_fmt_ms(latency.get('p99'))}  "
        f"mean {_fmt_ms(latency.get('mean'))}  "
        f"n {latency.get('window_count', 0)}"
        + exemplar_txt
    )
    lines.append("")

    queues = status.get("queues") or {}
    if queues:
        lines.append("tenant queues")
        peak = max(1, status.get("max_queue_depth") or 1)
        for tenant, depth in sorted(queues.items()):
            lines.append(
                f"  {tenant:<16} {depth:>6}  [{_bar(depth / peak, 16)}]"
            )
        lines.append("")

    causes = status.get("denial_causes") or {}
    if causes:
        cause_rates = status.get("denial_rates_per_s") or {}
        lines.append("denial causes")
        for cause, count in sorted(causes.items(), key=lambda kv: -kv[1]):
            rate = cause_rates.get(cause)
            rate_txt = f"  {_fmt_s(rate)}/s" if rate is not None else ""
            lines.append(f"  {cause:<24} {count:>8}{rate_txt}")
        lines.append("")

    slo = status.get("slo")
    if isinstance(slo, Mapping):
        lines.append("slo")
        for name, objective in sorted((slo.get("objectives") or {}).items()):
            badge = _STATE_BADGES.get(objective.get("state", "ok"), "?")
            lines.append(
                f"  [{badge:>4}] {name:<14} "
                f"burn {_fmt_s(objective.get('burn_short'))} (short) / "
                f"{_fmt_s(objective.get('burn_long'))} (long)  "
                f"budget {_fmt_s(objective.get('budget'))}"
            )
        lines.append("")

    return "\n".join(lines)


def run_top(
    url: str,
    *,
    interval_s: float = 2.0,
    iterations: int = 0,
    stream=None,
    clear: bool = True,
) -> int:
    """Poll ``url`` and redraw the dashboard until stopped.

    Args:
        url: the service's ``/status`` endpoint.
        interval_s: seconds between polls.
        iterations: stop after this many frames (0 = until Ctrl-C or the
            endpoint disappears).
        stream: output stream (default stdout).
        clear: ANSI-clear between frames (off for captured output).

    Returns a process exit code: 0 on clean exit (including the server
    going away *after* at least one successful frame — a finished run is
    not an error), 1 when the very first poll fails.
    """
    out = stream if stream is not None else sys.stdout
    frames = 0
    try:
        while True:
            try:
                status = fetch_status(url)
            except ValidationError as exc:
                if frames == 0:
                    print(f"repro top: {exc}", file=sys.stderr)
                    return 1
                print(f"\nrepro top: service gone ({exc})", file=out)
                return 0
            if clear:
                out.write(_CLEAR)
            print(render_dashboard(status, url=url), file=out)
            out.flush()
            frames += 1
            if iterations and frames >= iterations:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        print("", file=out)
        return 0
