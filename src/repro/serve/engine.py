"""The :class:`ServeEngine` protocol and its three backends.

One request API — ``submit(request) -> ServeOutcome`` — over the three
serving paths the repository already equivalence-tests offline:

* ``direct``: per-channel scalar evaluation through
  :class:`~repro.network.simulator.NetworkSimulator` (the oracle);
* ``cached``: the same simulator reading the vectorized
  :class:`~repro.engine.linkstate.LinkStateCache`;
* ``matrix``: the budget-matrix two-hop relay argmin of
  :class:`~repro.core.analysis.SpaceGroundAnalysis`.

Every engine also exposes the *batch* shape of its path through
:meth:`ServeEngine.serve_batch` — for the simulator engines that is
:meth:`NetworkSimulator.serve_requests` (shared routing trees), for the
matrix engine :meth:`SpaceGroundAnalysis.serve` — and the differential
harness in ``tests/serve/`` asserts that replaying one timestamped
request sequence through ``submit`` and through ``serve_batch`` yields
bit-identical outcomes per backend: the streaming front end cannot
drift from the sweeps the paper numbers come from.

Outcomes are pure functions of ``(source, destination, t_s)`` — an
engine holds no per-request mutable state — which is what makes the
async front end deterministic regardless of task interleaving, and a
sharded replay identical to a serial one.

Time advances through :meth:`ServeEngine.advance_to`: a monotonic
cursor over the precomputed series (grid bisection from the last
position, never a full-day recompute), mirroring
:meth:`LinkStateCache.advance_index`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro import kernels, obs
from repro.errors import ValidationError
from repro.obs import live
from repro.routing.metrics import DEFAULT_EPSILON

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.analysis import SpaceGroundAnalysis
    from repro.network.simulator import NetworkSimulator, RequestOutcome
    from repro.network.workload import TimedRequest
    from repro.orbits.ephemeris import Ephemeris
    from repro.routing.strategies import StrategyConfig

__all__ = [
    "ENGINE_KINDS",
    "MatrixServeEngine",
    "ServeEngine",
    "ServeOutcome",
    "SimulatorServeEngine",
    "build_engine",
    "outcomes_equal",
]

#: The recognised ``build_engine`` kinds, CLI choice order.
ENGINE_KINDS = ("cached", "direct", "matrix")

# Live engine-level instruments: request rate through the backend (both
# the streaming and the batch shape) and the ephemeris cursor position —
# what the /readyz "cursor advancing" check and `repro top` watch.
_LIVE_ENGINE_SUBMITS = live.windowed_counter("serve.live.engine.submits")
_LIVE_ENGINE_CURSOR = live.windowed_gauge("serve.live.engine.cursor_s")


@dataclass(frozen=True)
class ServeOutcome:
    """Result of one streamed entanglement request.

    Attributes:
        request_id: identity of the originating
            :class:`~repro.network.workload.TimedRequest`.
        source / destination: endpoint host names.
        t_s: arrival (= service) time.
        tenant: admission-queue label the request travelled under.
        served: whether a usable route existed.
        path: routed node sequence (empty if unserved).
        path_eta: end-to-end transmissivity (0 if unserved).
        fidelity: delivered entanglement fidelity (NaN if unserved).
        cause: canonical :class:`~repro.obs.trace.DenialCause` value
            when unserved (``None`` when served, or when the engine ran
            with denial attribution off). Strategy-attributed causes
            (``route_exhausted`` / ``memory_full``) are decided during
            serving and survive even with attribution off.
        n_paths: entangled pairs consumed (1 on the single-path router,
            >= 2 for a purified multipath delivery).
        purified: whether the delivery went through the multipath
            purification scheduler.

    Deliberately carries no wall-clock latency and no engine label:
    the record is the *physics* answer, so streaming-vs-batch and
    serial-vs-sharded comparisons are plain field equality. Latency is
    a property of the front end and lives in its metrics.
    """

    request_id: int
    source: str
    destination: str
    t_s: float
    tenant: str
    served: bool
    path: tuple[str, ...]
    path_eta: float
    fidelity: float
    cause: str | None
    n_paths: int = 1
    purified: bool = False


def outcomes_equal(a: ServeOutcome, b: ServeOutcome) -> bool:
    """Field-wise equality treating NaN fidelity as equal (denied outcomes)."""
    if (
        a.request_id,
        a.source,
        a.destination,
        a.t_s,
        a.tenant,
        a.served,
        a.path,
        a.cause,
        a.n_paths,
        a.purified,
    ) != (
        b.request_id,
        b.source,
        b.destination,
        b.t_s,
        b.tenant,
        b.served,
        b.path,
        b.cause,
        b.n_paths,
        b.purified,
    ):
        return False
    if a.path_eta != b.path_eta:
        return False
    if math.isnan(a.fidelity) and math.isnan(b.fidelity):
        return True
    return a.fidelity == b.fidelity


class ServeEngine:
    """Common protocol of the three serving backends.

    Subclasses implement :meth:`submit` (one request, the streaming
    shape), :meth:`_serve_group` (all requests of one timestamp, the
    batch shape) and :meth:`advance_to` (monotonic state cursor).
    """

    #: Backend label ("direct" / "cached" / "matrix").
    name: str = "?"

    @property
    def kernel_backend(self) -> str:
        """Active :mod:`repro.kernels` dispatch backend ("numpy"/"numba").

        Surfaced in run manifests so a recorded number can always be
        attributed to the code path that produced it.
        """
        return kernels.active_backend()

    @property
    def window(self) -> int | None:
        """Incremental-advance chunk size in ephemeris samples.

        ``None`` means the backend precomputed its whole horizon eagerly
        (or, for ``direct``, evaluates per request and has no notion of
        a fill window). Surfaced on ``/status`` and in the manifest's
        ``extra.serve`` so an operator can see which mode is live.
        """
        return None

    def cursor_info(self) -> dict:
        """Engine time-cursor position (grid index and seconds).

        Read-only observability for ``/status`` — mirrors what the
        manifest's ``extra.serve`` records at end of run.
        """
        return {"t_index": None, "t_s": None}

    def submit(self, request: "TimedRequest") -> ServeOutcome:
        """Serve one request at its arrival time."""
        raise NotImplementedError

    def advance_to(self, t_s: float) -> None:
        """Advance the engine's time cursor to ``t_s`` (monotonic)."""
        raise NotImplementedError

    def _serve_group(
        self, t_s: float, group: Sequence["TimedRequest"]
    ) -> list[ServeOutcome]:
        """Serve all requests sharing one timestamp through the batch path."""
        raise NotImplementedError

    def serve_batch(self, requests: Iterable["TimedRequest"]) -> list[ServeOutcome]:
        """Replay a time-ordered stream through the backend's batch path.

        Consecutive requests with equal timestamps form one batch call —
        exactly how the offline sweeps evaluate a request set per sample
        — so this is the reference the differential harness compares
        :meth:`submit` against.
        """
        outcomes: list[ServeOutcome] = []
        group: list[TimedRequest] = []
        for request in requests:
            if group and request.t_s != group[0].t_s:
                outcomes.extend(self._serve_group(group[0].t_s, group))
                group = []
            group.append(request)
        if group:
            outcomes.extend(self._serve_group(group[0].t_s, group))
        return outcomes


class SimulatorServeEngine(ServeEngine):
    """``direct`` / ``cached`` backend over a :class:`NetworkSimulator`.

    Streaming requests go through :meth:`NetworkSimulator.serve_request`,
    batches through :meth:`NetworkSimulator.serve_requests`; both reduce
    to the same Bellman–Ford relaxation and fidelity closed form, which
    is why the differential harness can demand bit-identity between
    them.

    Args:
        simulator: the bound simulator; its ``use_cache`` flag decides
            which serving path (and this engine's ``name``).
        attribute_denials: compute the canonical denial cause for every
            unserved request (the flight-recorder cascade re-evaluates
            each candidate uplink, ~2 scalar channel evaluations per
            platform — exact but far off the hot path). Disable for
            throughput runs; denied outcomes then carry ``cause=None``.
    """

    def __init__(
        self, simulator: "NetworkSimulator", *, attribute_denials: bool = True
    ) -> None:
        self.simulator = simulator
        self.attribute_denials = attribute_denials
        self.name = "cached" if simulator.use_cache else "direct"
        self._cursor_s: float | None = None

    @property
    def window(self) -> int | None:
        if self.simulator.use_cache:
            return self.simulator.linkstate.window
        return None

    def cursor_info(self) -> dict:
        t_index = (
            int(self.simulator.linkstate._cursor) if self.simulator.use_cache else None
        )
        return {"t_index": t_index, "t_s": self._cursor_s}

    def advance_to(self, t_s: float) -> None:
        if t_s != self._cursor_s:
            # Grid-aligned streams call this with a repeated t_s many
            # times per sample; the gauge only needs actual movement.
            self._cursor_s = t_s
            _LIVE_ENGINE_CURSOR.set(t_s)
        if self.simulator.use_cache:
            with obs.span("propagate"):
                self.simulator.linkstate.advance_index(t_s)

    def _outcome(self, request: "TimedRequest", raw: "RequestOutcome") -> ServeOutcome:
        # A strategy-attributed cause was decided during serving (the
        # rescue already knows why it failed); only legacy denials pay
        # the post-hoc gate cascade, and only when attribution is on.
        cause = raw.cause
        if cause is None and not raw.served and self.attribute_denials:
            cause = self.simulator.denial_cause(
                request.source, request.destination, request.t_s
            ).value
        return ServeOutcome(
            request_id=request.request_id,
            source=request.source,
            destination=request.destination,
            t_s=request.t_s,
            tenant=request.tenant,
            served=raw.served,
            path=raw.path,
            path_eta=raw.path_transmissivity,
            fidelity=raw.fidelity,
            cause=cause,
            n_paths=raw.n_paths,
            purified=raw.purified,
        )

    def submit(self, request: "TimedRequest") -> ServeOutcome:
        _LIVE_ENGINE_SUBMITS.inc()
        with obs.span("serve"):
            raw = self.simulator.serve_request(
                request.source, request.destination, request.t_s
            )
            return self._outcome(request, raw)

    def _serve_group(
        self, t_s: float, group: Sequence["TimedRequest"]
    ) -> list[ServeOutcome]:
        _LIVE_ENGINE_SUBMITS.inc(len(group))
        with obs.span("serve"):
            raws = self.simulator.serve_requests([r.endpoints for r in group], t_s)
            return [self._outcome(r, raw) for r, raw in zip(group, raws)]


class MatrixServeEngine(ServeEngine):
    """``matrix`` backend over a :class:`SpaceGroundAnalysis`.

    Serves a request as the two-hop relay argmin of the precomputed
    ``(n_sats, n_times)`` budget matrices: path ``src -> relay -> dst``
    with ``eta = eta_src * eta_dst``, fidelity through the same closed
    form as the simulator paths. Arrival times quantize to the ephemeris
    grid through a monotonic cursor (the same most-recent-sample rule as
    :meth:`LinkStateCache.advance_index`). Denial causes come from
    :meth:`SpaceGroundAnalysis.request_detail`, which reads the same
    matrices — cheap enough to leave on.
    """

    name = "matrix"

    def __init__(
        self,
        analysis: "SpaceGroundAnalysis",
        *,
        epsilon: float = DEFAULT_EPSILON,
        fidelity_convention: str = "sqrt",
        n_satellites: int | None = None,
        attribute_denials: bool = True,
        strategy=None,
        relaxed_analysis: "SpaceGroundAnalysis | None" = None,
    ) -> None:
        self.analysis = analysis
        self.epsilon = epsilon
        self.fidelity_convention = fidelity_convention
        self.n_satellites = n_satellites
        self.attribute_denials = attribute_denials
        #: Active multipath strategy and its relaxed-policy twin of the
        #: budget analysis (same ephemeris/model/faults, lower
        #: threshold) — the matrix backend's rescue candidate source.
        self.strategy = strategy
        self._relaxed = relaxed_analysis
        self._cursor = 0
        self._cursor_s: float | None = None
        self._windowed = analysis.table.window is not None

    @property
    def window(self) -> int | None:
        return self.analysis.table.window

    def cursor_info(self) -> dict:
        return {"t_index": int(self._cursor), "t_s": self._cursor_s}

    # --- time cursor --------------------------------------------------------

    def advance_to(self, t_s: float) -> None:
        if t_s != self._cursor_s:
            self._cursor_s = t_s
            _LIVE_ENGINE_CURSOR.set(t_s)
        with obs.span("propagate"):
            self.time_index(t_s)

    def _ensure(self, k: int) -> int:
        """Windowed tables: pull the budget fill frontier past ``k``."""
        if self._windowed:
            with obs.span("budget"):
                self.analysis.ensure_time_index(k)
        return k

    def time_index(self, t_s: float) -> int:
        """Grid index for ``t_s``: monotonic-cursor bisection, full search
        behind the cursor (result always equals the plain searchsorted rule)."""
        times = self.analysis.times_s
        k = self._cursor
        if times[k] <= t_s:
            if k + 1 >= times.size or t_s < times[k + 1]:
                return self._ensure(k)
            k = k + int(np.searchsorted(times[k + 1 :], t_s, side="right"))
            k = min(k, times.size - 1)
            self._cursor = k
            return self._ensure(k)
        idx = int(np.searchsorted(times, t_s, side="right") - 1)
        return self._ensure(min(max(idx, 0), times.size - 1))

    # --- serving ------------------------------------------------------------

    def _rescue(self, request: "TimedRequest", time_index: int):
        """Multipath rescue over the relaxed budget matrices.

        Returns the strategy's :class:`~repro.routing.strategies.MultipathPlan`,
        or ``None`` when no strategy is active or the relaxed matrices
        hold no candidate relay (legacy attribution then applies).
        """
        strategy = self.strategy
        if strategy is None or self._relaxed is None or not strategy.active:
            return None
        if self._relaxed.table.window is not None:
            with obs.span("budget"):
                self._relaxed.ensure_time_index(time_index)
        pair = (request.source, request.destination)

        def enumerate_pair(p: tuple[str, str]):
            return strategy.matrix_candidates(
                self._relaxed, p[0], p[1], time_index, self.n_satellites
            )

        candidates = strategy.candidates(pair, ("k", time_index), enumerate_pair)
        if not candidates:
            return None
        return strategy.plan(candidates, request.t_s)

    def _outcome(
        self, request: "TimedRequest", time_index: int, eta: float | None
    ) -> ServeOutcome:
        if eta is None:
            plan = self._rescue(request, time_index)
            if plan is not None and plan.served:
                return ServeOutcome(
                    request_id=request.request_id,
                    source=request.source,
                    destination=request.destination,
                    t_s=request.t_s,
                    tenant=request.tenant,
                    served=True,
                    path=plan.path,
                    path_eta=plan.eta,
                    fidelity=plan.fidelity,
                    cause=None,
                    n_paths=plan.n_paths,
                    purified=True,
                )
            cause = plan.cause if plan is not None else None
            if cause is None and self.attribute_denials:
                detail = self.analysis.request_detail(
                    request.source,
                    request.destination,
                    time_index,
                    self.epsilon,
                    n_satellites=self.n_satellites,
                    max_candidates=0,
                )
                cause = detail["cause"].value
            return ServeOutcome(
                request_id=request.request_id,
                source=request.source,
                destination=request.destination,
                t_s=request.t_s,
                tenant=request.tenant,
                served=False,
                path=(),
                path_eta=0.0,
                fidelity=float("nan"),
                cause=cause,
            )
        from repro.quantum.fidelity import entanglement_fidelity_from_transmissivity

        hit = self.analysis.best_relay(
            request.source,
            request.destination,
            time_index,
            self.epsilon,
            n_satellites=self.n_satellites,
        )
        relay = self.analysis.ephemeris.names[hit[0]]
        fidelity = float(
            entanglement_fidelity_from_transmissivity(
                eta, convention=self.fidelity_convention
            )
        )
        return ServeOutcome(
            request_id=request.request_id,
            source=request.source,
            destination=request.destination,
            t_s=request.t_s,
            tenant=request.tenant,
            served=True,
            path=(request.source, relay, request.destination),
            path_eta=eta,
            fidelity=fidelity,
            cause=None,
        )

    def submit(self, request: "TimedRequest") -> ServeOutcome:
        _LIVE_ENGINE_SUBMITS.inc()
        k = self.time_index(request.t_s)
        with obs.span("serve"):
            hit = self.analysis.best_relay(
                request.source,
                request.destination,
                k,
                self.epsilon,
                n_satellites=self.n_satellites,
            )
            return self._outcome(request, k, None if hit is None else hit[1])

    def _serve_group(
        self, t_s: float, group: Sequence["TimedRequest"]
    ) -> list[ServeOutcome]:
        _LIVE_ENGINE_SUBMITS.inc(len(group))
        k = self.time_index(t_s)
        with obs.span("serve"):
            etas = self.analysis.serve(
                [r.endpoints for r in group], k, self.epsilon,
                n_satellites=self.n_satellites,
            )
            return [self._outcome(r, k, eta) for r, eta in zip(group, etas)]


def build_engine(
    kind: str,
    ephemeris: "Ephemeris",
    *,
    sites=None,
    fso_model=None,
    policy=None,
    faults=None,
    epsilon: float = DEFAULT_EPSILON,
    fidelity_convention: str = "sqrt",
    attribute_denials: bool = True,
    window: int | None = None,
    strategy: "StrategyConfig | None" = None,
) -> ServeEngine:
    """Assemble a :class:`ServeEngine` of the given ``kind`` over the QNTN LANs.

    Args:
        kind: one of :data:`ENGINE_KINDS`.
        ephemeris: constellation movement sheet.
        sites: ground nodes (defaults to the paper's Table I set).
        fso_model: ground-satellite channel model (paper preset default).
        policy / epsilon / fidelity_convention: serving knobs, identical
            defaults across all three kinds.
        faults: realized :class:`~repro.faults.FaultSchedule`, compiled
            :class:`~repro.faults.plane.FaultPlane`, or ``None``; all
            backends consume the same compiled plane.
        attribute_denials: compute canonical denial causes for unserved
            requests (see :class:`SimulatorServeEngine`).
        window: incremental-advance chunk size in ephemeris samples.
            ``None`` keeps the eager full-horizon precompute. When set,
            the ``cached`` link-state series and the ``matrix`` budget
            table extend lazily as the time cursor advances (identical
            results, lower time-to-first-request); ``direct`` evaluates
            per request and ignores it.
        strategy: optional
            :class:`~repro.routing.strategies.StrategyConfig` mounting
            the multipath router behind the backend (``--router
            k-shortest``). ``None`` / ``router="shortest"`` keeps the
            legacy single-path router on every backend.
    """
    from repro.channels.presets import paper_satellite_fso
    from repro.data.ground_nodes import all_ground_nodes
    from repro.routing.strategies import build_strategy

    if kind not in ENGINE_KINDS:
        raise ValidationError(
            f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}"
        )
    kernels.warmup()
    model = fso_model or paper_satellite_fso()
    plane = faults.compile() if hasattr(faults, "compile") else faults
    router = build_strategy(
        strategy,
        policy=policy,
        fidelity_convention=fidelity_convention,
        epsilon=epsilon,
    )
    if kind == "matrix":
        from repro.core.analysis import SpaceGroundAnalysis

        site_list = list(sites) if sites is not None else all_ground_nodes()
        analysis = SpaceGroundAnalysis(
            ephemeris,
            site_list,
            model,
            policy=policy,
            faults=plane,
            window=window,
        )
        relaxed_analysis = None
        if router is not None and router.active:
            relaxed_analysis = SpaceGroundAnalysis(
                ephemeris,
                site_list,
                model,
                policy=router.relaxed_policy,
                faults=plane,
                window=window,
            )
        return MatrixServeEngine(
            analysis,
            epsilon=epsilon,
            fidelity_convention=fidelity_convention,
            attribute_denials=attribute_denials,
            strategy=router,
            relaxed_analysis=relaxed_analysis,
        )
    from repro.network.simulator import NetworkSimulator
    from repro.network.topology import attach_satellites, build_qntn_ground_network

    network = build_qntn_ground_network()
    attach_satellites(network, ephemeris, model)
    simulator = NetworkSimulator(
        network,
        policy=policy,
        fidelity_convention=fidelity_convention,
        epsilon=epsilon,
        use_cache=(kind == "cached"),
        faults=plane,
        linkstate_window=window if kind == "cached" else None,
        strategy=router,
    )
    return SimulatorServeEngine(simulator, attribute_denials=attribute_denials)
