"""Two-qubit state tomography: how fidelity gets *measured*.

The simulator knows every delivered density matrix exactly; a deployed
QNTN node does not — it estimates fidelity by measuring Pauli
correlations on many pair copies and reconstructing the state (the
paper's Eq. 5 applied to a reconstructed rho; its reference [21] is a
tomography paper). This module implements that pipeline:

* exact Pauli expectation values of a state,
* finite-shot sampling of those expectations (binomial noise),
* linear-inversion reconstruction `rho = (1/4) Σ <P_i ⊗ P_j> P_i ⊗ P_j`
  with optional projection back onto the physical (PSD, trace-1) set,
* fidelity estimation with shot-noise scaling the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.errors import QuantumStateError, ValidationError
from repro.quantum.operators import PAULI_I, PAULI_X, PAULI_Y, PAULI_Z, tensor
from repro.quantum.states import validate_density_matrix
from repro.utils.seeding import as_generator

__all__ = [
    "pauli_expectations",
    "sample_pauli_expectations",
    "linear_inversion",
    "project_to_physical",
    "TomographyResult",
    "tomograph",
]

_PAULIS: dict[str, np.ndarray] = {"I": PAULI_I, "X": PAULI_X, "Y": PAULI_Y, "Z": PAULI_Z}
_LABELS: list[str] = [a + b for a, b in product("IXYZ", repeat=2)]


def pauli_expectations(rho: np.ndarray) -> dict[str, float]:
    """Exact expectations ``<P_a ⊗ P_b>`` for all 16 Pauli pairs."""
    arr = validate_density_matrix(rho)
    if arr.shape != (4, 4):
        raise QuantumStateError(f"expected a two-qubit state, got shape {arr.shape}")
    return {
        label: float(np.real(np.trace(tensor(_PAULIS[label[0]], _PAULIS[label[1]]) @ arr)))
        for label in _LABELS
    }


def sample_pauli_expectations(
    rho: np.ndarray,
    shots_per_setting: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> dict[str, float]:
    """Finite-shot estimates of the Pauli expectations.

    Each non-identity setting is measured ``shots_per_setting`` times;
    outcomes are ±1 with ``p(+1) = (1 + <P>)/2`` (the exact eigenvalue
    distribution for Pauli observables). The 'II' expectation is 1 by
    normalisation.
    """
    if shots_per_setting <= 0:
        raise ValidationError(f"shots_per_setting must be positive, got {shots_per_setting}")
    rng = as_generator(seed)
    exact = pauli_expectations(rho)
    sampled: dict[str, float] = {}
    for label, value in exact.items():
        if label == "II":
            sampled[label] = 1.0
            continue
        p_plus = min(max((1.0 + value) / 2.0, 0.0), 1.0)
        plus = int(rng.binomial(shots_per_setting, p_plus))
        sampled[label] = (2.0 * plus - shots_per_setting) / shots_per_setting
    return sampled


def linear_inversion(expectations: dict[str, float]) -> np.ndarray:
    """Reconstruct ``rho`` from Pauli expectations (may be unphysical).

    ``rho = (1/4) Σ_ab <P_a ⊗ P_b> (P_a ⊗ P_b)``. With noisy inputs the
    result can have small negative eigenvalues; apply
    :func:`project_to_physical` before computing spectra-sensitive
    quantities.
    """
    missing = [label for label in _LABELS if label not in expectations]
    if missing:
        raise ValidationError(f"missing Pauli expectations: {missing}")
    rho = np.zeros((4, 4), dtype=complex)
    for label in _LABELS:
        rho += expectations[label] * tensor(_PAULIS[label[0]], _PAULIS[label[1]])
    return rho / 4.0


def project_to_physical(rho: np.ndarray) -> np.ndarray:
    """Nearest physical state: clip negative eigenvalues, renormalise.

    The simple eigenvalue-clipping projection (Smolin et al. use the
    trace-preserving variant; clipping + renormalising is adequate at the
    shot counts used here and keeps the implementation transparent).
    """
    arr = np.asarray(rho, dtype=complex)
    herm = (arr + arr.conj().T) / 2.0
    eigvals, eigvecs = np.linalg.eigh(herm)
    clipped = np.clip(eigvals, 0.0, None)
    total = float(clipped.sum())
    if total <= 0.0:
        raise QuantumStateError("projection collapsed to the zero matrix")
    clipped /= total
    return (eigvecs * clipped) @ eigvecs.conj().T


@dataclass(frozen=True)
class TomographyResult:
    """Outcome of a finite-shot tomography run.

    Attributes:
        rho_estimate: reconstructed physical density matrix.
        fidelity_estimate: fidelity of the estimate against |Phi+>
            (sqrt convention, as the experiments report).
        shots_per_setting: measurement budget used.
    """

    rho_estimate: np.ndarray
    fidelity_estimate: float
    shots_per_setting: int


def tomograph(
    rho_true: np.ndarray,
    shots_per_setting: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> TomographyResult:
    """Full pipeline: sample, invert, project, estimate fidelity."""
    from repro.quantum.fidelity import pure_state_fidelity
    from repro.quantum.states import bell_state

    sampled = sample_pauli_expectations(rho_true, shots_per_setting, seed=seed)
    estimate = project_to_physical(linear_inversion(sampled))
    fidelity = pure_state_fidelity(bell_state(), estimate, convention="sqrt")
    return TomographyResult(estimate, fidelity, shots_per_setting)
