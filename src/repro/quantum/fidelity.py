"""Fidelity and entanglement measures.

Implements the paper's entanglement-fidelity metric (Eq. 5) in both the
Jozsa (squared) and Uhlmann (square-root) conventions, the closed form for
amplitude-damped Bell pairs as a function of transmissivity, plus the
standard two-qubit entanglement monotones (concurrence, negativity) used
by tests and the purification extension.

Convention note (see DESIGN.md): the paper's Eq. (5) is written squared,
but its reported operating points — eta = 0.7 yielding F > 0.9, and mean
fidelities 0.96/0.98 — match the *square-root* convention
``F = (1 + sqrt(eta)) / 2`` for one-sided amplitude damping of |Phi+>.
The experiment harness therefore defaults to ``convention="sqrt"``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import QuantumStateError, ValidationError
from repro.quantum.channels import amplitude_damping
from repro.quantum.operators import partial_transpose
from repro.quantum.states import BellState, bell_state, density_matrix, validate_density_matrix

__all__ = [
    "state_fidelity",
    "pure_state_fidelity",
    "bell_pair_after_loss",
    "entanglement_fidelity_from_transmissivity",
    "transmissivity_for_fidelity",
    "concurrence",
    "negativity",
    "FIDELITY_CONVENTIONS",
]

#: Supported fidelity conventions: "sqrt" (Uhlmann) and "squared" (Jozsa).
FIDELITY_CONVENTIONS: tuple[str, ...] = ("sqrt", "squared")


def _psd_sqrt(matrix: np.ndarray) -> np.ndarray:
    """Principal square root of a positive-semidefinite Hermitian matrix.

    Eigendecomposition-based; clips small negative eigenvalues from
    round-off so singular (pure-state) inputs do not warn like
    ``scipy.linalg.sqrtm`` does.
    """
    eigvals, eigvecs = np.linalg.eigh(matrix)
    sqrt_vals = np.sqrt(np.clip(eigvals, 0.0, None))
    return (eigvecs * sqrt_vals) @ eigvecs.conj().T


def _check_convention(convention: str) -> str:
    if convention not in FIDELITY_CONVENTIONS:
        raise ValidationError(
            f"convention must be one of {FIDELITY_CONVENTIONS}, got {convention!r}"
        )
    return convention


def state_fidelity(
    rho: np.ndarray,
    sigma: np.ndarray,
    *,
    convention: str = "squared",
    validate: bool = True,
) -> float:
    """Fidelity between two density matrices.

    Computes ``Tr sqrt( sqrt(rho) sigma sqrt(rho) )`` and returns it
    squared (Jozsa, the paper's Eq. 5 as written) or unsquared (Uhlmann)
    depending on ``convention``.

    Args:
        rho: first state.
        sigma: second state.
        convention: "squared" (default, matches Eq. 5) or "sqrt".
        validate: check both inputs are density matrices.
    """
    _check_convention(convention)
    a = validate_density_matrix(rho) if validate else np.asarray(rho, dtype=complex)
    b = validate_density_matrix(sigma) if validate else np.asarray(sigma, dtype=complex)
    if a.shape != b.shape:
        raise QuantumStateError(f"state shapes differ: {a.shape} vs {b.shape}")
    sqrt_a = _psd_sqrt(a)
    inner = sqrt_a @ b @ sqrt_a
    eigvals = np.linalg.eigvalsh((inner + inner.conj().T) / 2.0)
    root = float(np.sum(np.sqrt(np.clip(eigvals, 0.0, None))))
    root = min(root, 1.0)
    return root**2 if convention == "squared" else root


def pure_state_fidelity(
    psi: np.ndarray, rho: np.ndarray, *, convention: str = "squared"
) -> float:
    """Fidelity of ``rho`` against a pure target ``|psi>``.

    For a pure target the Uhlmann fidelity reduces to
    ``sqrt(<psi|rho|psi>)``; the Jozsa convention squares it back to
    ``<psi|rho|psi>``. Much cheaper than the general matrix-square-root
    formula, so hot evaluation paths use this.
    """
    _check_convention(convention)
    vec = np.asarray(psi, dtype=complex)
    if vec.ndim != 1:
        raise QuantumStateError(f"pure target must be a ket, got shape {vec.shape}")
    norm = np.linalg.norm(vec)
    if norm <= 0:
        raise QuantumStateError("pure target is the zero vector")
    vec = vec / norm
    arr = np.asarray(rho, dtype=complex)
    overlap = float(np.real(vec.conj() @ arr @ vec))
    overlap = min(max(overlap, 0.0), 1.0)
    return overlap if convention == "squared" else math.sqrt(overlap)


def bell_pair_after_loss(
    transmissivity: float,
    *,
    damped_qubit: int = 1,
    kind: BellState | str = BellState.PHI_PLUS,
) -> np.ndarray:
    """Density matrix of a Bell pair after amplitude damping of one qubit.

    Models the paper's entanglement-distribution picture: a |Phi+> pair is
    produced locally and one half is transmitted through an optical channel
    with transmissivity ``eta``, degrading it via the amplitude-damping
    Kraus map (Eqs. 3-4).

    Args:
        transmissivity: channel transmissivity eta in [0, 1].
        damped_qubit: which half of the pair traversed the channel (0 or 1).
        kind: which Bell state was produced.
    """
    rho = density_matrix(bell_state(kind))
    channel = amplitude_damping(transmissivity).on_qubit(damped_qubit, 2)
    return channel.apply(rho)


def entanglement_fidelity_from_transmissivity(
    transmissivity: np.ndarray | float, *, convention: str = "sqrt"
) -> np.ndarray:
    """Closed-form fidelity of a one-sided amplitude-damped |Phi+> pair.

    ``<Phi+| AD_eta(|Phi+><Phi+|) |Phi+> = ((1 + sqrt(eta)) / 2)^2``, so

    * ``convention="sqrt"``:    F = (1 + sqrt(eta)) / 2  (package default;
      reproduces the paper's reported operating points), and
    * ``convention="squared"``: F = ((1 + sqrt(eta)) / 2)^2.

    Vectorized over ``transmissivity``.
    """
    _check_convention(convention)
    if isinstance(transmissivity, float):
        # Hot path: serve_request evaluates one scalar eta per admitted
        # request. `0 <= eta <= 1` rejects NaN by itself, math.sqrt is
        # IEEE-identical to np.sqrt on a double, and base*base matches
        # base**2 — the result is bit-equal to the array branch.
        # np.float64 subclasses float, so it takes this path too.
        if not 0.0 <= transmissivity <= 1.0:
            raise ValidationError("transmissivity must lie in [0, 1]")
        base = (1.0 + math.sqrt(transmissivity)) / 2.0
        return base if convention == "sqrt" else base * base
    eta = np.asarray(transmissivity, dtype=float)
    if eta.size and (np.any(eta < 0) or np.any(eta > 1) or not np.all(np.isfinite(eta))):
        raise ValidationError("transmissivity must lie in [0, 1]")
    base = (1.0 + np.sqrt(eta)) / 2.0
    out = base if convention == "sqrt" else base**2
    return out if out.ndim else float(out)


def transmissivity_for_fidelity(fidelity: float, *, convention: str = "sqrt") -> float:
    """Inverse of :func:`entanglement_fidelity_from_transmissivity`.

    Returns the transmissivity required to reach ``fidelity``; useful for
    threshold identification (paper Section IV-A).
    """
    _check_convention(convention)
    f = float(fidelity)
    base = f if convention == "sqrt" else math.sqrt(f)
    if not 0.5 <= base <= 1.0:
        raise ValidationError(
            f"fidelity {fidelity} is outside the reachable range for this channel"
        )
    return (2.0 * base - 1.0) ** 2


def concurrence(rho: np.ndarray) -> float:
    """Wootters concurrence of a two-qubit state (entanglement monotone)."""
    arr = validate_density_matrix(rho)
    if arr.shape != (4, 4):
        raise QuantumStateError(f"concurrence expects a two-qubit state, got {arr.shape}")
    sy = np.array([[0, -1j], [1j, 0]], dtype=complex)
    yy = np.kron(sy, sy)
    rho_tilde = yy @ arr.conj() @ yy
    # Eigenvalues of rho * rho_tilde are real and non-negative.
    eigvals = np.linalg.eigvals(arr @ rho_tilde)
    lambdas = np.sqrt(np.clip(np.real(eigvals), 0.0, None))
    lambdas.sort()
    return float(max(0.0, lambdas[-1] - lambdas[-2] - lambdas[-3] - lambdas[-4]))


def negativity(rho: np.ndarray, subsystem: int = 1) -> float:
    """Negativity: sum of negative eigenvalues of the partial transpose."""
    arr = validate_density_matrix(rho)
    pt = partial_transpose(arr, subsystem)
    eigvals = np.linalg.eigvalsh(pt)
    return float(-np.sum(eigvals[eigvals < 0.0]))
