"""Quantum-information substrate: states, operators, channels, fidelity.

Implements exactly the machinery of the paper's Section III-A: density
matrices, the amplitude-damping Kraus channel parameterised by optical
transmissivity (Eqs. 3-4), and entanglement fidelity against the Bell
state |Phi+> (Eq. 5), plus standard extras (other Kraus channels,
concurrence, negativity) used by tests and extensions.
"""

from repro.quantum.channels import (
    KrausChannel,
    amplitude_damping,
    bit_flip,
    dephasing,
    depolarizing,
    identity_channel,
)
from repro.quantum.fidelity import (
    bell_pair_after_loss,
    concurrence,
    entanglement_fidelity_from_transmissivity,
    negativity,
    state_fidelity,
    transmissivity_for_fidelity,
)
from repro.quantum.memory import QuantumMemory
from repro.quantum.operators import (
    HADAMARD,
    PAULI_I,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    apply_unitary,
    embed_operator,
    partial_trace,
    partial_transpose,
    tensor,
)
from repro.quantum.states import (
    BellState,
    bell_state,
    density_matrix,
    is_density_matrix,
    ket,
    maximally_mixed,
    random_pure_state,
    validate_density_matrix,
)

__all__ = [
    "QuantumMemory",
    "KrausChannel",
    "amplitude_damping",
    "dephasing",
    "depolarizing",
    "bit_flip",
    "identity_channel",
    "state_fidelity",
    "entanglement_fidelity_from_transmissivity",
    "transmissivity_for_fidelity",
    "bell_pair_after_loss",
    "concurrence",
    "negativity",
    "PAULI_I",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "HADAMARD",
    "tensor",
    "partial_trace",
    "partial_transpose",
    "embed_operator",
    "apply_unitary",
    "BellState",
    "bell_state",
    "ket",
    "density_matrix",
    "maximally_mixed",
    "random_pure_state",
    "is_density_matrix",
    "validate_density_matrix",
]
