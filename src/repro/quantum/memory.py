"""Quantum-memory decoherence model.

The paper assumes pairs are consumed immediately; real nodes buffer one
half of a pair while the classical herald is in flight (see
:mod:`repro.core.timing`). This module models that storage: energy
relaxation (T1) composed with pure dephasing (T2), both as Kraus
channels, so stored-pair fidelity can be followed over time.

Relations: amplitude damping with transmissivity ``exp(-t/T1)`` captures
relaxation; the additional pure-dephasing channel uses the rate
``1/T_phi = 1/T2 - 1/(2 T1)``, which requires the physical constraint
``T2 <= 2 T1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.quantum.channels import KrausChannel, amplitude_damping, dephasing
from repro.utils.validation import check_positive

__all__ = ["QuantumMemory"]


@dataclass(frozen=True)
class QuantumMemory:
    """A noisy quantum memory characterised by T1 and T2.

    Attributes:
        t1_s: energy-relaxation time constant [s].
        t2_s: total coherence time [s]; must satisfy ``t2 <= 2 * t1``.
        efficiency: probability of faithful write+read, applied as extra
            amplitude damping independent of storage time.
    """

    t1_s: float = 1.0
    t2_s: float = 0.5
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        check_positive("t1_s", self.t1_s)
        check_positive("t2_s", self.t2_s)
        if self.t2_s > 2.0 * self.t1_s + 1e-12:
            raise ValidationError(
                f"T2 ({self.t2_s}) must not exceed 2*T1 ({2 * self.t1_s}) "
                "for a physical memory"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ValidationError(f"efficiency must be in (0, 1], got {self.efficiency}")

    def relaxation_transmissivity(self, dt_s: float) -> float:
        """Effective transmissivity of storage for ``dt_s`` seconds."""
        if dt_s < 0:
            raise ValidationError(f"dt_s must be >= 0, got {dt_s}")
        return math.exp(-dt_s / self.t1_s) * self.efficiency

    def dephasing_probability(self, dt_s: float) -> float:
        """Z-error probability accumulated over ``dt_s`` of storage.

        The coherence factor decays as ``exp(-dt / T_phi)`` with the pure
        dephasing time ``1/T_phi = 1/T2 - 1/(2 T1)``; a dephasing channel
        with probability p multiplies coherences by ``1 - 2p``.
        """
        if dt_s < 0:
            raise ValidationError(f"dt_s must be >= 0, got {dt_s}")
        rate = 1.0 / self.t2_s - 0.5 / self.t1_s
        if rate <= 0.0:
            return 0.0
        coherence = math.exp(-dt_s * rate)
        return 0.5 * (1.0 - coherence)

    def storage_channel(self, dt_s: float) -> KrausChannel:
        """The single-qubit channel describing ``dt_s`` of storage."""
        ad = amplitude_damping(self.relaxation_transmissivity(dt_s))
        p = self.dephasing_probability(dt_s)
        if p <= 0.0:
            return ad
        return dephasing(p).compose(ad)

    def store_pair(self, rho: np.ndarray, dt_s: float, *, qubit: int = 1) -> np.ndarray:
        """Store one half of a two-qubit pair for ``dt_s`` seconds."""
        arr = np.asarray(rho, dtype=complex)
        if arr.shape != (4, 4):
            raise ValidationError(f"store_pair expects a two-qubit state, got {arr.shape}")
        return self.storage_channel(dt_s).on_qubit(qubit, 2).apply(arr)

    def fidelity_after_storage(self, eta_path: float, dt_s: float) -> float:
        """Fidelity of a delivered pair after buffering one half.

        Starts from an amplitude-damped |Phi+> with path transmissivity
        ``eta_path`` and applies the storage channel.
        """
        from repro.quantum.fidelity import bell_pair_after_loss, pure_state_fidelity
        from repro.quantum.states import bell_state

        rho = self.store_pair(bell_pair_after_loss(eta_path), dt_s)
        return pure_state_fidelity(bell_state(), rho, convention="sqrt")
