"""Kraus-operator quantum channels.

Implements the paper's amplitude-damping channel (Eq. 3) parameterised by
optical transmissivity, plus the standard Pauli channels used by tests and
the purification extension. A :class:`KrausChannel` validates completeness
(sum K^dagger K = I) at construction, composes, and lifts onto a chosen
qubit of a larger register.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import QuantumStateError
from repro.quantum.operators import embed_operator
from repro.quantum.states import validate_density_matrix

__all__ = [
    "KrausChannel",
    "amplitude_damping",
    "dephasing",
    "depolarizing",
    "bit_flip",
    "identity_channel",
]


class KrausChannel:
    """A completely positive trace-preserving map given by Kraus operators.

    Args:
        kraus_ops: operators ``K_i`` with ``sum_i K_i^dagger K_i = I``.
        name: human-readable channel label for reprs and error messages.
        atol: completeness-check tolerance.
    """

    def __init__(
        self,
        kraus_ops: Iterable[np.ndarray],
        *,
        name: str = "channel",
        atol: float = 1e-10,
    ) -> None:
        ops = [np.asarray(k, dtype=complex) for k in kraus_ops]
        if not ops:
            raise QuantumStateError("a channel requires at least one Kraus operator")
        dim = ops[0].shape[0]
        for k in ops:
            if k.ndim != 2 or k.shape != (dim, dim):
                raise QuantumStateError(
                    f"all Kraus operators must be square {dim}x{dim}, got {k.shape}"
                )
        completeness = sum(k.conj().T @ k for k in ops)
        if not np.allclose(completeness, np.eye(dim), atol=atol):
            raise QuantumStateError(
                f"Kraus operators of {name!r} are not trace preserving "
                f"(max deviation {np.abs(completeness - np.eye(dim)).max():.3e})"
            )
        self._ops = ops
        self._name = name

    @property
    def kraus_operators(self) -> list[np.ndarray]:
        """Copies of the Kraus operators."""
        return [k.copy() for k in self._ops]

    @property
    def dim(self) -> int:
        """Hilbert-space dimension the channel acts on."""
        return self._ops[0].shape[0]

    @property
    def name(self) -> str:
        """Channel label."""
        return self._name

    def __repr__(self) -> str:
        return f"KrausChannel({self._name!r}, dim={self.dim}, n_ops={len(self._ops)})"

    def apply(self, rho: np.ndarray, *, validate: bool = False) -> np.ndarray:
        """Apply the channel: ``rho' = sum_i K_i rho K_i^dagger`` (Eq. 4).

        Args:
            rho: input density matrix of matching dimension.
            validate: additionally validate the input as a density matrix
                (skipped on hot paths).
        """
        arr = validate_density_matrix(rho) if validate else np.asarray(rho, dtype=complex)
        if arr.shape != (self.dim, self.dim):
            raise QuantumStateError(
                f"state of shape {arr.shape} does not match channel dim {self.dim}"
            )
        out = np.zeros_like(arr)
        for k in self._ops:
            out += k @ arr @ k.conj().T
        return out

    def compose(self, other: "KrausChannel") -> "KrausChannel":
        """The channel ``self after other`` (apply ``other`` first)."""
        if self.dim != other.dim:
            raise QuantumStateError(
                f"cannot compose channels of dims {self.dim} and {other.dim}"
            )
        ops = [a @ b for a in self._ops for b in other._ops]
        return KrausChannel(ops, name=f"{self._name}∘{other._name}")

    def on_qubit(self, qubit: int, n_qubits: int) -> "KrausChannel":
        """Lift this single-qubit channel to act on one qubit of a register."""
        if self.dim != 2:
            raise QuantumStateError("on_qubit is only defined for single-qubit channels")
        ops = [embed_operator(k, qubit, n_qubits) for k in self._ops]
        return KrausChannel(ops, name=f"{self._name}@q{qubit}/{n_qubits}")


def identity_channel(n_qubits: int = 1) -> KrausChannel:
    """The do-nothing channel on ``n_qubits``."""
    return KrausChannel([np.eye(2**n_qubits, dtype=complex)], name="identity")


def amplitude_damping(transmissivity: float) -> KrausChannel:
    """Amplitude-damping channel parameterised by transmissivity (paper Eq. 3).

    ``K0 = [[1, 0], [0, sqrt(eta)]]``, ``K1 = [[0, sqrt(1-eta)], [0, 0]]``.
    The damping (photon-loss) probability is ``1 - eta``. Composition
    satisfies ``AD(eta1) ∘ AD(eta2) = AD(eta1 * eta2)``, which is what makes
    per-hop losses multiply along a routed path.

    Args:
        transmissivity: eta in [0, 1].
    """
    eta = float(transmissivity)
    if not 0.0 <= eta <= 1.0 or not math.isfinite(eta):
        raise QuantumStateError(f"transmissivity must be in [0, 1], got {eta}")
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(eta)]], dtype=complex)
    k1 = np.array([[0.0, math.sqrt(1.0 - eta)], [0.0, 0.0]], dtype=complex)
    return KrausChannel([k0, k1], name=f"amplitude_damping(eta={eta:.6g})")


def dephasing(probability: float) -> KrausChannel:
    """Phase-damping channel: Z error with probability ``p``."""
    p = _check_probability(probability)
    from repro.quantum.operators import PAULI_I, PAULI_Z

    return KrausChannel(
        [math.sqrt(1.0 - p) * PAULI_I, math.sqrt(p) * PAULI_Z],
        name=f"dephasing(p={p:.6g})",
    )


def bit_flip(probability: float) -> KrausChannel:
    """Bit-flip channel: X error with probability ``p``."""
    p = _check_probability(probability)
    from repro.quantum.operators import PAULI_I, PAULI_X

    return KrausChannel(
        [math.sqrt(1.0 - p) * PAULI_I, math.sqrt(p) * PAULI_X],
        name=f"bit_flip(p={p:.6g})",
    )


def depolarizing(probability: float) -> KrausChannel:
    """Depolarizing channel: each Pauli error with probability ``p/3``."""
    p = _check_probability(probability)
    from repro.quantum.operators import PAULI_I, PAULI_X, PAULI_Y, PAULI_Z

    return KrausChannel(
        [
            math.sqrt(1.0 - p) * PAULI_I,
            math.sqrt(p / 3.0) * PAULI_X,
            math.sqrt(p / 3.0) * PAULI_Y,
            math.sqrt(p / 3.0) * PAULI_Z,
        ],
        name=f"depolarizing(p={p:.6g})",
    )


def _check_probability(p: float) -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0 or not math.isfinite(p):
        raise QuantumStateError(f"probability must be in [0, 1], got {p}")
    return p
