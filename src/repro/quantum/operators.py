"""Multi-qubit operator algebra: Paulis, tensor products, partial traces.

Qubit indexing is big-endian: qubit 0 is the most significant bit of the
computational-basis index, matching :func:`repro.quantum.states.ket`.
"""

from __future__ import annotations

from functools import reduce
from typing import Sequence

import numpy as np

from repro.errors import QuantumStateError
from repro.quantum.states import qubit_count

__all__ = [
    "PAULI_I",
    "PAULI_X",
    "PAULI_Y",
    "PAULI_Z",
    "HADAMARD",
    "CNOT",
    "tensor",
    "embed_operator",
    "apply_unitary",
    "partial_trace",
    "partial_transpose",
    "is_unitary",
]

PAULI_I: np.ndarray = np.eye(2, dtype=complex)
PAULI_X: np.ndarray = np.array([[0, 1], [1, 0]], dtype=complex)
PAULI_Y: np.ndarray = np.array([[0, -1j], [1j, 0]], dtype=complex)
PAULI_Z: np.ndarray = np.array([[1, 0], [0, -1]], dtype=complex)
HADAMARD: np.ndarray = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2.0)
#: CNOT with qubit 0 as control, qubit 1 as target (big-endian ordering).
CNOT: np.ndarray = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)


def tensor(*operators: np.ndarray) -> np.ndarray:
    """Kronecker product of one or more operators/kets, left to right."""
    if not operators:
        raise QuantumStateError("tensor() requires at least one operand")
    return reduce(np.kron, (np.asarray(op, dtype=complex) for op in operators))


def is_unitary(op: np.ndarray, atol: float = 1e-10) -> bool:
    """Whether ``op`` is unitary within tolerance."""
    arr = np.asarray(op, dtype=complex)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        return False
    return bool(np.allclose(arr @ arr.conj().T, np.eye(arr.shape[0]), atol=atol))


def embed_operator(op: np.ndarray, qubit: int, n_qubits: int) -> np.ndarray:
    """Lift a single-qubit operator to act on ``qubit`` of an n-qubit system.

    Args:
        op: 2x2 operator.
        qubit: target qubit index in [0, n_qubits).
        n_qubits: total number of qubits.

    Returns:
        The ``2**n x 2**n`` operator ``I ⊗ ... ⊗ op ⊗ ... ⊗ I``.
    """
    arr = np.asarray(op, dtype=complex)
    if arr.shape != (2, 2):
        raise QuantumStateError(f"expected a 2x2 operator, got shape {arr.shape}")
    if not 0 <= qubit < n_qubits:
        raise QuantumStateError(f"qubit {qubit} out of range for {n_qubits} qubits")
    factors = [PAULI_I] * n_qubits
    factors[qubit] = arr
    return tensor(*factors)


def apply_unitary(rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Conjugate a density matrix: ``U rho U^dagger``."""
    r = np.asarray(rho, dtype=complex)
    uu = np.asarray(u, dtype=complex)
    if r.shape != uu.shape:
        raise QuantumStateError(f"operator shape {uu.shape} does not match state {r.shape}")
    return uu @ r @ uu.conj().T


def partial_trace(rho: np.ndarray, keep: Sequence[int]) -> np.ndarray:
    """Trace out all qubits except those in ``keep``.

    Args:
        rho: density matrix on n qubits.
        keep: qubit indices to retain, in ascending output order.

    Returns:
        Reduced density matrix on ``len(keep)`` qubits.
    """
    arr = np.asarray(rho, dtype=complex)
    n = qubit_count(arr)
    keep_list = list(keep)
    if len(set(keep_list)) != len(keep_list):
        raise QuantumStateError(f"duplicate qubits in keep={keep_list}")
    if any(not 0 <= q < n for q in keep_list):
        raise QuantumStateError(f"keep={keep_list} out of range for {n} qubits")
    if sorted(keep_list) != keep_list:
        raise QuantumStateError("keep indices must be ascending")

    traced = [q for q in range(n) if q not in keep_list]
    # Reshape to a rank-2n tensor with one axis per ket/bra qubit and
    # contract the traced ket axis against its bra partner.
    tensor_form = arr.reshape([2] * (2 * n))
    for offset, q in enumerate(traced):
        axis_ket = q - offset
        axis_bra = axis_ket + (n - offset)
        tensor_form = np.trace(tensor_form, axis1=axis_ket, axis2=axis_bra)
    dim = 2 ** len(keep_list)
    return tensor_form.reshape(dim, dim)


def partial_transpose(rho: np.ndarray, subsystem: int) -> np.ndarray:
    """Partial transpose of a two-qubit state over one subsystem (0 or 1).

    Used by the negativity entanglement measure.
    """
    arr = np.asarray(rho, dtype=complex)
    if arr.shape != (4, 4):
        raise QuantumStateError(f"partial_transpose expects a two-qubit state, got {arr.shape}")
    if subsystem not in (0, 1):
        raise QuantumStateError(f"subsystem must be 0 or 1, got {subsystem}")
    t = arr.reshape(2, 2, 2, 2)
    if subsystem == 0:
        t = np.transpose(t, (2, 1, 0, 3))
    else:
        t = np.transpose(t, (0, 3, 2, 1))
    return t.reshape(4, 4)
