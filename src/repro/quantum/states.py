"""Quantum state construction and validation.

States are plain complex NumPy arrays: kets are 1-D of length ``2**n``;
density matrices are 2-D Hermitian, unit-trace, positive semidefinite.
Validation helpers centralise the tolerance policy so the rest of the
package never hand-rolls Hermiticity checks.
"""

from __future__ import annotations

import enum
import numpy as np

from repro.errors import QuantumStateError

__all__ = [
    "ket",
    "ket_from_string",
    "BellState",
    "bell_state",
    "density_matrix",
    "maximally_mixed",
    "random_pure_state",
    "is_density_matrix",
    "validate_density_matrix",
    "DEFAULT_ATOL",
]

#: Absolute tolerance for state-validity checks throughout the package.
DEFAULT_ATOL: float = 1e-10


def ket(*bits: int) -> np.ndarray:
    """Computational-basis ket |b0 b1 ... bn-1> as a complex vector.

    Example:
        >>> ket(0, 1)  # |01>
        array([0.+0.j, 1.+0.j, 0.+0.j, 0.+0.j])
    """
    if not bits:
        raise QuantumStateError("ket() requires at least one bit")
    if any(b not in (0, 1) for b in bits):
        raise QuantumStateError(f"bits must be 0 or 1, got {bits}")
    index = 0
    for b in bits:
        index = (index << 1) | b
    vec = np.zeros(2 ** len(bits), dtype=complex)
    vec[index] = 1.0
    return vec


def ket_from_string(bitstring: str) -> np.ndarray:
    """Ket from a bitstring, e.g. ``ket_from_string("01")`` for |01>."""
    try:
        bits = [int(c) for c in bitstring]
    except ValueError as exc:
        raise QuantumStateError(f"invalid bitstring {bitstring!r}") from exc
    return ket(*bits)


class BellState(enum.Enum):
    """The four maximally entangled two-qubit Bell states."""

    PHI_PLUS = "phi+"
    PHI_MINUS = "phi-"
    PSI_PLUS = "psi+"
    PSI_MINUS = "psi-"


def bell_state(kind: BellState | str = BellState.PHI_PLUS) -> np.ndarray:
    """Statevector of a Bell state (default |Phi+> = (|00>+|11>)/sqrt(2)).

    |Phi+> is the ideal target state of the paper's fidelity metric (Eq. 5).
    """
    if isinstance(kind, str):
        kind = BellState(kind)
    s = 1.0 / np.sqrt(2.0)
    if kind is BellState.PHI_PLUS:
        return s * (ket(0, 0) + ket(1, 1))
    if kind is BellState.PHI_MINUS:
        return s * (ket(0, 0) - ket(1, 1))
    if kind is BellState.PSI_PLUS:
        return s * (ket(0, 1) + ket(1, 0))
    return s * (ket(0, 1) - ket(1, 0))


def density_matrix(state: np.ndarray) -> np.ndarray:
    """Density matrix |psi><psi| of a ket (normalising if needed)."""
    psi = np.asarray(state, dtype=complex)
    if psi.ndim != 1:
        raise QuantumStateError(f"ket must be 1-D, got shape {psi.shape}")
    norm = np.linalg.norm(psi)
    if norm < DEFAULT_ATOL:
        raise QuantumStateError("cannot normalise the zero vector")
    psi = psi / norm
    return np.outer(psi, psi.conj())


def maximally_mixed(n_qubits: int) -> np.ndarray:
    """Maximally mixed state I / 2**n on ``n_qubits``."""
    if n_qubits < 1:
        raise QuantumStateError(f"n_qubits must be >= 1, got {n_qubits}")
    dim = 2**n_qubits
    return np.eye(dim, dtype=complex) / dim


def random_pure_state(n_qubits: int, rng: np.random.Generator) -> np.ndarray:
    """Haar-random pure ket on ``n_qubits`` (Gaussian method)."""
    if n_qubits < 1:
        raise QuantumStateError(f"n_qubits must be >= 1, got {n_qubits}")
    dim = 2**n_qubits
    vec = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return vec / np.linalg.norm(vec)


def is_density_matrix(rho: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Whether ``rho`` is Hermitian, unit-trace, and positive semidefinite."""
    rho = np.asarray(rho)
    if rho.ndim != 2 or rho.shape[0] != rho.shape[1]:
        return False
    if not np.allclose(rho, rho.conj().T, atol=atol):
        return False
    if not np.isclose(np.trace(rho).real, 1.0, atol=max(atol, 1e-9)):
        return False
    eigvals = np.linalg.eigvalsh(rho)
    return bool(eigvals.min() >= -10 * max(atol, 1e-12))


def validate_density_matrix(rho: np.ndarray, atol: float = DEFAULT_ATOL) -> np.ndarray:
    """Validate ``rho`` as a density matrix; return it as a complex array.

    Raises:
        QuantumStateError: naming the first failed property.
    """
    arr = np.asarray(rho, dtype=complex)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise QuantumStateError(f"density matrix must be square 2-D, got shape {arr.shape}")
    dim = arr.shape[0]
    if dim & (dim - 1):
        raise QuantumStateError(f"dimension must be a power of two, got {dim}")
    if not np.allclose(arr, arr.conj().T, atol=atol):
        raise QuantumStateError("density matrix is not Hermitian")
    tr = np.trace(arr).real
    if not np.isclose(tr, 1.0, atol=max(atol, 1e-9)):
        raise QuantumStateError(f"density matrix trace is {tr}, expected 1")
    eigvals = np.linalg.eigvalsh(arr)
    if eigvals.min() < -10 * max(atol, 1e-12):
        raise QuantumStateError(f"density matrix has negative eigenvalue {eigvals.min()}")
    return arr


def qubit_count(state: np.ndarray) -> int:
    """Number of qubits of a ket or density matrix."""
    arr = np.asarray(state)
    dim = arr.shape[0]
    n = int(round(np.log2(dim)))
    if 2**n != dim:
        raise QuantumStateError(f"dimension {dim} is not a power of two")
    return n


def purity(rho: np.ndarray) -> float:
    """Purity Tr(rho^2), 1 for pure states, 1/d for maximally mixed."""
    arr = np.asarray(rho, dtype=complex)
    return float(np.real(np.trace(arr @ arr)))


__all__ += ["ket_from_string", "qubit_count", "purity"]
