"""The compiled fault plane: per-time masks and attenuation queries.

:class:`FaultPlane` indexes a realized schedule's events three ways —
node downtime windows, link flap windows, and per-site fade windows —
and answers both scalar (one channel at one time) and vectorized (one
site or edge over a whole sample grid) queries. All three serving paths
apply the *same rule* through it:

* the direct path perturbs each
  :meth:`~repro.network.links.QuantumChannel.evaluate` result via
  :meth:`FaultPlane.apply_channel`;
* the link-state cache perturbs each channel's precomputed eta/usable
  series via :meth:`FaultPlane.apply_edge_series`;
* the budget-matrix path derives a faulted
  :class:`~repro.engine.budgets.SiteLinkBudget` (keeping the healthy
  admission mask alongside for denial attribution) via
  :meth:`FaultPlane.faulted_site_budget`.

Bit-identity: the fade factor ``10**(-dB/10)`` is computed from the
same float literal everywhere and applied as one float64 multiply, and
the factors of stacked fades multiply in event order in both the scalar
and vectorized paths, so the cached-vs-direct equivalence contract of
DESIGN.md §7 survives under faults. A plane with no events reports
``is_noop`` and every consumer short-circuits on it — the empty
schedule is provably a bit-identical no-op.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro import obs
from repro.faults.schedule import (
    FaultEvent,
    GroundStationDowntime,
    LinkFlap,
    SatelliteOutage,
    WeatherFade,
)
from repro.network.links import ChannelKind, LinkPolicy, LinkState, QuantumChannel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.budgets import SiteLinkBudget
    from repro.orbits.ephemeris import Ephemeris

__all__ = ["FaultPlane"]

# Import-time instruments (flag check per record when telemetry is off).
_EVENTS_ACTIVE = obs.gauge("faults.events.active")
_LINK_STEPS_SUPPRESSED = obs.counter("faults.link_steps.suppressed")


def _window_mask(
    windows: Sequence[tuple[float, float]], times: np.ndarray
) -> np.ndarray:
    """Boolean (T,) mask: some window covers each sample (half-open)."""
    mask = np.zeros(times.shape, dtype=bool)
    for start, end in windows:
        mask |= (times >= start) & (times < end)
    return mask


def _link_key(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class FaultPlane:
    """Query plane over a realized fault schedule (see module docstring)."""

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(events)
        self._node_windows: dict[str, list[tuple[float, float]]] = {}
        self._link_windows: dict[tuple[str, str], list[tuple[float, float]]] = {}
        #: per-site fade windows as (start, end, factor) with the factor
        #: precomputed once so scalar and vectorized paths multiply the
        #: exact same float64.
        self._fade_windows: dict[str, list[tuple[float, float, float]]] = {}
        for event in self.events:
            if isinstance(event, SatelliteOutage):
                self._node_windows.setdefault(event.satellite, []).append(
                    (event.start_s, event.end_s)
                )
            elif isinstance(event, GroundStationDowntime):
                self._node_windows.setdefault(event.station, []).append(
                    (event.start_s, event.end_s)
                )
            elif isinstance(event, LinkFlap):
                self._link_windows.setdefault(
                    _link_key(event.node_a, event.node_b), []
                ).append((event.start_s, event.end_s))
            elif isinstance(event, WeatherFade):
                self._fade_windows.setdefault(event.site, []).append(
                    (event.start_s, event.end_s, 10.0 ** (-event.extra_db / 10.0))
                )
            else:  # pragma: no cover - schedule validates event types
                raise TypeError(f"unknown fault event type {type(event).__name__}")
        _EVENTS_ACTIVE.set(len(self.events))

    @property
    def is_noop(self) -> bool:
        """Whether the plane perturbs nothing (the empty schedule)."""
        return not self.events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlane({len(self.events)} events: {len(self._node_windows)} nodes, "
            f"{len(self._link_windows)} links, {len(self._fade_windows)} fade sites)"
        )

    def active_events(self, t_s: float) -> tuple[FaultEvent, ...]:
        """Events whose ``[start_s, end_s)`` window covers ``t_s``.

        Schedule order is preserved; the streaming front end reports
        ``len(active_events(t))`` as its fault-pressure gauge while the
        time cursor advances.
        """
        return tuple(e for e in self.events if e.active(t_s))

    # --- scalar queries (direct serving path) -----------------------------------

    def node_down(self, name: str, t_s: float) -> bool:
        """Whether node ``name`` is inside an outage/downtime window."""
        windows = self._node_windows.get(name)
        if not windows:
            return False
        return any(start <= t_s < end for start, end in windows)

    def link_cut(self, name_a: str, name_b: str, t_s: float) -> bool:
        """Whether the (a, b) link is inside a flap window."""
        windows = self._link_windows.get(_link_key(name_a, name_b))
        if not windows:
            return False
        return any(start <= t_s < end for start, end in windows)

    def fade_factor(self, site: str, t_s: float) -> float:
        """Multiplicative transmissivity factor of the site's active fades.

        1.0 when no fade is active; stacked fades multiply in event
        order (the identical order the vectorized path uses).
        """
        windows = self._fade_windows.get(site)
        if not windows:
            return 1.0
        factor = 1.0
        for start, end, window_factor in windows:
            if start <= t_s < end:
                factor *= window_factor
        return factor

    def attenuation_factor(self, site: str, t_s: float) -> float:
        """Alias of :meth:`fade_factor` (the DESIGN.md §11 name)."""
        return self.fade_factor(site, t_s)

    # --- vectorized queries (cache and matrix paths) ----------------------------

    def node_up_series(self, name: str, times: np.ndarray) -> np.ndarray | bool:
        """``True`` (scalar) if never down, else a (T,) up-mask."""
        windows = self._node_windows.get(name)
        if not windows:
            return True
        return ~_window_mask(windows, times)

    def link_ok_series(self, name_a: str, name_b: str, times: np.ndarray) -> np.ndarray | bool:
        """``True`` (scalar) if never flapped, else a (T,) ok-mask."""
        windows = self._link_windows.get(_link_key(name_a, name_b))
        if not windows:
            return True
        return ~_window_mask(windows, times)

    def fade_factor_series(self, site: str, times: np.ndarray) -> np.ndarray | float:
        """``1.0`` (scalar) if never faded, else a (T,) factor series."""
        windows = self._fade_windows.get(site)
        if not windows:
            return 1.0
        factor = np.ones(times.shape, dtype=float)
        for start, end, window_factor in windows:
            active = (times >= start) & (times < end)
            factor[active] *= window_factor
        return factor

    def platform_up_matrix(
        self, names: Sequence[str], times: np.ndarray
    ) -> np.ndarray | bool:
        """``True`` (scalar) or an (N, T) up-mask over the named platforms."""
        if not any(name in self._node_windows for name in names):
            return True
        up = np.ones((len(names), times.size), dtype=bool)
        for row, name in enumerate(names):
            windows = self._node_windows.get(name)
            if windows:
                up[row] = ~_window_mask(windows, times)
        return up

    def link_ok_matrix(
        self, site: str, names: Sequence[str], times: np.ndarray
    ) -> np.ndarray | bool:
        """``True`` (scalar) or an (N, T) ok-mask for site-platform links."""
        keys = [_link_key(site, name) for name in names]
        if not any(key in self._link_windows for key in keys):
            return True
        ok = np.ones((len(names), times.size), dtype=bool)
        for row, key in enumerate(keys):
            windows = self._link_windows.get(key)
            if windows:
                ok[row] = ~_window_mask(windows, times)
        return ok

    # --- appliers: one shared rule for all three serving paths ------------------

    def _channel_fade_factor(self, channel: QuantumChannel, t_s: float) -> float:
        """Scalar fade factor of a channel: ground FSO endpoints only."""
        if channel.kind is not ChannelKind.FSO:
            return 1.0
        factor = 1.0
        for host in (channel.host_a, channel.host_b):
            if host.kind == "ground":
                factor *= self.fade_factor(host.name, t_s)
        return factor

    def apply_channel(
        self,
        channel: QuantumChannel,
        state: LinkState,
        t_s: float,
        policy: LinkPolicy,
    ) -> tuple[float, bool]:
        """Perturb one scalar channel evaluation; returns ``(eta, usable)``.

        Fades only ever attenuate, so after the multiply the only gate
        that can newly fail is the transmissivity threshold (the
        elevation and visibility gates are attenuation-independent and
        already folded into ``state.usable``).
        """
        eta = state.transmissivity
        usable = state.usable
        factor = self._channel_fade_factor(channel, t_s)
        if factor != 1.0:
            eta = eta * factor
            usable = usable and eta >= policy.transmissivity_threshold
        if usable:
            a, b = channel.names
            if self.node_down(a, t_s) or self.node_down(b, t_s) or self.link_cut(a, b, t_s):
                usable = False
        if state.usable and not usable:
            _LINK_STEPS_SUPPRESSED.inc()
        return eta, usable

    def apply_edge_series(
        self,
        channel: QuantumChannel,
        eta: np.ndarray | float,
        usable: np.ndarray | bool,
        times: np.ndarray,
        policy: LinkPolicy,
    ) -> tuple[np.ndarray | float, np.ndarray | bool]:
        """Perturb one channel's precomputed series over the sample grid.

        Mirrors :meth:`apply_channel` element-wise: same fade product
        order, same threshold recheck, same node/link gates — the
        link-state cache stays equivalent to the direct path under any
        schedule.
        """
        if self.is_noop:
            return eta, usable
        a, b = channel.names
        healthy = usable
        factor: np.ndarray | float = 1.0
        if channel.kind is ChannelKind.FSO:
            for host in (channel.host_a, channel.host_b):
                if host.kind == "ground":
                    factor = factor * self.fade_factor_series(host.name, times)
        if not (isinstance(factor, float) and factor == 1.0):
            eta = eta * factor
            usable = usable & (np.asarray(eta) >= policy.transmissivity_threshold)
        up = self.node_up_series(a, times)
        if up is not True:
            usable = usable & up
        up = self.node_up_series(b, times)
        if up is not True:
            usable = usable & up
        ok = self.link_ok_series(a, b, times)
        if ok is not True:
            usable = usable & ok
        suppressed = np.broadcast_to(np.asarray(healthy), times.shape) & ~np.broadcast_to(
            np.asarray(usable), times.shape
        )
        _LINK_STEPS_SUPPRESSED.inc(int(np.count_nonzero(suppressed)))
        return eta, usable

    def faulted_site_budget(
        self,
        budget: "SiteLinkBudget",
        ephemeris: "Ephemeris",
        policy: LinkPolicy,
    ) -> "SiteLinkBudget":
        """Derive a faulted :class:`SiteLinkBudget` from a healthy one.

        The healthy admission mask rides along as ``usable_healthy`` so
        the matrix path's denial attribution can tell "blocked only by
        faults" apart from physics denials. Content-addressed artifact
        stores always cache the *healthy* budget — this derivation runs
        after load, never before persist.
        """
        from repro.engine.budgets import SiteLinkBudget

        if self.is_noop:
            return budget
        site_name = budget.site.name
        times = ephemeris.times_s
        eta = budget.transmissivity
        usable = budget.usable
        factor = self.fade_factor_series(site_name, times)
        if not (isinstance(factor, float) and factor == 1.0):
            eta = eta * factor
            usable = usable & (eta >= policy.transmissivity_threshold)
        site_up = self.node_up_series(site_name, times)
        if site_up is not True:
            usable = usable & site_up
        platforms_up = self.platform_up_matrix(ephemeris.names, times)
        if platforms_up is not True:
            usable = usable & platforms_up
        links_ok = self.link_ok_matrix(site_name, ephemeris.names, times)
        if links_ok is not True:
            usable = usable & links_ok
        if usable is budget.usable:
            usable = usable.copy()
        _LINK_STEPS_SUPPRESSED.inc(int(np.count_nonzero(budget.usable & ~usable)))
        return SiteLinkBudget(
            budget.site,
            budget.elevation_rad,
            budget.slant_range_km,
            eta,
            usable,
            usable_healthy=budget.usable,
        )
