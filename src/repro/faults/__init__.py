"""Deterministic fault-injection plane (DESIGN.md §11).

The paper's headline numbers assume every satellite, ground station and
link is permanently healthy. This package perturbs a run *without
touching the physics code paths*: a :class:`FaultSchedule` holds typed
events (satellite outages, ground-station downtime, per-site weather
fades in dB, link flaps) plus seeded stochastic
:class:`FailureProcess` generators, and compiles — after
:meth:`FaultSchedule.realize` expands the processes into concrete
events — into a :class:`FaultPlane` of per-time masks and attenuation
factors that the cached (:class:`~repro.engine.linkstate.LinkStateCache`),
matrix (:class:`~repro.engine.budgets.LinkBudgetTable`) and direct
(:meth:`~repro.network.topology.QuantumNetwork.link_graph`) serving
paths all consume through one shared rule:

    eta'    = eta * prod(10^(-dB/10)) over active fades at the ground end
    usable' = usable & (eta' >= threshold) & both-nodes-up & link-not-flapped

The empty schedule compiles to a no-op plane and every consumer
short-circuits on it, so a fault-free run is bit-identical to a run
without the plane. Realization is driven by
:mod:`repro.utils.seeding`-style spawned streams keyed on the process
list order (never on string hashes, which are salted per process), so
the same ``--fault-seed`` reproduces the same degraded run anywhere.
"""

from repro.faults.plane import FaultPlane
from repro.faults.schedule import (
    FailureProcess,
    FaultEvent,
    FaultSchedule,
    GroundStationDowntime,
    LinkFlap,
    SatelliteOutage,
    WeatherFade,
    load_faults,
)

__all__ = [
    "FailureProcess",
    "FaultEvent",
    "FaultPlane",
    "FaultSchedule",
    "GroundStationDowntime",
    "LinkFlap",
    "SatelliteOutage",
    "WeatherFade",
    "load_faults",
]
