"""Fault schedules: typed events, stochastic processes, realization.

A schedule is pure data. Concrete events carry absolute half-open time
windows ``[start_s, end_s)`` on the simulation clock; stochastic
:class:`FailureProcess` entries are expanded into concrete events by
:meth:`FaultSchedule.realize` under a seed, after which the schedule is
*realized* (events only) and can be compiled, pickled to worker
processes, hashed into run manifests, and serialized back to JSON.

Determinism contract: realization draws from generators spawned via
``numpy.random.SeedSequence(seed).spawn(...)`` in (process index,
target index) order — no string hashing, no global RNG — so the same
``(schedule, seed, horizon)`` triple yields the same events in any
process on any host.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.errors import ValidationError
from repro.utils.seeding import SeedLike, as_generator

__all__ = [
    "FaultEvent",
    "SatelliteOutage",
    "GroundStationDowntime",
    "WeatherFade",
    "LinkFlap",
    "FailureProcess",
    "FaultSchedule",
    "coerce_schedule",
    "load_faults",
]


def _check_window(start_s: float, end_s: float) -> None:
    if not (math.isfinite(start_s) and math.isfinite(end_s)):
        raise ValidationError(f"fault window must be finite: ({start_s}, {end_s})")
    if end_s < start_s:
        raise ValidationError(f"fault window end {end_s} precedes start {start_s}")


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one fault active on the half-open window [start_s, end_s).

    An event is *active* at sample time ``t`` iff ``start_s <= t < end_s``
    — the same half-open convention as
    :class:`repro.utils.intervals.Interval`, so zero-length events are
    exact no-ops.
    """

    start_s: float
    end_s: float

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)

    @property
    def kind(self) -> str:
        """JSON discriminator tag (``satellite_outage``, ...)."""
        return _KIND_BY_CLASS[type(self)]

    def active(self, t_s: float) -> bool:
        """Whether the event covers sample time ``t_s``."""
        return self.start_s <= t_s < self.end_s

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation including the ``kind`` tag."""
        out: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


@dataclass(frozen=True)
class SatelliteOutage(FaultEvent):
    """A satellite is fully down: every link it terminates is unusable."""

    satellite: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.satellite:
            raise ValidationError("SatelliteOutage needs a satellite name")


@dataclass(frozen=True)
class GroundStationDowntime(FaultEvent):
    """A ground station is down: its FSO *and* fiber links are unusable."""

    station: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.station:
            raise ValidationError("GroundStationDowntime needs a station name")


@dataclass(frozen=True)
class WeatherFade(FaultEvent):
    """Extra atmospheric loss (dB) on one site's FSO links over a window.

    Applies to free-space links terminating at ``site`` only — weather
    never touches buried fiber. Overlapping fades at one site stack
    additively in dB (multiplicatively in transmissivity).
    """

    site: str = ""
    extra_db: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.site:
            raise ValidationError("WeatherFade needs a site name")
        if not (math.isfinite(self.extra_db) and self.extra_db >= 0.0):
            raise ValidationError(f"WeatherFade extra_db must be >= 0, got {self.extra_db}")


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """One specific link is administratively down (endpoints stay healthy)."""

    node_a: str = ""
    node_b: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node_a or not self.node_b:
            raise ValidationError("LinkFlap needs both endpoint names")
        if self.node_a == self.node_b:
            raise ValidationError(f"LinkFlap endpoints must differ, got {self.node_a!r} twice")


_EVENT_CLASSES: tuple[type[FaultEvent], ...] = (
    SatelliteOutage,
    GroundStationDowntime,
    WeatherFade,
    LinkFlap,
)
_KIND_BY_CLASS: dict[type, str] = {
    SatelliteOutage: "satellite_outage",
    GroundStationDowntime: "ground_station_downtime",
    WeatherFade: "weather_fade",
    LinkFlap: "link_flap",
}
_CLASS_BY_KIND: dict[str, type[FaultEvent]] = {v: k for k, v in _KIND_BY_CLASS.items()}


def _event_from_dict(data: Mapping[str, Any]) -> FaultEvent:
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = _CLASS_BY_KIND.get(kind)
    if cls is None:
        raise ValidationError(
            f"unknown fault event kind {kind!r}; expected one of {sorted(_CLASS_BY_KIND)}"
        )
    allowed = {f.name for f in fields(cls)}
    unknown = set(payload) - allowed
    if unknown:
        raise ValidationError(f"unknown {kind} fields {sorted(unknown)}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ValidationError(f"invalid {kind} event: {exc}") from None


def _sort_key(event: FaultEvent) -> tuple:
    return (event.kind, tuple(str(getattr(event, f.name)) for f in fields(event)))


@dataclass(frozen=True)
class FailureProcess:
    """A seeded renewal process generating fault events per target.

    For every target an independent stream draws exponential
    inter-failure gaps (mean ``mean_time_between_s``) and exponential
    outage durations (mean ``mean_duration_s``) until the realization
    horizon is exhausted; ``weather_fade`` processes additionally draw
    each fade's depth as exponential with mean ``mean_extra_db``.

    Attributes:
        kind: generated event kind; ``link_flap`` targets are written as
            ``"node_a|node_b"`` pairs.
        targets: node names (ordered — the order is part of the seed
            derivation, so it is semantically significant).
    """

    kind: str
    targets: tuple[str, ...]
    mean_time_between_s: float
    mean_duration_s: float
    mean_extra_db: float = 3.0

    def __post_init__(self) -> None:
        if self.kind not in _CLASS_BY_KIND:
            raise ValidationError(
                f"unknown process kind {self.kind!r}; expected one of {sorted(_CLASS_BY_KIND)}"
            )
        object.__setattr__(self, "targets", tuple(self.targets))
        if not self.targets:
            raise ValidationError("FailureProcess needs at least one target")
        for value, name in (
            (self.mean_time_between_s, "mean_time_between_s"),
            (self.mean_duration_s, "mean_duration_s"),
            (self.mean_extra_db, "mean_extra_db"),
        ):
            if not (math.isfinite(value) and value > 0.0):
                raise ValidationError(f"FailureProcess {name} must be positive, got {value}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "kind": self.kind,
            "targets": list(self.targets),
            "mean_time_between_s": self.mean_time_between_s,
            "mean_duration_s": self.mean_duration_s,
            "mean_extra_db": self.mean_extra_db,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureProcess":
        """Inverse of :meth:`to_dict` with field validation."""
        payload = dict(data)
        unknown = set(payload) - {
            "kind",
            "targets",
            "mean_time_between_s",
            "mean_duration_s",
            "mean_extra_db",
        }
        if unknown:
            raise ValidationError(f"unknown FailureProcess fields {sorted(unknown)}")
        try:
            return cls(
                kind=payload["kind"],
                targets=tuple(payload["targets"]),
                mean_time_between_s=float(payload["mean_time_between_s"]),
                mean_duration_s=float(payload["mean_duration_s"]),
                mean_extra_db=float(payload.get("mean_extra_db", 3.0)),
            )
        except KeyError as exc:
            raise ValidationError(f"FailureProcess missing field {exc}") from None

    def _make_event(self, target: str, start: float, end: float, extra_db: float) -> FaultEvent:
        if self.kind == "satellite_outage":
            return SatelliteOutage(start, end, satellite=target)
        if self.kind == "ground_station_downtime":
            return GroundStationDowntime(start, end, station=target)
        if self.kind == "weather_fade":
            return WeatherFade(start, end, site=target, extra_db=extra_db)
        a, _, b = target.partition("|")
        if not b:
            raise ValidationError(
                f"link_flap process targets must be 'node_a|node_b', got {target!r}"
            )
        return LinkFlap(start, end, node_a=a, node_b=b)

    def realize(self, rng: np.random.Generator, horizon_s: float) -> list[FaultEvent]:
        """Expand this process into concrete events on ``[0, horizon_s)``."""
        if not (math.isfinite(horizon_s) and horizon_s > 0.0):
            raise ValidationError(f"realization horizon must be positive, got {horizon_s}")
        events: list[FaultEvent] = []
        for target in self.targets:
            t = float(rng.exponential(self.mean_time_between_s))
            while t < horizon_s:
                duration = float(rng.exponential(self.mean_duration_s))
                extra_db = float(rng.exponential(self.mean_extra_db))
                events.append(
                    self._make_event(target, t, min(t + duration, horizon_s), extra_db)
                )
                t += duration + float(rng.exponential(self.mean_time_between_s))
        return events


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable bag of concrete events plus stochastic processes.

    A schedule with processes must be :meth:`realize`-d (expanding them
    into concrete events under a seed) before it can be compiled; a
    realized schedule is pure picklable data and realizes to itself.
    """

    events: tuple[FaultEvent, ...] = ()
    processes: tuple[FailureProcess, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "processes", tuple(self.processes))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ValidationError(f"not a fault event: {event!r}")
        for process in self.processes:
            if not isinstance(process, FailureProcess):
                raise ValidationError(f"not a failure process: {process!r}")

    @property
    def is_empty(self) -> bool:
        """Whether the schedule holds nothing to inject."""
        return not self.events and not self.processes

    @property
    def is_realized(self) -> bool:
        """Whether every stochastic process has been expanded."""
        return not self.processes

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (inverse of :meth:`from_dict`)."""
        out: dict[str, Any] = {"events": [e.to_dict() for e in self.events]}
        if self.processes:
            out["processes"] = [p.to_dict() for p in self.processes]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSchedule":
        """Build a schedule from a plain dict (e.g. parsed JSON)."""
        if not isinstance(data, Mapping):
            raise ValidationError(f"fault schedule must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"events", "processes"}
        if unknown:
            raise ValidationError(f"unknown fault schedule keys {sorted(unknown)}")
        events = tuple(_event_from_dict(e) for e in data.get("events", ()))
        processes = tuple(FailureProcess.from_dict(p) for p in data.get("processes", ()))
        return cls(events=events, processes=processes)

    def realize(self, *, seed: SeedLike = None, horizon_s: float) -> "FaultSchedule":
        """Expand stochastic processes into concrete events.

        Each (process, target) pair draws from its own spawned stream in
        list order, so appending a process never perturbs the events of
        earlier ones. A schedule with no processes is returned unchanged
        (``seed`` is then irrelevant — fixed schedules are deterministic
        by construction).
        """
        if not self.processes:
            return self
        if isinstance(seed, np.random.Generator):
            # A generator seed draws the root entropy from its stream.
            root = np.random.SeedSequence(int(as_generator(seed).integers(0, 2**63 - 1)))
        elif isinstance(seed, np.random.SeedSequence):
            root = seed
        else:
            root = np.random.SeedSequence(seed)
        children = root.spawn(len(self.processes))
        realized = list(self.events)
        for process, child in zip(self.processes, children):
            realized.extend(process.realize(np.random.default_rng(child), horizon_s))
        realized.sort(key=_sort_key)
        return FaultSchedule(events=tuple(realized))

    def schedule_hash(self) -> str:
        """SHA-256 over the canonical JSON form (events + processes).

        Stable across processes and hosts; embedded in run manifests so
        degraded runs are attributable to the exact schedule that
        produced them.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def compile(self) -> "FaultPlane":
        """Compile into the query plane the serving paths consume.

        Raises:
            ValidationError: if stochastic processes remain unrealized.
        """
        if self.processes:
            raise ValidationError(
                "schedule holds unrealized stochastic processes; call "
                "realize(seed=..., horizon_s=...) first"
            )
        from repro.faults.plane import FaultPlane

        return FaultPlane(self.events)

    def union(self, other: "FaultSchedule") -> "FaultSchedule":
        """Schedule holding both operands' events and processes."""
        return FaultSchedule(
            events=self.events + other.events,
            processes=self.processes + other.processes,
        )

    def __len__(self) -> int:
        return len(self.events)


def load_faults(path: str | Path) -> FaultSchedule:
    """Load a :class:`FaultSchedule` from a JSON file."""
    p = Path(path)
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValidationError(f"cannot read fault schedule {p}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"fault schedule {p} is not valid JSON: {exc}") from None
    return FaultSchedule.from_dict(data)


def coerce_schedule(
    faults: "FaultSchedule | Mapping[str, Any] | str | Path | None",
) -> FaultSchedule | None:
    """Accept a schedule, a schedule dict, or a JSON path; None passes through."""
    if faults is None:
        return None
    if isinstance(faults, FaultSchedule):
        return faults
    if isinstance(faults, (str, Path)):
        return load_faults(faults)
    if isinstance(faults, Mapping):
        return FaultSchedule.from_dict(faults)
    raise ValidationError(f"cannot interpret {type(faults).__name__} as a fault schedule")
