"""Argument-validation helpers.

All helpers raise :class:`repro.errors.ValidationError` with a message that
names the offending parameter, so call sites stay one-liners::

    check_positive("altitude_km", altitude_km)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_shape",
    "check_unit_interval",
]


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is strictly positive; return it unchanged."""
    if not np.isfinite(value) or value <= 0:
        raise ValidationError(f"{name} must be finite and > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Validate that ``value`` is finite and >= 0; return it unchanged."""
    if not np.isfinite(value) or value < 0:
        raise ValidationError(f"{name} must be finite and >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in [low, high] (or (low, high))."""
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    inside = low <= value <= high if inclusive else low < value < high
    if not inside:
        bracket = "[]" if inclusive else "()"
        raise ValidationError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_unit_interval(name: str, value: np.ndarray | float) -> np.ndarray:
    """Validate that every element of ``value`` lies in [0, 1].

    Accepts scalars and arrays; always returns an ``ndarray`` view.
    """
    arr = np.asarray(value, dtype=float)
    if arr.size and (not np.all(np.isfinite(arr)) or arr.min() < 0.0 or arr.max() > 1.0):
        raise ValidationError(f"{name} must lie in [0, 1]; got values outside that range")
    return arr


def check_finite(name: str, value: np.ndarray | float) -> np.ndarray:
    """Validate that every element of ``value`` is finite."""
    arr = np.asarray(value, dtype=float)
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must be finite everywhere")
    return arr


def check_shape(name: str, value: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Validate that ``value`` has exactly ``shape`` (use -1 for 'any size')."""
    arr = np.asarray(value)
    expected = tuple(shape)
    if len(arr.shape) != len(expected) or any(
        e != -1 and a != e for a, e in zip(arr.shape, expected)
    ):
        raise ValidationError(f"{name} must have shape {expected}, got {arr.shape}")
    return arr
