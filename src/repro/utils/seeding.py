"""Deterministic random-number plumbing.

Experiments in this package never touch the global NumPy RNG. Every
stochastic component receives a :class:`numpy.random.Generator`; sweeps
that fan out across processes derive independent child generators from a
single :class:`numpy.random.SeedSequence` so results are reproducible
regardless of worker count or scheduling order (the same discipline MPI
codes use for per-rank streams).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["as_generator", "spawn_generators", "SeedSequenceFactory"]

SeedLike = int | np.random.SeedSequence | np.random.Generator | None


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an int, a ``SeedSequence``, an existing ``Generator`` (returned
    unchanged), or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    The children are derived via ``SeedSequence.spawn`` so that e.g. each
    Monte-Carlo trial or each parallel worker gets its own stream whose
    draws do not depend on how work is scheduled.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream deterministically.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]


@dataclass
class SeedSequenceFactory:
    """Hands out numbered, reproducible seed sequences for named subsystems.

    Example:
        >>> factory = SeedSequenceFactory(1234)
        >>> rng_a = factory.generator("requests")
        >>> rng_b = factory.generator("weather")

    Repeated calls with the same key return generators over *successive*
    spawned streams, so two components never share a stream even when they
    use the same key.
    """

    seed: int | None = None
    _root: np.random.SeedSequence = field(init=False, repr=False)
    _counters: dict[str, int] = field(init=False, default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._root = np.random.SeedSequence(self.seed)

    def generator(self, key: str) -> np.random.Generator:
        """Return a fresh generator for ``key`` (deterministic per call index)."""
        index = self._counters.get(key, 0)
        self._counters[key] = index + 1
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=(hash(key) & 0xFFFFFFFF, index),
        )
        return np.random.default_rng(child)
