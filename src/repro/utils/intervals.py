"""Interval algebra over the simulation timeline.

The paper's coverage metric (Eqs. 6-7) sums the durations of the intervals
during which all three LANs are simultaneously connected. This module
provides a small, well-tested interval toolkit: conversion of boolean
sample masks into intervals, merging, intersection, and duration sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "Interval",
    "IntervalSet",
    "intervals_from_mask",
    "merge_intervals",
    "total_duration",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open time interval ``[start, end)`` in seconds.

    Attributes:
        start: interval start time [s].
        end: interval end time [s]; must satisfy ``end >= start``.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if not (np.isfinite(self.start) and np.isfinite(self.end)):
            raise ValidationError(f"interval bounds must be finite: ({self.start}, {self.end})")
        if self.end < self.start:
            raise ValidationError(f"interval end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        """Length of the interval [s]."""
        return self.end - self.start

    def contains(self, t: float) -> bool:
        """Whether time ``t`` lies inside the half-open interval."""
        return self.start <= t < self.end

    def overlaps(self, other: "Interval") -> bool:
        """Whether this interval intersects ``other`` (touching counts)."""
        return self.start <= other.end and other.start <= self.end

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection with ``other``, or ``None`` if disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if hi < lo:
            return None
        return Interval(lo, hi)


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Merge overlapping or touching intervals into a sorted disjoint list."""
    items = sorted(intervals)
    merged: list[Interval] = []
    for iv in items:
        if merged and iv.start <= merged[-1].end:
            last = merged[-1]
            if iv.end > last.end:
                merged[-1] = Interval(last.start, iv.end)
        else:
            merged.append(iv)
    return merged


def total_duration(intervals: Iterable[Interval]) -> float:
    """Total duration of the union of ``intervals`` [s] (paper Eq. 6)."""
    return sum(iv.duration for iv in merge_intervals(intervals))


def intervals_from_mask(times: Sequence[float], mask: Sequence[bool]) -> list[Interval]:
    """Convert a boolean sample mask over sample times into intervals.

    Each ``True`` sample at ``times[i]`` is taken to cover the half-open
    window ``[times[i], times[i+1])``; the final sample covers a window of
    the same width as the preceding step (or zero for a single sample).
    Consecutive ``True`` windows merge into one interval. This matches how
    STK-style access reports discretise coverage at a fixed cadence.

    Args:
        times: strictly increasing sample times [s].
        mask: boolean connectivity flag per sample; same length as ``times``.

    Returns:
        Sorted list of disjoint intervals.
    """
    t = np.asarray(times, dtype=float)
    m = np.asarray(mask, dtype=bool)
    if t.shape != m.shape or t.ndim != 1:
        raise ValidationError(
            f"times and mask must be equal-length 1-D sequences, got {t.shape} vs {m.shape}"
        )
    if t.size == 0:
        return []
    if t.size > 1 and not np.all(np.diff(t) > 0):
        raise ValidationError("times must be strictly increasing")

    # Window end for each sample: the next sample time; the last window
    # extends by the trailing step width.
    if t.size == 1:
        ends = t.copy()
    else:
        step = t[-1] - t[-2]
        ends = np.concatenate([t[1:], [t[-1] + step]])

    intervals: list[Interval] = []
    run_start: float | None = None
    for i in range(t.size):
        if m[i] and run_start is None:
            run_start = float(t[i])
        if run_start is not None and (not m[i]):
            intervals.append(Interval(run_start, float(t[i])))
            run_start = None
    if run_start is not None:
        intervals.append(Interval(run_start, float(ends[-1])))
    return intervals


class IntervalSet:
    """A mutable union of disjoint intervals with set-style operations."""

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: list[Interval] = merge_intervals(intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(f"[{iv.start:g},{iv.end:g})" for iv in self._intervals)
        return f"IntervalSet({spans})"

    @property
    def duration(self) -> float:
        """Total covered duration [s]."""
        return sum(iv.duration for iv in self._intervals)

    def add(self, interval: Interval) -> None:
        """Insert ``interval``, merging with existing spans as needed."""
        self._intervals = merge_intervals([*self._intervals, interval])

    def contains(self, t: float) -> bool:
        """Whether time ``t`` is covered by any interval."""
        return any(iv.contains(t) for iv in self._intervals)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Set intersection with another interval set."""
        out: list[Interval] = []
        for a in self._intervals:
            for b in other._intervals:
                hit = a.intersect(b)
                if hit is not None and hit.duration > 0:
                    out.append(hit)
        return IntervalSet(out)

    def coverage_fraction(self, horizon: float) -> float:
        """Covered fraction of ``[0, horizon)`` (paper Eq. 7, as a ratio)."""
        if horizon <= 0:
            raise ValidationError(f"horizon must be positive, got {horizon}")
        clipped = self.intersection(IntervalSet([Interval(0.0, horizon)]))
        return clipped.duration / horizon
