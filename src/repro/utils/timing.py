"""Lightweight wall-clock instrumentation (compatibility shim).

The :class:`Stopwatch` implementation moved to :mod:`repro.obs.spans`,
where it sits next to the global tracing spans as the local, always-on
variant. This module re-exports it so existing imports keep working;
new code should prefer ``from repro.obs import Stopwatch`` (or the
global :func:`repro.obs.span` phases when the run profile should see
the timing).
"""

from __future__ import annotations

from repro.obs.spans import Stopwatch

__all__ = ["Stopwatch"]
