"""Lightweight wall-clock instrumentation for benchmarks and sweeps."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example:
        >>> sw = Stopwatch()
        >>> with sw.lap("propagate"):
        ...     pass
        >>> sw.totals()["propagate"] >= 0.0
        True
    """

    _totals: dict[str, float] = field(default_factory=dict)
    _counts: dict[str, int] = field(default_factory=dict)

    def lap(self, name: str) -> "_Lap":
        """Context manager that adds its elapsed time to lap ``name``."""
        return _Lap(self, name)

    def record(self, name: str, elapsed: float) -> None:
        """Manually add ``elapsed`` seconds to lap ``name``."""
        self._totals[name] = self._totals.get(name, 0.0) + elapsed
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> dict[str, float]:
        """Total elapsed seconds per lap name."""
        return dict(self._totals)

    def counts(self) -> dict[str, int]:
        """Number of recorded laps per name."""
        return dict(self._counts)

    def summary(self) -> str:
        """Human-readable multi-line summary, slowest lap first."""
        lines = [
            f"{name:<24s} {self._totals[name]:9.4f} s  x{self._counts[name]}"
            for name in sorted(self._totals, key=self._totals.get, reverse=True)
        ]
        return "\n".join(lines)


class _Lap:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._watch.record(self._name, time.perf_counter() - self._start)
