"""Shared utilities: validation, seeding, interval algebra, timing.

These helpers are deliberately dependency-light so every subsystem can use
them without import cycles.
"""

from repro.utils.intervals import (
    Interval,
    IntervalSet,
    intervals_from_mask,
    merge_intervals,
    total_duration,
)
from repro.utils.seeding import SeedSequenceFactory, as_generator, spawn_generators
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
    check_unit_interval,
)

__all__ = [
    "Interval",
    "IntervalSet",
    "intervals_from_mask",
    "merge_intervals",
    "total_duration",
    "SeedSequenceFactory",
    "as_generator",
    "spawn_generators",
    "Stopwatch",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_shape",
    "check_unit_interval",
]
