"""Classical orbital elements, scalar and structure-of-arrays forms.

The scalar :class:`OrbitalElements` is the user-facing type; the
structure-of-arrays :class:`ElementSet` is what the vectorized propagator
consumes — one contiguous array per element across the whole constellation,
per the package's HPC conventions (broadcast across ``(n_sats, n_times)``
instead of looping over satellites).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.constants import EARTH_MU_KM3_S2
from repro.errors import ValidationError
from repro.utils.validation import check_in_range, check_positive

__all__ = ["OrbitalElements", "ElementSet", "mean_motion", "orbital_period"]


def mean_motion(semi_major_axis_km: float, mu: float = EARTH_MU_KM3_S2) -> float:
    """Mean motion n = sqrt(mu / a^3) [rad/s]."""
    check_positive("semi_major_axis_km", semi_major_axis_km)
    return math.sqrt(mu / semi_major_axis_km**3)


def orbital_period(semi_major_axis_km: float, mu: float = EARTH_MU_KM3_S2) -> float:
    """Keplerian orbital period [s]."""
    return 2.0 * math.pi / mean_motion(semi_major_axis_km, mu)


@dataclass(frozen=True)
class OrbitalElements:
    """Classical (Keplerian) orbital elements at a reference epoch.

    Attributes:
        semi_major_axis_km: semi-major axis a [km].
        eccentricity: eccentricity e, in [0, 1).
        inclination_rad: inclination i [rad].
        raan_rad: right ascension of the ascending node Omega [rad].
        arg_perigee_rad: argument of perigee omega [rad].
        true_anomaly_rad: true anomaly nu at epoch [rad].
    """

    semi_major_axis_km: float
    eccentricity: float
    inclination_rad: float
    raan_rad: float
    arg_perigee_rad: float
    true_anomaly_rad: float

    def __post_init__(self) -> None:
        check_positive("semi_major_axis_km", self.semi_major_axis_km)
        if not 0.0 <= self.eccentricity < 1.0:
            raise ValidationError(
                f"eccentricity must lie in [0, 1) for closed orbits, got {self.eccentricity}"
            )
        check_in_range("inclination_rad", self.inclination_rad, 0.0, math.pi)

    @property
    def altitude_km(self) -> float:
        """Mean altitude above the spherical Earth [km] (a - R_earth)."""
        from repro.constants import EARTH_RADIUS_KM

        return self.semi_major_axis_km - EARTH_RADIUS_KM

    @property
    def period_s(self) -> float:
        """Keplerian orbital period [s]."""
        return orbital_period(self.semi_major_axis_km)

    @property
    def mean_motion_rad_s(self) -> float:
        """Mean motion [rad/s]."""
        return mean_motion(self.semi_major_axis_km)

    def with_true_anomaly(self, true_anomaly_rad: float) -> "OrbitalElements":
        """Copy of these elements at a different true anomaly."""
        return OrbitalElements(
            self.semi_major_axis_km,
            self.eccentricity,
            self.inclination_rad,
            self.raan_rad,
            self.arg_perigee_rad,
            true_anomaly_rad,
        )


class ElementSet:
    """Structure-of-arrays container for N satellites' orbital elements.

    All fields are float64 arrays of shape ``(n,)``. Construction validates
    shapes and physical ranges once so hot propagation loops can skip
    per-call checks.
    """

    __slots__ = ("a", "e", "inc", "raan", "argp", "nu")

    def __init__(
        self,
        a: np.ndarray,
        e: np.ndarray,
        inc: np.ndarray,
        raan: np.ndarray,
        argp: np.ndarray,
        nu: np.ndarray,
    ) -> None:
        arrays = [np.ascontiguousarray(x, dtype=float) for x in (a, e, inc, raan, argp, nu)]
        n = arrays[0].shape[0] if arrays[0].ndim == 1 else -1
        for name, arr in zip(("a", "e", "inc", "raan", "argp", "nu"), arrays):
            if arr.ndim != 1 or arr.shape[0] != n:
                raise ValidationError(f"ElementSet field {name} must be 1-D of length {n}")
            if not np.all(np.isfinite(arr)):
                raise ValidationError(f"ElementSet field {name} contains non-finite values")
        if np.any(arrays[0] <= 0):
            raise ValidationError("semi-major axes must be positive")
        if np.any((arrays[1] < 0) | (arrays[1] >= 1)):
            raise ValidationError("eccentricities must lie in [0, 1)")
        self.a, self.e, self.inc, self.raan, self.argp, self.nu = arrays

    def __len__(self) -> int:
        return self.a.shape[0]

    def __iter__(self) -> Iterator[OrbitalElements]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index: int) -> OrbitalElements:
        return OrbitalElements(
            float(self.a[index]),
            float(self.e[index]),
            float(self.inc[index]),
            float(self.raan[index]),
            float(self.argp[index]),
            float(self.nu[index]),
        )

    @classmethod
    def from_elements(cls, elements: Iterable[OrbitalElements]) -> "ElementSet":
        """Build a set from scalar :class:`OrbitalElements` objects."""
        items: Sequence[OrbitalElements] = list(elements)
        return cls(
            np.array([el.semi_major_axis_km for el in items], dtype=float),
            np.array([el.eccentricity for el in items], dtype=float),
            np.array([el.inclination_rad for el in items], dtype=float),
            np.array([el.raan_rad for el in items], dtype=float),
            np.array([el.arg_perigee_rad for el in items], dtype=float),
            np.array([el.true_anomaly_rad for el in items], dtype=float),
        )

    def subset(self, indices: Sequence[int] | np.ndarray) -> "ElementSet":
        """New :class:`ElementSet` restricted to ``indices`` (copy)."""
        idx = np.asarray(indices, dtype=int)
        return ElementSet(
            self.a[idx], self.e[idx], self.inc[idx], self.raan[idx], self.argp[idx], self.nu[idx]
        )

    @property
    def mean_motion_rad_s(self) -> np.ndarray:
        """Per-satellite mean motion [rad/s], shape ``(n,)``."""
        return np.sqrt(EARTH_MU_KM3_S2 / self.a**3)
