"""Reference-frame transformations: ECI, ECEF, geodetic, and topocentric ENU.

The inertial frame is a simplified true-equator/mean-equinox frame rotated
into the Earth-fixed frame by Greenwich mean sidereal time (GMST); nutation
and polar motion are far below the 30-second/link-budget resolution of the
QNTN scenario. Geodetic conversions use the WGS-84 ellipsoid (Bowring's
method for the inverse).
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    EARTH_ROTATION_RATE_RAD_S,
    WGS84_A_KM,
    WGS84_B_KM,
    WGS84_E2,
)
from repro.errors import ValidationError

__all__ = [
    "gmst",
    "eci_to_ecef",
    "ecef_to_eci",
    "geodetic_to_ecef",
    "ecef_to_geodetic",
    "ecef_to_enu_matrix",
    "enu_to_azimuth_elevation",
]


def gmst(t_s: np.ndarray | float, gmst_epoch_rad: float = 0.0) -> np.ndarray:
    """Greenwich mean sidereal time at simulation time ``t_s`` [rad].

    Args:
        t_s: seconds since the simulation epoch.
        gmst_epoch_rad: GMST at the epoch (default 0 aligns the prime
            meridian with the vernal equinox at t=0, the convention the
            rest of the package assumes).
    """
    t = np.asarray(t_s, dtype=float)
    return np.mod(gmst_epoch_rad + EARTH_ROTATION_RATE_RAD_S * t, 2.0 * np.pi)


def _rotation_z(theta: np.ndarray) -> np.ndarray:
    """Stack of rotation matrices about +z by ``theta``; shape (..., 3, 3)."""
    c = np.cos(theta)
    s = np.sin(theta)
    zeros = np.zeros_like(c)
    ones = np.ones_like(c)
    rot = np.stack(
        [
            np.stack([c, s, zeros], axis=-1),
            np.stack([-s, c, zeros], axis=-1),
            np.stack([zeros, zeros, ones], axis=-1),
        ],
        axis=-2,
    )
    return rot


def eci_to_ecef(
    r_eci_km: np.ndarray, t_s: np.ndarray | float, gmst_epoch_rad: float = 0.0
) -> np.ndarray:
    """Rotate ECI position vectors into the Earth-fixed (ECEF) frame.

    Args:
        r_eci_km: positions with trailing axis 3; shape ``(..., 3)``. The
            leading shape must broadcast against ``t_s``.
        t_s: epoch-relative times [s], broadcastable to ``r_eci_km[..., 0]``.
        gmst_epoch_rad: GMST at the simulation epoch.

    Returns:
        ECEF positions, same shape as ``r_eci_km``.
    """
    r = np.asarray(r_eci_km, dtype=float)
    if r.shape[-1] != 3:
        raise ValidationError(f"positions must have a trailing axis of 3, got {r.shape}")
    theta = gmst(t_s, gmst_epoch_rad)
    rot = _rotation_z(theta)  # ECEF = R_z(gmst) @ ECI
    return np.einsum("...ij,...j->...i", rot, r)


def ecef_to_eci(
    r_ecef_km: np.ndarray, t_s: np.ndarray | float, gmst_epoch_rad: float = 0.0
) -> np.ndarray:
    """Inverse of :func:`eci_to_ecef`."""
    r = np.asarray(r_ecef_km, dtype=float)
    if r.shape[-1] != 3:
        raise ValidationError(f"positions must have a trailing axis of 3, got {r.shape}")
    theta = gmst(t_s, gmst_epoch_rad)
    rot = _rotation_z(-theta)
    return np.einsum("...ij,...j->...i", rot, r)


def geodetic_to_ecef(
    lat_rad: np.ndarray | float,
    lon_rad: np.ndarray | float,
    alt_km: np.ndarray | float = 0.0,
) -> np.ndarray:
    """WGS-84 geodetic coordinates -> ECEF position [km]; shape ``(..., 3)``."""
    lat = np.asarray(lat_rad, dtype=float)
    lon = np.asarray(lon_rad, dtype=float)
    alt = np.asarray(alt_km, dtype=float)
    sin_lat = np.sin(lat)
    n = WGS84_A_KM / np.sqrt(1.0 - WGS84_E2 * sin_lat**2)
    x = (n + alt) * np.cos(lat) * np.cos(lon)
    y = (n + alt) * np.cos(lat) * np.sin(lon)
    z = (n * (1.0 - WGS84_E2) + alt) * sin_lat
    return np.stack(np.broadcast_arrays(x, y, z), axis=-1)


def ecef_to_geodetic(r_ecef_km: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ECEF position -> WGS-84 geodetic (lat [rad], lon [rad], alt [km]).

    Uses Bowring's closed-form approximation, accurate to sub-metre level
    for altitudes from the surface through LEO.
    """
    r = np.asarray(r_ecef_km, dtype=float)
    if r.shape[-1] != 3:
        raise ValidationError(f"positions must have a trailing axis of 3, got {r.shape}")
    x, y, z = r[..., 0], r[..., 1], r[..., 2]
    lon = np.arctan2(y, x)
    p = np.hypot(x, y)
    # Bowring's parametric latitude starter followed by one refinement.
    e2p = (WGS84_A_KM**2 - WGS84_B_KM**2) / WGS84_B_KM**2
    theta = np.arctan2(z * WGS84_A_KM, p * WGS84_B_KM)
    lat = np.arctan2(
        z + e2p * WGS84_B_KM * np.sin(theta) ** 3,
        p - WGS84_E2 * WGS84_A_KM * np.cos(theta) ** 3,
    )
    # Two fixed-point refinements take the Bowring starter to sub-mm
    # accuracy through LEO altitudes.
    for _ in range(2):
        sin_lat = np.sin(lat)
        cos_lat = np.cos(lat)
        n = WGS84_A_KM / np.sqrt(1.0 - WGS84_E2 * sin_lat**2)
        with np.errstate(divide="ignore", invalid="ignore"):
            alt = np.where(
                np.abs(cos_lat) > 1e-10,
                p / np.where(np.abs(cos_lat) > 1e-10, cos_lat, 1.0) - n,
                np.abs(z) / np.abs(np.where(sin_lat == 0, 1.0, sin_lat))
                - n * (1.0 - WGS84_E2),
            )
        lat = np.arctan2(z, p * (1.0 - WGS84_E2 * n / (n + alt)))
    sin_lat = np.sin(lat)
    cos_lat = np.cos(lat)
    n = WGS84_A_KM / np.sqrt(1.0 - WGS84_E2 * sin_lat**2)
    with np.errstate(divide="ignore", invalid="ignore"):
        alt = np.where(
            np.abs(cos_lat) > 1e-10,
            p / np.where(np.abs(cos_lat) > 1e-10, cos_lat, 1.0) - n,
            np.abs(z) / np.abs(np.where(sin_lat == 0, 1.0, sin_lat)) - n * (1.0 - WGS84_E2),
        )
    return lat, lon, alt


def ecef_to_enu_matrix(lat_rad: float, lon_rad: float) -> np.ndarray:
    """Rotation matrix taking ECEF difference vectors to local ENU axes.

    Returns:
        3x3 matrix ``T`` such that ``enu = T @ (r_target - r_site)``.
    """
    sin_lat, cos_lat = np.sin(lat_rad), np.cos(lat_rad)
    sin_lon, cos_lon = np.sin(lon_rad), np.cos(lon_rad)
    return np.array(
        [
            [-sin_lon, cos_lon, 0.0],
            [-sin_lat * cos_lon, -sin_lat * sin_lon, cos_lat],
            [cos_lat * cos_lon, cos_lat * sin_lon, sin_lat],
        ]
    )


def enu_to_azimuth_elevation(
    enu_km: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ENU vectors -> (azimuth [rad], elevation [rad], slant range [km]).

    Azimuth is measured clockwise from North; elevation from the local
    horizontal plane. Works on any ``(..., 3)`` stack.
    """
    enu = np.asarray(enu_km, dtype=float)
    if enu.shape[-1] != 3:
        raise ValidationError(f"ENU vectors must have a trailing axis of 3, got {enu.shape}")
    east, north, up = enu[..., 0], enu[..., 1], enu[..., 2]
    rng = np.sqrt(east**2 + north**2 + up**2)
    azimuth = np.mod(np.arctan2(east, north), 2.0 * np.pi)
    with np.errstate(invalid="ignore"):
        elevation = np.where(rng > 0, np.arcsin(np.clip(up / np.where(rng == 0, 1, rng), -1, 1)), 0.0)
    return azimuth, elevation, rng
