"""Orbital mechanics substrate (replaces the paper's use of Ansys STK).

Provides Keplerian element handling, vectorized two-body propagation with
optional J2 secular perturbation, Earth-fixed and geodetic frames, the
Walker-Delta constellation generator used by the paper (Table II), ground
visibility geometry, and 30-second "movement sheet" ephemerides.
"""

from repro.orbits.elements import ElementSet, OrbitalElements, mean_motion, orbital_period
from repro.orbits.ephemeris import Ephemeris, generate_movement_sheet, movement_sheet_times
from repro.orbits.frames import (
    ecef_to_enu_matrix,
    ecef_to_geodetic,
    eci_to_ecef,
    enu_to_azimuth_elevation,
    geodetic_to_ecef,
    gmst,
)
from repro.orbits.kepler import (
    eccentric_to_mean,
    eccentric_to_true,
    mean_to_eccentric,
    mean_to_true,
    solve_kepler,
    true_to_eccentric,
    true_to_mean,
)
from repro.orbits.propagator import TwoBodyPropagator, elements_to_eci
from repro.orbits.visibility import (
    AccessWindow,
    access_windows,
    elevation_and_range,
    ground_coverage_radius_km,
    visibility_mask,
)
from repro.orbits.walker import qntn_constellation, qntn_plane_order, walker_delta

__all__ = [
    "OrbitalElements",
    "ElementSet",
    "mean_motion",
    "orbital_period",
    "solve_kepler",
    "mean_to_eccentric",
    "eccentric_to_mean",
    "eccentric_to_true",
    "true_to_eccentric",
    "mean_to_true",
    "true_to_mean",
    "TwoBodyPropagator",
    "elements_to_eci",
    "gmst",
    "eci_to_ecef",
    "geodetic_to_ecef",
    "ecef_to_geodetic",
    "ecef_to_enu_matrix",
    "enu_to_azimuth_elevation",
    "walker_delta",
    "qntn_constellation",
    "qntn_plane_order",
    "elevation_and_range",
    "visibility_mask",
    "access_windows",
    "AccessWindow",
    "ground_coverage_radius_km",
    "Ephemeris",
    "generate_movement_sheet",
    "movement_sheet_times",
]
