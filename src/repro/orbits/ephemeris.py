"""Movement sheets: sampled Earth-fixed trajectories for moving platforms.

The paper exports each satellite's positions from STK at 30-second
intervals into "movement sheets" and imports them into the upgraded
QuNetSim. :func:`generate_movement_sheet` plays STK's role here; the
resulting :class:`Ephemeris` is the exchange format the network layer's
``Satellite`` hosts consume, and it round-trips through CSV so that sheets
can be persisted and re-imported exactly as in the paper's workflow.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.constants import QNTN_EPHEMERIS_STEP_S, SOLAR_DAY_S
from repro.errors import ValidationError
from repro.orbits.elements import ElementSet
from repro.orbits.frames import ecef_to_geodetic, eci_to_ecef
from repro.orbits.propagator import TwoBodyPropagator

__all__ = ["Ephemeris", "generate_movement_sheet", "movement_sheet_times"]


def movement_sheet_times(
    duration_s: float = SOLAR_DAY_S, step_s: float = QNTN_EPHEMERIS_STEP_S
) -> np.ndarray:
    """Sample-time grid for movement sheets: ``0, step, ..., < duration``.

    Defaults reproduce the paper's one-day horizon at 30-second cadence
    (2880 samples).
    """
    if duration_s <= 0 or step_s <= 0:
        raise ValidationError("duration_s and step_s must be positive")
    n = int(np.floor(duration_s / step_s + 1e-9))
    return np.arange(n, dtype=float) * step_s


@dataclass
class Ephemeris:
    """Sampled ECEF trajectories for a group of platforms.

    Attributes:
        times_s: shape ``(T,)`` strictly increasing sample times [s].
        positions_ecef_km: shape ``(N, T, 3)`` positions [km].
        names: ``N`` platform identifiers.
    """

    times_s: np.ndarray
    positions_ecef_km: np.ndarray
    names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.times_s = np.ascontiguousarray(self.times_s, dtype=float)
        self.positions_ecef_km = np.ascontiguousarray(self.positions_ecef_km, dtype=float)
        if self.times_s.ndim != 1:
            raise ValidationError("times_s must be 1-D")
        if self.positions_ecef_km.ndim != 3 or self.positions_ecef_km.shape[2] != 3:
            raise ValidationError("positions_ecef_km must have shape (N, T, 3)")
        if self.positions_ecef_km.shape[1] != self.times_s.shape[0]:
            raise ValidationError(
                f"time axis mismatch: {self.positions_ecef_km.shape[1]} positions vs "
                f"{self.times_s.shape[0]} sample times"
            )
        if self.times_s.size > 1 and not np.all(np.diff(self.times_s) > 0):
            raise ValidationError("times_s must be strictly increasing")
        if not self.names:
            self.names = [f"sat-{i:03d}" for i in range(self.positions_ecef_km.shape[0])]
        if len(self.names) != self.positions_ecef_km.shape[0]:
            raise ValidationError(
                f"{len(self.names)} names for {self.positions_ecef_km.shape[0]} platforms"
            )

    @property
    def n_platforms(self) -> int:
        """Number of platforms."""
        return self.positions_ecef_km.shape[0]

    @property
    def n_samples(self) -> int:
        """Number of time samples."""
        return self.times_s.shape[0]

    def index_of(self, name: str) -> int:
        """Index of platform ``name``."""
        try:
            return self.names.index(name)
        except ValueError as exc:
            raise ValidationError(f"unknown platform {name!r}") from exc

    def sample_index(self, t_s: float) -> int:
        """Index of the most recent sample at or before ``t_s`` (clamped)."""
        idx = int(np.searchsorted(self.times_s, t_s, side="right") - 1)
        return min(max(idx, 0), self.n_samples - 1)

    def position_at(self, platform: int | str, t_s: float, *, interpolate: bool = False) -> np.ndarray:
        """Position of one platform at time ``t_s`` [km].

        Args:
            platform: index or name.
            t_s: query time [s].
            interpolate: linearly interpolate between bracketing samples
                instead of holding the most recent sample (the paper's
                thread-driven movement list corresponds to sample-and-hold).
        """
        i = platform if isinstance(platform, int) else self.index_of(platform)
        k = self.sample_index(t_s)
        if not interpolate or k == self.n_samples - 1 or t_s <= self.times_s[0]:
            return self.positions_ecef_km[i, k].copy()
        t0, t1 = self.times_s[k], self.times_s[k + 1]
        w = (t_s - t0) / (t1 - t0)
        return (1 - w) * self.positions_ecef_km[i, k] + w * self.positions_ecef_km[i, k + 1]

    def geodetic_tracks(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Latitude/longitude/altitude tracks, each shape ``(N, T)``."""
        return ecef_to_geodetic(self.positions_ecef_km)

    def subset(self, indices: Sequence[int]) -> "Ephemeris":
        """Ephemeris restricted to the given platform indices (copy)."""
        idx = list(indices)
        return Ephemeris(
            self.times_s.copy(),
            self.positions_ecef_km[idx].copy(),
            [self.names[i] for i in idx],
        )

    def at_time_indices(self, indices: Sequence[int] | np.ndarray) -> "Ephemeris":
        """Ephemeris restricted to the given sample indices (copy).

        Used by the evaluation sweeps to analyse only the ~100 time steps
        the paper samples instead of the full 2880-sample day.
        """
        idx = np.asarray(indices, dtype=int)
        return Ephemeris(
            self.times_s[idx].copy(),
            self.positions_ecef_km[:, idx, :].copy(),
            list(self.names),
        )

    # --- movement-sheet persistence (paper Section III-C workflow) ---------

    def to_csv(self, path: str | Path) -> None:
        """Write a movement sheet: one row per (platform, sample)."""
        with open(path, "w", newline="") as fh:
            self._write_csv(fh)

    def to_csv_string(self) -> str:
        """Movement sheet as a CSV string (for tests and streaming)."""
        buf = io.StringIO()
        self._write_csv(buf)
        return buf.getvalue()

    def _write_csv(self, fh) -> None:
        writer = csv.writer(fh)
        writer.writerow(["name", "time_s", "x_km", "y_km", "z_km"])
        for i, name in enumerate(self.names):
            for j, t in enumerate(self.times_s):
                x, y, z = self.positions_ecef_km[i, j]
                writer.writerow([name, repr(float(t)), repr(float(x)), repr(float(y)), repr(float(z))])

    @classmethod
    def from_csv(cls, path: str | Path) -> "Ephemeris":
        """Read a movement sheet written by :meth:`to_csv`."""
        with open(path, newline="") as fh:
            return cls._read_csv(fh)

    @classmethod
    def from_csv_string(cls, text: str) -> "Ephemeris":
        """Parse a movement sheet from a CSV string."""
        return cls._read_csv(io.StringIO(text))

    @classmethod
    def _read_csv(cls, fh) -> "Ephemeris":
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["name", "time_s", "x_km", "y_km", "z_km"]:
            raise ValidationError(f"unrecognised movement-sheet header: {header}")
        by_name: dict[str, list[tuple[float, float, float, float]]] = {}
        order: list[str] = []
        for row in reader:
            if not row:
                continue
            name, t, x, y, z = row
            if name not in by_name:
                by_name[name] = []
                order.append(name)
            by_name[name].append((float(t), float(x), float(y), float(z)))
        if not order:
            raise ValidationError("movement sheet contains no samples")
        times = np.array([r[0] for r in by_name[order[0]]], dtype=float)
        positions = np.empty((len(order), times.size, 3), dtype=float)
        for i, name in enumerate(order):
            rows = by_name[name]
            if len(rows) != times.size:
                raise ValidationError(
                    f"platform {name!r} has {len(rows)} samples, expected {times.size}"
                )
            for j, (t, x, y, z) in enumerate(rows):
                if t != times[j]:
                    raise ValidationError(f"platform {name!r} sample {j} at t={t}, expected {times[j]}")
                positions[i, j] = (x, y, z)
        return cls(times, positions, order)


def generate_movement_sheet(
    elements: ElementSet,
    *,
    duration_s: float = SOLAR_DAY_S,
    step_s: float = QNTN_EPHEMERIS_STEP_S,
    names: Sequence[str] | None = None,
    include_j2: bool = False,
    gmst_epoch_rad: float = 0.0,
) -> Ephemeris:
    """Propagate a constellation and sample it into an :class:`Ephemeris`.

    This replaces the paper's STK export step: propagate every satellite,
    rotate into the Earth-fixed frame, and record positions every
    ``step_s`` seconds over ``duration_s``.
    """
    times = movement_sheet_times(duration_s, step_s)
    propagator = TwoBodyPropagator(elements, include_j2=include_j2)
    r_eci = propagator.positions_eci(times)  # (N, T, 3)
    r_ecef = eci_to_ecef(r_eci, times[None, :], gmst_epoch_rad)
    name_list = list(names) if names is not None else []
    return Ephemeris(times, r_ecef, name_list)
