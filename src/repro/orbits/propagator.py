"""Vectorized two-body propagation with optional J2 secular rates.

The propagator advances a whole :class:`~repro.orbits.elements.ElementSet`
over a whole time grid in one shot, producing an ``(n_sats, n_times, 3)``
position array. For the QNTN scenario (108 satellites x 2880 samples) this
runs in milliseconds, replacing the paper's STK runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.constants import EARTH_MU_KM3_S2, EARTH_RADIUS_KM, EARTH_J2
from repro.errors import ValidationError
from repro.orbits.elements import ElementSet, OrbitalElements
from repro.orbits.kepler import solve_kepler, true_to_mean

__all__ = ["TwoBodyPropagator", "elements_to_eci"]


def _perifocal_to_eci_matrices(
    raan: np.ndarray, inc: np.ndarray, argp: np.ndarray
) -> np.ndarray:
    """Stack of perifocal->ECI rotation matrices, shape ``(n, 3, 3)``."""
    cO, sO = np.cos(raan), np.sin(raan)
    ci, si = np.cos(inc), np.sin(inc)
    cw, sw = np.cos(argp), np.sin(argp)
    m = np.empty(raan.shape + (3, 3), dtype=float)
    m[..., 0, 0] = cO * cw - sO * sw * ci
    m[..., 0, 1] = -cO * sw - sO * cw * ci
    m[..., 0, 2] = sO * si
    m[..., 1, 0] = sO * cw + cO * sw * ci
    m[..., 1, 1] = -sO * sw + cO * cw * ci
    m[..., 1, 2] = -cO * si
    m[..., 2, 0] = sw * si
    m[..., 2, 1] = cw * si
    m[..., 2, 2] = ci
    return m


def elements_to_eci(elements: OrbitalElements) -> np.ndarray:
    """ECI position of a single element set at its own epoch [km]."""
    es = ElementSet.from_elements([elements])
    prop = TwoBodyPropagator(es)
    return prop.positions_eci(np.array([0.0]))[0, 0]


@dataclass(frozen=True)
class _J2Rates:
    """Secular drift rates induced by the J2 zonal harmonic [rad/s]."""

    raan_dot: np.ndarray
    argp_dot: np.ndarray
    mean_anomaly_dot: np.ndarray


class TwoBodyPropagator:
    """Keplerian propagator over an :class:`ElementSet`.

    Args:
        elements: constellation elements at the simulation epoch.
        mu: gravitational parameter [km^3/s^2].
        include_j2: apply secular J2 drift of RAAN / argument of perigee /
            mean anomaly. Short-period J2 oscillations are neglected; over
            one day at 500 km they displace positions by a few km, far
            below the link-budget resolution (documented in DESIGN.md).

    The propagator precomputes per-satellite constants once; repeated
    :meth:`positions_eci` calls only pay the Kepler solve and two matmuls.
    """

    def __init__(
        self,
        elements: ElementSet,
        *,
        mu: float = EARTH_MU_KM3_S2,
        include_j2: bool = False,
    ) -> None:
        if len(elements) == 0:
            raise ValidationError("cannot propagate an empty ElementSet")
        self._elements = elements
        self._mu = mu
        self._n = np.sqrt(mu / elements.a**3)  # mean motion per sat
        self._m0 = true_to_mean(elements.nu, elements.e)
        self._include_j2 = include_j2
        self._j2 = self._j2_rates() if include_j2 else None

    @property
    def elements(self) -> ElementSet:
        """The element set this propagator was built from."""
        return self._elements

    @property
    def n_satellites(self) -> int:
        """Number of satellites."""
        return len(self._elements)

    def _j2_rates(self) -> _J2Rates:
        el = self._elements
        p = el.a * (1.0 - el.e**2)
        factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_KM / p) ** 2 * self._n
        cos_i = np.cos(el.inc)
        sin2_i = np.sin(el.inc) ** 2
        raan_dot = -factor * cos_i
        argp_dot = factor * (2.0 - 2.5 * sin2_i)
        sqrt_1me2 = np.sqrt(1.0 - el.e**2)
        m_dot = factor * sqrt_1me2 * (1.0 - 1.5 * sin2_i)
        return _J2Rates(raan_dot, argp_dot, m_dot)

    def positions_eci(self, times_s: np.ndarray) -> np.ndarray:
        """Propagate to ``times_s`` and return ECI positions.

        Args:
            times_s: 1-D array of epoch-relative times [s], length ``T``.

        Returns:
            Array of shape ``(n_satellites, T, 3)`` [km].
        """
        t = np.asarray(times_s, dtype=float)
        if t.ndim != 1:
            raise ValidationError(f"times_s must be 1-D, got shape {t.shape}")
        el = self._elements
        n_sats = len(el)

        # Broadcast (n_sats, 1) x (T,) -> (n_sats, T)
        M = self._m0[:, None] + self._n[:, None] * t[None, :]
        raan = np.broadcast_to(el.raan[:, None], (n_sats, t.size))
        argp = np.broadcast_to(el.argp[:, None], (n_sats, t.size))
        if self._j2 is not None:
            M = M + self._j2.mean_anomaly_dot[:, None] * t[None, :]
            raan = raan + self._j2.raan_dot[:, None] * t[None, :]
            argp = argp + self._j2.argp_dot[:, None] * t[None, :]

        e = el.e[:, None]
        E = solve_kepler(M, e)
        cosE, sinE = np.cos(E), np.sin(E)
        a = el.a[:, None]
        r = a * (1.0 - e * cosE)
        # Perifocal coordinates.
        x_pf = a * (cosE - e)
        y_pf = a * np.sqrt(1.0 - e**2) * sinE

        cO, sO = np.cos(raan), np.sin(raan)
        ci = np.cos(el.inc)[:, None]
        si = np.sin(el.inc)[:, None]
        cw, sw = np.cos(argp), np.sin(argp)

        # Expand the rotation explicitly to avoid building (n,T,3,3) tensors.
        px = cO * cw - sO * sw * ci
        py = sO * cw + cO * sw * ci
        pz = sw * si
        qx = -cO * sw - sO * cw * ci
        qy = -sO * sw + cO * cw * ci
        qz = cw * si

        out = np.empty((n_sats, t.size, 3), dtype=float)
        out[..., 0] = x_pf * px + y_pf * qx
        out[..., 1] = x_pf * py + y_pf * qy
        out[..., 2] = x_pf * pz + y_pf * qz
        # Radius consistency check is cheap insurance against angle bugs.
        if out.size:
            max_err = float(np.max(np.abs(np.linalg.norm(out, axis=-1) - r)))
            if max_err > 1e-6 * float(np.max(a)):
                raise ValidationError(f"internal propagation inconsistency: {max_err} km")
        return out

    def propagate_step(self, t_s: float) -> np.ndarray:
        """ECI positions of every satellite at one time, shape ``(n_sats, 3)``.

        The frame-by-frame primitive behind windowed/incremental serving:
        a streaming engine advancing its cursor extends ephemeris state
        one sample at a time instead of paying a whole-day
        :meth:`positions_eci` before the first request. Uses the compiled
        ``propagate.step`` kernel when the numba backend is active and
        falls back to a single-column :meth:`positions_eci` call (the
        exact vectorized path) otherwise.
        """
        fn = kernels.kernel("propagate.step")
        if fn is not None:
            el = self._elements
            if self._j2 is not None:
                rates = (True, self._j2.raan_dot, self._j2.argp_dot, self._j2.mean_anomaly_dot)
            else:
                zero = np.zeros(len(el))
                rates = (False, zero, zero, zero)
            return fn(
                float(t_s),
                np.ascontiguousarray(el.a, dtype=float),
                np.ascontiguousarray(el.e, dtype=float),
                np.ascontiguousarray(el.inc, dtype=float),
                np.ascontiguousarray(el.raan, dtype=float),
                np.ascontiguousarray(el.argp, dtype=float),
                np.ascontiguousarray(self._m0, dtype=float),
                np.ascontiguousarray(self._n, dtype=float),
                rates[0],
                np.ascontiguousarray(rates[1], dtype=float),
                np.ascontiguousarray(rates[2], dtype=float),
                np.ascontiguousarray(rates[3], dtype=float),
            )
        return self.positions_eci(np.array([float(t_s)]))[:, 0, :]

    def positions_eci_scalar(self, times_s: np.ndarray) -> np.ndarray:
        """Reference (non-vectorized) implementation of :meth:`positions_eci`.

        Kept for correctness testing and for the kernel benchmark that
        quantifies the vectorization speedup (bench A5). Semantics match
        :meth:`positions_eci` exactly.
        """
        t = np.asarray(times_s, dtype=float)
        out = np.empty((self.n_satellites, t.size, 3), dtype=float)
        el = self._elements
        for i in range(self.n_satellites):
            for j, tj in enumerate(t):
                M = self._m0[i] + self._n[i] * tj
                raan = el.raan[i]
                argp = el.argp[i]
                if self._j2 is not None:
                    M += self._j2.mean_anomaly_dot[i] * tj
                    raan += self._j2.raan_dot[i] * tj
                    argp += self._j2.argp_dot[i] * tj
                E = float(solve_kepler(M, el.e[i]))
                a, e = el.a[i], el.e[i]
                x_pf = a * (np.cos(E) - e)
                y_pf = a * np.sqrt(1 - e**2) * np.sin(E)
                rot = _perifocal_to_eci_matrices(
                    np.array(raan), np.array(el.inc[i]), np.array(argp)
                )
                out[i, j] = rot @ np.array([x_pf, y_pf, 0.0])
        return out
