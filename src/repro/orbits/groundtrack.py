"""Ground tracks and regional coverage maps.

Turns an ephemeris into sub-satellite tracks and grids of
"fraction of the day a usable platform is overhead" — the map view of the
paper's coverage metric, used to sanity-check where the constellation's
55 % actually comes from and what the surrounding region would see.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.orbits.ephemeris import Ephemeris
from repro.orbits.frames import ecef_to_geodetic
from repro.orbits.visibility import elevation_and_range

__all__ = ["ground_track", "CoverageGrid", "coverage_grid", "render_ascii_map"]


def ground_track(ephemeris: Ephemeris, platform: int | str) -> tuple[np.ndarray, np.ndarray]:
    """Sub-satellite (lat, lon) track of one platform [deg].

    Returns:
        ``(lat_deg, lon_deg)`` arrays over the ephemeris samples, with
        longitude in (-180, 180].
    """
    index = platform if isinstance(platform, int) else ephemeris.index_of(platform)
    lat, lon, _ = ecef_to_geodetic(ephemeris.positions_ecef_km[index])
    lon_deg = np.degrees(lon)
    lon_deg = np.where(lon_deg > 180.0, lon_deg - 360.0, lon_deg)
    return np.degrees(lat), lon_deg


@dataclass(frozen=True)
class CoverageGrid:
    """Fraction-of-time coverage over a lat/lon grid.

    Attributes:
        lats_deg: grid latitudes, ascending, shape ``(n_lat,)``.
        lons_deg: grid longitudes, ascending, shape ``(n_lon,)``.
        fraction: coverage fraction per cell, shape ``(n_lat, n_lon)``.
    """

    lats_deg: np.ndarray
    lons_deg: np.ndarray
    fraction: np.ndarray

    def at(self, lat_deg: float, lon_deg: float) -> float:
        """Coverage fraction of the nearest grid cell."""
        i = int(np.argmin(np.abs(self.lats_deg - lat_deg)))
        j = int(np.argmin(np.abs(self.lons_deg - lon_deg)))
        return float(self.fraction[i, j])


def coverage_grid(
    ephemeris: Ephemeris,
    *,
    lat_range_deg: tuple[float, float] = (33.0, 38.5),
    lon_range_deg: tuple[float, float] = (-90.0, -81.0),
    resolution_deg: float = 0.5,
    min_elevation_rad: float = np.pi / 9,
) -> CoverageGrid:
    """Fraction of samples with >= 1 platform above ``min_elevation_rad``.

    Defaults bound the Tennessee region of the paper's scenario.

    Note: this is the geometric (elevation-only) coverage; the
    transmissivity threshold tightens it further (see
    :class:`repro.core.analysis.SpaceGroundAnalysis`).
    """
    lat_lo, lat_hi = lat_range_deg
    lon_lo, lon_hi = lon_range_deg
    if lat_hi <= lat_lo or lon_hi <= lon_lo or resolution_deg <= 0:
        raise ValidationError("invalid grid specification")
    lats = np.arange(lat_lo, lat_hi + 1e-9, resolution_deg)
    lons = np.arange(lon_lo, lon_hi + 1e-9, resolution_deg)
    fraction = np.empty((lats.size, lons.size))
    for i, lat in enumerate(lats):
        for j, lon in enumerate(lons):
            _, el, _ = elevation_and_range(
                np.radians(lat), np.radians(lon), 0.0, ephemeris.positions_ecef_km
            )
            fraction[i, j] = float((el >= min_elevation_rad).any(axis=0).mean())
    return CoverageGrid(lats, lons, fraction)


#: Shading ramp for the ASCII map, light to dark.
_SHADES = " .:-=+*#%@"


def render_ascii_map(grid: CoverageGrid, *, markers: dict[str, tuple[float, float]] | None = None) -> str:
    """Render a coverage grid as an ASCII heat map (north at the top).

    Args:
        grid: the coverage grid.
        markers: optional ``{label_char: (lat_deg, lon_deg)}`` overlays
            (e.g. city locations); only the first character is drawn.
    """
    rows: list[str] = []
    marker_cells: dict[tuple[int, int], str] = {}
    if markers:
        for label, (lat, lon) in markers.items():
            i = int(np.argmin(np.abs(grid.lats_deg - lat)))
            j = int(np.argmin(np.abs(grid.lons_deg - lon)))
            marker_cells[(i, j)] = label[0]
    for i in range(grid.lats_deg.size - 1, -1, -1):
        row_chars = []
        for j in range(grid.lons_deg.size):
            if (i, j) in marker_cells:
                row_chars.append(marker_cells[(i, j)])
                continue
            level = int(round(grid.fraction[i, j] * (len(_SHADES) - 1)))
            row_chars.append(_SHADES[min(level, len(_SHADES) - 1)])
        rows.append("".join(row_chars))
    legend = (
        f"lat {grid.lats_deg[0]:.1f}..{grid.lats_deg[-1]:.1f} deg, "
        f"lon {grid.lons_deg[0]:.1f}..{grid.lons_deg[-1]:.1f} deg; "
        f"shade ' {_SHADES[-1]}' = 0..100% of day covered"
    )
    return "\n".join(rows + [legend])
