"""Ground-to-platform visibility geometry.

Computes elevation, azimuth and slant range from geodetic ground sites to
moving platforms, plus the derived access windows the paper's coverage
metric (Eqs. 6-7) consumes. The hot kernel is fully vectorized over
``(n_platforms, n_times)``; a scalar reference version backs the tests and
the A5 kernel benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.constants import EARTH_RADIUS_KM
from repro.errors import ValidationError
from repro.orbits.frames import ecef_to_enu_matrix, enu_to_azimuth_elevation, geodetic_to_ecef
from repro.utils.intervals import intervals_from_mask

__all__ = [
    "elevation_and_range",
    "elevation_and_range_scalar",
    "visibility_mask",
    "AccessWindow",
    "access_windows",
    "ground_coverage_radius_km",
]


def elevation_and_range(
    site_lat_rad: float,
    site_lon_rad: float,
    site_alt_km: float,
    platform_ecef_km: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Topocentric look angles from one site to many platform positions.

    Args:
        site_lat_rad: site geodetic latitude [rad].
        site_lon_rad: site geodetic longitude [rad].
        site_alt_km: site altitude above the ellipsoid [km].
        platform_ecef_km: platform ECEF positions, shape ``(..., 3)``.

    Returns:
        ``(azimuth, elevation, slant_range)`` arrays of shape ``(...)``
        [rad, rad, km].
    """
    site = geodetic_to_ecef(site_lat_rad, site_lon_rad, site_alt_km)
    t = ecef_to_enu_matrix(site_lat_rad, site_lon_rad)
    delta = np.asarray(platform_ecef_km, dtype=float) - site
    enu = np.einsum("ij,...j->...i", t, delta)
    return enu_to_azimuth_elevation(enu)


def elevation_and_range_scalar(
    site_lat_rad: float,
    site_lon_rad: float,
    site_alt_km: float,
    platform_ecef_km: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Loop-based reference implementation of :func:`elevation_and_range`.

    Used in tests to pin the vectorized kernel and in the A5 benchmark to
    quantify the speedup; O(n) python-level iterations.
    """
    pos = np.asarray(platform_ecef_km, dtype=float)
    flat = pos.reshape(-1, 3)
    az = np.empty(flat.shape[0])
    el = np.empty(flat.shape[0])
    rng = np.empty(flat.shape[0])
    site = geodetic_to_ecef(site_lat_rad, site_lon_rad, site_alt_km)
    t = ecef_to_enu_matrix(site_lat_rad, site_lon_rad)
    for i, p in enumerate(flat):
        enu = t @ (p - site)
        east, north, up = enu
        rng[i] = math.sqrt(east**2 + north**2 + up**2)
        az[i] = math.atan2(east, north) % (2.0 * math.pi)
        el[i] = math.asin(up / rng[i]) if rng[i] > 0 else 0.0
    shape = pos.shape[:-1]
    return az.reshape(shape), el.reshape(shape), rng.reshape(shape)


def visibility_mask(
    elevation_rad: np.ndarray, min_elevation_rad: float
) -> np.ndarray:
    """Boolean mask of samples whose elevation clears the constraint."""
    if not np.isfinite(min_elevation_rad):
        raise ValidationError("min_elevation_rad must be finite")
    return np.asarray(elevation_rad, dtype=float) >= min_elevation_rad


@dataclass(frozen=True)
class AccessWindow:
    """A contiguous period during which a platform is visible from a site.

    Attributes:
        start_s: window start time [s].
        end_s: window end time [s].
        peak_elevation_rad: maximum elevation attained inside the window.
    """

    start_s: float
    end_s: float
    peak_elevation_rad: float

    @property
    def duration_s(self) -> float:
        """Window length [s]."""
        return self.end_s - self.start_s


def access_windows(
    times_s: Sequence[float],
    elevation_rad: np.ndarray,
    min_elevation_rad: float,
) -> list[AccessWindow]:
    """Extract access windows from a sampled elevation history.

    Args:
        times_s: strictly increasing sample times, length ``T``.
        elevation_rad: elevation per sample, shape ``(T,)``.
        min_elevation_rad: visibility threshold.

    Returns:
        Windows ordered by start time; each carries its peak elevation.
    """
    t = np.asarray(times_s, dtype=float)
    el = np.asarray(elevation_rad, dtype=float)
    if el.shape != t.shape:
        raise ValidationError(
            f"elevation history shape {el.shape} must match times shape {t.shape}"
        )
    mask = visibility_mask(el, min_elevation_rad)
    intervals = intervals_from_mask(t, mask)
    windows: list[AccessWindow] = []
    for iv in intervals:
        in_window = (t >= iv.start) & (t < iv.end)
        peak = float(np.max(el[in_window])) if np.any(in_window) else float("nan")
        windows.append(AccessWindow(iv.start, iv.end, peak))
    return windows


def ground_coverage_radius_km(
    altitude_km: float, min_elevation_rad: float, earth_radius_km: float = EARTH_RADIUS_KM
) -> float:
    """Great-circle radius of the ground footprint of a platform.

    For a platform at ``altitude_km`` and a minimum elevation constraint,
    the Earth-central half-angle of the visible cap is::

        psi = arccos( R/(R+h) * cos(E) ) - E

    and the footprint radius along the ground is ``R * psi``.
    """
    if altitude_km <= 0:
        raise ValidationError(f"altitude_km must be positive, got {altitude_km}")
    if not 0 <= min_elevation_rad < math.pi / 2:
        raise ValidationError("min_elevation_rad must be in [0, pi/2)")
    ratio = earth_radius_km / (earth_radius_km + altitude_km)
    psi = math.acos(ratio * math.cos(min_elevation_rad)) - min_elevation_rad
    return earth_radius_km * psi
