"""Anomaly conversions and a vectorized Kepler-equation solver.

``solve_kepler`` uses Newton iteration with a third-order Halley step on
stubborn elements, broadcast over arbitrary array shapes; it is the single
transcendental bottleneck of propagation, so it is written allocation-lean
(in-place updates on a working copy) per the HPC guide's advice.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KeplerConvergenceError, ValidationError

__all__ = [
    "solve_kepler",
    "mean_to_eccentric",
    "eccentric_to_mean",
    "eccentric_to_true",
    "true_to_eccentric",
    "mean_to_true",
    "true_to_mean",
    "wrap_angle",
]

_TWO_PI = 2.0 * np.pi


def wrap_angle(angle: np.ndarray | float) -> np.ndarray:
    """Wrap angles into ``[0, 2*pi)`` (vectorized)."""
    return np.mod(np.asarray(angle, dtype=float), _TWO_PI)


def _check_eccentricity(e: np.ndarray) -> None:
    if np.any((e < 0.0) | (e >= 1.0)):
        raise ValidationError("eccentricity must lie in [0, 1) for elliptic orbits")


def solve_kepler(
    mean_anomaly: np.ndarray | float,
    eccentricity: np.ndarray | float,
    *,
    tol: float = 1e-12,
    max_iter: int = 50,
) -> np.ndarray:
    """Solve Kepler's equation ``E - e sin E = M`` for the eccentric anomaly.

    Args:
        mean_anomaly: mean anomaly M [rad]; any broadcastable shape.
        eccentricity: eccentricity e in [0, 1); broadcastable against M.
        tol: absolute tolerance on the Kepler residual.
        max_iter: iteration cap before declaring non-convergence.

    Returns:
        Eccentric anomaly E [rad], wrapped to ``[0, 2*pi)``, with the
        broadcast shape of the inputs.

    Raises:
        KeplerConvergenceError: if any element fails to converge.
    """
    M = wrap_angle(mean_anomaly)
    e = np.asarray(eccentricity, dtype=float)
    _check_eccentricity(e)
    M, e = np.broadcast_arrays(M, e)
    # Initial guess: E0 = M + e*sin(M) is within ~e^2 of the root and keeps
    # Newton monotone for all e < 1 (Danby's starter).
    E = M + e * np.sin(M)

    for iteration in range(max_iter):
        sinE = np.sin(E)
        cosE = np.cos(E)
        f = E - e * sinE - M
        if np.all(np.abs(f) < tol):
            return wrap_angle(E)
        fp = 1.0 - e * cosE
        fpp = e * sinE
        # Halley step: quadratically safeguarded Newton; denominators stay
        # >= 1 - e > 0 so no division guard is needed for elliptic orbits.
        dE = f / fp
        dE = f / (fp - 0.5 * dE * fpp)
        E = E - dE

    residual = float(np.max(np.abs(E - e * np.sin(E) - M)))
    if residual >= tol:
        raise KeplerConvergenceError(max_iter, residual)
    return wrap_angle(E)


def mean_to_eccentric(M: np.ndarray | float, e: np.ndarray | float) -> np.ndarray:
    """Mean anomaly -> eccentric anomaly (alias of :func:`solve_kepler`)."""
    return solve_kepler(M, e)


def eccentric_to_mean(E: np.ndarray | float, e: np.ndarray | float) -> np.ndarray:
    """Eccentric anomaly -> mean anomaly via Kepler's equation."""
    E = np.asarray(E, dtype=float)
    e = np.asarray(e, dtype=float)
    _check_eccentricity(e)
    return wrap_angle(E - e * np.sin(E))


def eccentric_to_true(E: np.ndarray | float, e: np.ndarray | float) -> np.ndarray:
    """Eccentric anomaly -> true anomaly (half-angle tangent form)."""
    E = np.asarray(E, dtype=float)
    e = np.asarray(e, dtype=float)
    _check_eccentricity(e)
    beta = np.sqrt((1.0 + e) / (1.0 - e))
    return wrap_angle(2.0 * np.arctan2(beta * np.sin(E / 2.0), np.cos(E / 2.0)))


def true_to_eccentric(nu: np.ndarray | float, e: np.ndarray | float) -> np.ndarray:
    """True anomaly -> eccentric anomaly (half-angle tangent form)."""
    nu = np.asarray(nu, dtype=float)
    e = np.asarray(e, dtype=float)
    _check_eccentricity(e)
    beta = np.sqrt((1.0 - e) / (1.0 + e))
    return wrap_angle(2.0 * np.arctan2(beta * np.sin(nu / 2.0), np.cos(nu / 2.0)))


def mean_to_true(M: np.ndarray | float, e: np.ndarray | float) -> np.ndarray:
    """Mean anomaly -> true anomaly."""
    return eccentric_to_true(mean_to_eccentric(M, e), e)


def true_to_mean(nu: np.ndarray | float, e: np.ndarray | float) -> np.ndarray:
    """True anomaly -> mean anomaly."""
    return eccentric_to_mean(true_to_eccentric(nu, e), e)
