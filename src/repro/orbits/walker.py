"""Constellation generators: standard Walker-Delta and the paper's QNTN plan.

The QNTN constellation (paper Section II-B and Table II) is a 500 km,
53-degree-inclination shell built in two stages:

1. A Walker-Delta seed of 6 planes at RAAN 0/60/.../300 degrees, each with
   6 satellites at true anomalies 0/60/.../300 degrees (36 satellites).
2. Twelve gap-filling planes at RAAN 20, 40, 80, 100, 140, 160, 200, 220,
   260, 280, 320, 340 degrees, each again with 6 satellites, bringing all
   plane spacings to 20 degrees (108 satellites total).

``qntn_constellation(n)`` reproduces the paper's incremental sweep from 6
to 108 satellites: the first 36 are added one-per-plane per true-anomaly
round (Table II column 1 ordering, RAAN varying fastest), after which the
gap planes are appended whole, in Table II order.
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import (
    QNTN_INCLINATION_RAD,
    QNTN_SEMI_MAJOR_AXIS_KM,
)
from repro.errors import ValidationError
from repro.orbits.elements import ElementSet

__all__ = [
    "walker_delta",
    "qntn_plane_order",
    "qntn_constellation",
    "QNTN_MAX_SATELLITES",
]

#: Largest constellation evaluated by the paper.
QNTN_MAX_SATELLITES: int = 108

#: Walker seed RAANs followed by the gap-filling planes, in Table II order [deg].
_QNTN_PLANES_DEG: tuple[float, ...] = (
    0.0,
    60.0,
    120.0,
    180.0,
    240.0,
    300.0,
    20.0,
    40.0,
    80.0,
    100.0,
    140.0,
    160.0,
    200.0,
    220.0,
    260.0,
    280.0,
    320.0,
    340.0,
)

#: True anomalies within every plane [deg].
_QNTN_ANOMALIES_DEG: tuple[float, ...] = (0.0, 60.0, 120.0, 180.0, 240.0, 300.0)


def walker_delta(
    total_satellites: int,
    n_planes: int,
    phasing: int,
    *,
    inclination_rad: float = QNTN_INCLINATION_RAD,
    semi_major_axis_km: float = QNTN_SEMI_MAJOR_AXIS_KM,
    eccentricity: float = 0.0,
    arg_perigee_rad: float = 0.0,
) -> ElementSet:
    """Standard Walker-Delta pattern ``i: T/P/F``.

    Args:
        total_satellites: T, total number of satellites.
        n_planes: P, number of equally spaced orbital planes.
        phasing: F, relative phasing between adjacent planes (0 <= F < P).
        inclination_rad: common inclination i.
        semi_major_axis_km: common semi-major axis.
        eccentricity: common eccentricity (Walker patterns are circular by
            convention but small e is accepted).
        arg_perigee_rad: common argument of perigee.

    Returns:
        :class:`ElementSet` ordered plane-major (all satellites of plane 0,
        then plane 1, ...).
    """
    if total_satellites <= 0:
        raise ValidationError(f"total_satellites must be positive, got {total_satellites}")
    if n_planes <= 0 or total_satellites % n_planes != 0:
        raise ValidationError(
            f"n_planes must divide total_satellites ({total_satellites} % {n_planes} != 0)"
        )
    if not (0 <= phasing < n_planes):
        raise ValidationError(f"phasing must satisfy 0 <= F < P, got F={phasing}, P={n_planes}")
    per_plane = total_satellites // n_planes

    plane_idx = np.repeat(np.arange(n_planes), per_plane)
    slot_idx = np.tile(np.arange(per_plane), n_planes)
    raan = 2.0 * math.pi * plane_idx / n_planes
    nu = (
        2.0 * math.pi * slot_idx / per_plane
        + 2.0 * math.pi * phasing * plane_idx / total_satellites
    )
    n = total_satellites
    return ElementSet(
        np.full(n, semi_major_axis_km),
        np.full(n, eccentricity),
        np.full(n, inclination_rad),
        raan,
        np.full(n, arg_perigee_rad),
        np.mod(nu, 2.0 * math.pi),
    )


def qntn_plane_order() -> tuple[float, ...]:
    """Plane RAANs in the paper's deployment order [deg] (Table II)."""
    return _QNTN_PLANES_DEG


def qntn_constellation(
    n_satellites: int,
    *,
    inclination_rad: float = QNTN_INCLINATION_RAD,
    semi_major_axis_km: float = QNTN_SEMI_MAJOR_AXIS_KM,
) -> ElementSet:
    """The paper's incremental constellation with ``n_satellites`` members.

    Ordering reproduces the paper's 6-to-108 sweep:

    * ``n <= 36``: satellites are taken from the 6 Walker planes in
      true-anomaly-major order (one satellite per plane per round), i.e.
      Table II column 1 read top to bottom.
    * ``n > 36``: the Walker seed plus whole gap-filling planes in Table II
      order; ``n`` must land on a plane boundary (multiple of 6).

    Args:
        n_satellites: constellation size, 1..108 (multiples of 6 above 36).

    Returns:
        :class:`ElementSet` with circular orbits at the paper's altitude.
    """
    if not (1 <= n_satellites <= QNTN_MAX_SATELLITES):
        raise ValidationError(
            f"n_satellites must be in [1, {QNTN_MAX_SATELLITES}], got {n_satellites}"
        )
    if n_satellites > 36 and n_satellites % 6 != 0:
        raise ValidationError(
            "beyond the 36-satellite Walker seed, satellites are added in whole "
            f"planes of 6; got n_satellites={n_satellites}"
        )

    raan_deg: list[float] = []
    nu_deg: list[float] = []

    seed_planes = _QNTN_PLANES_DEG[:6]
    n_seed = min(n_satellites, 36)
    for k in range(n_seed):
        ta_round, plane = divmod(k, len(seed_planes))
        raan_deg.append(seed_planes[plane])
        nu_deg.append(_QNTN_ANOMALIES_DEG[ta_round])

    remaining = n_satellites - n_seed
    gap_planes = _QNTN_PLANES_DEG[6:]
    plane_cursor = 0
    while remaining > 0:
        raan = gap_planes[plane_cursor]
        for ta in _QNTN_ANOMALIES_DEG:
            raan_deg.append(raan)
            nu_deg.append(ta)
        remaining -= len(_QNTN_ANOMALIES_DEG)
        plane_cursor += 1

    n = len(raan_deg)
    return ElementSet(
        np.full(n, semi_major_axis_km),
        np.zeros(n),
        np.full(n, inclination_rad),
        np.radians(raan_deg),
        np.zeros(n),
        np.radians(nu_deg),
    )
