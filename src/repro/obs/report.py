"""Run reports and run-to-run diffs over manifests and bench records.

Three JSON shapes flow through here, all normalized into one flat
summary (:func:`summarize`) before rendering or diffing:

* a run manifest (``--telemetry`` / ``obs.manifest``), optionally
  carrying the flight-recorder digest under ``"trace"``;
* a single ``BENCH_<name>.json`` record (``benchmarks/reporting.py``);
* a repo-root trajectory file (``{"bench": ..., "trajectory": [...]}``)
  — the latest entry is summarized.

:func:`render_html_report` emits one self-contained HTML file (inline
CSS, inline SVG bars, no external fetches) and
:func:`render_ascii_report` the terminal equivalent — both behind the
``repro report <manifest>`` CLI mode. :func:`diff_summaries` compares
two summaries row by row; each row only *breaches* when the caller
configured a threshold for its metric (``repro obs diff`` maps breaches
to a non-zero exit code, so CI can gate on drift while unconfigured
metrics stay informational).
"""

from __future__ import annotations

import html
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ValidationError

__all__ = [
    "DiffRow",
    "DiffThresholds",
    "diff_summaries",
    "load_summary",
    "render_ascii_report",
    "render_diff_table",
    "render_html_report",
    "summarize",
]


# --- normalization ------------------------------------------------------------


def load_summary(path: str | Path) -> dict[str, Any]:
    """Load a manifest / bench record / trajectory file and summarize it."""
    p = Path(path)
    try:
        data = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(f"cannot read run data from {p}: {exc}") from exc
    if not isinstance(data, Mapping):
        raise ValidationError(f"{p} does not contain a JSON object")
    return summarize(data, label=p.name)


def summarize(data: Mapping[str, Any], *, label: str | None = None) -> dict[str, Any]:
    """Flatten any supported run-data shape into one comparable summary.

    The summary carries only scalars and flat mappings: ``served_pct``,
    ``coverage_pct``, ``mean_fidelity``, ``causes`` (name -> count),
    ``phases`` (span path -> total seconds), ``timings_s`` (bench label
    -> seconds), plus provenance (``kind``, ``label``, ``git_sha``).
    Absent facets are ``None``/empty rather than guessed.
    """
    if "trajectory" in data:
        trajectory = data["trajectory"]
        if not isinstance(trajectory, list) or not trajectory:
            raise ValidationError("trajectory file has no entries")
        summary = summarize(trajectory[-1], label=label)
        summary["kind"] = "trajectory"
        summary["trajectory_len"] = len(trajectory)
        return summary

    out: dict[str, Any] = {
        "kind": "bench" if "bench" in data else "manifest",
        "label": label or data.get("command") or data.get("bench") or "run",
        "command": data.get("command") or data.get("bench"),
        "git_sha": data.get("git_sha"),
        "created_at_unix_s": data.get("created_at_unix_s")
        or data.get("recorded_at_unix_s"),
        "started_at": data.get("started_at"),
        "finished_at": data.get("finished_at"),
        "duration_s": data.get("duration_s"),
        "slo": (data.get("extra") or {}).get("slo"),
        "requests_total": None,
        "requests_served": None,
        "served_pct": None,
        "coverage_pct": None,
        "mean_fidelity": None,
        "causes": {},
        "by_lan_pair": {},
        "satellites": {},
        "outages": [],
        "phases": {},
        "timings_s": {},
        "workload": dict(data.get("workload") or {}),
        "trace": data.get("trace"),
        "events": data.get("events"),
    }

    metrics = data.get("metrics") or {}
    served = _metric_value(metrics, "network.requests.served")
    denied = _metric_value(metrics, "network.requests.denied")
    if served is not None or denied is not None:
        total = (served or 0.0) + (denied or 0.0)
        out["requests_total"] = int(total)
        out["requests_served"] = int(served or 0)
        out["served_pct"] = 100.0 * (served or 0.0) / total if total else None
    fidelity = metrics.get("network.fidelity")
    if isinstance(fidelity, Mapping) and fidelity.get("count"):
        out["mean_fidelity"] = fidelity["sum"] / fidelity["count"]

    trace = data.get("trace")
    if isinstance(trace, Mapping):
        requests = trace.get("requests") or {}
        if requests.get("total"):
            out["requests_total"] = requests["total"]
            out["requests_served"] = requests.get("served")
            out["served_pct"] = requests.get("served_pct")
            if requests.get("mean_fidelity") is not None:
                out["mean_fidelity"] = requests["mean_fidelity"]
        out["causes"] = {
            k: v for k, v in (requests.get("causes") or {}).items() if v
        }
        out["by_lan_pair"] = dict(requests.get("by_lan_pair") or {})
        out["satellites"] = dict(
            (trace.get("satellites") or {}).get("utilization") or {}
        )
        coverage = trace.get("coverage")
        if isinstance(coverage, Mapping):
            out["coverage_pct"] = coverage.get("percentage")
            out["outages"] = list(coverage.get("outages") or [])

    for path, stats in (data.get("profile") or {}).items():
        if isinstance(stats, Mapping) and "total_s" in stats:
            out["phases"][path] = float(stats["total_s"])

    for name, seconds in (data.get("timings_s") or {}).items():
        out["timings_s"][name] = float(seconds)

    if "speedup" in data:
        out["speedup"] = float(data["speedup"])
    return out


def _metric_value(metrics: Mapping[str, Any], name: str) -> float | None:
    metric = metrics.get(name)
    if isinstance(metric, Mapping) and "value" in metric:
        return float(metric["value"])
    return None


# --- diffing ------------------------------------------------------------------


@dataclass(frozen=True)
class DiffThresholds:
    """Gate configuration for :func:`diff_summaries`.

    Each field is a maximum tolerated *absolute* delta — percentage
    points for the ``*_pct`` metrics, fidelity units for fidelity,
    request counts for causes, and relative percent for the timing
    families. ``None`` leaves the metric informational (never breaches).
    """

    served_pct: float | None = None
    coverage_pct: float | None = None
    mean_fidelity: float | None = None
    cause_count: float | None = None
    phase_pct: float | None = None
    timing_pct: float | None = None


@dataclass(frozen=True)
class DiffRow:
    """One compared metric: values, delta, and whether it breached."""

    metric: str
    a: float | None
    b: float | None
    delta: float | None
    threshold: float | None
    breached: bool


def _scalar_row(
    metric: str, a: float | None, b: float | None, threshold: float | None
) -> DiffRow:
    delta = b - a if a is not None and b is not None else None
    breached = threshold is not None and delta is not None and abs(delta) > threshold
    return DiffRow(metric, a, b, delta, threshold, breached)


def _relative_rows(
    prefix: str,
    a_map: Mapping[str, float],
    b_map: Mapping[str, float],
    threshold: float | None,
) -> list[DiffRow]:
    """Rows with deltas in relative percent of the baseline value."""
    rows = []
    for key in sorted(set(a_map) | set(b_map)):
        a, b = a_map.get(key), b_map.get(key)
        if a is not None and b is not None and a > 0:
            delta = 100.0 * (b - a) / a
        else:
            delta = None
        breached = (
            threshold is not None and delta is not None and abs(delta) > threshold
        )
        rows.append(DiffRow(f"{prefix}/{key}", a, b, delta, threshold, breached))
    return rows


def diff_summaries(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    thresholds: DiffThresholds | None = None,
) -> list[DiffRow]:
    """Compare two :func:`summarize` outputs (``b`` relative to ``a``)."""
    th = thresholds or DiffThresholds()
    rows = [
        _scalar_row("served_pct", a.get("served_pct"), b.get("served_pct"), th.served_pct),
        _scalar_row(
            "coverage_pct", a.get("coverage_pct"), b.get("coverage_pct"), th.coverage_pct
        ),
        _scalar_row(
            "mean_fidelity",
            a.get("mean_fidelity"),
            b.get("mean_fidelity"),
            th.mean_fidelity,
        ),
    ]
    a_causes, b_causes = a.get("causes") or {}, b.get("causes") or {}
    for cause in sorted(set(a_causes) | set(b_causes)):
        rows.append(
            _scalar_row(
                f"cause/{cause}",
                float(a_causes.get(cause, 0)),
                float(b_causes.get(cause, 0)),
                th.cause_count,
            )
        )
    rows.extend(
        _relative_rows("phase", a.get("phases") or {}, b.get("phases") or {}, th.phase_pct)
    )
    rows.extend(
        _relative_rows(
            "timing", a.get("timings_s") or {}, b.get("timings_s") or {}, th.timing_pct
        )
    )
    return rows


def render_diff_table(
    rows: list[DiffRow], *, label_a: str = "A", label_b: str = "B"
) -> str:
    """ASCII table of diff rows; breached rows are marked ``!``."""
    from repro.reporting.tables import render_table

    def fmt(v: float | None) -> str:
        if v is None:
            return "-"
        return f"{v:.6g}"

    table_rows = []
    for r in rows:
        mark = "!" if r.breached else ""
        thr = fmt(r.threshold) if r.threshold is not None else "-"
        table_rows.append((r.metric, fmt(r.a), fmt(r.b), fmt(r.delta), thr, mark))
    return render_table(
        ["metric", label_a, label_b, "delta", "threshold", ""],
        table_rows,
        title="RUN DIFF",
    )


# --- rendering ----------------------------------------------------------------

_CAUSE_LABELS = {
    "no_visible_satellite": "no visible satellite",
    "low_elevation": "elevation < pi/9",
    "low_transmissivity": "eta < 0.7",
    "no_route": "no end-to-end route",
}

_HTML_STYLE = """
body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #16213e; padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin: .6rem 0; }
th, td { border: 1px solid #cbd5e1; padding: .25rem .6rem; text-align: right; }
th { background: #eef2f7; }
td:first-child, th:first-child { text-align: left; }
.kv td { border: none; padding: .1rem .8rem .1rem 0; text-align: left; }
.bar { fill: #3b6ea5; }
.bar-denied { fill: #b5544d; }
.muted { color: #667; font-size: .85rem; }
"""


def _fmt_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def _html_table(headers: list[str], rows: list[tuple]) -> str:
    head = "".join(f"<th>{html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(_fmt_cell(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _svg_bar(fraction: float, *, width: int = 220, cls: str = "bar") -> str:
    w = max(0.0, min(1.0, fraction)) * width
    return (
        f'<svg width="{width}" height="12" role="img">'
        f'<rect width="{width}" height="12" fill="#e5e9f0"></rect>'
        f'<rect class="{cls}" width="{w:.1f}" height="12"></rect></svg>'
    )


def _summary_sections(summary: Mapping[str, Any]) -> list[tuple[str, list[str]]]:
    """(title, html-fragments) sections shared by the HTML renderer."""
    sections: list[tuple[str, list[str]]] = []

    duration = summary.get("duration_s")
    info_rows = [
        ("command", summary.get("command")),
        ("git sha", summary.get("git_sha")),
        ("kind", summary.get("kind")),
        ("started", summary.get("started_at")),
        ("finished", summary.get("finished_at")),
        ("duration", f"{duration:.3f} s" if isinstance(duration, (int, float)) else None),
    ]
    for key, value in (summary.get("workload") or {}).items():
        info_rows.append((f"workload.{key}", value))
    kv = "".join(
        f"<tr><td>{html.escape(str(k))}</td><td>{html.escape(_fmt_cell(v))}</td></tr>"
        for k, v in info_rows
        if v is not None
    )
    sections.append(("Run", [f'<table class="kv">{kv}</table>']))

    if summary.get("requests_total"):
        total = summary["requests_total"]
        served = summary.get("requests_served") or 0
        frags = [
            _html_table(
                ["requests", "served", "denied", "served %", "mean fidelity"],
                [
                    (
                        total,
                        served,
                        total - served,
                        summary.get("served_pct"),
                        summary.get("mean_fidelity"),
                    )
                ],
            ),
            _svg_bar(served / total if total else 0.0),
        ]
        causes = summary.get("causes") or {}
        if causes:
            denied = max(1, total - served)
            rows = [
                (
                    _CAUSE_LABELS.get(name, name),
                    count,
                    100.0 * count / denied,
                )
                for name, count in sorted(causes.items(), key=lambda kv: -kv[1])
            ]
            frags.append(_html_table(["denial cause", "requests", "% of denied"], rows))
        sections.append(("Requests", frags))

    pairs = summary.get("by_lan_pair") or {}
    if pairs:
        cause_cols = sorted({c for p in pairs.values() for c in p if c not in ("total", "served")})
        rows = []
        for pair, stats in sorted(pairs.items()):
            rows.append(
                (pair, stats.get("total", 0), stats.get("served", 0))
                + tuple(stats.get(c, 0) for c in cause_cols)
            )
        sections.append(
            (
                "LAN pairs",
                [_html_table(["pair", "total", "served", *cause_cols], rows)],
            )
        )

    if summary.get("coverage_pct") is not None:
        frags = [
            f"<p>coverage {summary['coverage_pct']:.2f} % "
            f"{_svg_bar(summary['coverage_pct'] / 100.0)}</p>"
        ]
        outages = summary.get("outages") or []
        if outages:
            rows = [
                (f"{start:.0f}", f"{end:.0f}", f"{end - start:.0f}")
                for start, end in outages[:50]
            ]
            frags.append(_html_table(["outage start s", "end s", "duration s"], rows))
            if len(outages) > 50:
                frags.append(
                    f'<p class="muted">... {len(outages) - 50} more outages</p>'
                )
        sections.append(("Coverage", frags))

    satellites = summary.get("satellites") or {}
    if satellites:
        top = list(satellites.items())[:15]
        peak = max(count for _, count in top)
        rows = [
            (name, count, _svg_bar(count / peak)) for name, count in top
        ]
        body = "".join(
            f"<tr><td>{html.escape(name)}</td><td>{count}</td><td>{bar}</td></tr>"
            for name, count, bar in rows
        )
        frags = [
            "<table><tr><th>platform</th><th>served requests</th><th></th></tr>"
            f"{body}</table>"
        ]
        if len(satellites) > 15:
            frags.append(
                f'<p class="muted">... {len(satellites) - 15} more platforms</p>'
            )
        sections.append(("Platform utilization", frags))

    phases = summary.get("phases") or {}
    if phases:
        rows = sorted(phases.items(), key=lambda kv: -kv[1])
        sections.append(
            (
                "Phase profile",
                [_html_table(["span", "total s"], [(p, f"{s:.4f}") for p, s in rows])],
            )
        )

    timings = summary.get("timings_s") or {}
    if timings:
        sections.append(
            (
                "Timings",
                [
                    _html_table(
                        ["timing", "seconds"],
                        [(k, f"{v:.4f}") for k, v in sorted(timings.items())],
                    )
                ],
            )
        )

    events = summary.get("events")
    if isinstance(events, Mapping):
        frags = _waterfall_fragments(events)
        if frags:
            sections.append(("Slowest requests", frags))

    slo = summary.get("slo")
    if isinstance(slo, Mapping):
        sections.append(("SLO", _slo_fragments(slo)))
    return sections


def _entry_label(entry: Mapping[str, Any]) -> str:
    """One-line header for a slowest-trace waterfall entry."""
    label = f"{entry.get('trace', '?')}  {entry.get('dur_us', 0) / 1e3:.3f} ms"
    attrs = entry.get("attrs") or {}
    if attrs:
        pairs = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        label += f"  [{pairs}]"
    return label


def _waterfall_fragments(events: Mapping[str, Any]) -> list[str]:
    """HTML fragments: one offset-bar table per slowest trace."""
    frags: list[str] = []
    for entry in events.get("slowest") or []:
        total = max(1, int(entry.get("dur_us", 0)))
        rows = []
        for span in entry.get("spans") or []:
            off = int(span.get("off_us", 0))
            dur = int(span.get("dur_us", 0))
            x = max(0.0, min(1.0, off / total))
            w = max(0.005, min(1.0 - x, dur / total))
            bar = (
                '<svg width="220" height="10" role="img">'
                '<rect width="220" height="10" fill="#e5e9f0"></rect>'
                f'<rect class="bar" x="{x * 220:.1f}" width="{w * 220:.1f}" '
                'height="10"></rect></svg>'
            )
            rows.append((span.get("path"), f"{off / 1e3:.3f}", f"{dur / 1e3:.3f}", bar))
        body = "".join(
            f"<tr><td>{html.escape(str(path))}</td><td>{off_ms}</td>"
            f"<td>{dur_ms}</td><td>{bar}</td></tr>"
            for path, off_ms, dur_ms, bar in rows
        )
        frags.append(f"<p>{html.escape(_entry_label(entry))}</p>")
        frags.append(
            "<table><tr><th>span</th><th>offset ms</th><th>duration ms</th>"
            f"<th></th></tr>{body}</table>"
        )
    return frags


_STATE_COLORS = {"ok": "#4a8f52", "warning": "#d08b1d", "critical": "#b5544d"}


def _worst_state(point: Mapping[str, Any]) -> str:
    """The most severe objective state in one snapshot point."""
    order = ("ok", "warning", "critical")
    worst = "ok"
    for objective in (point.get("objectives") or {}).values():
        state = objective.get("state", "ok")
        if state in order and order.index(state) > order.index(worst):
            worst = state
    return worst


def _svg_timeseries(
    snapshots: list[Mapping[str, Any]], *, width: int = 460, height: int = 80
) -> str:
    """SLO time-series panel: served-rate polyline over a state band.

    The polyline tracks ``served_rate_per_s`` (long window); the strip
    along the bottom colors each snapshot by its worst objective state,
    so a burn-rate excursion is visible even when throughput looks flat.
    """
    times = [p.get("t") for p in snapshots]
    rates = [p.get("served_rate_per_s") for p in snapshots]
    usable = [
        (t, r) for t, r in zip(times, rates) if t is not None and r is not None
    ]
    if len(usable) < 2:
        return '<p class="muted">not enough snapshots for a time series</p>'
    t0, t1 = usable[0][0], usable[-1][0]
    span = (t1 - t0) or 1.0
    peak = max(r for _, r in usable) or 1.0
    chart_h = height - 12  # reserve the bottom strip for the state band
    points = " ".join(
        f"{(t - t0) / span * width:.1f},{chart_h - r / peak * (chart_h - 4):.1f}"
        for t, r in usable
    )
    band = []
    for i, point in enumerate(snapshots):
        t = point.get("t")
        if t is None:
            continue
        x = (t - t0) / span * width
        next_t = snapshots[i + 1].get("t") if i + 1 < len(snapshots) else t1
        w = max(1.0, ((next_t or t1) - t) / span * width)
        color = _STATE_COLORS[_worst_state(point)]
        band.append(
            f'<rect x="{x:.1f}" y="{height - 10}" width="{w:.1f}" height="8" '
            f'fill="{color}"></rect>'
        )
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<rect width="{width}" height="{height}" fill="#f4f6fa"></rect>'
        f'<polyline points="{points}" fill="none" stroke="#3b6ea5" '
        'stroke-width="1.5"></polyline>'
        f"{''.join(band)}</svg>"
        f'<p class="muted">served rate (peak {peak:.3g}/s) over t = {t0:.1f} .. '
        f"{t1:.1f} s; band colors the worst objective state</p>"
    )


def _slo_fragments(slo: Mapping[str, Any]) -> list[str]:
    """HTML fragments for a manifest's ``extra.slo`` summary."""
    frags: list[str] = []
    spec = slo.get("spec") or {}
    if spec:
        kv = "".join(
            f"<tr><td>{html.escape(str(k))}</td><td>{html.escape(_fmt_cell(v))}</td></tr>"
            for k, v in sorted(spec.items())
            if v is not None
        )
        frags.append(f'<table class="kv">{kv}</table>')
    final_states = slo.get("final_states") or {}
    if final_states:
        frags.append(
            _html_table(
                ["objective", "final state"], sorted(final_states.items())
            )
        )
    transitions = slo.get("transitions") or []
    if transitions:
        rows = [
            (e.get("objective"), e.get("from"), e.get("to"), _fmt_cell(e.get("t")))
            for e in transitions[:50]
        ]
        frags.append(_html_table(["objective", "from", "to", "t"], rows))
        if len(transitions) > 50:
            frags.append(
                f'<p class="muted">... {len(transitions) - 50} more transitions</p>'
            )
    snapshots = slo.get("snapshots") or []
    if snapshots:
        frags.append(_svg_timeseries(snapshots))
    if not frags:
        frags.append('<p class="muted">no SLO data recorded</p>')
    return frags


def render_html_report(summary: Mapping[str, Any], *, title: str | None = None) -> str:
    """One self-contained HTML page for a normalized run summary."""
    title = title or f"repro run report - {summary.get('label', 'run')}"
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    for section_title, frags in _summary_sections(summary):
        parts.append(f"<h2>{html.escape(section_title)}</h2>")
        parts.extend(frags)
    parts.append("</body></html>")
    return "\n".join(parts)


def render_ascii_report(summary: Mapping[str, Any]) -> str:
    """Terminal rendering of the same summary (``--format ascii``)."""
    from repro.reporting.tables import render_table

    blocks: list[str] = []
    label = summary.get("label", "run")
    sha = summary.get("git_sha") or "unknown"
    blocks.append(f"RUN REPORT - {label} @ {sha[:12]}")
    if summary.get("started_at"):
        duration = summary.get("duration_s")
        took = f" ({duration:.3f} s)" if isinstance(duration, (int, float)) else ""
        blocks.append(
            f"ran {summary['started_at']} -> {summary.get('finished_at', '?')}{took}"
        )

    if summary.get("requests_total"):
        total = summary["requests_total"]
        served = summary.get("requests_served") or 0
        blocks.append(
            render_table(
                ["requests", "served", "denied", "served %", "mean fidelity"],
                [
                    (
                        total,
                        served,
                        total - served,
                        _fmt_cell(summary.get("served_pct")),
                        _fmt_cell(summary.get("mean_fidelity")),
                    )
                ],
                title="REQUESTS",
            )
        )
        causes = summary.get("causes") or {}
        if causes:
            blocks.append(
                render_table(
                    ["denial cause", "requests"],
                    sorted(causes.items(), key=lambda kv: -kv[1]),
                    title="DENIAL CAUSES",
                )
            )
    pairs = summary.get("by_lan_pair") or {}
    if pairs:
        blocks.append(
            render_table(
                ["pair", "total", "served"],
                [
                    (p, s.get("total", 0), s.get("served", 0))
                    for p, s in sorted(pairs.items())
                ],
                title="LAN PAIRS",
            )
        )
    if summary.get("coverage_pct") is not None:
        outages = summary.get("outages") or []
        longest = max((e - s for s, e in outages), default=0.0)
        blocks.append(
            f"coverage: {summary['coverage_pct']:.2f} %  "
            f"({len(outages)} outages, longest {longest:.0f} s)"
        )
    satellites = summary.get("satellites") or {}
    if satellites:
        blocks.append(
            render_table(
                ["platform", "served requests"],
                list(satellites.items())[:10],
                title="PLATFORM UTILIZATION (TOP 10)",
            )
        )
    phases = summary.get("phases") or {}
    if phases:
        blocks.append(
            render_table(
                ["span", "total s"],
                [(p, f"{s:.4f}") for p, s in sorted(phases.items(), key=lambda kv: -kv[1])],
                title="PHASE PROFILE",
            )
        )
    timings = summary.get("timings_s") or {}
    if timings:
        blocks.append(
            render_table(
                ["timing", "seconds"],
                [(k, f"{v:.4f}") for k, v in sorted(timings.items())],
                title="TIMINGS",
            )
        )
    events = summary.get("events")
    if isinstance(events, Mapping) and (events.get("slowest") or []):
        lines = ["SLOWEST REQUESTS"]
        for entry in events["slowest"]:
            lines.append(_entry_label(entry))
            lines.extend(_ascii_waterfall(entry))
        blocks.append("\n".join(lines))
    slo = summary.get("slo")
    if isinstance(slo, Mapping):
        final_states = slo.get("final_states") or {}
        if final_states:
            blocks.append(
                render_table(
                    ["objective", "final state"],
                    sorted(final_states.items()),
                    title="SLO",
                )
            )
        transitions = slo.get("transitions") or []
        snapshots = slo.get("snapshots") or []
        blocks.append(
            f"slo: {len(transitions)} transitions, {len(snapshots)} snapshots"
        )
        spark = _ascii_sparkline(
            [p.get("served_rate_per_s") for p in snapshots]
        )
        if spark:
            blocks.append(f"served rate: {spark}")
    return "\n\n".join(blocks)


def _ascii_waterfall(entry: Mapping[str, Any], *, width: int = 40) -> list[str]:
    """Per-span offset bars for one slowest-trace entry (terminal)."""
    total = max(1, int(entry.get("dur_us", 0)))
    spans = entry.get("spans") or []
    pad = max((len(str(s.get("path"))) for s in spans), default=0)
    lines = []
    for span in spans:
        off = int(span.get("off_us", 0))
        dur = int(span.get("dur_us", 0))
        start = min(width - 1, round(off / total * width))
        length = max(1, min(width - start, round(dur / total * width)))
        bar = " " * start + "#" * length
        lines.append(
            f"  {str(span.get('path')):<{pad}}  |{bar:<{width}}| "
            f"+{off / 1e3:.3f} ms  {dur / 1e3:.3f} ms"
        )
    return lines


_SPARK_CHARS = " .:-=+*#%@"


def _ascii_sparkline(values: list, *, width: int = 60) -> str:
    """Terminal sparkline of a numeric series (empty when too sparse)."""
    usable = [float(v) for v in values if isinstance(v, (int, float))]
    if len(usable) < 2:
        return ""
    if len(usable) > width:
        stride = len(usable) / width
        usable = [usable[int(i * stride)] for i in range(width)]
    peak = max(usable)
    if peak <= 0:
        return _SPARK_CHARS[0] * len(usable)
    steps = len(_SPARK_CHARS) - 1
    return "".join(_SPARK_CHARS[round(v / peak * steps)] for v in usable)
