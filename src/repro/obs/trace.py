"""Request-level flight recorder: one structured record per request.

The aggregate planes of :mod:`repro.obs` say *that* 57.75 % of requests
were served; this module records *why each of the other 42.25 % was
not*. When a recorder is active (off by default — the hot paths pay one
``None`` check per request otherwise), every sampled entanglement
request produces one JSONL record carrying the timestep, the endpoints
and their LANs, the candidate uplinks with their per-gate outcomes
(visibility, elevation >= pi/9, eta >= 0.7), the chosen route with
per-hop transmissivities, the delivered fidelity — and, on denial,
exactly one canonical :class:`DenialCause`. Sweeps additionally emit one
``coverage`` record per ephemeris sample, so outage timelines and the
trace-derived coverage fraction fall out of the same file.

Memory is bounded: records stream to disk with size-based rotation
(``trace.jsonl``, ``trace.jsonl.1``, ...), or land in a fixed-size ring
buffer when no path is configured. The incremental analytics the
recorder keeps (cause counts per LAN pair, per-satellite utilization,
the coverage mask) are bounded by the workload's shape, never by its
length, and are embedded into the run manifest via :meth:`summary`.

Sampling is deterministic: whether a request is recorded depends only on
``(seed, source, destination, time key)`` through a CRC-32 hash, so a
sharded parallel sweep samples exactly the requests the serial run
samples — shard files merged in time order reproduce the serial cause
totals (the determinism contract the invariant tests pin).

Worker processes never write through an inherited recorder (a forked
file descriptor would interleave): pool tasks call
:func:`reset_for_worker` first and, when the parent asks for shard
tracing, record into their own shard file / ring via
:func:`start_shard`, returning a payload the parent folds back in with
:func:`absorb_shard`.
"""

from __future__ import annotations

import enum
import json
import zlib
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import ValidationError

__all__ = [
    "DenialCause",
    "TraceConfig",
    "TraceRecorder",
    "TRACE_SCHEMA_VERSION",
    "absorb_shard",
    "active",
    "classify_denial",
    "finish_shard",
    "read_trace",
    "recording",
    "reset_for_worker",
    "shard_config",
    "shard_payload",
    "shard_recorder",
    "start",
    "start_shard",
    "stop",
]

#: Bump when the record layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1


class DenialCause(enum.Enum):
    """Canonical reason one request went unserved (exactly one per denial).

    The causes form a cascade over the candidate uplinks, coarsest
    geometry first: no platform visible to both endpoints at all; some
    visible but none clearing the elevation gate (>= pi/9) at both ends;
    some clearing elevation but none clearing the transmissivity gate
    (eta >= 0.7, Fig. 5) at both ends — both judged on *healthy*
    physics; some candidate healthy-usable but every one suppressed by
    the active fault plane (outages, downtime, fades, flaps); every
    per-link gate passable somewhere yet no end-to-end route
    (disconnected link graph).

    ``ROUTE_EXHAUSTED`` and ``MEMORY_FULL`` extend the cascade for the
    multipath strategy layer (:mod:`repro.routing.strategies`): a
    strict-policy denial where relaxed rescue paths *did* exist, but
    purification over them could not reach the fidelity floor
    (``route_exhausted``), or every candidate was turned away by the
    bounded entanglement-memory slots at its intermediate platforms
    (``memory_full``). The legacy router never emits either.

    ``QUEUE_FULL`` sits outside the physics cascade: the streaming
    front end (:mod:`repro.serve`) sheds a request *before* it reaches
    a serving path when its tenant's admission queue is at capacity —
    a shed is still a first-class denial with a canonical cause, never
    a silent drop.
    """

    NO_VISIBLE_SATELLITE = "no_visible_satellite"
    LOW_ELEVATION = "low_elevation"
    LOW_TRANSMISSIVITY = "low_transmissivity"
    FAULT_OUTAGE = "fault_outage"
    NO_ROUTE = "no_route"
    ROUTE_EXHAUSTED = "route_exhausted"
    MEMORY_FULL = "memory_full"
    QUEUE_FULL = "queue_full"


#: All causes, cascade order — the keys of every cause-count mapping.
CAUSES = tuple(c.value for c in DenialCause)


def classify_denial(
    visible_any: bool,
    elevation_any: bool,
    transmissivity_any: bool,
    fault_blocked: bool = False,
) -> DenialCause:
    """Fold cumulative per-gate outcomes into the one canonical cause.

    Args:
        visible_any: some candidate is above the horizon at both ends.
        elevation_any: some visible candidate clears the elevation gate
            at both ends.
        transmissivity_any: some elevation-cleared candidate clears the
            transmissivity gate at both ends (judged on healthy
            physics, before any fault plane).
        fault_blocked: some candidate was healthy-usable but every such
            candidate is suppressed by the active fault plane. Only
            meaningful when ``transmissivity_any`` is true.

    Each flag presumes the previous one (the gates nest); the first
    failed gate in the cascade is the cause.
    """
    if not visible_any:
        return DenialCause.NO_VISIBLE_SATELLITE
    if not elevation_any:
        return DenialCause.LOW_ELEVATION
    if not transmissivity_any:
        return DenialCause.LOW_TRANSMISSIVITY
    if fault_blocked:
        return DenialCause.FAULT_OUTAGE
    return DenialCause.NO_ROUTE


@dataclass(frozen=True)
class TraceConfig:
    """Recorder configuration.

    Attributes:
        path: JSONL output file; ``None`` keeps records in a ring buffer.
        sample_rate: fraction of requests to record, in [0, 1]. Coverage
            records are never sampled out (the outage timeline needs the
            full mask).
        max_records_per_file: rotation threshold — a full file closes and
            ``<path>.1``, ``<path>.2``, ... continue the stream.
        ring_size: ring-buffer capacity when ``path`` is ``None``.
        max_candidates: per-record cap on detailed candidate-uplink
            entries (counts are always exact; detail is truncated).
        seed: sampling salt, hashed with the request identity.
    """

    path: Path | None = None
    sample_rate: float = 1.0
    max_records_per_file: int = 200_000
    ring_size: int = 65_536
    max_candidates: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValidationError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}"
            )
        if self.max_records_per_file < 1:
            raise ValidationError("max_records_per_file must be positive")
        if self.ring_size < 1:
            raise ValidationError("ring_size must be positive")


def _sample_hash(seed: int, source: str, destination: str, key: Any) -> float:
    """Deterministic uniform-[0,1) hash of one request's identity."""
    token = f"{seed}|{source}|{destination}|{key!r}".encode()
    return zlib.crc32(token) / 2**32


class TraceRecorder:
    """Streams request/coverage records and keeps incremental analytics.

    Not thread-safe by design: each recorder belongs to one serving
    context (the process' main loop, or one pool worker's shard).
    """

    def __init__(self, config: TraceConfig | None = None, **kwargs: Any) -> None:
        self.config = config if config is not None else TraceConfig(**kwargs)
        self._fh = None
        self._part = 0
        self._records_in_part = 0
        self._paths: list[Path] = []
        self._ring: deque[dict[str, Any]] | None = None
        if self.config.path is None:
            self._ring = deque(maxlen=self.config.ring_size)
        # --- bounded incremental analytics ---------------------------------
        self.n_records = 0
        self.n_requests = 0
        self.n_served = 0
        self.cause_counts: dict[str, int] = {c: 0 for c in CAUSES}
        #: "LAN-A<->LAN-B" -> {"total", "served", causes...}
        self.pair_stats: dict[str, dict[str, int]] = {}
        #: relay/hop platform name -> served requests carried
        self.satellite_counts: dict[str, int] = {}
        self.fidelity_sum = 0.0
        self.fidelity_count = 0
        #: evaluation-step served accounting: key -> [served, total]
        self.step_counts: dict[str, list[int]] = {}
        # coverage mask (one entry per emitted coverage record, time order)
        self._cov_times: list[float] = []
        self._cov_mask: list[bool] = []
        #: coverage horizon for the percentage (set by the sweep driver)
        self.horizon_s: float | None = None

    # --- sampling -----------------------------------------------------------

    def sampled(self, source: str, destination: str, key: Any) -> bool:
        """Whether the request identified by ``(source, destination, key)``
        is in the deterministic sample (``key`` is the caller's time key —
        a grid index or the simulation time itself)."""
        rate = self.config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return _sample_hash(self.config.seed, source, destination, key) < rate

    # --- recording ----------------------------------------------------------

    def record_request(
        self,
        *,
        t_s: float,
        source: str,
        destination: str,
        served: bool,
        t_index: int | None = None,
        source_lan: str | None = None,
        destination_lan: str | None = None,
        path: Sequence[str] = (),
        hop_etas: Sequence[float] = (),
        path_eta: float = 0.0,
        fidelity: float | None = None,
        relay: str | None = None,
        cause: DenialCause | str | None = None,
        candidates: Sequence[Mapping[str, Any]] | None = None,
        candidate_counts: Mapping[str, int] | None = None,
    ) -> None:
        """Record one request outcome.

        Raises:
            ValidationError: if a denied request carries no cause, a
                served one carries a cause, or the cause is not canonical.
        """
        if served and cause is not None:
            raise ValidationError(
                f"served request {source}->{destination} must not carry a cause"
            )
        cause_value: str | None = None
        if not served:
            if cause is None:
                raise ValidationError(
                    f"denied request {source}->{destination} needs a DenialCause"
                )
            cause_value = cause.value if isinstance(cause, DenialCause) else str(cause)
            if cause_value not in self.cause_counts:
                raise ValidationError(f"non-canonical denial cause {cause_value!r}")
        record: dict[str, Any] = {
            "kind": "request",
            "t_s": float(t_s),
            "source": source,
            "destination": destination,
            "served": bool(served),
        }
        if t_index is not None:
            record["t_index"] = int(t_index)
        if source_lan is not None:
            record["source_lan"] = source_lan
        if destination_lan is not None:
            record["destination_lan"] = destination_lan
        if served:
            record["path"] = list(path)
            record["hop_etas"] = [float(e) for e in hop_etas]
            record["path_eta"] = float(path_eta)
            if fidelity is not None:
                record["fidelity"] = float(fidelity)
            if relay is not None:
                record["relay"] = relay
        else:
            record["cause"] = cause_value
        if candidates is not None:
            record["candidates"] = [dict(c) for c in candidates][
                : self.config.max_candidates
            ]
        if candidate_counts is not None:
            record["candidate_counts"] = {k: int(v) for k, v in candidate_counts.items()}
        self._ingest(record)

    def record_coverage(
        self, *, t_s: float, connected: bool, t_index: int | None = None
    ) -> None:
        """Record one coverage sample (never sampled out)."""
        record: dict[str, Any] = {
            "kind": "coverage",
            "t_s": float(t_s),
            "connected": bool(connected),
        }
        if t_index is not None:
            record["t_index"] = int(t_index)
        self._ingest(record)

    def absorb(self, record: Mapping[str, Any]) -> None:
        """Fold an already-sampled record (e.g. from a shard file) in."""
        self._ingest(dict(record))

    def _ingest(self, record: dict[str, Any]) -> None:
        kind = record.get("kind")
        if kind == "request":
            self.n_requests += 1
            served = bool(record["served"])
            pair_key = self._pair_key(record)
            pair = self.pair_stats.get(pair_key)
            if pair is None:
                pair = self.pair_stats[pair_key] = {"total": 0, "served": 0}
            pair["total"] += 1
            if served:
                self.n_served += 1
                pair["served"] += 1
                fidelity = record.get("fidelity")
                if fidelity is not None:
                    self.fidelity_sum += float(fidelity)
                    self.fidelity_count += 1
                for name in self._relay_names(record):
                    self.satellite_counts[name] = self.satellite_counts.get(name, 0) + 1
            else:
                cause = record.get("cause")
                if cause not in self.cause_counts:
                    raise ValidationError(f"non-canonical denial cause {cause!r}")
                self.cause_counts[cause] += 1
                pair[cause] = pair.get(cause, 0) + 1
            step_key = str(record.get("t_index", record["t_s"]))
            step = self.step_counts.setdefault(step_key, [0, 0])
            step[0] += int(served)
            step[1] += 1
        elif kind == "coverage":
            self._cov_times.append(float(record["t_s"]))
            self._cov_mask.append(bool(record["connected"]))
        else:
            raise ValidationError(f"unknown trace record kind {kind!r}")
        self._write(record)

    @staticmethod
    def _pair_key(record: Mapping[str, Any]) -> str:
        a = record.get("source_lan") or "?"
        b = record.get("destination_lan") or "?"
        return "<->".join(sorted((a, b)))

    @staticmethod
    def _relay_names(record: Mapping[str, Any]) -> list[str]:
        """Platform names credited with carrying this served request."""
        if record.get("relay"):
            return [record["relay"]]
        path = record.get("path") or []
        return list(path[1:-1])

    # --- output -------------------------------------------------------------

    def _write(self, record: dict[str, Any]) -> None:
        self.n_records += 1
        if self._ring is not None:
            self._ring.append(record)
            return
        if self._fh is None:
            self._open_part()
        elif self._records_in_part >= self.config.max_records_per_file:
            self._fh.close()
            self._part += 1
            self._open_part()
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._records_in_part += 1

    def _open_part(self) -> None:
        assert self.config.path is not None
        base = Path(self.config.path)
        path = base if self._part == 0 else base.with_name(f"{base.name}.{self._part}")
        path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = path.open("w")
        self._records_in_part = 0
        self._paths.append(path)

    @property
    def paths(self) -> list[Path]:
        """Files written so far (rotation order)."""
        return list(self._paths)

    def records(self) -> list[dict[str, Any]]:
        """In-memory records (ring mode only; newest ``ring_size``)."""
        return list(self._ring) if self._ring is not None else []

    def flush(self) -> None:
        """Flush the current file, if any."""
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Close the output stream (analytics stay readable)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # --- analytics ----------------------------------------------------------

    def coverage_summary(self) -> dict[str, Any] | None:
        """Outage timeline and coverage percentage from the recorded mask.

        Uses the same interval conversion as
        :func:`repro.core.coverage.coverage_from_mask`, so the derived
        percentage is bit-identical to the sweep's own number.
        """
        if not self._cov_times:
            return None
        import numpy as np

        from repro.utils.intervals import intervals_from_mask

        times = np.asarray(self._cov_times, dtype=float)
        mask = np.asarray(self._cov_mask, dtype=bool)
        connected = intervals_from_mask(times, mask)
        outages = intervals_from_mask(times, ~mask)
        covered_s = sum(iv.duration for iv in connected)
        if self.horizon_s is not None:
            horizon = float(self.horizon_s)
        elif times.size > 1:
            horizon = float(times[-1] - times[0] + (times[-1] - times[-2]))
        else:
            horizon = float("nan")
        return {
            "samples": int(times.size),
            "connected_samples": int(mask.sum()),
            "covered_s": float(covered_s),
            "horizon_s": horizon,
            "percentage": 100.0 * covered_s / horizon if horizon else float("nan"),
            "outages": [[iv.start, iv.end] for iv in outages],
            "longest_outage_s": max((iv.duration for iv in outages), default=0.0),
        }

    def summary(self) -> dict[str, Any]:
        """The bounded analytics digest embedded into run manifests."""
        self.flush()
        denied = self.n_requests - self.n_served
        out: dict[str, Any] = {
            "schema": TRACE_SCHEMA_VERSION,
            "sample_rate": self.config.sample_rate,
            "records": self.n_records,
            "files": [str(p) for p in self._paths],
            "requests": {
                "total": self.n_requests,
                "served": self.n_served,
                "denied": denied,
                "served_pct": (
                    100.0 * self.n_served / self.n_requests if self.n_requests else None
                ),
                "mean_fidelity": (
                    self.fidelity_sum / self.fidelity_count
                    if self.fidelity_count
                    else None
                ),
                "causes": dict(self.cause_counts),
                "by_lan_pair": {k: dict(v) for k, v in sorted(self.pair_stats.items())},
            },
            "satellites": {
                "utilization": dict(
                    sorted(self.satellite_counts.items(), key=lambda kv: -kv[1])
                ),
            },
        }
        coverage = self.coverage_summary()
        if coverage is not None:
            out["coverage"] = coverage
        if self.step_counts:
            worst = min(self.step_counts.values(), key=lambda sc: sc[0] / sc[1])
            out["steps"] = {
                "evaluated": len(self.step_counts),
                "fully_served": sum(
                    1 for s, t in self.step_counts.values() if s == t
                ),
                "fully_denied": sum(
                    1 for s, _ in self.step_counts.values() if s == 0
                ),
                "worst_served_fraction": worst[0] / worst[1],
            }
        return out


# --- process-wide active recorder ---------------------------------------------

_ACTIVE: TraceRecorder | None = None


def active() -> TraceRecorder | None:
    """The process' active recorder, or ``None`` (tracing off)."""
    return _ACTIVE


def start(
    path: str | Path | None = None, *, config: TraceConfig | None = None, **kwargs: Any
) -> TraceRecorder:
    """Activate a recorder for this process (replacing any previous one)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    if config is None:
        config = TraceConfig(path=Path(path) if path is not None else None, **kwargs)
    _ACTIVE = TraceRecorder(config)
    return _ACTIVE


def stop() -> dict[str, Any] | None:
    """Deactivate and close the recorder; returns its final summary."""
    global _ACTIVE
    if _ACTIVE is None:
        return None
    summary = _ACTIVE.summary()
    _ACTIVE.close()
    _ACTIVE = None
    return summary


def reset_for_worker() -> None:
    """Detach any recorder inherited across ``fork`` without closing it.

    A forked child shares the parent's file descriptor; writing through
    it would interleave with the parent's stream. Pool worker tasks call
    this first, then opt into their own shard recorder.
    """
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def recording(
    path: str | Path | None = None, **kwargs: Any
) -> Iterator[TraceRecorder]:
    """``with trace.recording(...) as rec:`` — scoped :func:`start`/:func:`stop`."""
    rec = start(path, **kwargs)
    try:
        yield rec
    finally:
        stop()


# --- sharded (process-pool) tracing -------------------------------------------


def shard_config(first_index: int) -> dict[str, Any] | None:
    """Picklable shard-recorder description for one worker task.

    ``None`` when tracing is off. With a file-backed parent the shard
    writes ``<parent>.shard-<first_index>``; a ring-backed parent makes
    the shard ring-backed too (its records travel back in the result).
    """
    rec = _ACTIVE
    if rec is None:
        return None
    cfg = rec.config
    return {
        "path": (
            str(Path(cfg.path).with_name(f"{Path(cfg.path).name}.shard-{first_index:06d}"))
            if cfg.path is not None
            else None
        ),
        "sample_rate": cfg.sample_rate,
        "max_records_per_file": cfg.max_records_per_file,
        "ring_size": cfg.ring_size,
        "max_candidates": cfg.max_candidates,
        "seed": cfg.seed,
    }


def shard_recorder(cfg: Mapping[str, Any]) -> TraceRecorder:
    """Build (without activating) the shard recorder described by ``cfg``.

    Used by workers whose recording is explicit (they hold the recorder
    and pass it to the recording helper) rather than routed through the
    process-global :func:`active` hook.
    """
    path = cfg.get("path")
    return TraceRecorder(
        TraceConfig(
            path=Path(path) if path is not None else None,
            sample_rate=float(cfg["sample_rate"]),
            max_records_per_file=int(cfg["max_records_per_file"]),
            ring_size=int(cfg["ring_size"]),
            max_candidates=int(cfg["max_candidates"]),
            seed=int(cfg["seed"]),
        )
    )


def shard_payload(rec: TraceRecorder) -> dict[str, Any]:
    """Close a shard recorder and return its picklable merge payload."""
    rec.close()
    if rec.config.path is not None:
        return {"paths": [str(p) for p in rec.paths]}
    return {"records": rec.records()}


def start_shard(cfg: Mapping[str, Any]) -> TraceRecorder:
    """Worker side: activate the shard recorder described by ``cfg``.

    For serving paths whose instrumentation reads :func:`active` (the
    object-level simulator); call :func:`reset_for_worker` first under
    ``fork`` so the parent's recorder is never written through.
    """
    global _ACTIVE
    _ACTIVE = shard_recorder(cfg)
    return _ACTIVE


def finish_shard() -> dict[str, Any] | None:
    """Worker side: close the active shard recorder, return its payload."""
    rec = _ACTIVE
    if rec is None:
        return None
    payload = shard_payload(rec)
    reset_for_worker()
    return payload


def absorb_shard(payload: Mapping[str, Any] | None) -> None:
    """Parent side: fold one shard's payload into the active recorder.

    File-backed shards are read, absorbed record by record, and the
    shard files deleted; ring-backed shards absorb the shipped records.
    Call in shard (time) order to keep the merged stream ordered.
    """
    rec = _ACTIVE
    if rec is None or payload is None:
        return
    for record in payload.get("records", ()):
        rec.absorb(record)
    for path_str in payload.get("paths", ()):
        path = Path(path_str)
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    rec.absorb(json.loads(line))
        path.unlink()


def read_trace(path: str | Path) -> Iterator[dict[str, Any]]:
    """Iterate records from a trace file and its rotated continuations."""
    base = Path(path)
    part = 0
    current = base
    while current.exists():
        with current.open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)
        part += 1
        current = base.with_name(f"{base.name}.{part}")
