"""SLO tracking: declarative objectives, multi-window burn-rate alerts.

An :class:`SLOSpec` declares what the serving engine promises — a target
served fraction, a p99 latency bound, a queue-shed budget — and an
:class:`SLOTracker` evaluates those promises continuously against the
windowed instruments of :mod:`repro.obs.live`.

The evaluation follows the multi-window burn-rate recipe: for each
objective the tracker computes the *error rate* over a short window and
a long window, divides by the objective's error budget to get a burn
rate (burn 1.0 = spending the budget exactly as fast as the SLO allows),
and raises the alert state only when *both* windows agree — the long
window filters noise, the short window makes recovery fast. States move
``ok -> warning -> critical`` as both-window burn crosses
``warning_burn`` / ``critical_burn``.

Every transition is emitted as a structured log event on the
``repro.obs.slo`` logger (JSON payload, level mapped to severity),
mirrored into ``slo.<objective>.state`` / ``slo.<objective>.burn_rate``
gauges (so ``/metrics`` scrapes see alert state), and retained on the
tracker for the run manifest. Periodic :meth:`SLOTracker.snapshot`
calls build the JSONL time series that feeds the ``repro report`` SLO
panel.

Error-rate definitions (all over a sliding window, all 0 when idle):

* ``availability`` — unserved fraction of completed requests
  (denied + shed over served + denied + shed); budget
  ``1 - served_fraction_target``.
* ``latency`` — fraction of service-latency samples above
  ``p99_latency_bound_s``; budget 1 % (that is what a p99 bound means).
* ``saturation`` — shed (``queue_full``) fraction of submissions;
  budget ``queue_full_budget``.
"""

from __future__ import annotations

import json
import logging
from dataclasses import asdict, dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Mapping

from repro import obs
from repro.errors import ValidationError
from repro.obs import live
from repro.obs.live import WindowedCounter, WindowedHistogram

__all__ = [
    "AlertState",
    "ObjectiveStatus",
    "SLOSpec",
    "SLOTracker",
    "load_slo_spec",
]

_LOG = logging.getLogger("repro.obs.slo")

#: Snapshot retention cap for the manifest time-series panel.
MAX_SNAPSHOTS = 720


class AlertState(Enum):
    """Alert severity of one objective, ordered ok < warning < critical."""

    OK = "ok"
    WARNING = "warning"
    CRITICAL = "critical"

    @property
    def severity(self) -> int:
        """Numeric severity (0/1/2) — the value the state gauge exports."""
        return ("ok", "warning", "critical").index(self.value)


_LOG_LEVELS = {
    AlertState.OK: logging.INFO,
    AlertState.WARNING: logging.WARNING,
    AlertState.CRITICAL: logging.ERROR,
}


@dataclass(frozen=True)
class SLOSpec:
    """Declarative service-level objectives for the streaming service.

    Attributes:
        served_fraction_target: minimum served fraction of completed
            requests (availability objective).
        p99_latency_bound_s: p99 service-latency bound [s]; ``None``
            disables the latency objective.
        queue_full_budget: tolerated shed fraction of submissions;
            ``None`` disables the saturation objective.
        short_window_s / long_window_s: the two burn-rate windows.
        warning_burn / critical_burn: both-window burn-rate thresholds
            for the state transitions.
    """

    served_fraction_target: float = 0.95
    p99_latency_bound_s: float | None = None
    queue_full_budget: float | None = None
    short_window_s: float = 5.0
    long_window_s: float = 60.0
    warning_burn: float = 2.0
    critical_burn: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 < self.served_fraction_target < 1.0:
            raise ValidationError(
                "served_fraction_target must be in (0, 1), got "
                f"{self.served_fraction_target!r}"
            )
        if self.p99_latency_bound_s is not None and not self.p99_latency_bound_s > 0:
            raise ValidationError("p99_latency_bound_s must be > 0")
        if self.queue_full_budget is not None and not 0.0 < self.queue_full_budget < 1.0:
            raise ValidationError("queue_full_budget must be in (0, 1)")
        if not 0 < self.short_window_s < self.long_window_s:
            raise ValidationError(
                "windows must satisfy 0 < short_window_s < long_window_s"
            )
        if not 0 < self.warning_burn < self.critical_burn:
            raise ValidationError(
                "burn thresholds must satisfy 0 < warning_burn < critical_burn"
            )

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SLOSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown SLO spec fields: {sorted(unknown)}")
        return cls(**dict(data))


def load_slo_spec(path: str | Path) -> SLOSpec:
    """Read an :class:`SLOSpec` from a JSON file."""
    p = Path(path)
    try:
        data = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(f"cannot read SLO spec from {p}: {exc}") from exc
    if not isinstance(data, Mapping):
        raise ValidationError(f"{p} does not contain a JSON object")
    return SLOSpec.from_dict(data)


@dataclass(frozen=True)
class ObjectiveStatus:
    """One objective's evaluation: burn rates and the resulting state."""

    name: str
    state: AlertState
    burn_short: float
    burn_long: float
    error_rate_long: float
    budget: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "state": self.state.value,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "error_rate_long": self.error_rate_long,
            "budget": self.budget,
        }


class SLOTracker:
    """Continuous SLO evaluation over windowed serve instruments.

    Args:
        spec: the declared objectives.
        submitted / served / denied / shed: the windowed request
            counters of the serving front end.
        latency: the windowed service-latency histogram.

    The instruments must share a clock (they do — the module clock of
    :mod:`repro.obs.live`) and their rings must span at least
    ``spec.long_window_s``; the constructor validates the latter so a
    mis-wired tracker fails at build time, not mid-run.
    """

    def __init__(
        self,
        spec: SLOSpec,
        *,
        submitted: WindowedCounter,
        served: WindowedCounter,
        denied: WindowedCounter,
        shed: WindowedCounter,
        latency: WindowedHistogram,
    ) -> None:
        instruments = (submitted, served, denied, shed, latency)
        for instrument in instruments:
            if instrument.window_s < spec.long_window_s:
                raise ValidationError(
                    f"instrument {instrument.name!r} window "
                    f"{instrument.window_s} s is shorter than the SLO long "
                    f"window {spec.long_window_s} s"
                )
        self.spec = spec
        self._submitted = submitted
        self._served = served
        self._denied = denied
        self._shed = shed
        self._latency = latency
        self.states: dict[str, AlertState] = {
            name: AlertState.OK for name in self.objectives
        }
        self.transitions: list[dict[str, Any]] = []
        self.snapshots: list[dict[str, Any]] = []
        self._state_gauges = {
            name: obs.gauge(f"slo.{name}.state") for name in self.objectives
        }
        self._burn_gauges = {
            name: obs.gauge(f"slo.{name}.burn_rate") for name in self.objectives
        }

    @property
    def objectives(self) -> tuple[str, ...]:
        """The objective names the spec enables, evaluation order."""
        names = ["availability"]
        if self.spec.p99_latency_bound_s is not None:
            names.append("latency")
        if self.spec.queue_full_budget is not None:
            names.append("saturation")
        return tuple(names)

    # --- error rates ----------------------------------------------------------

    def _availability_error(self, window_s: float) -> float:
        served = self._served.total(window_s)
        completed = served + self._denied.total(window_s) + self._shed.total(window_s)
        return (completed - served) / completed if completed else 0.0

    def _latency_error(self, window_s: float) -> float:
        return self._latency.fraction_above(self.spec.p99_latency_bound_s, window_s)

    def _saturation_error(self, window_s: float) -> float:
        submitted = self._submitted.total(window_s)
        return self._shed.total(window_s) / submitted if submitted else 0.0

    def _objective_inputs(self, name: str) -> tuple[Any, float]:
        if name == "availability":
            return self._availability_error, 1.0 - self.spec.served_fraction_target
        if name == "latency":
            return self._latency_error, 0.01
        return self._saturation_error, float(self.spec.queue_full_budget)

    # --- evaluation -----------------------------------------------------------

    def evaluate(self) -> dict[str, ObjectiveStatus]:
        """Evaluate every objective now; record and emit transitions."""
        t = live.now()
        statuses: dict[str, ObjectiveStatus] = {}
        for name in self.objectives:
            error_fn, budget = self._objective_inputs(name)
            burn_short = error_fn(self.spec.short_window_s) / budget
            burn_long = error_fn(self.spec.long_window_s) / budget
            both = min(burn_short, burn_long)
            if both > self.spec.critical_burn:
                state = AlertState.CRITICAL
            elif both > self.spec.warning_burn:
                state = AlertState.WARNING
            else:
                state = AlertState.OK
            status = ObjectiveStatus(
                name=name,
                state=state,
                burn_short=burn_short,
                burn_long=burn_long,
                error_rate_long=error_fn(self.spec.long_window_s),
                budget=budget,
            )
            statuses[name] = status
            previous = self.states[name]
            if state is not previous:
                self.states[name] = state
                event = {
                    "event": "slo_transition",
                    "objective": name,
                    "from": previous.value,
                    "to": state.value,
                    "burn_short": burn_short,
                    "burn_long": burn_long,
                    "t": t,
                }
                self.transitions.append(event)
                _LOG.log(_LOG_LEVELS[state], "%s", json.dumps(event, sort_keys=True))
            self._state_gauges[name].set(state.severity)
            self._burn_gauges[name].set(burn_long)
        return statuses

    def snapshot(self) -> dict[str, Any]:
        """Evaluate and record one time-series point (manifest-capped)."""
        statuses = self.evaluate()
        p99 = self._latency.quantile(0.99, self.spec.long_window_s)
        point = {
            "t": live.now(),
            "served_rate_per_s": self._served.rate(self.spec.long_window_s),
            "submitted_rate_per_s": self._submitted.rate(self.spec.long_window_s),
            # NaN (empty window) becomes null: the JSONL and manifest
            # stay strict-JSON parseable.
            "latency_p99_s": None if p99 != p99 else p99,
            "objectives": {name: s.as_dict() for name, s in statuses.items()},
        }
        self.snapshots.append(point)
        if len(self.snapshots) > MAX_SNAPSHOTS:
            # Keep the series bounded by dropping every other retained
            # point — coarser history, same span.
            self.snapshots = self.snapshots[::2]
        return point

    def status(self) -> dict[str, Any]:
        """Current evaluation as a JSON-safe dict (the ``/status`` shape)."""
        statuses = self.evaluate()
        return {
            "spec": self.spec.as_dict(),
            "objectives": {name: s.as_dict() for name, s in statuses.items()},
        }

    def manifest_summary(self) -> dict[str, Any]:
        """Everything the run manifest records about this tracker."""
        return {
            "spec": self.spec.as_dict(),
            "final_states": {n: s.value for n, s in self.states.items()},
            "transitions": list(self.transitions),
            "snapshots": list(self.snapshots),
        }
