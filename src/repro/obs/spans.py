"""Nestable tracing spans aggregated into a per-phase profile.

:func:`span` is a context manager, :func:`traced` the decorator form.
Entering a span pushes its name onto a per-thread stack; the aggregation
key is the slash-joined path of the active stack, so the same code
records as ``propagate`` when called directly and as ``sweep/propagate``
when a caller holds an enclosing ``span("sweep")`` — phase attribution
follows the call structure with no explicit threading of labels.

Spans obey the same process-wide enabled flag as the metrics registry:
disabled, ``__enter__``/``__exit__`` are a flag check each. Wall time is
always recorded when enabled; CPU time (``time.process_time``) is opt-in
per span. Exceptions propagate and still record the span — the timing of
a failed phase is exactly what a post-mortem needs.

:class:`Stopwatch` (formerly ``repro.utils.timing``, which now re-exports
it) is the *local*, always-on variant: an explicitly constructed
instrument whose laps accumulate regardless of the global flag, for
benchmarks that own their timing.
"""

from __future__ import annotations

import functools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, TypeVar

from repro.obs import events as _events
from repro.obs.metrics import registry

__all__ = ["Profile", "SpanStats", "Stopwatch", "profile", "span", "traced"]

F = TypeVar("F", bound=Callable[..., Any])


@dataclass
class SpanStats:
    """Aggregate of every execution of one span path.

    Attributes:
        path: slash-joined nesting path (e.g. ``"sweep/serve"``).
        count: number of completed executions.
        total_s: accumulated wall-clock seconds.
        max_s: slowest single execution.
        total_cpu_s: accumulated CPU seconds (only for ``cpu=True`` spans).
    """

    path: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    total_cpu_s: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count,
            "total_s": self.total_s,
            "max_s": self.max_s,
        }
        if self.total_cpu_s:
            out["total_cpu_s"] = self.total_cpu_s
        return out


class Profile:
    """Span aggregates keyed by path, in first-entered order."""

    def __init__(self) -> None:
        self._stats: dict[str, SpanStats] = {}

    def record(self, path: str, elapsed_s: float, cpu_s: float = 0.0) -> None:
        """Fold one completed span execution into the aggregate."""
        stats = self._stats.get(path)
        if stats is None:
            stats = self._stats[path] = SpanStats(path)
        stats.count += 1
        stats.total_s += elapsed_s
        stats.total_cpu_s += cpu_s
        if elapsed_s > stats.max_s:
            stats.max_s = elapsed_s

    def stats(self) -> dict[str, SpanStats]:
        """Aggregates by path (copy of the mapping, live stats objects)."""
        return dict(self._stats)

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """JSON-ready form, for the run manifest."""
        return {path: s.as_dict() for path, s in self._stats.items()}

    def merge(self, snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold another profile's :meth:`as_dict` output into this one."""
        for path, data in snapshot.items():
            stats = self._stats.get(path)
            if stats is None:
                stats = self._stats[path] = SpanStats(path)
            stats.count += int(data["count"])
            stats.total_s += float(data["total_s"])
            stats.total_cpu_s += float(data.get("total_cpu_s", 0.0))
            stats.max_s = max(stats.max_s, float(data["max_s"]))

    def reset(self) -> None:
        """Drop every aggregate."""
        self._stats.clear()


_PROFILE = Profile()
_STACK = threading.local()


def profile() -> Profile:
    """The process-wide span profile."""
    return _PROFILE


def _stack() -> list[str]:
    stack = getattr(_STACK, "names", None)
    if stack is None:
        stack = _STACK.names = []
    return stack


class _Span:
    """One span activation. Re-usable sequentially, not concurrently.

    Besides feeding the aggregate profile, an active timeline recorder
    (:mod:`repro.obs.events`) receives one raw begin/end event per
    activation, parented through the events context stack. With both
    planes off the cost stays a flag check plus one ``None`` check.
    """

    __slots__ = ("name", "cpu", "_path", "_t0", "_c0", "_ev", "_prof")

    def __init__(self, name: str, cpu: bool) -> None:
        self.name = name
        self.cpu = cpu
        self._t0: float | None = None

    def __enter__(self) -> "_Span":
        rec = _events._ACTIVE
        if not registry().enabled:
            if rec is None:
                self._t0 = None
                return self
            self._prof = False
        else:
            self._prof = True
        stack = _stack()
        stack.append(self.name)
        self._path = "/".join(stack)
        self._ev = rec.span_begin(self.name, self._path) if rec is not None else None
        self._c0 = time.process_time() if self.cpu else 0.0
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._t0 is None:
            return
        elapsed = time.perf_counter() - self._t0
        cpu_s = (time.process_time() - self._c0) if self.cpu else 0.0
        self._t0 = None
        stack = _stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        ev = self._ev
        if ev is not None:
            self._ev = None
            ev.end()
        if self._prof:
            _PROFILE.record(self._path, elapsed, cpu_s)


def span(name: str, *, cpu: bool = False) -> _Span:
    """Context manager timing one phase under the current nesting path.

    Args:
        name: phase label; the recorded key is the slash-joined path of
            all enclosing spans plus ``name``.
        cpu: additionally record ``time.process_time`` deltas.
    """
    return _Span(name, cpu)


def traced(name: str | None = None, *, cpu: bool = False) -> Callable[[F], F]:
    """Decorator form of :func:`span` (defaults to the function's name)."""

    def decorate(fn: F) -> F:
        label = name if name is not None else fn.__name__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(label, cpu=cpu):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


# --- the local, always-on stopwatch ------------------------------------------


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps (always on, no global state).

    Example:
        >>> sw = Stopwatch()
        >>> with sw.lap("propagate"):
        ...     pass
        >>> sw.totals()["propagate"] >= 0.0
        True
    """

    _totals: dict[str, float] = field(default_factory=dict)
    _counts: dict[str, int] = field(default_factory=dict)

    def lap(self, name: str) -> "_Lap":
        """Context manager that adds its elapsed time to lap ``name``."""
        return _Lap(self, name)

    def record(self, name: str, elapsed: float) -> None:
        """Manually add ``elapsed`` seconds to lap ``name``."""
        self._totals[name] = self._totals.get(name, 0.0) + elapsed
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> dict[str, float]:
        """Total elapsed seconds per lap name."""
        return dict(self._totals)

    def counts(self) -> dict[str, int]:
        """Number of recorded laps per name."""
        return dict(self._counts)

    def summary(self) -> str:
        """Human-readable multi-line summary, slowest lap first."""
        lines = [
            f"{name:<24s} {self._totals[name]:9.4f} s  x{self._counts[name]}"
            for name in sorted(self._totals, key=self._totals.get, reverse=True)
        ]
        return "\n".join(lines)


class _Lap:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Lap":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._watch.record(self._name, time.perf_counter() - self._start)
