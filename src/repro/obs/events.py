"""Causal timeline events: raw span begin/end records with trace context.

The span plane (:mod:`repro.obs.spans`) folds every execution into an
aggregate :class:`~repro.obs.spans.Profile` and discards the timeline;
the flight recorder (:mod:`repro.obs.trace`) keeps one record per
request but knows nothing about *phases*. This module is the missing
fourth plane: when a recorder is active (off by default — the span hot
path pays one ``None`` check otherwise), every completed span activation
emits one raw event carrying a ``trace`` / ``span`` / ``parent`` triple,
monotonic microsecond timestamps, and key attributes (tenant, time,
denial cause), so a slow p99 observation links to the concrete timeline
that produced it.

Event records are JSON dicts with the fields::

    {"ph": "X", "name": "serve", "path": "serve", "ts": 123, "dur": 45,
     "span": 3, "shard": 0, "trace": "req-17", "parent": 1,
     "attrs": {...}}

``ph`` is always ``"X"`` (a *complete* span: begin timestamp plus
duration — begin/end pairs are materialised on export); ``ts``/``dur``
are integer microseconds on the recording process' monotonic clock;
``shard`` identifies the recording process (0 = the parent, workers get
``first_request_index + 1`` via :func:`shard_config`). Records without a
``trace`` field are *process-scope* (cursor advances, budget fills,
sweep phases): they describe one process' own timeline and legitimately
vary with worker count, while trace-anchored records are worker-count
invariant for a fixed seed (the determinism contract the timeline tests
pin).

Trace context is explicit at the roots and implicit below them: the
streaming front end opens a root span per request via
:meth:`EventRecorder.trace_begin` (a cross-coroutine handle — the root
covers submit -> outcome, spanning queue residency), then wraps the
engine call in ``handle.scope()`` so every nested ``obs.span`` parents
itself correctly through a thread-local context stack. Sampling is
deterministic per trace (CRC-32 of ``(seed, trace_id)``), and an
unsampled root suppresses its whole subtree — children of a suppressed
scope are never recorded, so sampled cost scales with the sample rate.

Memory is bounded exactly like :mod:`repro.obs.trace`: size-rotated
JSONL or a fixed ring, plus bounded incremental analytics (per-path
counts and the N slowest complete traces, kept as relative-offset
waterfalls for ``repro report``).

Workers never write through an inherited recorder: the pool protocol
(:func:`shard_config` / :func:`start_shard` / :func:`finish_shard` /
:func:`absorb_shard`) mirrors the flight recorder's, with one addition —
each shard payload carries the worker's paired clock origins
``(wall_origin_unix_s, mono_origin_us)``, and the parent maps every
absorbed timestamp onto its own monotonic timeline with one constant
per-shard offset. A constant shift preserves intra-trace causality
(every span of one trace is recorded in one process), so merged
timelines stay causally ordered regardless of worker count.
"""

from __future__ import annotations

import heapq
import json
import time
import threading
import zlib
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from repro.errors import ValidationError

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "EventConfig",
    "EventRecorder",
    "absorb_shard",
    "active",
    "attach",
    "detach",
    "finish_shard",
    "read_events",
    "recording",
    "render_tree",
    "reset",
    "reset_for_worker",
    "shard_config",
    "shard_payload",
    "shard_recorder",
    "start",
    "start_shard",
    "stop",
    "to_chrome_trace",
]

#: Bump when the event layout changes incompatibly.
EVENT_SCHEMA_VERSION = 1

#: Sentinel trace id for a suppressed (unsampled) context scope.
_DROP = object()

#: Span names recorded process-scope even inside a trace scope. These
#: are cache/memoization fills: the work is triggered by whichever
#: request happens to arrive first and benefits every later one, so
#: anchoring it to the triggering trace would make trace contents depend
#: on request order and worker count — breaking the fixed-seed
#: determinism contract (same trace tuples for any ``n_workers``).
PROCESS_SCOPE_SPANS = frozenset({"route", "budget", "propagate"})


@dataclass(frozen=True)
class EventConfig:
    """Recorder configuration.

    Attributes:
        path: JSONL output file; ``None`` keeps events in a ring buffer.
        sample_rate: fraction of *traces* to record, in [0, 1]. Sampling
            is per trace id, never per event — a sampled trace is always
            complete, an unsampled one contributes nothing.
        max_records_per_file: rotation threshold — a full file closes
            and ``<path>.1``, ``<path>.2``, ... continue the stream.
        ring_size: ring-buffer capacity when ``path`` is ``None``.
        seed: sampling salt, hashed with the trace id.
        shard: recording-process id stamped on every event (0 = parent).
        n_slowest: how many complete traces to retain as waterfalls in
            :meth:`EventRecorder.summary`.
    """

    path: Path | None = None
    sample_rate: float = 1.0
    max_records_per_file: int = 500_000
    ring_size: int = 65_536
    seed: int = 0
    shard: int = 0
    n_slowest: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValidationError(
                f"sample_rate must be in [0, 1], got {self.sample_rate}"
            )
        if self.max_records_per_file < 1:
            raise ValidationError("max_records_per_file must be positive")
        if self.ring_size < 1:
            raise ValidationError("ring_size must be positive")
        if self.n_slowest < 0:
            raise ValidationError("n_slowest must be >= 0")


def now_us() -> int:
    """Current process-monotonic time in integer microseconds."""
    return int(time.perf_counter() * 1e6)


_CTX = threading.local()


def _ctx_stack() -> list[tuple[Any, int]]:
    stack = getattr(_CTX, "stack", None)
    if stack is None:
        stack = _CTX.stack = []
    return stack


class _Scope:
    """Pushes one ``(trace_id, span_id)`` context frame for a ``with`` body."""

    __slots__ = ("_frame",)

    def __init__(self, frame: tuple[Any, int]) -> None:
        self._frame = frame

    def __enter__(self) -> "_Scope":
        _ctx_stack().append(self._frame)
        return self

    def __exit__(self, *exc: object) -> None:
        stack = _ctx_stack()
        if stack and stack[-1] is self._frame:
            stack.pop()


class SpanHandle:
    """One open span. ``end()`` writes the record; re-use is an error."""

    __slots__ = (
        "rec",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "path",
        "t0_us",
        "attrs",
        "sampled",
        "_pushed",
    )

    def __init__(
        self,
        rec: "EventRecorder",
        trace_id: str | None,
        span_id: int,
        parent_id: int | None,
        name: str,
        path: str,
        t0_us: int,
        attrs: dict[str, Any] | None,
        sampled: bool,
        pushed: bool,
    ) -> None:
        self.rec = rec
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.path = path
        self.t0_us = t0_us
        self.attrs = attrs
        self.sampled = sampled
        self._pushed = pushed

    def scope(self) -> _Scope:
        """Context frame making this span the parent of nested spans.

        An unsampled handle pushes a *suppressing* frame: spans begun
        under it are dropped entirely (the whole subtree follows the
        root's sampling decision).
        """
        if not self.sampled:
            return _Scope((_DROP, 0))
        return _Scope((self.trace_id, self.span_id))

    def child_complete(
        self,
        name: str,
        *,
        begin_us: int,
        end_us: int | None = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> None:
        """Emit one already-finished child span (e.g. queue residency,
        whose begin predates the handle holder regaining control)."""
        if not self.sampled:
            return
        self.rec.complete(
            name,
            trace_id=self.trace_id,
            parent_id=self.span_id,
            begin_us=begin_us,
            end_us=end_us if end_us is not None else now_us(),
            attrs=attrs,
        )

    def end(
        self, attrs: Mapping[str, Any] | None = None, ts_us: int | None = None
    ) -> None:
        """Close the span and write its record (merging ``attrs`` in)."""
        end_us = ts_us if ts_us is not None else now_us()
        if self._pushed:
            stack = _ctx_stack()
            if stack and stack[-1][1] == self.span_id:
                stack.pop()
        if not self.sampled:
            return
        merged = dict(self.attrs) if self.attrs else {}
        if attrs:
            merged.update(attrs)
        record: dict[str, Any] = {
            "ph": "X",
            "name": self.name,
            "path": self.path,
            "ts": self.t0_us,
            "dur": max(0, end_us - self.t0_us),
            "span": self.span_id,
            "shard": self.rec.config.shard,
        }
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if merged:
            record["attrs"] = merged
        self.rec._ingest(record)


class EventRecorder:
    """Streams span events and keeps bounded incremental analytics.

    Not thread-safe by design: each recorder belongs to one recording
    context (the process' main loop, or one pool worker's shard).
    """

    def __init__(self, config: EventConfig | None = None, **kwargs: Any) -> None:
        self.config = config if config is not None else EventConfig(**kwargs)
        # Paired clock origins, captured together: the shard-merge
        # protocol uses them to compute one constant offset per shard.
        self.wall_origin_unix_s = time.time()
        self.mono_origin_us = now_us()
        self._fh = None
        self._part = 0
        self._records_in_part = 0
        self._paths: list[Path] = []
        self._ring: deque[dict[str, Any]] | None = None
        if self.config.path is None:
            self._ring = deque(maxlen=self.config.ring_size)
        # --- bounded incremental analytics ---------------------------------
        self.n_events = 0
        self.n_traces = 0
        self.span_counts: dict[str, int] = {}
        #: span-id allocators: per open trace, plus a process-scope sequence
        self._trace_seq: dict[str, int] = {}
        self._seq = 0
        #: records of traces whose root has not ended yet (bounded by
        #: in-flight requests; released — or retained as a waterfall —
        #: when the root record arrives)
        self._open: dict[str, list[dict[str, Any]]] = {}
        #: min-heap of the n_slowest completed traces, keyed by duration
        self._slowest: list[tuple[int, str, dict[str, Any]]] = []

    # --- sampling -----------------------------------------------------------

    def sampled(self, trace_id: str) -> bool:
        """Deterministic per-trace sampling decision."""
        rate = self.config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        token = f"{self.config.seed}|{trace_id}".encode()
        return zlib.crc32(token) / 2**32 < rate

    # --- span lifecycle -----------------------------------------------------

    def _next_span_id(self, trace_id: str | None) -> int:
        if trace_id is None:
            self._seq += 1
            return self._seq
        nxt = self._trace_seq.get(trace_id, 0) + 1
        self._trace_seq[trace_id] = nxt
        return nxt

    def trace_begin(
        self, trace_id: str, name: str, attrs: Mapping[str, Any] | None = None
    ) -> SpanHandle:
        """Open the root span of trace ``trace_id``.

        The handle is cross-coroutine: it does not touch the context
        stack (use :meth:`SpanHandle.scope` around synchronous work that
        should parent under it). An unsampled trace returns a handle
        whose ``end`` writes nothing and whose ``scope`` suppresses the
        subtree.
        """
        if not self.sampled(trace_id):
            return SpanHandle(
                self, trace_id, 0, None, name, name, 0, None, False, False
            )
        span_id = self._next_span_id(trace_id)
        self._open.setdefault(trace_id, [])
        return SpanHandle(
            self,
            trace_id,
            span_id,
            None,
            name,
            name,
            now_us(),
            dict(attrs) if attrs else None,
            True,
            False,
        )

    def span_begin(self, name: str, path: str) -> SpanHandle | None:
        """Open a span under the current thread-local context.

        With no context the span is process-scope (``trace`` omitted);
        under a suppressed scope nothing is recorded and ``None`` is
        returned. The span pushes itself as the context for its body.

        Cache-fill spans (:data:`PROCESS_SCOPE_SPANS`) are recorded
        process-scope even inside a trace scope: a memoization miss is
        triggered by whichever request arrives first, so anchoring it to
        that trace would make trace contents depend on request order and
        worker count — breaking the fixed-seed determinism contract.
        """
        stack = _ctx_stack()
        if stack and name not in PROCESS_SCOPE_SPANS:
            trace_id, parent_id = stack[-1]
            if trace_id is _DROP:
                return None
        else:
            trace_id, parent_id = None, None
        span_id = self._next_span_id(trace_id)
        handle = SpanHandle(
            self, trace_id, span_id, parent_id, name, path, now_us(), None, True, True
        )
        stack.append((trace_id, span_id))
        return handle

    def complete(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: int | None = None,
        begin_us: int,
        end_us: int,
        attrs: Mapping[str, Any] | None = None,
    ) -> None:
        """Emit one already-finished span with explicit timestamps."""
        record: dict[str, Any] = {
            "ph": "X",
            "name": name,
            "path": name,
            "ts": int(begin_us),
            "dur": max(0, int(end_us) - int(begin_us)),
            "span": self._next_span_id(trace_id),
            "shard": self.config.shard,
        }
        if trace_id is not None:
            record["trace"] = trace_id
        if parent_id is not None:
            record["parent"] = parent_id
        if attrs:
            record["attrs"] = dict(attrs)
        self._ingest(record)

    # --- ingest / analytics -------------------------------------------------

    def absorb(self, record: Mapping[str, Any]) -> None:
        """Fold an already-recorded event (e.g. from a shard file) in."""
        self._ingest(dict(record))

    def _ingest(self, record: dict[str, Any]) -> None:
        path = record.get("path") or record.get("name") or "?"
        self.span_counts[path] = self.span_counts.get(path, 0) + 1
        trace_id = record.get("trace")
        if trace_id is not None:
            buf = self._open.setdefault(trace_id, [])
            buf.append(record)
            if record.get("parent") is None:
                # The root closed: the trace is complete.
                del self._open[trace_id]
                self._trace_seq.pop(trace_id, None)
                self.n_traces += 1
                self._note_slowest(trace_id, record, buf)
        self._write(record)

    def _note_slowest(
        self, trace_id: str, root: dict[str, Any], records: list[dict[str, Any]]
    ) -> None:
        n = self.config.n_slowest
        if n <= 0:
            return
        dur = int(root.get("dur", 0))
        if len(self._slowest) >= n and dur <= self._slowest[0][0]:
            return
        t0 = int(root["ts"])
        spans = [
            {
                "path": r.get("path") or r.get("name"),
                "off_us": int(r["ts"]) - t0,
                "dur_us": int(r.get("dur", 0)),
                **({"attrs": r["attrs"]} if r.get("attrs") else {}),
            }
            for r in records
            if r is not root
        ]
        spans.sort(key=lambda s: s["off_us"])
        entry = {
            "trace": trace_id,
            "dur_us": dur,
            "shard": root.get("shard", 0),
            **({"attrs": root["attrs"]} if root.get("attrs") else {}),
            "spans": spans,
        }
        item = (dur, trace_id, entry)
        if len(self._slowest) < n:
            heapq.heappush(self._slowest, item)
        else:
            heapq.heappushpop(self._slowest, item)

    # --- output -------------------------------------------------------------

    def _write(self, record: dict[str, Any]) -> None:
        self.n_events += 1
        if self._ring is not None:
            self._ring.append(record)
            return
        if self._fh is None:
            self._open_part()
        elif self._records_in_part >= self.config.max_records_per_file:
            self._fh.close()
            self._part += 1
            self._open_part()
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._records_in_part += 1

    def _open_part(self) -> None:
        assert self.config.path is not None
        base = Path(self.config.path)
        path = base if self._part == 0 else base.with_name(f"{base.name}.{self._part}")
        path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = path.open("w")
        self._records_in_part = 0
        self._paths.append(path)

    @property
    def paths(self) -> list[Path]:
        """Files written so far (rotation order)."""
        return list(self._paths)

    def records(self) -> list[dict[str, Any]]:
        """In-memory events (ring mode only; newest ``ring_size``)."""
        return list(self._ring) if self._ring is not None else []

    def flush(self) -> None:
        """Flush the current file, if any."""
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Close the output stream (analytics stay readable)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # --- summary ------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """The bounded analytics digest embedded into run manifests."""
        self.flush()
        return {
            "schema": EVENT_SCHEMA_VERSION,
            "sample_rate": self.config.sample_rate,
            "events": self.n_events,
            "traces": self.n_traces,
            "open_traces": len(self._open),
            "files": [str(p) for p in self._paths],
            "spans": dict(sorted(self.span_counts.items())),
            "slowest": [
                entry
                for _, _, entry in sorted(
                    self._slowest, key=lambda it: (-it[0], it[1])
                )
            ],
        }


# --- process-wide active recorder ---------------------------------------------

_ACTIVE: EventRecorder | None = None


def active() -> EventRecorder | None:
    """The process' active recorder, or ``None`` (timeline off)."""
    return _ACTIVE


def start(
    path: str | Path | None = None, *, config: EventConfig | None = None, **kwargs: Any
) -> EventRecorder:
    """Activate a recorder for this process (replacing any previous one)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    if config is None:
        config = EventConfig(path=Path(path) if path is not None else None, **kwargs)
    _ACTIVE = EventRecorder(config)
    return _ACTIVE


def stop() -> dict[str, Any] | None:
    """Deactivate and close the recorder; returns its final summary."""
    global _ACTIVE
    if _ACTIVE is None:
        return None
    summary = _ACTIVE.summary()
    _ACTIVE.close()
    _ACTIVE = None
    return summary


def reset() -> None:
    """Close and drop any active recorder (``obs.reset`` calls this so
    back-to-back runs in one process never leak events)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None


def detach() -> EventRecorder | None:
    """Remove and return the active recorder *without* closing it.

    For run drivers that must zero the aggregate planes mid-setup
    (``obs.reset()``) while keeping the run-scoped timeline recorder
    alive; pair with :func:`attach`.
    """
    global _ACTIVE
    rec = _ACTIVE
    _ACTIVE = None
    return rec


def attach(rec: EventRecorder | None) -> None:
    """Re-install a recorder returned by :func:`detach`."""
    global _ACTIVE
    _ACTIVE = rec


def reset_for_worker() -> None:
    """Detach any recorder inherited across ``fork`` without closing it.

    A forked child shares the parent's file descriptor; writing through
    it would interleave with the parent's stream. Pool worker tasks call
    this first, then opt into their own shard recorder.
    """
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def recording(
    path: str | Path | None = None, **kwargs: Any
) -> Iterator[EventRecorder]:
    """``with events.recording(...) as rec:`` — scoped start/stop."""
    rec = start(path, **kwargs)
    try:
        yield rec
    finally:
        stop()


# --- sharded (process-pool) timelines ------------------------------------------


def shard_config(first_index: int) -> dict[str, Any] | None:
    """Picklable shard-recorder description for one worker task.

    ``None`` when the timeline is off. With a file-backed parent the
    shard writes ``<parent>.shard-<first_index>``; a ring-backed parent
    makes the shard ring-backed too (its records travel back in the
    result). The shard id stamped on the worker's events is
    ``first_index + 1`` (the parent is shard 0).
    """
    rec = _ACTIVE
    if rec is None:
        return None
    cfg = rec.config
    return {
        "path": (
            str(Path(cfg.path).with_name(f"{Path(cfg.path).name}.shard-{first_index:06d}"))
            if cfg.path is not None
            else None
        ),
        "sample_rate": cfg.sample_rate,
        "max_records_per_file": cfg.max_records_per_file,
        "ring_size": cfg.ring_size,
        "seed": cfg.seed,
        "shard": int(first_index) + 1,
        "n_slowest": cfg.n_slowest,
    }


def shard_recorder(cfg: Mapping[str, Any]) -> EventRecorder:
    """Build (without activating) the shard recorder described by ``cfg``."""
    path = cfg.get("path")
    return EventRecorder(
        EventConfig(
            path=Path(path) if path is not None else None,
            sample_rate=float(cfg["sample_rate"]),
            max_records_per_file=int(cfg["max_records_per_file"]),
            ring_size=int(cfg["ring_size"]),
            seed=int(cfg["seed"]),
            shard=int(cfg.get("shard", 0)),
            n_slowest=int(cfg.get("n_slowest", 8)),
        )
    )


def shard_payload(rec: EventRecorder) -> dict[str, Any]:
    """Close a shard recorder and return its picklable merge payload.

    The payload carries the worker's paired clock origins so the parent
    can align the shard's monotonic timestamps onto its own timeline.
    """
    rec.close()
    payload: dict[str, Any] = {
        "shard": rec.config.shard,
        "wall_origin_unix_s": rec.wall_origin_unix_s,
        "mono_origin_us": rec.mono_origin_us,
    }
    if rec.config.path is not None:
        payload["paths"] = [str(p) for p in rec.paths]
    else:
        payload["records"] = rec.records()
    return payload


def start_shard(cfg: Mapping[str, Any]) -> EventRecorder:
    """Worker side: activate the shard recorder described by ``cfg``.

    Call :func:`reset_for_worker` first under ``fork`` so the parent's
    recorder is never written through.
    """
    global _ACTIVE
    _ACTIVE = shard_recorder(cfg)
    return _ACTIVE


def finish_shard() -> dict[str, Any] | None:
    """Worker side: close the active shard recorder, return its payload."""
    rec = _ACTIVE
    if rec is None:
        return None
    payload = shard_payload(rec)
    reset_for_worker()
    return payload


def absorb_shard(payload: Mapping[str, Any] | None) -> None:
    """Parent side: fold one shard's payload into the active recorder.

    Every absorbed timestamp is shifted by one constant per-shard offset
    computed from the paired clock origins, mapping the worker's
    monotonic clock onto the parent's. A constant shift preserves every
    intra-trace interval (each trace is recorded wholly in one process),
    so the merged timeline stays causally ordered. Call in shard (block)
    order to keep the merged stream deterministic.
    """
    rec = _ACTIVE
    if rec is None or payload is None:
        return
    offset_us = (
        rec.mono_origin_us
        - int(payload["mono_origin_us"])
        + round(
            (float(payload["wall_origin_unix_s"]) - rec.wall_origin_unix_s) * 1e6
        )
    )

    def _aligned(record: dict[str, Any]) -> dict[str, Any]:
        record["ts"] = int(record["ts"]) + offset_us
        return record

    for record in payload.get("records", ()):
        rec.absorb(_aligned(dict(record)))
    for path_str in payload.get("paths", ()):
        path = Path(path_str)
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    rec.absorb(_aligned(json.loads(line)))
        path.unlink()


def read_events(path: str | Path) -> Iterator[dict[str, Any]]:
    """Iterate events from a timeline file and its rotated continuations."""
    base = Path(path)
    part = 0
    current = base
    while current.exists():
        with current.open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)
        part += 1
        current = base.with_name(f"{base.name}.{part}")


# --- export --------------------------------------------------------------------


def _trace_tid(trace_id: str) -> int:
    """Stable per-trace track id (one Chrome tid per trace).

    Within one asyncio process, spans of different in-flight traces
    interleave; giving each trace its own track keeps every begin/end
    pair properly nested per track.
    """
    digits = "".join(ch for ch in trace_id if ch.isdigit())
    if digits:
        return int(digits) % (2**31 - 2) + 1
    return zlib.crc32(trace_id.encode()) % (2**31 - 2) + 1


def to_chrome_trace(records: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Convert raw events to Chrome ``trace_event`` JSON (Perfetto-loadable).

    Each ``X`` record becomes a matched ``B``/``E`` pair on track
    ``(pid=shard, tid=trace)``; process-scope events share tid 0. Flow
    events (``s``/``f``) tie each request root to its ``serve`` child
    (submit -> serve across the queue), and each parent ``dispatch``
    span to the first event of the worker shard it launched (across
    processes).
    """
    records = [dict(r) for r in records]
    events: list[tuple[tuple[int, int, int, int], dict[str, Any]]] = []

    def _add(key_ts: int, order: int, tiebreak: int, ev: dict[str, Any]) -> None:
        events.append(((ev["pid"], ev["tid"], key_ts, order * 10**9 + tiebreak), ev))

    roots: dict[str, dict[str, Any]] = {}
    serves: dict[str, dict[str, Any]] = {}
    shard_first: dict[int, dict[str, Any]] = {}
    dispatches: dict[int, dict[str, Any]] = {}

    for r in records:
        pid = int(r.get("shard", 0))
        trace_id = r.get("trace")
        tid = _trace_tid(trace_id) if trace_id is not None else 0
        ts = int(r["ts"])
        dur = int(r.get("dur", 0))
        args: dict[str, Any] = {"span": r.get("span")}
        if trace_id is not None:
            args["trace"] = trace_id
        if r.get("parent") is not None:
            args["parent"] = r["parent"]
        if r.get("attrs"):
            args.update(r["attrs"])
        name = r.get("path") or r.get("name") or "?"
        common = {"name": name, "cat": "span", "pid": pid, "tid": tid, "args": args}
        # Nesting-safe ordering at equal timestamps: close inner spans
        # (shortest remaining first), then open outer spans (longest
        # first).
        _add(ts, 1, 10**9 - 1 - min(dur, 10**9 - 2), {"ph": "B", "ts": ts, **common})
        _add(ts + dur, 0, min(dur, 10**9 - 2), {"ph": "E", "ts": ts + dur, **common})
        if trace_id is not None:
            if r.get("parent") is None:
                roots[trace_id] = {"pid": pid, "tid": tid, "ts": ts}
            elif name == "serve" and trace_id not in serves:
                serves[trace_id] = {"pid": pid, "tid": tid, "ts": ts}
        else:
            if name == "dispatch" and isinstance(r.get("attrs"), dict):
                shard = r["attrs"].get("shard")
                if isinstance(shard, int):
                    dispatches[shard] = {"pid": pid, "tid": tid, "ts": ts}
        if pid > 0:
            first = shard_first.get(pid)
            if first is None or ts < first["ts"]:
                shard_first[pid] = {"pid": pid, "tid": tid, "ts": ts}

    def _flow(ph: str, fid: str, at: dict[str, Any], name: str) -> None:
        ev = {
            "ph": ph,
            "id": fid,
            "name": name,
            "cat": "flow",
            "pid": at["pid"],
            "tid": at["tid"],
            "ts": at["ts"],
        }
        if ph == "f":
            ev["bp"] = "e"
        _add(at["ts"], 2, 0, ev)

    for trace_id, root in roots.items():
        serve = serves.get(trace_id)
        if serve is not None:
            _flow("s", trace_id, root, "submit->serve")
            _flow("f", trace_id, serve, "submit->serve")
    for shard, disp in dispatches.items():
        first = shard_first.get(shard)
        if first is not None:
            fid = f"shard-{shard}"
            _flow("s", fid, disp, "dispatch->shard")
            _flow("f", fid, first, "dispatch->shard")

    events.sort(key=lambda it: it[0])
    return {
        "traceEvents": [ev for _, ev in events],
        "displayTimeUnit": "ms",
        "otherData": {"schema": EVENT_SCHEMA_VERSION, "producer": "repro.obs.events"},
    }


def render_tree(
    records: Iterable[Mapping[str, Any]], *, limit: int = 0
) -> str:
    """ASCII per-trace tree: each trace's spans nested under its root.

    Args:
        records: raw event records (any order).
        limit: keep only the ``limit`` slowest traces (0 = all).
    """
    traces: dict[str, list[dict[str, Any]]] = {}
    n_process_scope = 0
    for r in records:
        trace_id = r.get("trace")
        if trace_id is None:
            n_process_scope += 1
            continue
        traces.setdefault(trace_id, []).append(dict(r))

    entries = []
    for trace_id, recs in traces.items():
        root = next((r for r in recs if r.get("parent") is None), None)
        if root is None:
            continue
        entries.append((trace_id, root, recs))
    entries.sort(key=lambda e: (-int(e[1].get("dur", 0)), e[0]))
    if limit > 0:
        entries = entries[:limit]
    entries.sort(key=lambda e: (int(e[1]["ts"]), e[0]))

    def _fmt_attrs(r: Mapping[str, Any]) -> str:
        attrs = r.get("attrs")
        if not attrs:
            return ""
        body = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        return f"  [{body}]"

    lines: list[str] = []
    for trace_id, root, recs in entries:
        t0 = int(root["ts"])
        lines.append(
            f"{trace_id}  {int(root.get('dur', 0)) / 1000.0:.3f} ms"
            f"  (shard {root.get('shard', 0)}){_fmt_attrs(root)}"
        )
        children: dict[int | None, list[dict[str, Any]]] = {}
        for r in recs:
            if r is root:
                continue
            children.setdefault(r.get("parent"), []).append(r)
        for sibling_list in children.values():
            sibling_list.sort(key=lambda r: (int(r["ts"]), int(r.get("span", 0))))

        def _emit(parent_id: int | None, depth: int) -> None:
            kids = children.get(parent_id, [])
            for i, r in enumerate(kids):
                branch = "└─" if i == len(kids) - 1 else "├─"
                lines.append(
                    f"  {'  ' * depth}{branch} {r.get('path') or r.get('name')}"
                    f"  +{(int(r['ts']) - t0) / 1000.0:.3f} ms"
                    f"  {int(r.get('dur', 0)) / 1000.0:.3f} ms{_fmt_attrs(r)}"
                )
                _emit(r.get("span"), depth + 1)

        _emit(root.get("span"), 0)
    if n_process_scope:
        lines.append(f"({n_process_scope} process-scope events not shown per trace)")
    if not lines:
        lines.append("(no trace events)")
    return "\n".join(lines)
