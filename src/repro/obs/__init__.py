"""Observability: metrics, tracing spans, and run telemetry.

One switch governs everything: :func:`enable` turns the process-wide
:class:`~repro.obs.metrics.MetricsRegistry` and the span profile on,
:func:`disable` turns them off (the default). Disabled, every
instrumented call site costs a single flag check — cheap enough to live
on the request-serving hot paths permanently (gated at <= 3 % on the
linkstate bench workload by ``benchmarks/bench_obs_overhead.py``).

Layout:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms;
  snapshot/merge/delta for cross-process aggregation.
* :mod:`repro.obs.spans` — nestable :func:`span` context manager and
  :func:`traced` decorator feeding the per-phase :func:`profile`; also
  the always-on local :class:`Stopwatch` (formerly ``utils.timing``).
* :mod:`repro.obs.manifest` — the JSON run manifest (git SHA, host,
  metrics, profile, worker shard reports) behind the CLI's
  ``--telemetry`` flag; :func:`git_sha`/:func:`host_info` shared with
  ``benchmarks/reporting.py``.
* :mod:`repro.obs.export` — Prometheus text dump and the ``--profile``
  ASCII table (imported on demand, not re-exported here, to keep this
  package import-light for the hot modules that instrument through it).
* :mod:`repro.obs.trace` — the per-request flight recorder (sampled
  JSONL records with denial-cause attribution) behind the CLI's
  ``--trace`` flag; off by default, one ``None`` check per request
  otherwise. :mod:`repro.obs.report` renders its manifests into
  HTML/ASCII reports and threshold-gated diffs (imported on demand).
* :mod:`repro.obs.events` — the causal timeline plane (raw span
  begin/end events with trace/span/parent ids, cross-process clock
  alignment, Chrome ``trace_event`` export) behind the CLI's
  ``--timeline`` flag; off by default, one ``None`` check per span
  otherwise (DESIGN.md §15).
* :mod:`repro.obs.live` — windowed instruments (sliding-window rates,
  rolling exact quantiles, injectable clock) registered in the same
  registry; :mod:`repro.obs.slo` evaluates declarative SLOs over them
  with multi-window burn-rate alerting. Both feed the HTTP scrape
  plane of :mod:`repro.serve.http` (DESIGN.md §14).

Typical instrumented module::

    from repro import obs

    _SERVED = obs.counter("network.requests.served")

    def serve(...):
        _SERVED.inc()          # no-op unless obs.enable() was called
        with obs.span("serve"):
            ...
"""

from repro.obs.manifest import (
    git_sha,
    host_info,
    record_worker_report,
    run_manifest,
    worker_reports,
    write_run_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_delta,
    registry,
)
from repro.obs.spans import Profile, SpanStats, Stopwatch, profile, span, traced
from repro.obs import events, live, trace

__all__ = [
    "events",
    "live",
    "trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profile",
    "SpanStats",
    "Stopwatch",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "git_sha",
    "histogram",
    "host_info",
    "metrics_delta",
    "profile",
    "record_worker_report",
    "registry",
    "reset",
    "run_manifest",
    "span",
    "traced",
    "worker_reports",
    "write_run_manifest",
]


def enable() -> None:
    """Turn metrics and span recording on for this process."""
    registry().enabled = True


def disable() -> None:
    """Turn metrics and span recording off (instrument values persist)."""
    registry().enabled = False


def enabled() -> bool:
    """Whether telemetry is currently recording."""
    return registry().enabled


def counter(name: str) -> Counter:
    """Get-or-create a counter on the process registry."""
    return registry().counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the process registry."""
    return registry().gauge(name)


def histogram(name: str, buckets: tuple[float, ...] | None = None) -> Histogram:
    """Get-or-create a histogram on the process registry."""
    return registry().histogram(name, buckets=buckets)


def reset() -> None:
    """Zero all metrics, clear the profile and worker reports.

    The enabled flag is left as-is (but a force-enabled live plane is
    switched back off); instrument objects stay registered, so
    references cached at import time remain live. Any active timeline
    recorder (:mod:`repro.obs.events`) is closed and dropped, and
    histogram exemplars are cleared with the metric values — back-to-back
    runs in one process never leak events or exemplars across runs. Also
    marks *now* as the run start for the manifest's
    ``started_at``/``duration_s``.
    """
    from repro.obs.manifest import clear_worker_reports, mark_run_started

    registry().reset()
    profile().reset()
    live.force(False)
    events.reset()
    clear_worker_reports()
    mark_run_started()
