"""Windowed (live) metrics: sliding-window rates and rolling quantiles.

The cumulative instruments of :mod:`repro.obs.metrics` answer "what
happened over the whole run" — the right shape for end-of-run manifests,
useless for an operator watching a long-lived :class:`ServeServer`. This
module adds the live variants: each instrument keeps a ring buffer of
fixed-duration buckets covering the last ``window_s`` seconds, so it can
answer "what is happening *now*" — per-second rates for counters, the
last observation per bucket for gauges, and rolling quantiles over exact
retained samples for histograms.

Windowed instruments register in the same process-wide
:class:`~repro.obs.metrics.MetricsRegistry` as the cumulative ones (one
``enabled`` switch governs both, ``obs.reset()`` zeroes both, and the
registry snapshot — hence the run manifest and the Prometheus dump —
carries both). The live plane can additionally be switched on *alone*
via :func:`force`: windowed instruments then record while the registry —
and with it span tracing and the cumulative engine metrics — stays
disabled, which is how a production ``repro serve --http-port`` run
keeps its scrape endpoints hot at a fraction of the full-telemetry
cost. They are deliberately *process-local*: worker deltas drop
them and :meth:`MetricsRegistry.merge` skips them, because a sliding
window only means something on the process whose wall clock drives it.

Time comes from one module-level monotonic clock, injectable via
:func:`set_clock` — deterministic tests drive a fake clock forward and
get bit-reproducible rates and quantiles; production leaves the default
``time.monotonic``. Sub-window queries are first-class: a single
60-second instrument answers ``rate(window_s=5)`` for the fast leg of a
multi-window SLO burn-rate rule (:mod:`repro.obs.slo`) without a second
ring.

Quantiles are *exact*, not bucket-interpolated: each histogram bucket
retains its samples, and :meth:`WindowedHistogram.quantile` computes the
same linear-interpolation quantile as ``numpy.quantile`` over every
sample still inside the window. Memory is therefore O(arrival rate x
window) — bounded for any fixed window, and the acceptance contract
(windowed quantile == offline quantile to 1e-12 when the window covers
the whole run) holds with no resolution caveat.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable

from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry, registry

__all__ = [
    "DEFAULT_BUCKET_S",
    "DEFAULT_WINDOW_S",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "force",
    "forced",
    "now",
    "set_clock",
    "windowed_counter",
    "windowed_gauge",
    "windowed_histogram",
]

#: Default sliding-window span [s].
DEFAULT_WINDOW_S = 60.0
#: Default ring-bucket duration [s].
DEFAULT_BUCKET_S = 1.0

_CLOCK: Callable[[], float] = time.monotonic

# Standalone switch for the live plane: when True, windowed instruments
# record even while the registry (and with it the heavyweight diagnostic
# telemetry — spans, traces, cumulative engine metrics) stays disabled.
# This is what lets `repro serve --http-port` keep its observability
# endpoints hot without paying the full-telemetry tax on the serving
# path; the live-mode overhead bench gates exactly this configuration.
_FORCED = False


def now() -> float:
    """The current reading of the live-metrics clock."""
    return _CLOCK()


def force(on: bool) -> bool:
    """Enable the live plane independently of the registry switch.

    Returns the previous setting so callers can restore it. Full
    telemetry (``obs.enable()``) subsumes this — forcing matters only
    when the registry is disabled.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = bool(on)
    return previous


def forced() -> bool:
    """Whether the live plane is force-enabled."""
    return _FORCED


def set_clock(clock: Callable[[], float] | None) -> Callable[[], float]:
    """Replace the module clock (``None`` restores ``time.monotonic``).

    Every windowed instrument reads time through this hook, so a test
    can drive all of them deterministically with one fake. Returns the
    previous clock so callers can restore it.
    """
    global _CLOCK
    previous = _CLOCK
    _CLOCK = clock if clock is not None else time.monotonic
    return previous


class _Ring:
    """Shared ring-buffer mechanics: bucket alignment, expiry, iteration.

    Buckets are aligned to absolute bucket indices (``floor(t / bucket_s)``)
    rather than relative offsets, so two instruments on the same clock
    expire the same instants identically — what makes windowed rates
    comparable across instruments in one SLO rule.
    """

    __slots__ = ("window_s", "bucket_s", "n_buckets", "_indices", "_slots")

    def __init__(self, window_s: float, bucket_s: float, make_slot) -> None:
        if not window_s > 0 or not bucket_s > 0:
            raise ValidationError(
                f"window_s and bucket_s must be > 0, got {window_s!r}/{bucket_s!r}"
            )
        if bucket_s > window_s:
            raise ValidationError(
                f"bucket_s {bucket_s!r} exceeds window_s {window_s!r}"
            )
        self.window_s = float(window_s)
        self.bucket_s = float(bucket_s)
        self.n_buckets = int(math.ceil(self.window_s / self.bucket_s))
        self._indices = [-1] * self.n_buckets  # absolute bucket index, -1 = empty
        self._slots = [make_slot() for _ in range(self.n_buckets)]

    def slot_at(self, now: float):
        """The (fresh or reused) slot for the bucket containing ``now``.

        The instruments' write paths (:meth:`WindowedCounter.inc` etc.)
        inline this logic to stay off the serving hot path's call stack;
        this method is the reference implementation they must match.
        """
        index = int(now // self.bucket_s)
        pos = index % self.n_buckets
        if self._indices[pos] != index:
            self._indices[pos] = index
            self._slots[pos] = type(self._slots[pos])()
        return self._slots[pos]

    def live_slots(self, now: float, window_s: float | None = None):
        """Slots still inside ``window_s`` (default: the full window).

        A bucket is live when it overlaps ``(now - window_s, now]`` —
        the bucket currently being written always is.
        """
        span = self.window_s if window_s is None else min(window_s, self.window_s)
        if not span > 0:
            raise ValidationError(f"window_s must be > 0, got {window_s!r}")
        current = int(now // self.bucket_s)
        oldest = int((now - span) // self.bucket_s)
        for pos, index in enumerate(self._indices):
            if oldest < index <= current or (index == oldest and index >= 0):
                yield self._slots[pos]

    def covered_s(self, now: float, window_s: float | None = None) -> float:
        """Seconds of the query window that rates should divide by."""
        return self.window_s if window_s is None else min(window_s, self.window_s)

    def clear(self) -> None:
        self._indices = [-1] * self.n_buckets
        self._slots = [type(self._slots[0])() for _ in range(self.n_buckets)]


class _CountSlot:
    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = 0.0


class _GaugeSlot:
    __slots__ = ("last", "min", "max", "n")

    def __init__(self) -> None:
        self.last = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.n = 0


class _SampleSlot:
    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: list[float] = []


class WindowedCounter:
    """Sliding-window event counter: per-second rates over the last N s."""

    __slots__ = ("name", "_registry", "_ring", "cumulative")

    def __init__(
        self,
        name: str,
        registry: MetricsRegistry,
        window_s: float = DEFAULT_WINDOW_S,
        bucket_s: float = DEFAULT_BUCKET_S,
    ) -> None:
        self.name = name
        self._registry = registry
        self._ring = _Ring(window_s, bucket_s, _CountSlot)
        self.cumulative = 0.0

    @property
    def window_s(self) -> float:
        return self._ring.window_s

    def inc(self, n: float = 1.0) -> None:
        """Count ``n`` events at the current clock (no-op while disabled)."""
        if self._registry.enabled or _FORCED:
            # _Ring.slot_at, inlined: this is the hottest write path in
            # live mode (one inc per request event on the serving loop).
            ring = self._ring
            index = int(_CLOCK() // ring.bucket_s)
            pos = index % ring.n_buckets
            if ring._indices[pos] != index:
                ring._indices[pos] = index
                slot = ring._slots[pos] = _CountSlot()
            else:
                slot = ring._slots[pos]
            slot.total += n
            self.cumulative += n

    def total(self, window_s: float | None = None) -> float:
        """Events inside the last ``window_s`` seconds (default: full window)."""
        now = _CLOCK()
        return sum(s.total for s in self._ring.live_slots(now, window_s))

    def rate(self, window_s: float | None = None) -> float:
        """Mean events per second over the last ``window_s`` seconds."""
        now = _CLOCK()
        span = self._ring.covered_s(now, window_s)
        return sum(s.total for s in self._ring.live_slots(now, window_s)) / span

    def reset_values(self) -> None:
        self._ring.clear()
        self.cumulative = 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "windowed_counter",
            "window_s": self._ring.window_s,
            "bucket_s": self._ring.bucket_s,
            "total": self.total(),
            "rate_per_s": self.rate(),
            "cumulative": self.cumulative,
        }


class WindowedGauge:
    """Sliding-window gauge: last/min/max of the recent observations."""

    __slots__ = ("name", "_registry", "_ring", "_last", "cumulative_n")

    def __init__(
        self,
        name: str,
        registry: MetricsRegistry,
        window_s: float = DEFAULT_WINDOW_S,
        bucket_s: float = DEFAULT_BUCKET_S,
    ) -> None:
        self.name = name
        self._registry = registry
        self._ring = _Ring(window_s, bucket_s, _GaugeSlot)
        self._last: float | None = None
        self.cumulative_n = 0

    @property
    def window_s(self) -> float:
        return self._ring.window_s

    def set(self, value: float) -> None:
        """Record the current value (no-op while disabled)."""
        if self._registry.enabled or _FORCED:
            # _Ring.slot_at, inlined (see its docstring).
            ring = self._ring
            index = int(_CLOCK() // ring.bucket_s)
            pos = index % ring.n_buckets
            if ring._indices[pos] != index:
                ring._indices[pos] = index
                slot = ring._slots[pos] = _GaugeSlot()
            else:
                slot = ring._slots[pos]
            value = float(value)
            slot.last = value
            slot.n += 1
            if value < slot.min:
                slot.min = value
            if value > slot.max:
                slot.max = value
            self._last = value
            self.cumulative_n += 1

    def last(self) -> float:
        """Most recent observation ever (NaN before the first set)."""
        return self._last if self._last is not None else float("nan")

    def window_min(self, window_s: float | None = None) -> float:
        values = [
            s.min for s in self._ring.live_slots(_CLOCK(), window_s) if s.n
        ]
        return min(values) if values else float("nan")

    def window_max(self, window_s: float | None = None) -> float:
        values = [
            s.max for s in self._ring.live_slots(_CLOCK(), window_s) if s.n
        ]
        return max(values) if values else float("nan")

    def reset_values(self) -> None:
        self._ring.clear()
        self._last = None
        self.cumulative_n = 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "windowed_gauge",
            "window_s": self._ring.window_s,
            "bucket_s": self._ring.bucket_s,
            "last": self.last(),
            "min": self.window_min(),
            "max": self.window_max(),
            "cumulative_n": self.cumulative_n,
        }


class WindowedHistogram:
    """Sliding-window histogram with exact rolling quantiles.

    Samples are retained per bucket until their bucket expires, so
    :meth:`quantile` is the *exact* linear-interpolation quantile
    (``numpy.quantile`` semantics) of everything inside the window — the
    property the live-vs-offline acceptance test pins to 1e-12.
    """

    __slots__ = (
        "name",
        "_registry",
        "_ring",
        "cumulative_count",
        "cumulative_sum",
        "_exemplar",
    )

    def __init__(
        self,
        name: str,
        registry: MetricsRegistry,
        window_s: float = DEFAULT_WINDOW_S,
        bucket_s: float = DEFAULT_BUCKET_S,
    ) -> None:
        self.name = name
        self._registry = registry
        self._ring = _Ring(window_s, bucket_s, _SampleSlot)
        self.cumulative_count = 0
        self.cumulative_sum = 0.0
        #: (absolute bucket index, value, trace_id) of the max-latency
        #: observation carrying a trace id; expires with its bucket.
        self._exemplar: tuple[int, float, str] | None = None

    @property
    def window_s(self) -> float:
        return self._ring.window_s

    def observe(self, value: float) -> None:
        """Record one sample at the current clock (no-op while disabled)."""
        if self._registry.enabled or _FORCED:
            # _Ring.slot_at, inlined (see its docstring).
            ring = self._ring
            index = int(_CLOCK() // ring.bucket_s)
            pos = index % ring.n_buckets
            if ring._indices[pos] != index:
                ring._indices[pos] = index
                slot = ring._slots[pos] = _SampleSlot()
            else:
                slot = ring._slots[pos]
            slot.samples.append(float(value))
            self.cumulative_count += 1
            self.cumulative_sum += value

    def observe_with_exemplar(self, value: float, trace_id: str | None) -> None:
        """Record one sample, retaining ``trace_id`` as the window's
        exemplar when ``value`` is the largest trace-carrying sample
        still inside the window.

        The exemplar is what ``/status`` (and ``repro top``) surface as
        the concrete slow trace behind a burning latency SLO; it expires
        with the ring like any other observation. ``trace_id=None``
        degrades to :meth:`observe`.
        """
        if self._registry.enabled or _FORCED:
            now = _CLOCK()
            ring = self._ring
            index = int(now // ring.bucket_s)
            pos = index % ring.n_buckets
            if ring._indices[pos] != index:
                ring._indices[pos] = index
                slot = ring._slots[pos] = _SampleSlot()
            else:
                slot = ring._slots[pos]
            slot.samples.append(float(value))
            self.cumulative_count += 1
            self.cumulative_sum += value
            if trace_id is not None:
                current = self._exemplar
                if (
                    current is None
                    or value >= current[1]
                    or current[0] <= index - ring.n_buckets
                ):
                    self._exemplar = (index, float(value), trace_id)

    def exemplar(self) -> dict[str, Any] | None:
        """The retained max-latency exemplar, or ``None`` when absent or
        expired (its bucket left the window)."""
        current = self._exemplar
        if current is None:
            return None
        index, value, trace_id = current
        if index <= int(_CLOCK() // self._ring.bucket_s) - self._ring.n_buckets:
            return None
        return {"value": value, "trace_id": trace_id}

    def _window_samples(self, window_s: float | None = None) -> list[float]:
        now = _CLOCK()
        samples: list[float] = []
        for slot in self._ring.live_slots(now, window_s):
            samples.extend(slot.samples)
        return samples

    def count(self, window_s: float | None = None) -> int:
        """Samples inside the last ``window_s`` seconds."""
        now = _CLOCK()
        return sum(
            len(s.samples) for s in self._ring.live_slots(now, window_s)
        )

    def rate(self, window_s: float | None = None) -> float:
        """Mean samples per second over the last ``window_s`` seconds."""
        now = _CLOCK()
        span = self._ring.covered_s(now, window_s)
        return (
            sum(len(s.samples) for s in self._ring.live_slots(now, window_s)) / span
        )

    def mean(self, window_s: float | None = None) -> float:
        """Exact mean of windowed samples (NaN when empty)."""
        samples = self._window_samples(window_s)
        return sum(samples) / len(samples) if samples else float("nan")

    def quantile(self, q: float, window_s: float | None = None) -> float:
        """Exact ``q``-quantile of the windowed samples (NaN when empty).

        Linear interpolation between order statistics — identical to
        ``numpy.quantile(samples, q)`` — computed without numpy so the
        scrape path stays allocation-light.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q!r}")
        samples = self._window_samples(window_s)
        if not samples:
            return float("nan")
        samples.sort()
        if len(samples) == 1:
            return samples[0]
        position = q * (len(samples) - 1)
        lo = int(position)
        frac = position - lo
        if frac == 0.0:
            return samples[lo]
        return samples[lo] + (samples[lo + 1] - samples[lo]) * frac

    def fraction_above(self, threshold: float, window_s: float | None = None) -> float:
        """Fraction of windowed samples strictly above ``threshold``.

        The latency-SLO error rate: with a p99 bound, up to 1 % of
        samples may sit above the bound before the budget burns.
        Returns 0.0 on an empty window (no traffic, no burn).
        """
        samples = self._window_samples(window_s)
        if not samples:
            return 0.0
        return sum(1 for s in samples if s > threshold) / len(samples)

    def reset_values(self) -> None:
        self._ring.clear()
        self.cumulative_count = 0
        self.cumulative_sum = 0.0
        self._exemplar = None

    def snapshot(self) -> dict[str, Any]:
        samples = self._window_samples()
        out: dict[str, Any] = {
            "type": "windowed_histogram",
            "window_s": self._ring.window_s,
            "bucket_s": self._ring.bucket_s,
            "count": len(samples),
            "rate_per_s": len(samples) / self._ring.window_s,
            "cumulative_count": self.cumulative_count,
            "cumulative_sum": self.cumulative_sum,
        }
        if samples:
            out.update(
                mean=sum(samples) / len(samples),
                p50=self.quantile(0.5),
                p99=self.quantile(0.99),
                min=min(samples),
                max=max(samples),
            )
        exemplar = self.exemplar()
        if exemplar is not None:
            out["exemplar"] = exemplar
        return out


def windowed_counter(
    name: str,
    window_s: float = DEFAULT_WINDOW_S,
    bucket_s: float = DEFAULT_BUCKET_S,
) -> WindowedCounter:
    """Get-or-create a windowed counter on the process registry."""
    return registry()._get_or_create(
        name, WindowedCounter, window_s=window_s, bucket_s=bucket_s
    )


def windowed_gauge(
    name: str,
    window_s: float = DEFAULT_WINDOW_S,
    bucket_s: float = DEFAULT_BUCKET_S,
) -> WindowedGauge:
    """Get-or-create a windowed gauge on the process registry."""
    return registry()._get_or_create(
        name, WindowedGauge, window_s=window_s, bucket_s=bucket_s
    )


def windowed_histogram(
    name: str,
    window_s: float = DEFAULT_WINDOW_S,
    bucket_s: float = DEFAULT_BUCKET_S,
) -> WindowedHistogram:
    """Get-or-create a windowed histogram on the process registry."""
    return registry()._get_or_create(
        name, WindowedHistogram, window_s=window_s, bucket_s=bucket_s
    )
