"""Run manifests: one JSON record describing a whole run.

A manifest snapshots everything needed to interpret a run's numbers
after the fact: the git SHA and host that produced it, the command and
workload, every metric (counters, gauges, histograms), the span profile,
and the per-worker shard reports gathered from process-pool sweeps.
The CLI's ``--telemetry PATH`` flag writes one at the end of every
command; CI uploads the smoke sweep's manifest as a workflow artifact.

:func:`git_sha` and :func:`host_info` live here as the single source of
truth for provenance fields — ``benchmarks/reporting.py`` re-exports
them for the ``BENCH_*.json`` records rather than keeping its own copy.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.obs import events as events_mod
from repro.obs import trace as trace_mod
from repro.obs.metrics import registry
from repro.obs.spans import profile

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "git_sha",
    "host_info",
    "mark_run_started",
    "record_worker_report",
    "run_manifest",
    "worker_reports",
    "write_run_manifest",
]

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1


# --- run timestamps -----------------------------------------------------------

# Wall-clock and monotonic marks of the current run's start. Import time
# is a serviceable default for one-shot CLI processes; obs.reset() (which
# the CLI calls when telemetry turns on) re-marks, so long-lived
# processes that reset between runs get per-run timestamps.
_RUN_STARTED_UNIX_S = time.time()
_RUN_STARTED_MONOTONIC = time.monotonic()


def mark_run_started() -> None:
    """Mark *now* as the current run's start (called by ``obs.reset``)."""
    global _RUN_STARTED_UNIX_S, _RUN_STARTED_MONOTONIC
    _RUN_STARTED_UNIX_S = time.time()
    _RUN_STARTED_MONOTONIC = time.monotonic()


def _iso_utc(unix_s: float) -> str:
    """Unix seconds as UTC ISO-8601 with a trailing ``Z``."""
    from datetime import datetime, timezone

    stamp = datetime.fromtimestamp(unix_s, tz=timezone.utc)
    return stamp.isoformat(timespec="seconds").replace("+00:00", "Z")


def git_sha(cwd: str | Path | None = None) -> str:
    """The current commit SHA, or "unknown" outside a git checkout.

    Args:
        cwd: directory to resolve the repository from; defaults to this
            file's directory (works for the source tree; an installed
            package reports "unknown", which is the honest answer).
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(cwd) if cwd is not None else Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def host_info() -> dict[str, Any]:
    """Provenance description of the executing host."""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


# --- per-worker shard reports -------------------------------------------------

_WORKER_REPORTS: list[dict[str, Any]] = []


def record_worker_report(report: Mapping[str, Any]) -> None:
    """Append one worker's shard report to the run telemetry.

    Called by the parent side of the process-pool sweeps after gathering
    results; no-op while telemetry is disabled so long-lived library use
    never accumulates state.
    """
    if registry().enabled:
        _WORKER_REPORTS.append(dict(report))


def worker_reports() -> list[dict[str, Any]]:
    """Shard reports recorded so far (copies, insertion order)."""
    return [dict(r) for r in _WORKER_REPORTS]


def clear_worker_reports() -> None:
    """Drop all recorded shard reports."""
    _WORKER_REPORTS.clear()


# --- manifest assembly --------------------------------------------------------


def run_manifest(
    *,
    command: str | None = None,
    argv: Sequence[str] | None = None,
    workload: Mapping[str, Any] | None = None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the manifest dict for the current process state."""
    finished_unix_s = time.time()
    duration_s = time.monotonic() - _RUN_STARTED_MONOTONIC
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "created_at_unix_s": finished_unix_s,
        "started_at": _iso_utc(_RUN_STARTED_UNIX_S),
        "finished_at": _iso_utc(finished_unix_s),
        "duration_s": duration_s,
        "git_sha": git_sha(),
        "host": host_info(),
        "metrics": registry().snapshot(),
        "profile": profile().as_dict(),
        "workers": worker_reports(),
    }
    recorder = trace_mod.active()
    if recorder is not None:
        # The flight-recorder digest (denial causes per LAN pair, outage
        # timeline, satellite utilization) rides inside the manifest so
        # `repro report` / `repro obs diff` need only the one file.
        manifest["trace"] = recorder.summary()
    events_recorder = events_mod.active()
    if events_recorder is not None:
        # The timeline digest (per-path span counts, the N slowest
        # request waterfalls) — `repro report` renders the waterfalls
        # without re-reading the raw event stream.
        manifest["events"] = events_recorder.summary()
    if command is not None:
        manifest["command"] = command
    if argv is not None:
        manifest["argv"] = [str(a) for a in argv]
    if workload is not None:
        manifest["workload"] = {k: _jsonable(v) for k, v in workload.items()}
    if extra:
        manifest["extra"] = {k: _jsonable(v) for k, v in extra.items()}
    return manifest


def write_run_manifest(path: str | Path, **kwargs: Any) -> Path:
    """Write :func:`run_manifest` as indented JSON; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(run_manifest(**kwargs), indent=2, sort_keys=True) + "\n")
    return out


def _jsonable(value: Any) -> Any:
    """Best-effort coercion of workload values to JSON-safe types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)
