"""Exporters: Prometheus text format and the CLI profile table.

The Prometheus dump follows the text exposition format: metric names are
sanitised (dots become underscores, a ``repro_`` prefix added), counters
get a ``_total`` suffix, and histograms expose cumulative ``le`` buckets
plus ``_sum``/``_count`` series — so the registry can be scraped or
diffed with standard tooling without a client-library dependency.

Windowed instruments (:mod:`repro.obs.live`) export as derived gauges
carrying a ``window`` label: a windowed counter contributes
``<name>_rate_per_s{window="60"}`` and ``<name>_window_total``, a
windowed histogram ``_p50``/``_p99``/``_window_count``/``_rate_per_s``,
a windowed gauge its ``last``/``min``/``max``. The cumulative totals the
windowed instruments also track ride along as plain counters, so a
scraper sees both the rolling and the monotonic view of one series.

Histogram buckets that retained a latency exemplar
(:meth:`~repro.obs.metrics.Histogram.observe_with_exemplar`) carry it in
OpenMetrics exemplar syntax — ``... # {trace_id="req-17"} 0.0042`` — so
a scraper that understands exemplars can jump from an aggregate bucket
straight to the concrete slow trace in the timeline plane; plain
text-format parsers that split on ``#`` comments remain compatible.
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import registry as _default_registry
from repro.obs.spans import Profile
from repro.obs.spans import profile as _default_profile

__all__ = ["escape_label_value", "to_prometheus_text", "render_profile_table"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash first (so the escapes introduced for quotes and newlines
    are not themselves re-escaped), then double quotes and newlines.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Prometheus number formatting (integers without trailing .0)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))


def _fmt_maybe_nan(value: float) -> str:
    """Prometheus number formatting tolerating NaN (empty windows)."""
    return "NaN" if value != value else _fmt(value)


def _windowed_lines(prom: str, metric: dict) -> list[str]:
    """Derived-gauge series for one windowed instrument snapshot."""
    window = escape_label_value(_fmt(metric["window_s"]))
    lines: list[str] = []

    def gauge(suffix: str, value: float) -> None:
        lines.append(f"# TYPE {prom}{suffix} gauge")
        lines.append(f'{prom}{suffix}{{window="{window}"}} {_fmt_maybe_nan(value)}')

    kind = metric["type"]
    if kind == "windowed_counter":
        gauge("_rate_per_s", metric["rate_per_s"])
        gauge("_window_total", metric["total"])
        lines.append(f"# TYPE {prom}_total counter")
        lines.append(f"{prom}_total {_fmt(metric['cumulative'])}")
    elif kind == "windowed_gauge":
        gauge("", metric["last"])
        gauge("_window_min", metric["min"])
        gauge("_window_max", metric["max"])
    else:  # windowed_histogram
        gauge("_rate_per_s", metric["rate_per_s"])
        gauge("_window_count", metric["count"])
        gauge("_p50", metric.get("p50", float("nan")))
        gauge("_p99", metric.get("p99", float("nan")))
        lines.append(f"# TYPE {prom}_count_total counter")
        lines.append(f"{prom}_count_total {_fmt(metric['cumulative_count'])}")
    return lines


def to_prometheus_text(reg: MetricsRegistry | None = None) -> str:
    """The registry in Prometheus text exposition format."""
    reg = reg if reg is not None else _default_registry()
    lines: list[str] = []
    for name, metric in sorted(reg.snapshot().items()):
        prom = _prom_name(name)
        if metric["type"] == "counter":
            lines.append(f"# TYPE {prom}_total counter")
            lines.append(f"{prom}_total {_fmt(metric['value'])}")
        elif metric["type"] == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_fmt(metric['value'])}")
        elif metric["type"].startswith("windowed_"):
            lines.extend(_windowed_lines(prom, metric))
        else:  # histogram
            lines.append(f"# TYPE {prom} histogram")
            exemplars = metric.get("exemplars", {})
            cumulative = 0
            for i, (bound, count) in enumerate(
                zip(metric["bounds"], metric["bucket_counts"])
            ):
                cumulative += count
                le = escape_label_value(_fmt(bound))
                line = f'{prom}_bucket{{le="{le}"}} {cumulative}'
                exemplar = exemplars.get(str(i))
                if exemplar is not None:
                    tid = escape_label_value(str(exemplar["trace_id"]))
                    line += f' # {{trace_id="{tid}"}} {_fmt(exemplar["value"])}'
                lines.append(line)
            line = f'{prom}_bucket{{le="+Inf"}} {metric["count"]}'
            overflow = exemplars.get(str(len(metric["bounds"])))
            if overflow is not None:
                tid = escape_label_value(str(overflow["trace_id"]))
                line += f' # {{trace_id="{tid}"}} {_fmt(overflow["value"])}'
            lines.append(line)
            lines.append(f"{prom}_sum {_fmt(metric['sum'])}")
            lines.append(f"{prom}_count {metric['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_profile_table(prof: Profile | None = None) -> str:
    """ASCII table of the span profile, slowest total first."""
    # Imported here, not at module top: reporting.tables pulls in the
    # core comparison types, and obs must stay importable from every
    # layer without cycles.
    from repro.reporting.tables import render_table

    prof = prof if prof is not None else _default_profile()
    stats = sorted(prof.stats().values(), key=lambda s: s.total_s, reverse=True)
    rows = []
    for s in stats:
        mean_ms = 1e3 * s.total_s / s.count if s.count else 0.0
        cpu = f"{s.total_cpu_s:.3f}" if s.total_cpu_s else "-"
        rows.append(
            (s.path, s.count, f"{s.total_s:.4f}", f"{mean_ms:.2f}", f"{1e3 * s.max_s:.2f}", cpu)
        )
    return render_table(
        ["span", "calls", "total s", "mean ms", "max ms", "cpu s"],
        rows,
        title="RUN PROFILE",
    )
